//! # mcpaxos — Multicoordinated Paxos
//!
//! A comprehensive Rust implementation of *Multicoordinated Paxos*
//! (Camargos, Schmidt, Pedone — Tech. Report 2007/02 / PODC'07 brief
//! announcement): consensus, generalized consensus and generic broadcast
//! with classic, fast and **multicoordinated** rounds.
//!
//! This crate is the facade over the workspace:
//!
//! * [`actor`] — transport-agnostic actor model (processes, timers,
//!   stable storage, wire codec);
//! * [`cstruct`] — command structures (CS0–CS4) with four instantiations
//!   (consensus, commuting sets, sequences, command histories);
//! * [`simnet`] — deterministic discrete-event simulator with fault
//!   injection;
//! * [`core`] — the protocol: rounds, quorums, `ProvedSafe`, the four
//!   agents, collision recovery, leader election, disk-write reduction;
//! * [`gbcast`] — generic broadcast (§3.3) plus delivery and property
//!   checkers;
//! * [`smr`] — replicated state machines (key-value store, bank) on top;
//! * [`runtime`] — a threaded live runtime for the same agents.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-claim reproduction tables.
//!
//! # Quickstart
//!
//! ```
//! use mcpaxos_suite::core::{DeployConfig, Msg, Policy};
//! use mcpaxos_suite::cstruct::{CStruct, CmdSet};
//! use mcpaxos_suite::simnet::{NetConfig, Sim};
//! use mcpaxos_suite::actor::{ProcessId, SimTime};
//!
//! // 1 proposer, 3 coordinators, 5 acceptors, 1 learner.
//! let cfg = std::sync::Arc::new(DeployConfig::simple(1, 3, 5, 1, Policy::MultiCoordinated));
//! let mut sim: Sim<Msg<CmdSet<u32>>> = Sim::new(42, NetConfig::lockstep());
//! for &p in cfg.roles.proposers() {
//!     let c = cfg.clone();
//!     sim.add_process(p, move || Box::new(mcpaxos_suite::core::Proposer::new(c.clone())));
//! }
//! for &p in cfg.roles.coordinators() {
//!     let c = cfg.clone();
//!     sim.add_process(p, move || Box::new(mcpaxos_suite::core::Coordinator::new(c.clone(), p)));
//! }
//! for &p in cfg.roles.acceptors() {
//!     let c = cfg.clone();
//!     sim.add_process(p, move || Box::new(mcpaxos_suite::core::Acceptor::new(c.clone())));
//! }
//! for &p in cfg.roles.learners() {
//!     let c = cfg.clone();
//!     sim.add_process(p, move || Box::new(mcpaxos_suite::core::Learner::new(c.clone())));
//! }
//! sim.inject_at(SimTime(100), cfg.roles.proposers()[0], ProcessId(999),
//!     Msg::Propose { cmd: 7u32, acc_quorum: None });
//! sim.run_until(SimTime(500));
//! let learner: &mcpaxos_suite::core::Learner<CmdSet<u32>> =
//!     sim.actor(cfg.roles.learners()[0]).unwrap();
//! assert!(learner.learned().contains(&7));
//! ```

pub use mcpaxos_actor as actor;
pub use mcpaxos_core as core;
pub use mcpaxos_cstruct as cstruct;
pub use mcpaxos_gbcast as gbcast;
pub use mcpaxos_runtime as runtime;
pub use mcpaxos_simnet as simnet;
pub use mcpaxos_smr as smr;
