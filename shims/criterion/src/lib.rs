//! Offline stand-in for the `criterion` crate.
//!
//! Implements the benchmarking surface the workspace's `micro` bench
//! uses — `criterion_group!`/`criterion_main!`, benchmark groups,
//! `Bencher::iter` and `Bencher::iter_batched` — as a plain wall-clock
//! runner: a short warm-up, a fixed measurement window, and a
//! median-of-samples report printed to stdout. No statistical analysis,
//! plots or HTML reports; the point is that `cargo bench` builds, runs
//! and prints honest numbers without network access.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost (accepted for API
/// compatibility; the runner always times the routine alone).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per timed iteration.
    PerIteration,
}

/// Prevents the optimizer from discarding a value (re-export of the
/// stable `std::hint` version upstream criterion wraps).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    fn new(target_samples: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            target_samples,
        }
    }

    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        for _ in 0..3 {
            black_box(routine());
        }
        for _ in 0..self.target_samples {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` over fresh inputs from `setup`; only the routine
    /// is inside the timed window.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.target_samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn median(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let mut s = self.samples.clone();
        s.sort_unstable();
        s[s.len() / 2]
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark under this group's name.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        println!(
            "bench {}/{}: median {:?} over {} samples",
            self.name,
            id,
            bencher.median(),
            bencher.samples.len()
        );
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op).
    pub fn finish(self) {}
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepted for API compatibility with generated `main`s; CLI
    /// arguments (e.g. a filter from `cargo bench -- <filter>`) are
    /// ignored by this stand-in.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_samples() {
        let mut b = Bencher::new(5);
        b.iter(|| 2 + 2);
        assert_eq!(b.samples.len(), 5);
        assert!(b.median() < Duration::from_secs(1));
    }

    #[test]
    fn iter_batched_uses_fresh_inputs() {
        let mut b = Bencher::new(4);
        let mut counter = 0u32;
        b.iter_batched(
            || {
                counter += 1;
                counter
            },
            |input| input * 2,
            BatchSize::LargeInput,
        );
        assert_eq!(b.samples.len(), 4);
        assert_eq!(counter, 5); // 1 warm-up + 4 timed setups
    }

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("group");
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| ()));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_runs() {
        benches();
    }
}
