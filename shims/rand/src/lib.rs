//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the *subset* of the `rand` 0.8 API its own code
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen`, `gen_bool` and `gen_range` over
//! integer and float ranges. The generator is SplitMix64 — high quality
//! for simulation purposes and fully deterministic from its seed, which
//! is exactly what the deterministic test pyramid requires. It makes no
//! attempt to be statistically identical to upstream `StdRng`; seeds
//! here produce *this workspace's* reference streams.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next pseudo-random 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next pseudo-random 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from a fixed, documented seed.
    fn from_entropy() -> Self {
        // Deterministic on purpose: "entropy" would break reproducibility
        // and nothing in this workspace should rely on it.
        Self::seed_from_u64(0x5EED_CAFE_F00D_D1CE)
    }
}

/// Types that can be sampled uniformly from the full generator output
/// (the upstream `Standard` distribution, inlined).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + (u128::from(rng.next_u64()) % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (u128::from(rng.next_u64()) % span) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform value over the type's full output distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = p.clamp(0.0, 1.0);
        <f64 as Standard>::sample(self) < p
    }

    /// Uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng` (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3..9u64);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(3..=9usize);
            assert!((3..=9).contains(&w));
            let f = rng.gen_range(0.25..0.5f64);
            assert!((0.25..0.5).contains(&f));
            let i = rng.gen_range(-4..4i32);
            assert!((-4..4).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
