//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the [`channel`] subset the live runtime uses: multi-producer
//! channels with cloneable senders, `recv_timeout`, and disconnect
//! detection, implemented over a `Mutex<VecDeque>` + `Condvar`. Not a
//! lock-free queue — throughput is not the point here; identical
//! semantics under the runtime's usage pattern is.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        recv_ready: Condvar,
        send_ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        capacity: Option<usize>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: Send> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`].
    #[derive(PartialEq, Eq, Clone, Copy, Debug)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(PartialEq, Eq, Clone, Copy, Debug)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => f.write_str("channel is empty and disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(PartialEq, Eq, Clone, Copy, Debug)]
    pub enum TryRecvError {
        /// The queue is currently empty.
        Empty,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("channel is empty"),
                TryRecvError::Disconnected => f.write_str("channel is empty and disconnected"),
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Error returned by [`Sender::try_send`].
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity; the message is returned.
        Full(T),
        /// All receivers are gone; the message is returned.
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    impl<T: Send> std::error::Error for TrySendError<T> {}

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.shared.recv_ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.shared.send_ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `msg`, blocking while a bounded channel is full.
        ///
        /// Returns the message back if every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut queue = self.shared.queue.lock().unwrap();
            loop {
                if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(msg));
                }
                match self.shared.capacity {
                    Some(cap) if queue.len() >= cap => {
                        queue = self.shared.send_ready.wait(queue).unwrap();
                    }
                    _ => break,
                }
            }
            queue.push_back(msg);
            drop(queue);
            self.shared.recv_ready.notify_one();
            Ok(())
        }

        /// Sends `msg` without blocking: a full bounded channel returns
        /// [`TrySendError::Full`] instead of waiting, so the caller can
        /// shed load (and count the drop) rather than stall.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut queue = self.shared.queue.lock().unwrap();
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = self.shared.capacity {
                if queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            queue.push_back(msg);
            drop(queue);
            self.shared.recv_ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        fn pop(&self, queue: &mut VecDeque<T>) -> Option<T> {
            let msg = queue.pop_front();
            if msg.is_some() {
                self.shared.send_ready.notify_one();
            }
            msg
        }

        /// Receives a message, blocking until one is available.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap();
            loop {
                if let Some(msg) = self.pop(&mut queue) {
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self.shared.recv_ready.wait(queue).unwrap();
            }
        }

        /// Receives a message, waiting at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.shared.queue.lock().unwrap();
            loop {
                if let Some(msg) = self.pop(&mut queue) {
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (q, res) = self
                    .shared
                    .recv_ready
                    .wait_timeout(queue, deadline - now)
                    .unwrap();
                queue = q;
                if res.timed_out() && queue.is_empty() {
                    if self.shared.senders.load(Ordering::SeqCst) == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Receives a message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().unwrap();
            if let Some(msg) = self.pop(&mut queue) {
                return Ok(msg);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }
    }

    fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            recv_ready: Condvar::new(),
            send_ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            capacity,
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    /// Creates a channel of unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(cap))
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn fifo_per_sender() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn timeout_then_delivery() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            let t = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                tx.send(7).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(7));
            t.join().unwrap();
        }

        #[test]
        fn disconnect_detected() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn send_to_dropped_receiver_errors() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(3), Err(SendError(3)));
        }

        #[test]
        fn bounded_applies_backpressure() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let t = std::thread::spawn(move || {
                tx.send(3).unwrap(); // blocks until one is consumed
                "done"
            });
            std::thread::sleep(Duration::from_millis(10));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(t.join().unwrap(), "done");
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
        }

        #[test]
        fn try_send_reports_full_and_disconnected() {
            let (tx, rx) = bounded::<u32>(1);
            assert_eq!(tx.try_send(1), Ok(()));
            assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(tx.try_send(3), Ok(()));
            drop(rx);
            assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
        }

        #[test]
        fn cloned_receivers_share_stream() {
            let (tx, rx1) = unbounded::<u32>();
            let rx2 = rx1.clone();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let a = rx1.recv().unwrap();
            let b = rx2.recv().unwrap();
            let mut got = vec![a, b];
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        }
    }
}
