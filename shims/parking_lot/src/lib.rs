//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with `parking_lot`'s ergonomics: `lock`,
//! `read` and `write` return guards directly instead of `Result`s.
//! Poisoning is deliberately ignored (as in `parking_lot` itself): a
//! panicking actor thread must not deadlock the rest of the cluster, and
//! the data under these locks (mailbox registries, metric counters) stays
//! consistent under any interleaving of the individual operations.

use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion primitive (non-poisoning facade over `std`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock (non-poisoning facade over `std`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = Arc::new(RwLock::new(vec![1, 2]));
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
