//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the subset of the proptest API its suites use:
//!
//! * [`strategy::Strategy`] with `prop_map`/`boxed`, implemented for
//!   integer ranges, tuples, [`strategy::Just`] and the combinators in
//!   [`collection`] and [`option`];
//! * [`arbitrary::any`] for primitive types;
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`], [`prop_assert_ne!`] and [`prop_assume!`]
//!   macros;
//! * [`test_runner::ProptestConfig`] (`cases` only).
//!
//! Differences from upstream, on purpose:
//!
//! * **No shrinking.** A failing case panics with the fully rendered
//!   input values instead of a minimized counterexample.
//! * **Deterministic RNG.** Each test's stream is seeded from the test
//!   name, so a run is exactly reproducible — the property the
//!   workspace's "deterministic test pyramid" needs — at the cost of not
//!   exploring new inputs across runs.

pub mod test_runner {
    /// Outcome carrier for one sampled case: `proptest!` treats `Reject`
    /// (from `prop_assume!`) as "draw a new input", and `Fail` (from the
    /// `prop_assert*` macros) as a test failure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The sampled input does not satisfy a `prop_assume!` guard.
        Reject(String),
        /// A property assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection with the given reason.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Per-`proptest!`-block configuration (subset: `cases`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful (non-rejected) cases each test must pass.
        pub cases: u32,
        /// Upper bound on rejected samples before the runner gives up,
        /// as a multiple of `cases`.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 1024,
            }
        }
    }

    /// Deterministic SplitMix64 stream used to sample strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from a test's name (FNV-1a), so every run of
        /// the suite draws identical inputs.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next pseudo-random 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Upstream proptest builds value *trees* to support shrinking; this
    /// stand-in samples flat values directly.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value from `rng`.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy type (needed by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                sample: Box::new(move |rng| self.sample(rng)),
            }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Type-erased strategy.
    pub struct BoxedStrategy<T> {
        sample: Box<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.sample)(rng)
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `options` must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident/$idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
        (A/0, B/1, C/2, D/3, E/4, F/5)
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8)
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9)
    }

    /// Strategy for `any::<T>()` (see [`crate::arbitrary`]).
    pub struct Any<T> {
        pub(crate) _marker: PhantomData<T>,
    }

    impl<T: super::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    use super::strategy::Any;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value from the type's full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    /// The canonical strategy for `T`'s full domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: PhantomData,
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy for `BTreeSet`s with *target* sizes drawn from a range
    /// (duplicates collapse, as upstream permits).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Sets of `element` values with target size in `size`.
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `Option`s (see [`of`]).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Bias toward `Some` (3:1) like upstream's default weight,
            // so optional fault injections actually get exercised.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }

    /// `None` or `Some(value)` with `value` drawn from `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod prelude {
    pub use super::arbitrary::{any, Arbitrary};
    pub use super::strategy::{BoxedStrategy, Just, Strategy};
    pub use super::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use super::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace mirror of upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Runs each property against `config.cases` sampled inputs.
///
/// Supports the upstream surface this workspace uses: an optional
/// `#![proptest_config(..)]` header, doc comments and attributes on each
/// test, and `pattern in strategy` bindings. Failures panic with the
/// rendered input values (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = { $cfg }; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            cfg = { $crate::test_runner::ProptestConfig::default() };
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = { $cfg:expr }; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            #[allow(clippy::needless_update)]
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            let reject_budget = config
                .max_global_rejects
                .max(config.cases.saturating_mul(8));
            while passed < config.cases {
                let __inputs = ($($crate::strategy::Strategy::sample(&($strat), &mut rng),)+);
                let rendered = format!(
                    concat!("  (", $(stringify!($arg), ", ",)+ ") = {:#?}\n"),
                    &__inputs
                );
                let ($($arg,)+) = __inputs;
                #[allow(unreachable_code)]
                let outcome = (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected <= reject_budget,
                            "proptest `{}`: too many prop_assume! rejections ({rejected})",
                            stringify!($name),
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest `{}` failed at case {} of {}:\n{}\nwith inputs:\n{}",
                            stringify!($name),
                            passed + 1,
                            config.cases,
                            msg,
                            rendered,
                        );
                    }
                }
            }
        }
    )*};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                    l,
                    r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                    l,
                    r,
                    format!($($fmt)*)
                );
            }
        }
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `(left != right)`\n  both: `{:?}`",
                    l
                );
            }
        }
    };
}

/// Discards the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        assert_eq!(xs, (0..4).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert_ne!(xs, (0..4).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn union_and_map_sample_all_arms() {
        let strat = prop_oneof![Just(1u32), Just(2u32), (10u32..20).prop_map(|v| v * 10)];
        let mut rng = TestRng::deterministic("union");
        let mut seen_small = false;
        let mut seen_big = false;
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!(v == 1 || v == 2 || (100..200).contains(&v));
            seen_small |= v <= 2;
            seen_big |= v >= 100;
        }
        assert!(seen_small && seen_big);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..9, y in 0usize..4, z in -5i64..5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 4);
            prop_assert!((-5..5).contains(&z));
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(0u32..10, 2..6),
            s in prop::collection::btree_set(0u32..100, 0..5),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(s.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u32..10, b in 0u32..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn option_of_produces_both_variants(opts in prop::collection::vec(prop::option::of(0u32..5), 30..31)) {
            // With 30 draws at 3:1 Some-bias, both variants virtually
            // always appear; the deterministic RNG makes this exact.
            prop_assert!(opts.iter().any(|o| o.is_some()));
            prop_assert!(opts.iter().any(|o| o.is_none()));
        }
    }

    #[test]
    #[should_panic(expected = "proptest `failing_property_panics` failed")]
    fn failing_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn failing_property_panics(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        failing_property_panics();
    }
}
