//! Property-based safety sweep at workspace level: randomized scenarios
//! drawn by proptest, checking the Generalized Consensus safety
//! properties over the full stack. Complements the per-crate suites by
//! letting proptest explore the scenario space (and shrink failures).

use mcpaxos_suite::actor::{ProcessId, SimTime};
use mcpaxos_suite::core::{
    Acceptor, CollisionPolicy, Coordinator, DeployConfig, Learner, Msg, Policy, Proposer,
};
use mcpaxos_suite::cstruct::{CStruct, CmdSeq};
use mcpaxos_suite::simnet::{DelayDist, NetConfig, Sim};
use proptest::prelude::*;
use std::sync::Arc;

const CLIENT: ProcessId = ProcessId(9_999);

type Seq = CmdSeq<u32>;

#[derive(Clone, Debug)]
struct Scenario {
    seed: u64,
    policy: Policy,
    jitter: u64,
    loss_pct: u8,
    cmds: Vec<(u64, u32)>, // (inject time, command)
    crash_coord: Option<(u64, usize)>,
    crash_acceptor: Option<(u64, usize, u64)>, // (down, idx, up-delta)
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        any::<u64>(),
        prop_oneof![
            Just(Policy::SingleCoordinated),
            Just(Policy::MultiCoordinated),
            Just(Policy::FastThenClassic),
        ],
        1u64..6,
        0u8..6,
        prop::collection::vec((100u64..1_200, 0u32..8), 1..6),
        prop::option::of((200u64..900, 0usize..3)),
        prop::option::of((200u64..900, 0usize..5, 200u64..800)),
    )
        .prop_map(
            |(seed, policy, jitter, loss_pct, cmds, crash_coord, crash_acceptor)| Scenario {
                seed,
                policy,
                jitter,
                loss_pct,
                cmds,
                crash_coord,
                crash_acceptor,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// Nontriviality + consistency always; total-order agreement between
    /// learners for sequence c-structs; liveness when the run quiesces.
    #[test]
    fn randomized_scenarios_preserve_safety(s in scenario()) {
        let cfg = Arc::new(
            DeployConfig::simple(2, 3, 5, 2, s.policy)
                .with_collision(CollisionPolicy::Coordinated),
        );
        let net = NetConfig::lockstep()
            .with_delay(DelayDist::Uniform(1, s.jitter.max(1)))
            .with_loss(f64::from(s.loss_pct) / 100.0);
        let mut sim: Sim<Msg<Seq>> = Sim::new(s.seed, net);
        for &p in cfg.roles.proposers() {
            let c = cfg.clone();
            sim.add_process(p, move || Box::new(Proposer::<Seq>::new(c.clone())));
        }
        for &p in cfg.roles.coordinators() {
            let c = cfg.clone();
            sim.add_process(p, move || Box::new(Coordinator::<Seq>::new(c.clone(), p)));
        }
        for &p in cfg.roles.acceptors() {
            let c = cfg.clone();
            sim.add_process(p, move || Box::new(Acceptor::<Seq>::new(c.clone())));
        }
        for &p in cfg.roles.learners() {
            let c = cfg.clone();
            sim.add_process(p, move || Box::new(Learner::<Seq>::new(c.clone())));
        }
        let mut proposed = Vec::new();
        for (i, &(t, cmd)) in s.cmds.iter().enumerate() {
            proposed.push(cmd);
            sim.inject_at(
                SimTime(t),
                cfg.roles.proposers()[i % 2],
                CLIENT,
                Msg::Propose { cmd, acc_quorum: None },
            );
        }
        if let Some((t, idx)) = s.crash_coord {
            sim.crash_at(SimTime(t), cfg.roles.coordinators()[idx]);
        }
        if let Some((t, idx, up)) = s.crash_acceptor {
            let a = cfg.roles.acceptors()[idx];
            sim.crash_at(SimTime(t), a);
            sim.recover_at(SimTime(t + up), a);
        }
        sim.run_until(SimTime(15_000));

        let learned: Vec<Seq> = cfg
            .roles
            .learners()
            .iter()
            .map(|&l| sim.actor::<Learner<Seq>>(l).unwrap().learned().clone())
            .collect();
        // Nontriviality.
        for v in &learned {
            for c in v.commands() {
                prop_assert!(proposed.contains(&c), "learned unproposed {c}");
            }
        }
        // Consistency: prefix-compatible sequences.
        prop_assert!(
            learned[0].le(&learned[1]) || learned[1].le(&learned[0]),
            "learners diverged: {:?} vs {:?}",
            learned[0],
            learned[1]
        );
        // Liveness: a healed run with a living coordinator learns all.
        let coord_crashed_forever = s.crash_coord.is_some();
        if !coord_crashed_forever || s.policy == Policy::MultiCoordinated {
            let distinct: std::collections::BTreeSet<u32> = proposed.iter().copied().collect();
            prop_assert_eq!(
                learned[0].count(),
                distinct.len(),
                "liveness: learned {:?} of {:?}",
                learned[0],
                distinct
            );
        }
    }
}
