//! Workspace-level integration: the full stack (actor → simnet → core →
//! gbcast → smr) exercised together, plus cross-runtime agreement between
//! the simulator and the threaded runtime.

use mcpaxos_suite::actor::{ProcessId, SimTime};
use mcpaxos_suite::core::{Acceptor, Coordinator, DeployConfig, Learner, Msg, Policy, Proposer};
use mcpaxos_suite::cstruct::{CStruct, CmdSet, CommandHistory};
use mcpaxos_suite::gbcast::checks;
use mcpaxos_suite::simnet::{DelayDist, NetConfig, Sim};
use mcpaxos_suite::smr::{KvCmd, KvStore, Replica, Workload};
use std::sync::Arc;

const CLIENT: ProcessId = ProcessId(9_999);

type H = CommandHistory<KvCmd>;

fn deploy_kv(sim: &mut Sim<Msg<H>>, cfg: &Arc<DeployConfig>) {
    for &p in cfg.roles.proposers() {
        let c = cfg.clone();
        sim.add_process(p, move || Box::new(Proposer::<H>::new(c.clone())));
    }
    for &p in cfg.roles.coordinators() {
        let c = cfg.clone();
        sim.add_process(p, move || Box::new(Coordinator::<H>::new(c.clone(), p)));
    }
    for &p in cfg.roles.acceptors() {
        let c = cfg.clone();
        sim.add_process(p, move || Box::new(Acceptor::<H>::new(c.clone())));
    }
    for &p in cfg.roles.learners() {
        let c = cfg.clone();
        sim.add_process(p, move || Box::new(Replica::<KvStore>::new(c.clone())));
    }
}

/// A full scenario: mixed-conflict KV workload, one coordinator crash,
/// one acceptor crash + recovery, a transient partition — ending in
/// converged replicas and intact generic-broadcast properties.
#[test]
fn kitchen_sink_scenario() {
    for seed in 0..4u64 {
        let cfg = Arc::new(DeployConfig::simple(2, 3, 5, 3, Policy::MultiCoordinated));
        let net = NetConfig::lockstep()
            .with_delay(DelayDist::Uniform(1, 4))
            .with_loss(0.02);
        let mut sim: Sim<Msg<H>> = Sim::new(seed, net);
        deploy_kv(&mut sim, &cfg);
        let mut w0 = Workload::new(seed, 0, 0.3);
        let mut w1 = Workload::new(seed, 1, 0.3);
        let mut all = Vec::new();
        for i in 0..12u64 {
            for (pi, w) in [(0usize, &mut w0), (1usize, &mut w1)] {
                let cmd = w.next_kv(0.8);
                all.push(cmd.clone());
                sim.inject_at(
                    SimTime(100 + 45 * i),
                    cfg.roles.proposers()[pi],
                    CLIENT,
                    Msg::Propose {
                        cmd,
                        acc_quorum: None,
                    },
                );
            }
        }
        // Faults.
        sim.crash_at(SimTime(260), cfg.roles.coordinators()[2]);
        let a0 = cfg.roles.acceptors()[0];
        sim.crash_at(SimTime(340), a0);
        sim.recover_at(SimTime(700), a0);
        sim.partition_at(
            SimTime(420),
            vec![cfg.roles.acceptors()[1]],
            vec![cfg.roles.acceptors()[3], cfg.roles.acceptors()[4]],
        );
        sim.heal_at(SimTime(900));

        sim.run_until(SimTime(30_000));

        let replicas: Vec<&Replica<KvStore>> = cfg
            .roles
            .learners()
            .iter()
            .map(|&l| sim.actor::<Replica<KvStore>>(l).expect("replica"))
            .collect();
        // Liveness: everything applied everywhere.
        for (i, r) in replicas.iter().enumerate() {
            assert_eq!(
                r.applied().len(),
                all.len(),
                "seed {seed}: replica {i} incomplete: {:?}",
                r.applied().len()
            );
        }
        // Agreement: identical stores.
        for r in &replicas[1..] {
            assert_eq!(
                replicas[0].machine().snapshot(),
                r.machine().snapshot(),
                "seed {seed}"
            );
        }
        // Generic broadcast properties on the learned histories.
        let hs: Vec<H> = replicas
            .iter()
            .map(|r| r.learner().learned().clone())
            .collect();
        checks::check_consistency(&hs);
        checks::check_liveness(&hs, &all);
        for h in &hs {
            checks::check_nontriviality(h.as_slice(), &all);
        }
        checks::check_conflicting_order_agreement(replicas[0].applied(), replicas[1].applied());
    }
}

/// The facade re-exports compose: a consensus round driven entirely
/// through `mcpaxos_suite::*` paths.
#[test]
fn facade_quickstart_compiles_and_runs() {
    let cfg = Arc::new(DeployConfig::simple(1, 3, 5, 1, Policy::MultiCoordinated));
    let mut sim: Sim<Msg<CmdSet<u32>>> = Sim::new(1, NetConfig::lockstep());
    for &p in cfg.roles.proposers() {
        let c = cfg.clone();
        sim.add_process(p, move || Box::new(Proposer::new(c.clone())));
    }
    for &p in cfg.roles.coordinators() {
        let c = cfg.clone();
        sim.add_process(p, move || Box::new(Coordinator::new(c.clone(), p)));
    }
    for &p in cfg.roles.acceptors() {
        let c = cfg.clone();
        sim.add_process(p, move || Box::new(Acceptor::new(c.clone())));
    }
    for &p in cfg.roles.learners() {
        let c = cfg.clone();
        sim.add_process(p, move || Box::new(Learner::new(c.clone())));
    }
    sim.inject_at(
        SimTime(100),
        cfg.roles.proposers()[0],
        CLIENT,
        Msg::Propose {
            cmd: 7u32,
            acc_quorum: None,
        },
    );
    sim.run_until(SimTime(400));
    let learner: &Learner<CmdSet<u32>> = sim.actor(cfg.roles.learners()[0]).unwrap();
    assert!(learner.learned().contains(&7));
}

/// Simulator and threaded runtime agree: the same deployment and the same
/// commands produce the same learned set (order-free c-struct).
#[test]
fn sim_and_live_runtime_agree() {
    use mcpaxos_suite::runtime::Cluster;
    use std::time::{Duration, Instant};

    let cfg = Arc::new(DeployConfig::simple(1, 3, 5, 1, Policy::MultiCoordinated));
    let cmds = [3u32, 1, 4, 1, 5]; // dup on purpose

    // Simulator run.
    let mut sim: Sim<Msg<CmdSet<u32>>> = Sim::new(5, NetConfig::lan());
    for &p in cfg.roles.proposers() {
        let c = cfg.clone();
        sim.add_process(p, move || Box::new(Proposer::new(c.clone())));
    }
    for &p in cfg.roles.coordinators() {
        let c = cfg.clone();
        sim.add_process(p, move || Box::new(Coordinator::new(c.clone(), p)));
    }
    for &p in cfg.roles.acceptors() {
        let c = cfg.clone();
        sim.add_process(p, move || Box::new(Acceptor::new(c.clone())));
    }
    for &p in cfg.roles.learners() {
        let c = cfg.clone();
        sim.add_process(p, move || Box::new(Learner::new(c.clone())));
    }
    for (i, &cmd) in cmds.iter().enumerate() {
        sim.inject_at(
            SimTime(100 + 10 * i as u64),
            cfg.roles.proposers()[0],
            CLIENT,
            Msg::Propose {
                cmd,
                acc_quorum: None,
            },
        );
    }
    sim.run_until(SimTime(2_000));
    let sim_learned = sim
        .actor::<Learner<CmdSet<u32>>>(cfg.roles.learners()[0])
        .unwrap()
        .learned()
        .clone();

    // Live run.
    let mut cluster: Cluster<Msg<CmdSet<u32>>> = Cluster::new();
    for &p in cfg.roles.proposers() {
        cluster.spawn(p, Box::new(Proposer::<CmdSet<u32>>::new(cfg.clone())));
    }
    for &p in cfg.roles.coordinators() {
        cluster.spawn(p, Box::new(Coordinator::<CmdSet<u32>>::new(cfg.clone(), p)));
    }
    for &p in cfg.roles.acceptors() {
        cluster.spawn(p, Box::new(Acceptor::<CmdSet<u32>>::new(cfg.clone())));
    }
    for &p in cfg.roles.learners() {
        cluster.spawn(p, Box::new(Learner::<CmdSet<u32>>::new(cfg.clone())));
    }
    for &cmd in &cmds {
        cluster.send(
            cfg.roles.proposers()[0],
            CLIENT,
            Msg::Propose {
                cmd,
                acc_quorum: None,
            },
        );
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        let m = cluster.metrics();
        if m.of(cfg.roles.learners()[0], "learned") >= 4 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let actors = cluster.stop();
    let live_learned = actors[&cfg.roles.learners()[0]]
        .as_any()
        .downcast_ref::<Learner<CmdSet<u32>>>()
        .unwrap()
        .learned()
        .clone();

    assert_eq!(sim_learned, live_learned, "both runtimes learn {{1,3,4,5}}");
    assert_eq!(sim_learned.count(), 4);
}
