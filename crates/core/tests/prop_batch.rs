//! Proptest suite for the batch codec: a batched proposal
//! ([`Msg::ProposeBatch`]) and a batched 2a wave must be byte-for-byte
//! and state-for-state equivalent to the k sequential messages they
//! amortize (the differential oracle, same pattern as `prop_shard`), and
//! torn or duplicated deliveries must fail loudly or apply idempotently
//! — never corrupt the decoded c-struct.

use mcpaxos_actor::wire::{Wire, WireError};
use mcpaxos_core::{value_digest, Msg, Payload, Round};
use mcpaxos_cstruct::{CStruct, CommandHistory, Conflict, ConflictKeys};
use proptest::prelude::*;

/// Keyed test command: ~12% of pairs conflict (same key of 8), so
/// generated batches mix commuting and interfering commands.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct K(u16, u32);

impl Conflict for K {
    fn conflicts(&self, other: &Self) -> bool {
        self.0 == other.0
    }
    fn conflict_keys(&self) -> ConflictKeys {
        ConflictKeys::one(u64::from(self.0))
    }
}

impl Wire for K {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(i: &mut &[u8]) -> Result<Self, WireError> {
        Ok(K(u16::decode(i)?, u32::decode(i)?))
    }
}

type H = CommandHistory<K>;
type M = Msg<H>;

fn cmds(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<K>> {
    prop::collection::vec((0u16..8, any::<u32>()).prop_map(|(k, v)| K(k, v)), len)
}

fn roundtrip(m: &M) -> M {
    let mut buf = Vec::new();
    m.encode(&mut buf);
    let mut input = buf.as_slice();
    let decoded = M::decode(&mut input).expect("well-formed message decodes");
    assert!(input.is_empty(), "decode left trailing bytes");
    decoded
}

fn batch_cmds(m: &M) -> &[K] {
    match m {
        Msg::ProposeBatch { cmds, .. } => cmds,
        other => panic!("expected ProposeBatch, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Differential oracle for the proposer→coordinator leg: one
    /// `ProposeBatch` of k commands decodes to exactly the commands that
    /// k sequential `Propose` messages deliver, in order, and appending
    /// either stream to a history yields the same c-struct.
    #[test]
    fn propose_batch_decodes_to_k_sequential_proposals(batch in cmds(0..40usize)) {
        let batched = roundtrip(&Msg::ProposeBatch { cmds: batch.clone(), acc_quorum: None });

        // The unbatched oracle: each command on its own wire trip.
        let mut oracle_cmds = Vec::new();
        for c in &batch {
            match roundtrip(&Msg::Propose { cmd: c.clone(), acc_quorum: None }) {
                Msg::Propose { cmd, .. } => oracle_cmds.push(cmd),
                other => panic!("expected Propose, got {other:?}"),
            }
        }
        prop_assert_eq!(batch_cmds(&batched), oracle_cmds.as_slice());

        // Receivers process a batch as k appends: same resulting history.
        let mut via_batch = H::bottom();
        via_batch.append_all(batch_cmds(&batched).iter().cloned());
        let mut via_singles = H::bottom();
        for c in &oracle_cmds {
            via_singles.append(c.clone());
        }
        prop_assert_eq!(via_batch, via_singles);
    }

    /// Differential oracle for the coordinator→acceptor leg: a 2a whose
    /// cval grew by `append_all` (one wave of k commands) must carry the
    /// same bytes — and decode to the same suffix — as a 2a grown by k
    /// sequential `append` calls from the same base.
    #[test]
    fn batched_2a_matches_k_sequential_2as(
        base in cmds(0..20usize),
        wave in cmds(1..30usize),
    ) {
        let mut batched = H::bottom();
        batched.append_all(base.iter().cloned());
        let base_len = batched.total_len();
        let mut sequential = batched.clone();

        batched.append_all(wave.iter().cloned());
        for c in &wave {
            sequential.append(c.clone());
        }
        prop_assert_eq!(&batched, &sequential);
        prop_assert_eq!(value_digest(&batched), value_digest(&sequential));

        let round = Round::new(1, 1, 0, 0);
        let mut b_bytes = Vec::new();
        Msg::P2a { round, val: Payload::full(batched.clone()) }.encode(&mut b_bytes);
        let mut s_bytes = Vec::new();
        Msg::P2a { round, val: Payload::full(sequential) }.encode(&mut s_bytes);
        prop_assert_eq!(&b_bytes, &s_bytes, "batched 2a bytes diverge from sequential 2a");

        // The decoded wave suffix matches the sender's (duplicates the
        // membership check absorbed are absent from both sides).
        let decoded = match roundtrip(&Msg::P2a { round, val: Payload::full(batched.clone()) }) {
            Msg::P2a { val, .. } => val.as_full().expect("full payload").as_ref().clone(),
            other => panic!("expected P2a, got {other:?}"),
        };
        prop_assert_eq!(&decoded, &batched);
        prop_assert_eq!(
            decoded.suffix_from(base_len).expect("history has a suffix view"),
            batched.suffix_from(base_len).expect("history has a suffix view")
        );
    }

    /// Torn batch: every strict prefix of an encoded `ProposeBatch` is
    /// rejected with a decode error — never a panic, never a silently
    /// shorter batch.
    #[test]
    fn torn_propose_batch_errors_instead_of_truncating(batch in cmds(1..20usize)) {
        let mut buf = Vec::new();
        let msg: M = Msg::ProposeBatch { cmds: batch, acc_quorum: None };
        msg.encode(&mut buf);
        for cut in 0..buf.len() {
            let mut input = &buf[..cut];
            prop_assert!(
                M::decode(&mut input).is_err(),
                "torn batch (cut at {cut}/{}) decoded successfully",
                buf.len()
            );
        }
    }

    /// Duplicated delivery: decoding the same batched 2a twice and
    /// merging both copies into a learner's value is idempotent (the
    /// lattice join absorbs the duplicate), and a re-appended batch adds
    /// no second membership entry.
    #[test]
    fn duplicated_batch_delivery_is_idempotent(
        base in cmds(0..20usize),
        wave in cmds(1..20usize),
    ) {
        let mut cval = H::bottom();
        cval.append_all(base.iter().cloned());
        cval.append_all(wave.iter().cloned());

        let round = Round::new(1, 1, 0, 0);
        let msg = Msg::P2a { round, val: Payload::full(cval.clone()) };
        let (first, second) = match (roundtrip(&msg), roundtrip(&msg)) {
            (Msg::P2a { val: a, .. }, Msg::P2a { val: b, .. }) => (
                a.as_full().expect("full payload").as_ref().clone(),
                b.as_full().expect("full payload").as_ref().clone(),
            ),
            other => panic!("expected two P2as, got {other:?}"),
        };
        prop_assert_eq!(&first, &second, "re-decode diverged");

        let learned = first.lub(&second).expect("equal values are compatible");
        prop_assert_eq!(&learned, &cval, "duplicate merge changed the value");

        // Re-appending the same wave is absorbed by membership: the
        // history keeps one entry per command.
        let mut dup = cval.clone();
        dup.append_all(wave.iter().cloned());
        prop_assert_eq!(dup.total_len(), cval.total_len(), "duplicate append re-entered");
    }
}
