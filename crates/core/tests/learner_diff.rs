//! Differential test: the learner's *incremental* per-round quorum-glb
//! cache must learn exactly what the seed's enumerate-from-scratch rule
//! learned.
//!
//! The oracle below is the seed implementation verbatim: on every "2b" it
//! re-enumerates every quorum-sized subset of the round's reporters,
//! recomputes each subset's glb from scratch, and folds every glb into the
//! learned value. The production learner updates only the subsets
//! containing the sender and skips unchanged glbs; after every single
//! message the two must agree (poset equality).

use mcpaxos_actor::wire::{Wire, WireError};
use mcpaxos_actor::{
    Actor, Context, MemStore, Metric, ProcessId, SimDuration, SimTime, StableStore, TimerToken,
};
use mcpaxos_core::{DeployConfig, Learner, Msg, Policy, Round, RTYPE_MULTI, RTYPE_SINGLE};
use mcpaxos_cstruct::{glb_all, CStruct, CmdSet, CommandHistory, Conflict, ConflictKeys};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Keyed command for history-valued rounds.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct K(u16, u16);

impl Conflict for K {
    fn conflicts(&self, other: &Self) -> bool {
        self.0 == other.0
    }
    fn conflict_keys(&self) -> ConflictKeys {
        ConflictKeys::one(u64::from(self.0))
    }
}

impl Wire for K {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(K(u16::decode(input)?, u16::decode(input)?))
    }
}

/// Sink context: the test only inspects `learned`.
struct Sink<C: CStruct> {
    store: MemStore,
    _c: std::marker::PhantomData<C>,
}

impl<C: CStruct> Sink<C> {
    fn new() -> Self {
        Sink {
            store: MemStore::new(),
            _c: std::marker::PhantomData,
        }
    }
}

impl<C: CStruct> Context<Msg<C>> for Sink<C> {
    fn me(&self) -> ProcessId {
        ProcessId(9)
    }
    fn now(&self) -> SimTime {
        SimTime::ZERO
    }
    fn send(&mut self, _to: ProcessId, _m: Msg<C>) {}
    fn set_timer(&mut self, _a: SimDuration, _t: TimerToken) {}
    fn cancel_timer(&mut self, _t: TimerToken) {}
    fn storage(&mut self) -> &mut dyn StableStore {
        &mut self.store
    }
    fn metric(&mut self, _m: Metric) {}
    fn random(&mut self) -> u64 {
        0
    }
}

/// All size-`k` subsets of `0..n`, eagerly (tiny n in these tests).
fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    fn rec(start: usize, n: usize, k: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        for i in start..n {
            cur.push(i);
            rec(i + 1, n, k, cur, out);
            cur.pop();
        }
    }
    let mut out = Vec::new();
    if k <= n {
        rec(0, n, k, &mut Vec::new(), &mut out);
    }
    out
}

/// The seed's `try_learn`, from scratch over full clones.
fn oracle_learn<C: CStruct>(learned: &mut C, reports: &BTreeMap<ProcessId, C>, qsize: usize) {
    if reports.len() < qsize {
        return;
    }
    let vals: Vec<&C> = reports.values().collect();
    for idx in combinations(vals.len(), qsize) {
        let g = glb_all(idx.iter().map(|&i| vals[i].clone()));
        *learned = learned
            .lub(&g)
            .expect("oracle: chosen values must be compatible");
    }
}

/// Drives a learner and the oracle with the same randomized "2b" stream
/// (growing values, duplicate deliveries, stale re-deliveries, multiple
/// interleaved rounds) and checks agreement after every message.
fn drive<C, F>(seed: u64, steps: usize, mut value_at: F)
where
    C: CStruct,
    F: FnMut(usize) -> C,
{
    let cfg = Arc::new(DeployConfig::simple(1, 3, 5, 1, Policy::MultiCoordinated));
    let qsize = cfg.quorums.classic_size();
    let mut learner: Learner<C> = Learner::new(cfg);
    let mut ctx = Sink::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let rounds = [
        Round::new(0, 1, 0, RTYPE_MULTI),
        Round::new(0, 2, 1, RTYPE_SINGLE),
    ];
    // Oracle state: learned value + blind per-round report maps.
    let mut oracle_learned = C::bottom();
    let mut oracle_reports: BTreeMap<Round, BTreeMap<ProcessId, C>> = BTreeMap::new();
    // Per (round, acceptor): how much of the round's master sequence the
    // acceptor has reported (grows, occasionally re-sent stale).
    let mut progress: BTreeMap<(usize, u32), usize> = BTreeMap::new();

    for _ in 0..steps {
        let ri = rng.gen_range(0..rounds.len());
        let acc = 4 + rng.gen_range(0..5u32); // acceptors a4..a8
        let entry = progress.entry((ri, acc)).or_insert(0);
        // 20%: duplicate/stale re-delivery of the current snapshot;
        // otherwise grow by 0..3 commands first.
        if rng.gen_range(0..10) >= 2 {
            *entry += rng.gen_range(0..3usize);
        }
        let val = value_at(*entry);

        learner.on_message(
            ProcessId(acc),
            Msg::P2b {
                round: rounds[ri],
                val: Arc::new(val.clone()).into(),
            },
            &mut ctx,
        );
        let reports = oracle_reports.entry(rounds[ri]).or_default();
        reports.insert(ProcessId(acc), val);
        oracle_learn(&mut oracle_learned, reports, qsize);

        assert_eq!(
            learner.learned(),
            &oracle_learned,
            "incremental learner diverged from enumerate-from-scratch oracle"
        );
        assert_eq!(learner.learned().count(), oracle_learned.count());
    }
}

#[test]
fn incremental_matches_oracle_on_sets() {
    // Fully commuting commands: every subset glb is an intersection.
    for seed in 0..6 {
        drive::<CmdSet<u32>, _>(seed, 120, |k| (0..k as u32).collect());
    }
}

#[test]
fn incremental_matches_oracle_on_histories() {
    // Command histories over a master sequence with a mix of conflicting
    // (same-key) and commuting commands; acceptors report prefixes of the
    // master, as accepting quorums do.
    let master: Vec<K> = (0..64u16).map(|i| K(i % 5, i)).collect();
    for seed in 0..6 {
        let m = master.clone();
        drive::<CommandHistory<K>, _>(seed + 100, 120, move |k| {
            m.iter().take(k).cloned().collect()
        });
    }
}

#[test]
fn incremental_matches_oracle_under_heavy_duplication() {
    // Every value re-delivered many times: exercises the unchanged-report
    // fast path against the oracle's blind recomputation.
    let master: Vec<K> = (0..32u16).map(|i| K(i % 3, i)).collect();
    let m = master.clone();
    drive::<CommandHistory<K>, _>(7777, 300, move |k| {
        m.iter().take(k.min(8)).cloned().collect()
    });
}
