//! Crash-recovery soundness over durable WAL stores.
//!
//! Two layers of coverage:
//!
//! 1. **Property tests** — seeded simnet runs with acceptors crashed and
//!    recovered at random points, under both [`Durability`] modes and
//!    both flush disciplines (per-vote sync, group commit). At the crash
//!    the store drops its unflushed buffer; recovery must resume from
//!    exactly the flushed state — the vote never regresses, safety holds
//!    end to end, and a ProvedSafe pick over the final acceptor states is
//!    an upper bound of everything learned.
//!
//! 2. **Corruption-path unit tests** — an acceptor recovering over a
//!    store whose records are corrupt or missing must *not* crash-loop
//!    (the seed behavior was `expect("corrupt vote…")`): it falls back to
//!    the strongest surviving evidence and surfaces the damage through
//!    the `corrupt_records` / `lost_records` metrics.

mod common;

use common::{assert_safety, deploy, learned, propose_at};
use mcpaxos_actor::wire::{from_bytes, to_bytes};
use mcpaxos_actor::{
    Actor, Context, MemStore, Metric, ProcessId, SimDuration, SimTime, StableStore, TimerToken,
    WalStore,
};
use mcpaxos_core::agents::metrics::{CORRUPT_RECORDS, LOST_RECORDS};
use mcpaxos_core::{
    pick, proved_safe, Acceptor, DeployConfig, Durability, Msg, OneB, Policy, Round,
};
use mcpaxos_cstruct::{CStruct, CmdSet};
use mcpaxos_simnet::{DelayDist, NetConfig, Sim};
use proptest::prelude::*;
use std::sync::Arc;

type C = CmdSet<u32>;

const PROPOSED: [u32; 6] = [0, 1, 2, 3, 4, 5];

/// A 1/2/3/2 cluster on WAL storage: buffering stores under group commit,
/// per-vote-flushing stores otherwise (the sound pairings).
fn wal_sim(
    seed: u64,
    durability: Durability,
    group_commit: u64,
) -> (Arc<DeployConfig>, Sim<Msg<C>>) {
    let cfg = Arc::new(
        DeployConfig::simple(1, 2, 3, 2, Policy::MultiCoordinated)
            .with_durability(durability)
            .with_group_commit(SimDuration(group_commit)),
    );
    let net = NetConfig::lockstep().with_delay(DelayDist::Uniform(1, 4));
    let mut sim: Sim<Msg<C>> = Sim::new(seed, net);
    let buffered = group_commit > 0;
    sim.set_storage_factory(move |_| {
        if buffered {
            Box::new(WalStore::new())
        } else {
            Box::new(WalStore::synchronous())
        }
    });
    deploy(&mut sim, &cfg);
    (cfg, sim)
}

/// Decodes the flushed (crash-surviving) vote of acceptor `a`.
fn durable_vote(sim: &Sim<Msg<C>>, a: ProcessId) -> Option<(Round, C)> {
    let bytes = sim.storage(a)?.flushed_read("vote")?;
    Some(from_bytes(bytes).expect("flushed vote record must decode"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crash an acceptor at a random point, recover it later: its vote
    /// resumes from the flushed state and never regresses below it, the
    /// run stays safe, and the final ProvedSafe pick dominates every
    /// learned value.
    #[test]
    fn crash_recovery_never_regresses_votes(
        seed in 0u64..10_000,
        victim in 0usize..3,
        t_crash in 150u64..900,
        dt_recover in 50u64..500,
        naive in any::<bool>(),
        group_commit in prop_oneof![Just(0u64), Just(3u64)],
    ) {
        let durability = if naive { Durability::Naive } else { Durability::Reduced };
        let (cfg, mut sim) = wal_sim(seed, durability, group_commit);
        for (i, &cmd) in PROPOSED.iter().enumerate() {
            propose_at(&mut sim, &cfg, SimTime(100 + 60 * i as u64), 0, cmd);
        }
        let a = cfg.roles.acceptors()[victim];
        sim.crash_at(SimTime(t_crash), a);
        let t_rec = t_crash + dt_recover;
        sim.recover_at(SimTime(t_rec), a);

        // At the crash the store has dropped its unflushed buffer: what
        // `flushed_read` returns now is the durable truth.
        sim.run_until(SimTime(t_crash));
        let snap = durable_vote(&sim, a);

        // Just after recovery the acceptor must have resumed from at
        // least that state (commuting commands: the vote only grows).
        sim.run_until(SimTime(t_rec));
        let acc = sim.actor::<Acceptor<C>>(a).expect("recovered acceptor");
        if let Some((vrnd, vval)) = &snap {
            prop_assert!(
                acc.vrnd() >= *vrnd,
                "vote round regressed: flushed {vrnd:?}, recovered {:?}",
                acc.vrnd()
            );
            prop_assert!(
                vval.le(acc.vval()),
                "vote value regressed: flushed {vval:?}, recovered {:?}",
                acc.vval()
            );
        }

        // Run to quiescence: full safety, and liveness (a majority of
        // acceptors never crashed and the network is lossless).
        sim.run_until(SimTime(12_000));
        assert_safety(&sim, &cfg, &PROPOSED);
        let l: C = learned(&sim, &cfg, 0);
        prop_assert_eq!(l.count(), PROPOSED.len(), "liveness after recovery");

        // Every acceptor's durable vote still decodes, and a ProvedSafe
        // pick over the live reports upper-bounds everything learned.
        let reports: Vec<OneB<C>> = cfg
            .roles
            .acceptors()
            .iter()
            .map(|&p| {
                let acc = sim.actor::<Acceptor<C>>(p).expect("acceptor up");
                prop_assert!(durable_vote(&sim, p).is_some(), "no durable vote at {p}");
                Ok(OneB {
                    from: p,
                    vrnd: acc.vrnd(),
                    vval: Arc::new(acc.vval().clone()),
                })
            })
            .collect::<Result<_, _>>()?;
        let sched = cfg.schedule.clone();
        let safe = pick(proved_safe(&reports, &cfg.quorums, |r| sched.kind(r)));
        for li in 0..cfg.roles.learners().len() {
            let lv: C = learned(&sim, &cfg, li);
            prop_assert!(
                lv.le(&safe),
                "ProvedSafe pick {safe:?} does not dominate learned {lv:?}"
            );
        }
    }

    /// Two acceptors crashing at staggered points (never losing a
    /// majority simultaneously for long) still converge safely.
    #[test]
    fn staggered_double_crash_stays_safe(
        seed in 0u64..10_000,
        t1 in 150u64..500,
        t2 in 600u64..1_000,
        group_commit in prop_oneof![Just(0u64), Just(3u64)],
    ) {
        let (cfg, mut sim) = wal_sim(seed, Durability::Reduced, group_commit);
        for (i, &cmd) in PROPOSED.iter().enumerate() {
            propose_at(&mut sim, &cfg, SimTime(100 + 80 * i as u64), 0, cmd);
        }
        let accs = cfg.roles.acceptors().to_vec();
        sim.crash_at(SimTime(t1), accs[0]);
        sim.recover_at(SimTime(t1 + 120), accs[0]);
        sim.crash_at(SimTime(t2), accs[1]);
        sim.recover_at(SimTime(t2 + 120), accs[1]);
        sim.run_until(SimTime(15_000));
        assert_safety(&sim, &cfg, &PROPOSED);
        let l: C = learned(&sim, &cfg, 0);
        prop_assert_eq!(l.count(), PROPOSED.len(), "liveness after double crash");
    }
}

// ----- corruption-path unit coverage (satellites: no more crash loops) ----

/// Minimal harness context recording metrics, backed by any store.
struct RecCtx {
    store: Box<dyn StableStore>,
    metrics: Vec<Metric>,
}

impl RecCtx {
    fn metric_total(&self, name: &str) -> i64 {
        self.metrics
            .iter()
            .filter(|m| m.name == name)
            .map(|m| m.value)
            .sum()
    }
}

impl Context<Msg<C>> for RecCtx {
    fn me(&self) -> ProcessId {
        ProcessId(4)
    }
    fn now(&self) -> SimTime {
        SimTime::ZERO
    }
    fn send(&mut self, _to: ProcessId, _msg: Msg<C>) {}
    fn set_timer(&mut self, _a: SimDuration, _t: TimerToken) {}
    fn cancel_timer(&mut self, _t: TimerToken) {}
    fn storage(&mut self) -> &mut dyn StableStore {
        self.store.as_mut()
    }
    fn metric(&mut self, m: Metric) {
        self.metrics.push(m);
    }
    fn random(&mut self) -> u64 {
        0
    }
}

fn cluster(durability: Durability) -> Arc<DeployConfig> {
    Arc::new(DeployConfig::simple(1, 3, 5, 1, Policy::MultiCoordinated).with_durability(durability))
}

fn rec_ctx(store: Box<dyn StableStore>) -> RecCtx {
    RecCtx {
        store,
        metrics: Vec::new(),
    }
}

/// Encodes a `(vrnd, vval)` vote record as the acceptor persists it.
fn vote_bytes(vrnd: Round, cmds: &[u32]) -> Vec<u8> {
    let vval: C = cmds.iter().copied().collect();
    to_bytes(&(vrnd, vval))
}

#[test]
fn corrupt_vote_record_recovers_from_bottom() {
    let mut store = MemStore::new();
    store.write("vote", vec![0xFF, 0x13, 0x37]); // garbage
    let mut ctx = rec_ctx(Box::new(store));
    let mut a: Acceptor<C> = Acceptor::new(cluster(Durability::Reduced));
    a.on_recover(&mut ctx); // seed behavior: panicked here
    assert!(a.vval().is_bottom(), "corrupt vote falls back to bottom");
    assert_eq!(a.vrnd(), Round::ZERO);
    assert_eq!(ctx.metric_total(CORRUPT_RECORDS), 1);
}

#[test]
fn corrupt_major_record_falls_back_to_vote_round() {
    let vrnd = Round::new(3, 7, 0, mcpaxos_core::RTYPE_SINGLE);
    let mut store = MemStore::new();
    store.write("vote", vote_bytes(vrnd, &[5]));
    store.write("major", vec![0xEE]); // undecodable MCount
    let mut ctx = rec_ctx(Box::new(store));
    let mut a: Acceptor<C> = Acceptor::new(cluster(Durability::Reduced));
    a.on_recover(&mut ctx);
    assert_eq!(a.vrnd(), vrnd, "vote survives");
    assert_eq!(
        a.rnd().major,
        vrnd.major + 1,
        "recovery resumes one major above the strongest surviving evidence"
    );
    assert_eq!(ctx.metric_total(CORRUPT_RECORDS), 1);
}

#[test]
fn lost_major_record_is_surfaced_not_silently_zeroed() {
    let vrnd = Round::new(2, 4, 0, mcpaxos_core::RTYPE_SINGLE);
    let mut store = MemStore::new();
    store.write("vote", vote_bytes(vrnd, &[9])); // vote flushed, MCount lost
    let mut ctx = rec_ctx(Box::new(store));
    let mut a: Acceptor<C> = Acceptor::new(cluster(Durability::Reduced));
    a.on_recover(&mut ctx);
    assert_eq!(a.rnd().major, vrnd.major + 1, "floor derived from the vote");
    assert_eq!(ctx.metric_total(LOST_RECORDS), 1);
    assert_eq!(ctx.metric_total(CORRUPT_RECORDS), 0);
}

#[test]
fn naive_lost_promise_record_does_not_repromise_from_zero() {
    // The seed's `unwrap_or(Round::ZERO)` re-promised from scratch when
    // the rnd record was missing, letting the acceptor answer "1a"s it
    // had already promised past. Naive mode writes rnd at startup, so a
    // surviving vote without it means the record was lost.
    let vrnd = Round::new(0, 6, 0, mcpaxos_core::RTYPE_SINGLE);
    let mut store = MemStore::new();
    store.write("vote", vote_bytes(vrnd, &[3]));
    let mut ctx = rec_ctx(Box::new(store));
    let mut a: Acceptor<C> = Acceptor::new(cluster(Durability::Naive));
    a.on_recover(&mut ctx);
    assert_eq!(a.rnd(), vrnd, "promise floored at the surviving vote round");
    assert_eq!(ctx.metric_total(LOST_RECORDS), 1);
}

#[test]
fn naive_genuinely_fresh_store_starts_from_zero() {
    let mut ctx = rec_ctx(Box::new(MemStore::new()));
    let mut a: Acceptor<C> = Acceptor::new(cluster(Durability::Naive));
    a.on_recover(&mut ctx);
    assert_eq!(a.rnd(), Round::ZERO, "nothing stored: a true cold start");
    assert_eq!(ctx.metric_total(LOST_RECORDS), 0);
    assert_eq!(ctx.metric_total(CORRUPT_RECORDS), 0);
}

#[test]
fn corrupt_wal_tail_truncates_and_reports_through_recovery() {
    // End to end through a WalStore: persist two votes, corrupt the log
    // tail, recover. The store truncates to the last good record; the
    // acceptor resumes from it and reports the repair.
    let cfg = cluster(Durability::Reduced);
    let mut wal = WalStore::synchronous();
    let r1 = Round::new(0, 1, 0, mcpaxos_core::RTYPE_SINGLE);
    let r2 = Round::new(0, 2, 0, mcpaxos_core::RTYPE_SINGLE);
    wal.write("major", to_bytes(&0u32));
    wal.write("vote", vote_bytes(r1, &[1]));
    wal.write("vote", vote_bytes(r2, &[1, 2]));
    wal.corrupt_tail(4); // clobber the CRC of the last record
    wal.lose_unflushed(); // models re-opening the damaged log
    let mut ctx = rec_ctx(Box::new(wal));
    let mut a: Acceptor<C> = Acceptor::new(cfg);
    a.on_recover(&mut ctx);
    assert_eq!(a.vrnd(), r1, "resumed from the last good vote record");
    assert_eq!(a.vval(), &[1u32].iter().copied().collect::<C>());
    assert!(
        ctx.metric_total(CORRUPT_RECORDS) >= 1,
        "log repair surfaced: {:?}",
        ctx.metrics
    );
}
