//! Shared cluster harness for the core integration tests: deploys a full
//! agent set into a simulator and offers propose/inspect helpers.
//!
//! Each test binary compiles this module independently and uses a
//! different subset of the helpers, so dead-code analysis is silenced.
#![allow(dead_code)]

use mcpaxos_actor::ProcessId;
use mcpaxos_core::{Acceptor, Coordinator, DeployConfig, Learner, Msg, Proposer};
use mcpaxos_cstruct::CStruct;
use mcpaxos_simnet::Sim;
use std::sync::Arc;

/// The pseudo-client process id used as the `from` of injected proposals.
pub const CLIENT: ProcessId = ProcessId(9_999);

/// Deploys every role of `cfg` into `sim`.
pub fn deploy<C: CStruct>(sim: &mut Sim<Msg<C>>, cfg: &Arc<DeployConfig>) {
    for &p in cfg.roles.proposers() {
        let cfg = cfg.clone();
        sim.add_process(p, move || Box::new(Proposer::<C>::new(cfg.clone())));
    }
    for &p in cfg.roles.coordinators() {
        let cfg = cfg.clone();
        sim.add_process(p, move || Box::new(Coordinator::<C>::new(cfg.clone(), p)));
    }
    for &p in cfg.roles.acceptors() {
        let cfg = cfg.clone();
        sim.add_process(p, move || Box::new(Acceptor::<C>::new(cfg.clone())));
    }
    for &p in cfg.roles.learners() {
        let cfg = cfg.clone();
        sim.add_process(p, move || Box::new(Learner::<C>::new(cfg.clone())));
    }
}

/// Injects `cmd` at the `idx`-th proposer at time `at`.
pub fn propose_at<C: CStruct>(
    sim: &mut Sim<Msg<C>>,
    cfg: &Arc<DeployConfig>,
    at: mcpaxos_actor::SimTime,
    idx: usize,
    cmd: C::Cmd,
) {
    let p = cfg.roles.proposers()[idx % cfg.roles.proposers().len()];
    sim.inject_at(
        at,
        p,
        CLIENT,
        Msg::Propose {
            cmd,
            acc_quorum: None,
        },
    );
}

/// The learned c-struct of the `idx`-th learner.
pub fn learned<C: CStruct>(sim: &Sim<Msg<C>>, cfg: &Arc<DeployConfig>, idx: usize) -> C {
    let l = cfg.roles.learners()[idx];
    sim.actor::<Learner<C>>(l)
        .expect("learner exists")
        .learned()
        .clone()
}

/// The `(time, count)` growth history of the `idx`-th learner.
pub fn learn_history<C: CStruct>(
    sim: &Sim<Msg<C>>,
    cfg: &Arc<DeployConfig>,
    idx: usize,
) -> Vec<(mcpaxos_actor::SimTime, usize)> {
    let l = cfg.roles.learners()[idx];
    sim.actor::<Learner<C>>(l)
        .expect("learner exists")
        .history()
        .to_vec()
}

/// Asserts the three safety properties of generalized consensus over the
/// current learner states: nontriviality (every learned command was
/// proposed), stability is enforced by construction (learned only grows
/// through lubs), and consistency (all learned values pairwise
/// compatible).
pub fn assert_safety<C: CStruct>(sim: &Sim<Msg<C>>, cfg: &Arc<DeployConfig>, proposed: &[C::Cmd]) {
    let vals: Vec<C> = (0..cfg.roles.learners().len())
        .map(|i| learned(sim, cfg, i))
        .collect();
    for v in &vals {
        for c in v.commands() {
            assert!(
                proposed.contains(&c),
                "NONTRIVIALITY violated: learned {c:?} was never proposed"
            );
        }
    }
    for (i, a) in vals.iter().enumerate() {
        for b in &vals[i + 1..] {
            assert!(
                a.compatible(b),
                "CONSISTENCY violated: learners diverged: {a:?} vs {b:?}"
            );
        }
    }
}
