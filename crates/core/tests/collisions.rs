//! Collision detection and recovery (§4.2): multicoordinated collisions
//! with conflicting command orders, fast-round collisions, and all three
//! recovery policies.

mod common;

use common::{assert_safety, deploy, learned, propose_at};
use mcpaxos_actor::SimTime;
use mcpaxos_core::{CollisionPolicy, DeployConfig, Msg, Policy};
use mcpaxos_cstruct::{CStruct, CmdSeq, SingleDecree};
use mcpaxos_simnet::{DelayDist, NetConfig, Sim};
use std::sync::Arc;

type Seq = CmdSeq<u32>;
type SD = SingleDecree<u32>;

/// Totally ordered commands through multicoordinated rounds: concurrent
/// proposals reach coordinators in different orders, colliding; recovery
/// via the single-coordinated successor round must converge on one order.
#[test]
fn multicoordinated_collision_recovers_and_orders_commands() {
    let mut collisions_seen = 0;
    for seed in 0..12u64 {
        let cfg = Arc::new(
            DeployConfig::simple(2, 3, 5, 2, Policy::MultiCoordinated)
                .with_collision(CollisionPolicy::Coordinated),
        );
        // Jitter so the two proposals interleave differently per seed.
        let mut sim: Sim<Msg<Seq>> = Sim::new(
            seed,
            NetConfig::lockstep().with_delay(DelayDist::Uniform(1, 4)),
        );
        deploy(&mut sim, &cfg);
        propose_at(&mut sim, &cfg, SimTime(100), 0, 1);
        propose_at(&mut sim, &cfg, SimTime(100), 1, 2);
        sim.run_until(SimTime(4_000));
        let a: Seq = learned(&sim, &cfg, 0);
        let b: Seq = learned(&sim, &cfg, 1);
        assert_eq!(a.count(), 2, "seed {seed}: both commands learned: {a:?}");
        assert!(
            a.le(&b) || b.le(&a),
            "seed {seed}: learners must agree on a total order: {a:?} vs {b:?}"
        );
        assert_safety(&sim, &cfg, &[1, 2]);
        collisions_seen += sim.metrics().total("collision_mc");
    }
    assert!(
        collisions_seen > 0,
        "expected at least one multicoordinated collision across seeds"
    );
}

/// The `NewRound` policy also recovers multicoordinated collisions — via
/// the leader's stall detector — just more slowly.
#[test]
fn multicoordinated_collision_new_round_policy() {
    let cfg = Arc::new(
        DeployConfig::simple(2, 3, 5, 2, Policy::MultiCoordinated)
            .with_collision(CollisionPolicy::NewRound),
    );
    let mut sim: Sim<Msg<Seq>> = Sim::new(
        3,
        NetConfig::lockstep().with_delay(DelayDist::Uniform(1, 4)),
    );
    deploy(&mut sim, &cfg);
    propose_at(&mut sim, &cfg, SimTime(100), 0, 1);
    propose_at(&mut sim, &cfg, SimTime(100), 1, 2);
    sim.run_until(SimTime(6_000));
    let a: Seq = learned(&sim, &cfg, 0);
    assert_eq!(a.count(), 2);
    assert_safety(&sim, &cfg, &[1, 2]);
}

/// Fast-round collision with single-decree consensus: two values race;
/// coordinated recovery (reusing "2b" as "1b") must decide exactly one.
#[test]
fn fast_collision_coordinated_recovery_decides() {
    let mut collided_runs = 0;
    for seed in 0..12u64 {
        let cfg = Arc::new(
            DeployConfig::simple(2, 3, 5, 2, Policy::FastThenClassic)
                .with_collision(CollisionPolicy::Coordinated),
        );
        let mut sim: Sim<Msg<SD>> = Sim::new(
            seed,
            NetConfig::lockstep().with_delay(DelayDist::Uniform(1, 3)),
        );
        deploy(&mut sim, &cfg);
        propose_at(&mut sim, &cfg, SimTime(100), 0, 111);
        propose_at(&mut sim, &cfg, SimTime(100), 1, 222);
        sim.run_until(SimTime(4_000));
        let a: SD = learned(&sim, &cfg, 0);
        let b: SD = learned(&sim, &cfg, 1);
        assert!(a.value().is_some(), "seed {seed}: must decide");
        assert_eq!(a.value(), b.value(), "seed {seed}: learners agree");
        assert_safety(&sim, &cfg, &[111, 222]);
        if sim.metrics().total("collision_fast") > 0 {
            collided_runs += 1;
        }
    }
    assert!(collided_runs > 0, "expected fast collisions across seeds");
}

/// Fast-round collision under the `NewRound` policy: the leader restarts
/// with a full phase 1.
#[test]
fn fast_collision_new_round_recovery_decides() {
    for seed in 0..6u64 {
        let cfg = Arc::new(
            DeployConfig::simple(2, 3, 5, 2, Policy::FastThenClassic)
                .with_collision(CollisionPolicy::NewRound),
        );
        let mut sim: Sim<Msg<SD>> = Sim::new(
            seed,
            NetConfig::lockstep().with_delay(DelayDist::Uniform(1, 3)),
        );
        deploy(&mut sim, &cfg);
        propose_at(&mut sim, &cfg, SimTime(100), 0, 111);
        propose_at(&mut sim, &cfg, SimTime(100), 1, 222);
        sim.run_until(SimTime(6_000));
        let a: SD = learned(&sim, &cfg, 0);
        assert!(a.value().is_some(), "seed {seed}: must decide");
        assert_safety(&sim, &cfg, &[111, 222]);
    }
}

/// Uncoordinated recovery: acceptors gossip "2b", detect the collision
/// themselves and each act as a coordinator quorum of itself for the next
/// fast round (§4.2). On a lockstep network every acceptor sees the same
/// evidence and picks the same value, so one extra step suffices.
#[test]
fn fast_collision_uncoordinated_recovery_decides() {
    let mut recovered_runs = 0;
    for seed in 0..12u64 {
        let cfg = Arc::new(
            DeployConfig::simple(2, 1, 5, 2, Policy::FastForever)
                .with_collision(CollisionPolicy::Uncoordinated),
        );
        cfg.validate().expect("valid");
        let mut sim: Sim<Msg<SD>> = Sim::new(
            seed,
            NetConfig::lockstep().with_delay(DelayDist::Uniform(1, 2)),
        );
        deploy(&mut sim, &cfg);
        propose_at(&mut sim, &cfg, SimTime(100), 0, 111);
        propose_at(&mut sim, &cfg, SimTime(100), 1, 222);
        sim.run_until(SimTime(4_000));
        let a: SD = learned(&sim, &cfg, 0);
        let b: SD = learned(&sim, &cfg, 1);
        // Uncoordinated recovery may itself re-collide (the paper notes
        // this); we only require safety always and liveness when the
        // protocol reports a recovery.
        assert!(a.compatible(&b), "seed {seed}: learners diverged");
        assert_safety(&sim, &cfg, &[111, 222]);
        if sim.metrics().total("uncoordinated_recoveries") > 0 && a.value().is_some() {
            recovered_runs += 1;
        }
    }
    assert!(
        recovered_runs > 0,
        "expected at least one successful uncoordinated recovery"
    );
}

/// Commuting commands never collide in multicoordinated rounds, no matter
/// how messages interleave (the Generalized Consensus payoff, §2.3).
#[test]
fn commuting_commands_never_collide() {
    use mcpaxos_cstruct::CmdSet;
    for seed in 0..8u64 {
        let cfg = Arc::new(DeployConfig::simple(2, 3, 5, 2, Policy::MultiCoordinated));
        let mut sim: Sim<Msg<CmdSet<u32>>> = Sim::new(
            seed,
            NetConfig::lockstep().with_delay(DelayDist::Uniform(1, 5)),
        );
        deploy(&mut sim, &cfg);
        for i in 0..6u32 {
            propose_at(
                &mut sim,
                &cfg,
                SimTime(100 + (i as u64 % 3)),
                i as usize % 2,
                i,
            );
        }
        sim.run_until(SimTime(3_000));
        assert_eq!(sim.metrics().total("collision_mc"), 0, "seed {seed}");
        let l: CmdSet<u32> = learned(&sim, &cfg, 0);
        assert_eq!(l.count(), 6, "seed {seed}: all commands learned");
        assert_safety(&sim, &cfg, &[0, 1, 2, 3, 4, 5]);
    }
}
