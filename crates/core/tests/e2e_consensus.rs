//! End-to-end protocol runs on the simulator: happy paths for all three
//! round flavours, latency-in-steps checks (the paper's headline numbers),
//! and failover behaviour.

mod common;

use common::{assert_safety, deploy, learn_history, learned, propose_at};
use mcpaxos_actor::SimTime;
use mcpaxos_core::{CollisionPolicy, DeployConfig, Msg, Policy};
use mcpaxos_cstruct::{CStruct, CmdSet, SingleDecree};
use mcpaxos_simnet::{NetConfig, Sim};
use std::sync::Arc;

type SD = SingleDecree<u32>;
type Set = CmdSet<u32>;

fn run_happy_path(policy: Policy) -> (Arc<DeployConfig>, Sim<Msg<Set>>) {
    let cfg = Arc::new(DeployConfig::simple(1, 3, 5, 2, policy));
    cfg.validate().expect("valid config");
    let mut sim: Sim<Msg<Set>> = Sim::new(7, NetConfig::lockstep());
    deploy(&mut sim, &cfg);
    // Let the first round establish, then feed commands.
    propose_at(&mut sim, &cfg, SimTime(100), 0, 1);
    propose_at(&mut sim, &cfg, SimTime(120), 0, 2);
    propose_at(&mut sim, &cfg, SimTime(140), 0, 3);
    sim.run_until(SimTime(400));
    (cfg, sim)
}

#[test]
fn multicoordinated_round_learns_all_commands() {
    let (cfg, sim) = run_happy_path(Policy::MultiCoordinated);
    for i in 0..2 {
        let l: Set = learned(&sim, &cfg, i);
        assert_eq!(l.count(), 3, "learner {i} must learn all 3 commands");
    }
    assert_safety(&sim, &cfg, &[1, 2, 3]);
    // No collisions for commuting commands.
    assert_eq!(sim.metrics().total("collision_mc"), 0);
}

#[test]
fn single_coordinated_round_learns_all_commands() {
    let (cfg, sim) = run_happy_path(Policy::SingleCoordinated);
    assert_eq!(learned::<Set>(&sim, &cfg, 0).count(), 3);
    assert_safety(&sim, &cfg, &[1, 2, 3]);
}

#[test]
fn fast_round_learns_all_commands() {
    let (cfg, sim) = run_happy_path(Policy::FastThenClassic);
    assert_eq!(learned::<Set>(&sim, &cfg, 0).count(), 3);
    assert_safety(&sim, &cfg, &[1, 2, 3]);
}

/// The paper's latency claim (§1, §3.1): classic and multicoordinated
/// rounds learn in 3 communication steps, fast rounds in 2. With unit
/// link delays, steps = elapsed ticks between the proposal leaving the
/// proposer and the learner learning.
#[test]
fn latency_in_steps_matches_paper() {
    let latency = |policy: Policy| -> u64 {
        let cfg = Arc::new(DeployConfig::simple(1, 3, 5, 1, policy));
        let mut sim: Sim<Msg<Set>> = Sim::new(7, NetConfig::lockstep());
        deploy(&mut sim, &cfg);
        let t0 = SimTime(100);
        propose_at(&mut sim, &cfg, t0, 0, 42);
        sim.run_until(SimTime(300));
        let hist = learn_history::<Set>(&sim, &cfg, 0);
        let t_learn = hist
            .iter()
            .find(|(_, n)| *n >= 1)
            .expect("command learned")
            .0;
        // The proposal is *delivered* to the proposer at t0; it forwards
        // within the same tick, so the first network hop lands at t0+1.
        t_learn.since(t0).ticks()
    };
    assert_eq!(
        latency(Policy::SingleCoordinated),
        3,
        "classic = 3 steps (propose → 2a → 2b)"
    );
    assert_eq!(
        latency(Policy::MultiCoordinated),
        3,
        "multicoordinated = same 3 steps as classic"
    );
    assert_eq!(
        latency(Policy::FastThenClassic),
        2,
        "fast = 2 steps (propose → 2b)"
    );
}

/// Consensus instantiation (§3.1): with `SingleDecree`, concurrent
/// proposals to a multicoordinated round are a collision; exactly one
/// value must be learned by everyone once recovery runs.
#[test]
fn consensus_decides_exactly_one_value_under_contention() {
    for seed in 0..10u64 {
        let cfg = Arc::new(
            DeployConfig::simple(2, 3, 5, 2, Policy::MultiCoordinated)
                .with_collision(CollisionPolicy::Coordinated),
        );
        let mut sim: Sim<Msg<SD>> = Sim::new(seed, NetConfig::lan());
        deploy(&mut sim, &cfg);
        // Two proposers race different values.
        propose_at(&mut sim, &cfg, SimTime(100), 0, 111);
        propose_at(&mut sim, &cfg, SimTime(100), 1, 222);
        sim.run_until(SimTime(2_000));
        let a: SD = learned(&sim, &cfg, 0);
        let b: SD = learned(&sim, &cfg, 1);
        assert!(
            a.value().is_some(),
            "seed {seed}: consensus must terminate (learner 0 learned nothing)"
        );
        assert!(a.compatible(&b), "seed {seed}: learners disagree");
        // Both learned: must be the same value (consistency).
        if let (Some(x), Some(y)) = (a.value(), b.value()) {
            assert_eq!(x, y, "seed {seed}");
        }
        assert_safety(&sim, &cfg, &[111, 222]);
    }
}

/// §4.1 availability: in a multicoordinated round the crash of one
/// coordinator does not interrupt progress — no new round is started.
#[test]
fn multicoordinated_survives_coordinator_crash_without_round_change() {
    let cfg = Arc::new(DeployConfig::simple(1, 3, 5, 1, Policy::MultiCoordinated));
    let mut sim: Sim<Msg<Set>> = Sim::new(7, NetConfig::lockstep());
    deploy(&mut sim, &cfg);
    propose_at(&mut sim, &cfg, SimTime(100), 0, 1);
    sim.run_until(SimTime(150));
    assert_eq!(learned::<Set>(&sim, &cfg, 0).count(), 1);
    let rounds_before = sim.metrics().total("rounds_started");
    // Crash a NON-leader coordinator (the leader is the lowest id, p1).
    let victim = cfg.roles.coordinators()[2];
    sim.crash_at(SimTime(160), victim);
    propose_at(&mut sim, &cfg, SimTime(200), 0, 2);
    propose_at(&mut sim, &cfg, SimTime(220), 0, 3);
    sim.run_until(SimTime(400));
    assert_eq!(learned::<Set>(&sim, &cfg, 0).count(), 3);
    assert_eq!(
        sim.metrics().total("rounds_started"),
        rounds_before,
        "coordinator crash must not trigger a round change"
    );
    assert_safety(&sim, &cfg, &[1, 2, 3]);
}

/// Crashing the *leader* of a multicoordinated round also leaves the
/// round usable (any coordinator quorum of the survivors works).
#[test]
fn multicoordinated_survives_leader_crash_too() {
    let cfg = Arc::new(DeployConfig::simple(1, 3, 5, 1, Policy::MultiCoordinated));
    let mut sim: Sim<Msg<Set>> = Sim::new(7, NetConfig::lockstep());
    deploy(&mut sim, &cfg);
    propose_at(&mut sim, &cfg, SimTime(100), 0, 1);
    sim.run_until(SimTime(150));
    let leader = cfg.roles.coordinators()[0];
    sim.crash_at(SimTime(160), leader);
    propose_at(&mut sim, &cfg, SimTime(200), 0, 2);
    sim.run_until(SimTime(260));
    // Learned through {c2, c3}, still round 1: quorum of 2-of-3 remains.
    assert_eq!(learned::<Set>(&sim, &cfg, 0).count(), 2);
    assert_safety(&sim, &cfg, &[1, 2]);
}

/// In a single-coordinated round the leader crash stalls the system until
/// leader election plus a new round's phase 1 complete (§4.1) — progress
/// resumes, but only after a visible gap.
#[test]
fn single_coordinated_leader_crash_stalls_then_recovers() {
    let cfg = Arc::new(DeployConfig::simple(1, 3, 5, 1, Policy::SingleCoordinated));
    let mut sim: Sim<Msg<Set>> = Sim::new(7, NetConfig::lockstep());
    deploy(&mut sim, &cfg);
    propose_at(&mut sim, &cfg, SimTime(100), 0, 1);
    sim.run_until(SimTime(150));
    assert_eq!(learned::<Set>(&sim, &cfg, 0).count(), 1);
    let leader = cfg.roles.coordinators()[0];
    sim.crash_at(SimTime(160), leader);
    propose_at(&mut sim, &cfg, SimTime(200), 0, 2);
    // Shortly after: nothing (the round's only coordinator is dead).
    sim.run_until(SimTime(260));
    assert_eq!(
        learned::<Set>(&sim, &cfg, 0).count(),
        1,
        "single-coordinated round must stall while leaderless"
    );
    // Eventually: c2 times out c1, starts a round, command goes through.
    sim.run_until(SimTime(2_000));
    assert_eq!(learned::<Set>(&sim, &cfg, 0).count(), 2);
    assert!(sim.metrics().total("rounds_started") >= 2);
    assert_safety(&sim, &cfg, &[1, 2]);
}

/// Acceptor crash-recovery: a minority of acceptors crash and recover;
/// safety holds throughout and new commands are still learned.
#[test]
fn acceptor_crash_recovery_preserves_safety_and_progress() {
    for policy in [Policy::MultiCoordinated, Policy::SingleCoordinated] {
        let cfg = Arc::new(DeployConfig::simple(1, 3, 5, 2, policy));
        let mut sim: Sim<Msg<Set>> = Sim::new(11, NetConfig::lan());
        deploy(&mut sim, &cfg);
        propose_at(&mut sim, &cfg, SimTime(100), 0, 1);
        sim.run_until(SimTime(200));
        let a0 = cfg.roles.acceptors()[0];
        let a1 = cfg.roles.acceptors()[1];
        sim.crash_at(SimTime(210), a0);
        sim.crash_at(SimTime(215), a1);
        propose_at(&mut sim, &cfg, SimTime(250), 0, 2);
        sim.recover_at(SimTime(400), a0);
        sim.recover_at(SimTime(420), a1);
        propose_at(&mut sim, &cfg, SimTime(600), 0, 3);
        sim.run_until(SimTime(3_000));
        let l: Set = learned(&sim, &cfg, 0);
        assert_eq!(l.count(), 3, "{policy:?}: all commands learned");
        assert_safety(&sim, &cfg, &[1, 2, 3]);
    }
}

/// Message loss: with 5% loss and retransmission, everything is still
/// learned and safety holds (fair-lossy liveness, §4.3).
#[test]
fn lossy_network_still_converges() {
    for seed in [1u64, 2, 3] {
        let cfg = Arc::new(DeployConfig::simple(1, 3, 5, 2, Policy::MultiCoordinated));
        let mut sim: Sim<Msg<Set>> =
            Sim::new(seed, NetConfig::lan().with_loss(0.05).with_duplicate(0.02));
        deploy(&mut sim, &cfg);
        for (i, t) in [100u64, 150, 200, 250, 300].iter().enumerate() {
            propose_at(&mut sim, &cfg, SimTime(*t), 0, i as u32);
        }
        sim.run_until(SimTime(5_000));
        let l: Set = learned(&sim, &cfg, 0);
        assert_eq!(l.count(), 5, "seed {seed}: all commands learned");
        assert_safety(&sim, &cfg, &[0, 1, 2, 3, 4]);
    }
}
