//! Depth-bounded exhaustive interleaving check of crash-recovery
//! soundness (small-scope model checking).
//!
//! A 1-proposer / 2-coordinator / 3-acceptor / 2-learner cluster over
//! durable WAL stores is steered into an active protocol state by a
//! deterministic scripted prefix (one command decided, a second one in
//! flight), and then **every** schedule of deliveries, timer firings and
//! one acceptor crash/recover is explored up to a depth bound. At every
//! reached state the safety invariants below must hold; a violation
//! prints the exact reproducing schedule.
//!
//! The invariants checked at every explored state:
//!
//! * **Consistency** — learner values pairwise compatible.
//! * **Stability** — per path, no learner's value ever shrinks.
//! * **Nontriviality** — learned commands were proposed.
//! * **Durable quorum** — every learned command is contained in the
//!   *flushed* vote of at least a classic quorum of acceptor stores: the
//!   property the group-commit deferral of "2b" exists to protect (a 2b
//!   announcing an unflushed vote lets a learner learn a command a crash
//!   then erases from every disk).
//! * **Vote records decode** — every persisted vote parses back.
//! * **Promise dominance** — live acceptors have `rnd ≥ vrnd`.
//! * **ProvedSafe compatibility** — with all acceptors up, the value a
//!   recovering coordinator would pick from their binding reports is
//!   compatible with everything already learned (Definition 1, §3.3.2).

use mcpaxos_actor::wire::from_bytes;
use mcpaxos_actor::{ProcessId, SimDuration, WalStore};
use mcpaxos_core::agents::TOK_TICK;
use mcpaxos_core::{
    pick, proved_safe, Acceptor, Coordinator, DeployConfig, Durability, Learner, Msg, OneB, Policy,
    Proposer, Round, Timing,
};
use mcpaxos_cstruct::{CStruct, CmdSeq};
use mcpaxos_simnet::{explore, Choice, ExploreConfig, ExploreNet};
use std::collections::BTreeMap;
use std::sync::Arc;

type C = CmdSeq<u32>;

/// Pseudo-client id for injected proposals.
const CLIENT: ProcessId = ProcessId(9_999);
/// Commands the scenario proposes: 1 decided in the prefix, 2 in flight.
const PROPOSED: [u32; 2] = [1, 2];

fn cluster(durability: Durability, group_commit: u64) -> Arc<DeployConfig> {
    // Resend timers off: they re-arm forever, which only inflates the
    // choice tree (retransmission liveness is the seeded sims' job).
    let timing = Timing {
        proposer_resend: SimDuration(0),
        acceptor_resend: SimDuration(0),
        ..Timing::default()
    };
    Arc::new(
        DeployConfig::simple(1, 2, 3, 2, Policy::MultiCoordinated)
            .with_durability(durability)
            .with_timing(timing)
            .with_group_commit(SimDuration(group_commit)),
    )
}

/// Deploys the cluster over WAL stores and scripts the deterministic
/// prefix: leader tick starts the round, command 1 flows to a decision
/// (or to buffered votes awaiting a flush, under group commit), command 2
/// is left in flight for the explorer to schedule.
fn prime(net: &mut ExploreNet<Msg<C>>, cfg: &Arc<DeployConfig>) {
    // Group commit pairs with a buffering store; per-vote flushing is the
    // synchronous baseline. Mixing them up would either charge nothing to
    // disk or defer 2bs that are already durable.
    let buffered = cfg.group_commit.ticks() > 0;
    net.set_storage_factory(move |_| {
        if buffered {
            Box::new(WalStore::new())
        } else {
            Box::new(WalStore::synchronous())
        }
    });
    for &p in cfg.roles.proposers() {
        let cfg = cfg.clone();
        net.add_process(p, move || Box::new(Proposer::<C>::new(cfg.clone())));
    }
    for &p in cfg.roles.coordinators() {
        let cfg = cfg.clone();
        net.add_process(p, move || Box::new(Coordinator::<C>::new(cfg.clone(), p)));
    }
    for &p in cfg.roles.acceptors() {
        let cfg = cfg.clone();
        net.add_process(p, move || Box::new(Acceptor::<C>::new(cfg.clone())));
    }
    for &p in cfg.roles.learners() {
        let cfg = cfg.clone();
        net.add_process(p, move || Box::new(Learner::<C>::new(cfg.clone())));
    }
    let leader = cfg.roles.coordinators()[0];
    net.apply(&Choice::Fire(leader, TOK_TICK));
    drain(net);
    inject_propose(net, cfg, 1);
    drain(net);
    inject_propose(net, cfg, 2);
}

fn inject_propose(net: &mut ExploreNet<Msg<C>>, cfg: &Arc<DeployConfig>, cmd: u32) {
    net.inject(
        cfg.roles.proposers()[0],
        CLIENT,
        Msg::Propose {
            cmd,
            acc_quorum: None,
        },
    );
}

/// FIFO-delivers every in-flight message until the network quiesces.
/// Deterministic, so replays reach the same state every time.
fn drain(net: &mut ExploreNet<Msg<C>>) {
    let mut steps = 0u32;
    while !net.pending().is_empty() {
        net.apply(&Choice::Deliver(0));
        steps += 1;
        assert!(steps < 10_000, "scripted prefix did not quiesce");
    }
}

/// Per-path accumulator: each learner's highest observed command count.
type Grown = BTreeMap<ProcessId, usize>;

fn check(
    net: &ExploreNet<Msg<C>>,
    cfg: &Arc<DeployConfig>,
    grown: &mut Grown,
) -> Result<(), String> {
    // Learners: nontriviality, per-path stability, pairwise consistency.
    let mut vals: Vec<C> = Vec::new();
    for &l in cfg.roles.learners() {
        let v = net
            .actor::<Learner<C>>(l)
            .expect("learners never crash here")
            .learned()
            .clone();
        for c in v.commands() {
            if !PROPOSED.contains(&c) {
                return Err(format!("learner {l} learned unproposed command {c}"));
            }
        }
        let n = v.count();
        let seen = grown.entry(l).or_insert(0);
        if n < *seen {
            return Err(format!("learner {l} shrank: {n} < {seen}"));
        }
        *seen = n;
        vals.push(v);
    }
    for (i, a) in vals.iter().enumerate() {
        for b in &vals[i + 1..] {
            if !a.compatible(b) {
                return Err(format!("learners diverged: {a:?} vs {b:?}"));
            }
        }
    }

    // Acceptors: persisted votes decode; live promises dominate votes;
    // the flushed (crash-surviving) votes witness every learned command.
    let quorum = cfg.quorums.classic_size();
    let mut flushed: Vec<C> = Vec::new();
    for &p in cfg.roles.acceptors() {
        let st = net.storage(p).expect("acceptor has storage");
        if let Some(bytes) = st.read("vote") {
            let (vrnd, _vval): (Round, C) = from_bytes(bytes)
                .map_err(|e| format!("acceptor {p} persisted vote undecodable: {e:?}"))?;
            if let Some(a) = net.actor::<Acceptor<C>>(p) {
                if vrnd > a.vrnd() {
                    return Err(format!(
                        "acceptor {p} persisted round {vrnd:?} ahead of live {:?}",
                        a.vrnd()
                    ));
                }
            }
        }
        if let Some(bytes) = st.flushed_read("vote") {
            let (_vrnd, vval): (Round, C) = from_bytes(bytes)
                .map_err(|e| format!("acceptor {p} flushed vote undecodable: {e:?}"))?;
            flushed.push(vval);
        }
        if let Some(a) = net.actor::<Acceptor<C>>(p) {
            if a.rnd() < a.vrnd() {
                return Err(format!(
                    "acceptor {p}: rnd {:?} below vrnd {:?}",
                    a.rnd(),
                    a.vrnd()
                ));
            }
        }
    }
    for v in &vals {
        for c in v.commands() {
            let witnesses = flushed.iter().filter(|d| d.contains(&c)).count();
            if witnesses < quorum {
                return Err(format!(
                    "learned command {c} has {witnesses} durable witnesses (need {quorum}): \
                     a crash could erase a learned command"
                ));
            }
        }
    }

    // ProvedSafe cross-check: with every acceptor up, the value picked
    // from their binding reports must extend everything learned.
    let reports: Vec<OneB<C>> = cfg
        .roles
        .acceptors()
        .iter()
        .filter_map(|&p| {
            let a = net.actor::<Acceptor<C>>(p)?;
            Some(OneB {
                from: p,
                vrnd: a.vrnd(),
                vval: Arc::new(a.vval().clone()),
            })
        })
        .collect();
    if reports.len() == cfg.roles.acceptors().len() {
        let sched = cfg.schedule.clone();
        let safe = pick(proved_safe(&reports, &cfg.quorums, |r| sched.kind(r)));
        for v in &vals {
            if !v.compatible(&safe) {
                return Err(format!(
                    "ProvedSafe pick {safe:?} incompatible with learned {v:?}"
                ));
            }
        }
    }
    Ok(())
}

fn run(durability: Durability, group_commit: u64, depth: usize) -> mcpaxos_simnet::ExploreStats {
    let cfg = cluster(durability, group_commit);
    let crash_target = cfg.roles.acceptors()[0];
    let ecfg = ExploreConfig {
        max_depth: depth,
        max_crashes: 1,
        max_timer_fires: 2,
        crash_candidates: vec![crash_target],
        ..ExploreConfig::default()
    };
    let build_cfg = cfg.clone();
    let stats = explore(
        &ecfg,
        move |net: &mut ExploreNet<Msg<C>>| prime(net, &build_cfg),
        move |net: &ExploreNet<Msg<C>>, grown: &mut Grown| check(net, &cfg, grown),
    )
    .unwrap_or_else(|v| panic!("{v}"));
    assert!(!stats.truncated, "exploration hit max_paths: {stats:?}");
    assert!(stats.paths > 1, "degenerate exploration: {stats:?}");
    stats
}

/// Failure-detector churn invariants, checked on top of [`check`] at
/// every explored state:
///
/// * **No suspect leads** — no up coordinator's leader view points at a
///   coordinator it currently suspects.
/// * **No leaderless livelock** — a coordinator suspecting every peer
///   must consider *itself* leader (suspicion demotes, it never leaves
///   the cluster without any leader candidate).
fn check_churn(
    net: &ExploreNet<Msg<C>>,
    cfg: &Arc<DeployConfig>,
    grown: &mut Grown,
) -> Result<(), String> {
    check(net, cfg, grown)?;
    let now = net.now();
    let coords = cfg.roles.coordinators();
    for &p in coords {
        let c = match net.actor::<Coordinator<C>>(p) {
            Some(c) => c,
            None => continue, // down: no view to check
        };
        let lv = c.leader_view(now);
        let suspects = c.suspects();
        if suspects.contains(&lv) {
            return Err(format!("coordinator {p} follows a suspected leader {lv}"));
        }
        if suspects.len() == coords.len() - 1 && lv != p {
            return Err(format!(
                "coordinator {p} suspects every peer yet defers to {lv}: \
                 a fully-suspicious coordinator must lead itself"
            ));
        }
    }
    Ok(())
}

#[test]
fn exhaustive_coordinator_crash_during_round_change() {
    // Coordinator churn scenario: the standard prefix runs to quiescence,
    // then an acceptor nack forces the leader into a round change whose
    // "1a"s are left in flight. The explorer may crash/recover the leader
    // at any point of the change while the failure detector (suspect
    // after 5 ticks of silence — far below the 160-tick leader timeout)
    // drives the surviving coordinator's suspicion and takeover.
    let timing = Timing {
        proposer_resend: SimDuration(0),
        acceptor_resend: SimDuration(0),
        ..Timing::default()
    }
    .with_failure_detector(SimDuration(5));
    let cfg = Arc::new(
        DeployConfig::simple(1, 2, 3, 2, Policy::MultiCoordinated)
            .with_durability(Durability::Reduced)
            .with_timing(timing),
    );
    let leader = cfg.roles.coordinators()[0];
    let ecfg = ExploreConfig {
        max_depth: 5,
        max_crashes: 1,
        max_timer_fires: 2,
        crash_candidates: vec![leader],
        ..ExploreConfig::default()
    };
    let build_cfg = cfg.clone();
    let stats = explore(
        &ecfg,
        move |net: &mut ExploreNet<Msg<C>>| {
            prime(net, &build_cfg);
            drain(net);
            // A nack from the first acceptor carrying a higher round
            // (the second coordinator's initial) preempts the leader…
            let heard = build_cfg.schedule.initial(1, 0);
            net.inject(
                leader,
                build_cfg.roles.acceptors()[0],
                Msg::RoundTooLow { heard },
            );
            // …and delivering it starts the round change: the new "1a"
            // broadcast is left in flight for the explorer to schedule.
            net.apply(&Choice::Deliver(0));
            assert!(
                !net.pending().is_empty(),
                "the round change must leave messages in flight"
            );
        },
        move |net: &ExploreNet<Msg<C>>, grown: &mut Grown| check_churn(net, &cfg, grown),
    )
    .unwrap_or_else(|v| panic!("{v}"));
    assert!(!stats.truncated, "exploration hit max_paths: {stats:?}");
    assert!(stats.paths > 1, "degenerate exploration: {stats:?}");
    println!("coordinator churn: {stats:?}");
}

#[test]
fn exhaustive_reduced_group_commit() {
    // The headline scenario: Reduced durability (§4.4) + group commit —
    // votes buffer, "2b"s defer to the flush tick, a crash can land
    // between them, and the recovery epoch bump must still dominate.
    let stats = run(Durability::Reduced, 3, 5);
    println!("reduced+gc: {stats:?}");
}

#[test]
fn exhaustive_reduced_per_vote_flush() {
    // Per-vote flushing (the E7 baseline): every write is immediately
    // durable, so the durable-quorum invariant must hold trivially at
    // every depth.
    let stats = run(Durability::Reduced, 0, 5);
    println!("reduced+sync: {stats:?}");
}

#[test]
fn exhaustive_naive_group_commit() {
    // Naive durability persists `rnd` on every join: more buffered
    // records in flight around a crash, same invariants.
    let stats = run(Durability::Naive, 3, 5);
    println!("naive+gc: {stats:?}");
}

#[test]
#[ignore = "deeper bound: ~a minute; run with --ignored"]
fn exhaustive_reduced_group_commit_deep() {
    // Depth 6 is the deepest bound that stays under the path cap with
    // this scenario's branching factor (depth 7 exceeds 2M paths).
    let stats = run(Durability::Reduced, 3, 6);
    println!("reduced+gc deep: {stats:?}");
}
