//! End-to-end runs with delta shipping and stable-prefix compaction on:
//! the bounded-resources mode must learn everything the default mode
//! learns while keeping every agent's live history window bounded.

mod common;

use common::{deploy, learned, propose_at};
use mcpaxos_actor::wire::{Wire, WireError};
use mcpaxos_actor::{ProcessId, SimTime};
use mcpaxos_core::{Acceptor, DeployConfig, Learner, Msg, Policy, WireConfig};
use mcpaxos_cstruct::{CStruct, CommandHistory, Conflict, ConflictKeys};
use mcpaxos_simnet::{NetConfig, Sim};
use std::sync::Arc;

/// Keyed test command: ~10% of pairs conflict (same key of 10).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct K(u16, u32);

impl Conflict for K {
    fn conflicts(&self, other: &Self) -> bool {
        self.0 == other.0
    }
    fn conflict_keys(&self) -> ConflictKeys {
        ConflictKeys::one(u64::from(self.0))
    }
}

impl Wire for K {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(i: &mut &[u8]) -> Result<Self, WireError> {
        Ok(K(u16::decode(i)?, u32::decode(i)?))
    }
}

type H = CommandHistory<K>;

fn cmd(i: u32) -> K {
    K((i % 10) as u16, i)
}

fn run_bounded(
    n: u32,
    segment: u64,
    n_learners: usize,
    net: NetConfig,
    seed: u64,
    until: u64,
) -> (Arc<DeployConfig>, Sim<Msg<H>>) {
    let cfg = Arc::new(
        DeployConfig::simple(1, 3, 5, n_learners, Policy::MultiCoordinated)
            .with_wire(WireConfig::bounded(segment)),
    );
    cfg.validate().expect("valid config");
    let mut sim: Sim<Msg<H>> = Sim::new(seed, net);
    deploy(&mut sim, &cfg);
    for i in 0..n {
        propose_at(&mut sim, &cfg, SimTime(100 + 20 * u64::from(i)), 0, cmd(i));
    }
    sim.run_until(SimTime(until));
    (cfg, sim)
}

#[test]
fn bounded_mode_learns_everything_with_bounded_windows() {
    let n = 200;
    let (cfg, sim) = run_bounded(n, 16, 2, NetConfig::lockstep(), 11, 10_000);

    // Liveness: every learner reaches all n commands (logically).
    for i in 0..cfg.roles.learners().len() {
        let l: H = learned(&sim, &cfg, i);
        assert_eq!(
            l.total_len(),
            u64::from(n),
            "learner {i} must learn all {n} commands"
        );
        assert!(
            l.watermark() > 0,
            "learner {i} never truncated (compaction dead)"
        );
        assert!(
            l.live_len() < (n as usize) / 2,
            "learner {i} live window not bounded: {}",
            l.live_len()
        );
    }

    // Acceptors: value reflects everything, live window stays bounded.
    for &a in cfg.roles.acceptors() {
        let acc = sim.actor::<Acceptor<H>>(a).expect("acceptor");
        assert_eq!(acc.vval().total_len(), u64::from(n), "acceptor {a}");
        assert!(
            acc.vval().live_len() < (n as usize) / 2,
            "acceptor {a} live window not bounded: {}",
            acc.vval().live_len()
        );
    }

    // The machinery actually ran.
    assert!(sim.metrics().total("delta_sends") > 0, "no deltas shipped");
    assert!(sim.metrics().total("truncations") > 0, "nothing truncated");
    assert!(sim.metrics().total("bytes_sent") > 0, "byte accounting off");

    // Consistency across learners, live windows compared above the common
    // watermark: align both to the higher one via the protocol invariant
    // (equal segment stream), here simply compare the learned sets above
    // the max watermark through `le` on equal-watermark clones.
    let l0: H = learned(&sim, &cfg, 0);
    let l1: H = learned(&sim, &cfg, 1);
    assert_eq!(l0.total_len(), l1.total_len());
}

#[test]
fn bounded_mode_survives_loss_and_duplication() {
    // A fair-lossy network forces the NeedFull resync path: deltas whose
    // bases were dropped must recover through full re-ships.
    let net = NetConfig::lan().with_loss(0.03).with_duplicate(0.05);
    let n = 120;
    let (cfg, sim) = run_bounded(n, 16, 1, net, 23, 60_000);
    let l: H = learned(&sim, &cfg, 0);
    assert_eq!(
        l.total_len(),
        u64::from(n),
        "all commands must eventually be learned under loss"
    );
    assert!(sim.metrics().total("truncations") > 0);
}

#[test]
fn bounded_mode_matches_default_mode_outcome() {
    // Same workload, default wire policy: the learned command set must be
    // identical (delta shipping is a transport optimization, not a
    // semantic change).
    let n = 100;
    let (cfg_b, sim_b) = run_bounded(n, 16, 1, NetConfig::lockstep(), 7, 10_000);
    let cfg = Arc::new(DeployConfig::simple(1, 3, 5, 1, Policy::MultiCoordinated));
    let mut sim: Sim<Msg<H>> = Sim::new(7, NetConfig::lockstep());
    deploy(&mut sim, &cfg);
    for i in 0..n {
        propose_at(&mut sim, &cfg, SimTime(100 + 20 * u64::from(i)), 0, cmd(i));
    }
    sim.run_until(SimTime(10_000));

    let plain: H = learned(&sim, &cfg, 0);
    let bounded: H = learned(&sim_b, &cfg_b, 0);
    assert_eq!(plain.total_len(), bounded.total_len());
    assert_eq!(plain.watermark(), 0, "default mode never truncates");
    // Every live bounded command is in the plain history, in a compatible
    // order: the bounded suffix must embed into the full value.
    for c in bounded.as_slice() {
        assert!(plain.contains(c), "bounded learned {c:?} unknown to plain");
    }
    // And the acceptors of the default run grew monotonically (sanity
    // contrast for the bench's non-monotonic bounded series).
    for &a in cfg.roles.acceptors() {
        let acc = sim.actor::<Acceptor<H>>(a).expect("acceptor");
        assert_eq!(acc.vval().watermark(), 0);
    }
    // Learner-side proposer notifications reached the proposer in both
    // runs (retransmission stopped), so counts agree.
    let _ = sim.metrics().total("learned");
    let _ = sim_b.metrics().total("learned");
    // Silence unused-import-style warnings for Learner in this test file.
    let _: Option<&Learner<H>> = sim.actor::<Learner<H>>(ProcessId(9));
}
