//! Randomized chaos sweeps: many seeds, jittery lossy networks, crashes,
//! recoveries and partitions. Safety (nontriviality + consistency) must
//! hold in every run; liveness is asserted for runs that end with a long
//! quiet, fully-healed tail.

mod common;

use common::{assert_safety, deploy, learned, propose_at, CLIENT};
use mcpaxos_actor::{ProcessId, SimTime};
use mcpaxos_core::{CollisionPolicy, DeployConfig, Msg, Policy};
use mcpaxos_cstruct::{CStruct, CmdSeq, CmdSet, SingleDecree};
use mcpaxos_simnet::{DelayDist, NetConfig, Sim};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Drives one chaotic scenario; returns the sim for inspection.
fn chaos_run<C: CStruct<Cmd = u32>>(
    seed: u64,
    policy: Policy,
    collision: CollisionPolicy,
    n_cmds: u32,
) -> (Arc<DeployConfig>, Sim<Msg<C>>) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
    let cfg = Arc::new(DeployConfig::simple(2, 3, 5, 2, policy).with_collision(collision));
    let net = NetConfig::lockstep()
        .with_delay(DelayDist::Uniform(1, rng.gen_range(2..8)))
        .with_loss(rng.gen_range(0.0..0.08))
        .with_duplicate(rng.gen_range(0.0..0.04));
    let mut sim: Sim<Msg<C>> = Sim::new(seed, net);
    deploy(&mut sim, &cfg);

    // Proposals spread over the first stretch.
    for i in 0..n_cmds {
        let t = SimTime(rng.gen_range(100..1_500));
        propose_at(&mut sim, &cfg, t, (i % 2) as usize, i);
    }
    // Crash/recover a random minority of acceptors.
    let accs = cfg.roles.acceptors().to_vec();
    for k in 0..2 {
        let a = accs[rng.gen_range(0..accs.len())];
        let down = rng.gen_range(200..1_200);
        let up = down + rng.gen_range(100..800u64);
        let _ = k;
        sim.crash_at(SimTime(down), a);
        sim.recover_at(SimTime(up), a);
    }
    // Crash/recover one random coordinator.
    let coords = cfg.roles.coordinators().to_vec();
    let c = coords[rng.gen_range(0..coords.len())];
    let down = rng.gen_range(200..1_000);
    sim.crash_at(SimTime(down), c);
    sim.recover_at(SimTime(down + rng.gen_range(200..900u64)), c);
    // A transient partition separating two acceptors.
    let cut_at = rng.gen_range(300..1_000);
    sim.partition_at(
        SimTime(cut_at),
        vec![accs[0], accs[1]],
        vec![accs[2], accs[3], accs[4]],
    );
    sim.heal_at(SimTime(cut_at + rng.gen_range(200..600u64)));

    // Long quiet tail for convergence.
    sim.run_until(SimTime(12_000));
    (cfg, sim)
}

#[test]
fn chaos_commuting_commands_multicoordinated() {
    for seed in 0..15u64 {
        let (cfg, sim) = chaos_run::<CmdSet<u32>>(
            seed,
            Policy::MultiCoordinated,
            CollisionPolicy::Coordinated,
            6,
        );
        assert_safety(&sim, &cfg, &[0, 1, 2, 3, 4, 5]);
        let l: CmdSet<u32> = learned(&sim, &cfg, 0);
        assert_eq!(
            l.count(),
            6,
            "seed {seed}: liveness after healing (learned {l:?})"
        );
    }
}

#[test]
fn chaos_total_order_multicoordinated() {
    for seed in 0..15u64 {
        let (cfg, sim) = chaos_run::<CmdSeq<u32>>(
            seed,
            Policy::MultiCoordinated,
            CollisionPolicy::Coordinated,
            5,
        );
        assert_safety(&sim, &cfg, &[0, 1, 2, 3, 4]);
        let a: CmdSeq<u32> = learned(&sim, &cfg, 0);
        let b: CmdSeq<u32> = learned(&sim, &cfg, 1);
        assert!(a.le(&b) || b.le(&a), "seed {seed}: total order violated");
        assert_eq!(a.count(), 5, "seed {seed}: liveness (learned {a:?})");
    }
}

#[test]
fn chaos_consensus_single_coordinated() {
    for seed in 0..10u64 {
        let (cfg, sim) = chaos_run::<SingleDecree<u32>>(
            seed,
            Policy::SingleCoordinated,
            CollisionPolicy::Coordinated,
            3,
        );
        assert_safety(&sim, &cfg, &[0, 1, 2]);
        let a: SingleDecree<u32> = learned(&sim, &cfg, 0);
        assert!(a.value().is_some(), "seed {seed}: consensus never decided");
    }
}

#[test]
fn chaos_fast_rounds() {
    for seed in 0..10u64 {
        let (cfg, sim) = chaos_run::<SingleDecree<u32>>(
            seed,
            Policy::FastThenClassic,
            CollisionPolicy::Coordinated,
            3,
        );
        assert_safety(&sim, &cfg, &[0, 1, 2]);
        let a: SingleDecree<u32> = learned(&sim, &cfg, 0);
        assert!(a.value().is_some(), "seed {seed}: fast consensus undecided");
    }
}

/// Stability: a learner's value only ever grows. We check by sampling the
/// learned value at several points in virtual time.
#[test]
fn stability_under_chaos() {
    for seed in 0..6u64 {
        let cfg = Arc::new(DeployConfig::simple(2, 3, 5, 2, Policy::MultiCoordinated));
        let net = NetConfig::lockstep()
            .with_delay(DelayDist::Uniform(1, 5))
            .with_loss(0.05);
        let mut sim: Sim<Msg<CmdSet<u32>>> = Sim::new(seed, net);
        deploy(&mut sim, &cfg);
        for i in 0..8u32 {
            propose_at(&mut sim, &cfg, SimTime(100 + 37 * i as u64), 0, i);
        }
        let mut prev: CmdSet<u32> = CmdSet::bottom();
        for checkpoint in [500u64, 1_000, 2_000, 4_000, 8_000] {
            sim.run_until(SimTime(checkpoint));
            let cur: CmdSet<u32> = learned(&sim, &cfg, 0);
            assert!(
                prev.le(&cur),
                "seed {seed}: STABILITY violated at t={checkpoint}: {prev:?} → {cur:?}"
            );
            prev = cur;
        }
    }
}

/// Duplicated client submissions (same command proposed repeatedly) must
/// not confuse the protocol: learned once, counted once.
#[test]
fn duplicate_proposals_are_idempotent() {
    let cfg = Arc::new(DeployConfig::simple(1, 3, 5, 1, Policy::MultiCoordinated));
    let mut sim: Sim<Msg<CmdSet<u32>>> = Sim::new(5, NetConfig::lan());
    deploy(&mut sim, &cfg);
    for t in [100u64, 130, 160, 190] {
        propose_at(&mut sim, &cfg, SimTime(t), 0, 7);
    }
    sim.run_until(SimTime(1_000));
    let l: CmdSet<u32> = learned(&sim, &cfg, 0);
    assert_eq!(l.count(), 1);
    assert_safety(&sim, &cfg, &[7]);
}

/// A learner that joins the action late (messages to it dropped by a
/// partition) still converges thanks to retransmission.
#[test]
fn partitioned_learner_catches_up() {
    let cfg = Arc::new(DeployConfig::simple(1, 3, 5, 2, Policy::MultiCoordinated));
    let mut sim: Sim<Msg<CmdSet<u32>>> = Sim::new(5, NetConfig::lockstep());
    deploy(&mut sim, &cfg);
    let lonely = cfg.roles.learners()[1];
    let everyone_else: Vec<ProcessId> = sim
        .processes()
        .into_iter()
        .filter(|&p| p != lonely && p != CLIENT)
        .collect();
    sim.partition_at(SimTime(50), vec![lonely], everyone_else);
    propose_at(&mut sim, &cfg, SimTime(100), 0, 1);
    propose_at(&mut sim, &cfg, SimTime(150), 0, 2);
    sim.run_until(SimTime(400));
    assert_eq!(learned::<CmdSet<u32>>(&sim, &cfg, 1).count(), 0);
    sim.heal_at(SimTime(500));
    sim.run_until(SimTime(3_000));
    assert_eq!(
        learned::<CmdSet<u32>>(&sim, &cfg, 1).count(),
        2,
        "lonely learner must catch up after healing"
    );
}
