//! Proactive delta-base downgrade (restart `Hello` / link reset): a peer
//! that lost the base of a sender's suffix deltas — by crashing or by
//! sitting behind a healed partition — must be downgraded to full
//! payloads *proactively*, without first shipping a doomed delta and
//! paying the `NeedFull` round-trip to learn about it.
//!
//! The runs are lockstep (no loss, no duplication), so every `NeedFull`
//! in the trace is a round-trip the proactive path failed to save; the
//! tests pin that count at zero while `base_resets` proves bases were
//! actually dropped.

mod common;

use common::{deploy, learned, propose_at};
use mcpaxos_actor::wire::{Wire, WireError};
use mcpaxos_actor::{ProcessId, SimTime};
use mcpaxos_core::{DeployConfig, Msg, Policy, WireConfig};
use mcpaxos_cstruct::{CStruct, CommandHistory, Conflict, ConflictKeys};
use mcpaxos_simnet::{NetConfig, Sim};
use std::sync::Arc;

/// Keyed test command: ~10% of pairs conflict (same key of 10).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct K(u16, u32);

impl Conflict for K {
    fn conflicts(&self, other: &Self) -> bool {
        self.0 == other.0
    }
    fn conflict_keys(&self) -> ConflictKeys {
        ConflictKeys::one(u64::from(self.0))
    }
}

impl Wire for K {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(i: &mut &[u8]) -> Result<Self, WireError> {
        Ok(K(u16::decode(i)?, u32::decode(i)?))
    }
}

type H = CommandHistory<K>;

fn cmd(i: u32) -> K {
    K((i % 10) as u16, i)
}

/// Delta shipping on, compaction off: bases live forever, so a stale one
/// can only be cleared by the proactive downgrade under test.
fn delta_cfg() -> Arc<DeployConfig> {
    Arc::new(
        DeployConfig::simple(1, 3, 5, 1, Policy::MultiCoordinated).with_wire(WireConfig {
            delta_ship: true,
            ..WireConfig::default()
        }),
    )
}

fn deliveries(sim: &Sim<Msg<H>>, what: &str) -> usize {
    sim.trace()
        .iter()
        .filter(|e| e.detail.contains(what))
        .count()
}

#[test]
fn learner_restart_skips_the_needfull_round_trip() {
    let cfg = delta_cfg();
    let mut sim: Sim<Msg<H>> = Sim::new(3, NetConfig::lockstep());
    sim.enable_trace(1_000_000);
    deploy(&mut sim, &cfg);
    let n = 30u32;
    for i in 0..n {
        propose_at(&mut sim, &cfg, SimTime(100 + 20 * u64::from(i)), 0, cmd(i));
    }
    // The learner restarts mid-stream: every acceptor still holds a "2b"
    // delta base for it, in the *same* round — exactly the stale-base
    // shape a reactive design pays a NeedFull round-trip to discover.
    let l = cfg.roles.learners()[0];
    sim.crash_at(SimTime(400), l);
    sim.recover_at(SimTime(500), l);
    sim.run_until(SimTime(30_000));

    let v: H = learned(&sim, &cfg, 0);
    assert_eq!(v.total_len(), u64::from(n), "relearned everything");
    assert!(
        deliveries(&sim, "Hello") > 0,
        "the restart announcement must reach the acceptors"
    );
    assert!(
        sim.metrics().total("base_resets") > 0,
        "acceptors must drop the learner's stale 2b bases"
    );
    assert_eq!(
        deliveries(&sim, "NeedFull"),
        0,
        "every saved round-trip: no doomed delta may be shipped"
    );
    assert!(sim.metrics().total("delta_sends") > 0, "deltas flowed");
}

#[test]
fn partition_heal_resets_bases_on_both_sides() {
    let cfg = delta_cfg();
    let mut sim: Sim<Msg<H>> = Sim::new(5, NetConfig::lockstep());
    sim.enable_trace(1_000_000);
    deploy(&mut sim, &cfg);
    let n = 40u32;
    for i in 0..n {
        propose_at(&mut sim, &cfg, SimTime(100 + 20 * u64::from(i)), 0, cmd(i));
    }
    // One acceptor is cut off while the round keeps making progress on
    // the remaining quorum: the coordinator's "2a" base for it advances
    // with every send the partition silently drops. On heal, the link
    // reset must downgrade it to Full — a delta against the advanced
    // base would gap and cost a NeedFull round-trip.
    let a = cfg.roles.acceptors()[0];
    let rest: Vec<ProcessId> = cfg
        .roles
        .all()
        .iter()
        .copied()
        .filter(|&p| p != a)
        .collect();
    sim.partition_at(SimTime(450), vec![a], rest);
    sim.heal_at(SimTime(700));
    sim.run_until(SimTime(30_000));

    let v: H = learned(&sim, &cfg, 0);
    assert_eq!(v.total_len(), u64::from(n), "learned everything");
    assert!(
        sim.metrics().total("base_resets") > 0,
        "heal must drop bases for the severed links"
    );
    assert_eq!(
        deliveries(&sim, "NeedFull"),
        0,
        "no post-heal delta may be shipped against a stale base"
    );
    assert!(sim.metrics().total("delta_sends") > 0, "deltas flowed");
}
