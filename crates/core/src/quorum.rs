//! Acceptor quorum arithmetic: Assumptions 1 and 2 of the paper.
//!
//! Quorums are cardinality-based, as in §3.3: with `n` acceptors, any set
//! of `n − F` acceptors is a *classic* quorum and any set of `n − E` a
//! *fast* quorum, where `F` (resp. `E`) is the number of acceptor failures
//! tolerated by classic (resp. fast) rounds. The Fast Quorum Requirement
//! (Assumption 2) holds iff `2E + F < n` (which also implies the simple
//! requirement `2F < n`).

use crate::round::Round;
use crate::schedule::RoundKind;

/// Cardinality-based acceptor quorum specification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuorumSpec {
    n: usize,
    f: usize,
    e: usize,
}

impl QuorumSpec {
    /// Creates a quorum spec for `n` acceptors tolerating `f` failures in
    /// classic rounds and `e` in fast rounds.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint if the spec does
    /// not satisfy the Fast Quorum Requirement (`2e + f < n`, `2f < n`)
    /// or is degenerate (`n == 0`).
    pub fn new(n: usize, f: usize, e: usize) -> Result<Self, String> {
        if n == 0 {
            return Err("no acceptors".to_owned());
        }
        if 2 * f >= n {
            return Err(format!(
                "classic quorum requirement violated: 2F >= n (F={f}, n={n})"
            ));
        }
        if 2 * e + f >= n {
            return Err(format!(
                "fast quorum requirement violated: 2E + F >= n (E={e}, F={f}, n={n})"
            ));
        }
        Ok(QuorumSpec { n, f, e })
    }

    /// The configuration maximizing classic fault-tolerance: classic
    /// quorums are majorities (`F = ⌈n/2⌉ − 1`) and fast quorums have
    /// `⌈3n/4⌉` acceptors (`E = ⌊(n−1)/4⌋`... the largest `E` with
    /// `2E + F < n`).
    pub fn majority(n: usize) -> Result<Self, String> {
        if n == 0 {
            return Err("no acceptors".to_owned());
        }
        let f = n.div_ceil(2) - 1; // ⌊(n-1)/2⌋
        let e = (n - f - 1) / 2; // largest e with 2e + f < n
        QuorumSpec::new(n, f, e)
    }

    /// The configuration equalizing classic and fast quorums: every set of
    /// `⌈(2n+1)/3⌉` acceptors is both a classic and a fast quorum
    /// (`E = F = ⌊(n−1)/3⌋`, §2.2).
    pub fn uniform(n: usize) -> Result<Self, String> {
        if n == 0 {
            return Err("no acceptors".to_owned());
        }
        let ef = (n.saturating_sub(1)) / 3;
        QuorumSpec::new(n, ef, ef)
    }

    /// Number of acceptors.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Failures tolerated by classic rounds.
    pub fn f(&self) -> usize {
        self.f
    }

    /// Failures tolerated by fast rounds.
    pub fn e(&self) -> usize {
        self.e
    }

    /// Size of a classic quorum (`n − F`).
    pub fn classic_size(&self) -> usize {
        self.n - self.f
    }

    /// Size of a fast quorum (`n − E`).
    pub fn fast_size(&self) -> usize {
        self.n - self.e
    }

    /// Quorum size for a round of the given kind.
    pub fn size_for(&self, kind: RoundKind) -> usize {
        match kind {
            RoundKind::Classic => self.classic_size(),
            RoundKind::Fast => self.fast_size(),
        }
    }

    /// Minimum possible size of `Q ∩ R` where `Q` is a classic quorum and
    /// `R` a quorum of a round of kind `kind` — the §3.3.2 shortcut used by
    /// `ProvedSafe` (`n − 2F` for classic `k`, `n − 2E − F`... precisely:
    /// `|Q| + |R| − n`).
    pub fn min_intersection(&self, k_kind: RoundKind) -> usize {
        // |Q| = n - F (the phase-1 quorum), |R| = size_for(k_kind).
        self.classic_size() + self.size_for(k_kind) - self.n
    }

    /// Whether `count` acceptors form a quorum for a `kind` round.
    pub fn is_quorum(&self, kind: RoundKind, count: usize) -> bool {
        count >= self.size_for(kind)
    }
}

/// Coordinator quorum arithmetic: Assumption 3.
///
/// For a classic round with coordinator set of size `nc`, any
/// `⌊nc/2⌋ + 1` coordinators form a quorum (majorities intersect). A
/// single-coordinated round is the degenerate case `nc = 1`. Fast rounds
/// place no constraint; their single quorum is the round owner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoordQuorum {
    nc: usize,
}

impl CoordQuorum {
    /// Quorum rule over `nc` coordinators.
    ///
    /// # Panics
    ///
    /// Panics if `nc == 0`.
    pub fn majority_of(nc: usize) -> Self {
        assert!(nc > 0, "a round needs at least one coordinator");
        CoordQuorum { nc }
    }

    /// Number of coordinators of the round.
    pub fn count(&self) -> usize {
        self.nc
    }

    /// Size of a coordinator quorum (`⌊nc/2⌋ + 1`).
    pub fn quorum_size(&self) -> usize {
        self.nc / 2 + 1
    }

    /// Coordinator crash-failures the round survives without a round
    /// change (`⌈nc/2⌉ − 1`).
    pub fn failures_tolerated(&self) -> usize {
        self.nc - self.quorum_size()
    }

    /// Whether `count` coordinators form a quorum.
    pub fn is_quorum(&self, count: usize) -> bool {
        count >= self.quorum_size()
    }
}

/// Enumerates all size-`k` subsets of `0..n` (as index vectors), calling
/// `f` for each. Used by the exact `ProvedSafe` and by the learner's
/// quorum search. Returns early if `f` returns `false`.
pub(crate) fn for_each_combination(n: usize, k: usize, mut f: impl FnMut(&[usize]) -> bool) {
    if k > n {
        return;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        if !f(&idx) {
            return;
        }
        // advance
        let mut i = k;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
            if i == 0 {
                return;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// Number of size-`k` subsets of an `n`-set, saturating.
pub(crate) fn combination_count(n: usize, k: usize) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u64 = 1;
    for i in 0..k {
        acc = acc.saturating_mul((n - i) as u64) / (i as u64 + 1);
    }
    acc
}

/// Asserts the quorum-intersection identities for a spec; used in tests
/// and by `DeployConfig::validate`.
pub fn check_intersections(q: &QuorumSpec) -> Result<(), String> {
    // Assumption 1 / first clause of Assumption 2: any two quorums meet.
    let worst = q.classic_size().min(q.fast_size());
    if 2 * worst <= q.n() {
        // two disjoint quorums would fit
        if q.classic_size() + q.fast_size() <= q.n() {
            return Err("classic and fast quorums can be disjoint".into());
        }
        if 2 * q.classic_size() <= q.n() {
            return Err("two classic quorums can be disjoint".into());
        }
    }
    // Second clause: a classic quorum and two fast quorums share an
    // acceptor: |Q| + |R1| + |R2| - 2n >= 1.
    if q.classic_size() + 2 * q.fast_size() < 2 * q.n() + 1 {
        return Err("Q ∩ R1 ∩ R2 can be empty for fast R1, R2".into());
    }
    Ok(())
}

/// Reference to a round paired with its kind; small convenience used in
/// protocol bookkeeping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundInfo {
    /// The round id.
    pub round: Round,
    /// Its kind under the deployment schedule.
    pub kind: RoundKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_spec_matches_paper() {
        // n = 5: classic quorums of 3 (F = 2), fast quorums of ⌈(3·5+1)/4⌉ = 4.
        let q = QuorumSpec::majority(5).unwrap();
        assert_eq!(q.classic_size(), 3);
        assert_eq!(q.fast_size(), 4);
        assert_eq!(q.f(), 2);
        assert_eq!(q.e(), 1);
        check_intersections(&q).unwrap();

        // n = 7: classic 4 (F=3), fast quorums: E max with 2E+3<7 → E=1 → 6.
        let q = QuorumSpec::majority(7).unwrap();
        assert_eq!(q.classic_size(), 4);
        assert_eq!(q.fast_size(), 6);
        check_intersections(&q).unwrap();
    }

    #[test]
    fn uniform_spec_matches_paper() {
        // Every set of ⌈(2n+1)/3⌉ acceptors is both kinds of quorum.
        for n in 1..=13usize {
            let q = QuorumSpec::uniform(n).unwrap();
            assert_eq!(q.classic_size(), q.fast_size());
            assert_eq!(q.classic_size(), (2 * n + 1).div_ceil(3), "n={n}");
            check_intersections(&q).unwrap();
        }
    }

    #[test]
    fn invalid_specs_rejected() {
        assert!(QuorumSpec::new(0, 0, 0).is_err());
        assert!(QuorumSpec::new(3, 2, 0).is_err()); // 2F >= n
        assert!(QuorumSpec::new(5, 2, 2).is_err()); // 2E + F >= n
        assert!(QuorumSpec::new(5, 2, 1).is_ok());
    }

    #[test]
    fn min_intersection_shortcut() {
        let q = QuorumSpec::majority(5).unwrap();
        // classic k: |Q ∩ R| >= (n-F) + (n-F) - n = n - 2F = 1.
        assert_eq!(q.min_intersection(RoundKind::Classic), 1);
        // fast k: (n-F) + (n-E) - n = 5 - 2 - 1 = 2.
        assert_eq!(q.min_intersection(RoundKind::Fast), 2);
    }

    #[test]
    fn coord_quorum_majorities() {
        let c = CoordQuorum::majority_of(3);
        assert_eq!(c.quorum_size(), 2);
        assert_eq!(c.failures_tolerated(), 1);
        assert!(c.is_quorum(2));
        assert!(!c.is_quorum(1));
        let single = CoordQuorum::majority_of(1);
        assert_eq!(single.quorum_size(), 1);
        assert_eq!(single.failures_tolerated(), 0);
        let five = CoordQuorum::majority_of(5);
        assert_eq!(five.quorum_size(), 3);
        assert_eq!(five.failures_tolerated(), 2);
    }

    #[test]
    fn combination_enumeration() {
        let mut seen = Vec::new();
        for_each_combination(4, 2, |c| {
            seen.push(c.to_vec());
            true
        });
        assert_eq!(
            seen,
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3]
            ]
        );
        assert_eq!(combination_count(4, 2), 6);
        assert_eq!(combination_count(7, 3), 35);
        assert_eq!(combination_count(3, 5), 0);
        // k = 0: one empty combination
        let mut count = 0;
        for_each_combination(3, 0, |c| {
            assert!(c.is_empty());
            count += 1;
            true
        });
        assert_eq!(count, 1);
        // early exit
        let mut count = 0;
        for_each_combination(5, 2, |_| {
            count += 1;
            count < 3
        });
        assert_eq!(count, 3);
    }

    #[test]
    fn quorum_size_for_kind() {
        let q = QuorumSpec::majority(5).unwrap();
        assert_eq!(q.size_for(RoundKind::Classic), 3);
        assert_eq!(q.size_for(RoundKind::Fast), 4);
        assert!(q.is_quorum(RoundKind::Classic, 3));
        assert!(!q.is_quorum(RoundKind::Fast, 3));
    }
}
