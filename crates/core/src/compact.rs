//! Stable-prefix compaction bookkeeping shared by the agents.
//!
//! The deployment agrees on *stable segments*: slices of the designated
//! learner's learned sequence that a learner quorum has learned (gossiped
//! as [`crate::Msg::Stable`]). Every agent tracks the resulting global
//! watermark with a [`Compactor`]:
//!
//! * segments arrive out of band and are buffered in `pending` until the
//!   agent's *primary* value (an acceptor's `vval`, a learner's
//!   `learned`, a coordinator's `cval`) covers them, at which point they
//!   are truncated out and the watermark advances;
//! * the last few applied segments are retained in `recent`, so values
//!   ingested from peers that have not truncated as far can be
//!   *normalized* — stripped up to the local watermark — before being
//!   combined with local state (all lattice operators require operands
//!   with equal watermarks);
//! * values from peers *ahead* of the local watermark cannot be
//!   normalized (their basement contents are unknown); callers drop such
//!   messages and rely on retransmission after the local watermark
//!   catches up. A quorum of up-to-date processes keeps the deployment
//!   live while a straggler catches up.

use crate::msg::Payload;
use mcpaxos_cstruct::CStruct;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::Arc;

/// Outcome of resolving an ingested [`Payload`] against local state.
#[derive(Debug)]
pub enum Resolved<C: CStruct> {
    /// The payload resolved to a value at the local watermark; the flag
    /// says whether it differs from the base it was resolved against.
    Value(Arc<C>, bool),
    /// A delta could not be applied (missing/short/truncated base): the
    /// sender must re-ship its full value ([`crate::Msg::NeedFull`]).
    Gap,
    /// The value is from a peer ahead of (or unreachably behind) the
    /// local watermark and cannot be normalized. The payload is handed
    /// back so the caller can retry once after advancing its own
    /// compaction; if that fails too, drop the message and rely on
    /// retransmission.
    Unaligned(Payload<C>),
}

/// Per-agent compaction state: watermark, pending and recent segments.
#[derive(Debug)]
pub struct Compactor<C: CStruct> {
    watermark: u64,
    /// Segments announced stable but not yet applied, keyed by their
    /// starting position.
    pending: BTreeMap<u64, Vec<C::Cmd>>,
    /// Applied segments kept for normalizing lagging peers' values,
    /// oldest first.
    recent: VecDeque<(u64, Vec<C::Cmd>)>,
    keep: usize,
}

impl<C: CStruct> Compactor<C> {
    /// A compactor retaining `keep` applied segments for normalization.
    pub fn new(keep: usize) -> Self {
        Compactor {
            watermark: 0,
            pending: BTreeMap::new(),
            recent: VecDeque::new(),
            keep: keep.max(1),
        }
    }

    /// The agreed prefix length truncated so far.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Resumes at (at least) `w` after a recovery: the agent's persisted
    /// primary value already carries this watermark. The normalization
    /// window starts empty; lagging peers' values are dropped until fresh
    /// segments arrive.
    pub fn resume(&mut self, w: u64) {
        self.watermark = self.watermark.max(w);
    }

    /// Applies pending segments *without* a primary value to truncate
    /// (used by coordinators while they hold no `cval`): the watermark
    /// advances and the segments enter the normalization window.
    pub fn advance_free(&mut self, mut on_applied: impl FnMut(&[C::Cmd])) -> u64 {
        let mut applied = 0;
        while let Some((from, cmds)) = self.pending.remove_entry(&self.watermark) {
            on_applied(&cmds);
            self.watermark = from + cmds.len() as u64;
            self.recent.push_back((from, cmds));
            while self.recent.len() > self.keep {
                self.recent.pop_front();
            }
            applied += 1;
        }
        applied
    }

    /// Buffers a stable segment starting at `from` (idempotent; segments
    /// below the watermark or absurdly far ahead are ignored).
    pub fn offer(&mut self, from: u64, cmds: Vec<C::Cmd>) {
        if cmds.is_empty() || from < self.watermark || self.pending.contains_key(&from) {
            return;
        }
        self.pending.insert(from, cmds);
        // Bound the buffer: a malicious or wildly ahead stream of segments
        // must not grow memory; keep the nearest few.
        while self.pending.len() > 2 * self.keep {
            let last = *self.pending.keys().next_back().expect("non-empty");
            self.pending.remove(&last);
        }
    }

    /// Applies every pending segment the primary value covers, in order,
    /// advancing the watermark. `on_applied` runs once per applied
    /// segment (for metric emission and pruning of side state).
    pub fn advance(&mut self, primary: &mut C, mut on_applied: impl FnMut(&[C::Cmd])) -> u64 {
        let mut applied = 0;
        while let Some(cmds) = self.pending.get(&self.watermark) {
            if !primary.truncate_stable(cmds) {
                break; // primary not caught up yet; retry after it grows
            }
            let (from, cmds) = self
                .pending
                .remove_entry(&self.watermark)
                .expect("just probed");
            on_applied(&cmds);
            self.watermark = from + cmds.len() as u64;
            self.recent.push_back((from, cmds));
            while self.recent.len() > self.keep {
                self.recent.pop_front();
            }
            applied += 1;
        }
        // Anything below the watermark can never apply again.
        while let Some((&k, _)) = self.pending.iter().next() {
            if k >= self.watermark {
                break;
            }
            self.pending.remove(&k);
        }
        applied
    }

    /// Whether the segment that would advance the watermark is missing
    /// entirely (as opposed to buffered but not yet covered by the
    /// primary value): the condition under which a gap resync request
    /// ([`crate::Msg::NeedStable`]) is useful.
    pub fn gap_at_watermark(&self) -> bool {
        !self.pending.contains_key(&self.watermark)
    }

    /// The retained stable segments at or above `from`, for answering a
    /// lagging peer's [`crate::Msg::NeedStable`] resync request.
    pub fn recent_from(&self, from: u64) -> Vec<(u64, Vec<C::Cmd>)> {
        self.recent
            .iter()
            .filter(|(f, _)| *f >= from)
            .cloned()
            .collect()
    }

    /// Restart path for learners: a primary that sits *exactly empty at
    /// the watermark* (a checkpoint-restored learner whose history below
    /// the watermark no longer exists anywhere) may *adopt* the pending
    /// segment at the watermark as learned — it is quorum-learned by
    /// definition. The segment enters the live window (so a host can
    /// drain it) and is truncated by a later [`Compactor::advance`].
    /// Returns whether anything was adopted.
    pub fn adopt_into(&self, primary: &mut C) -> bool {
        if primary.watermark() != self.watermark || primary.total_len() != self.watermark {
            return false;
        }
        match self.pending.get(&self.watermark) {
            Some(cmds) => primary
                .apply_suffix(self.watermark, cmds)
                .map(|n| n > 0)
                .unwrap_or(false),
            None => false,
        }
    }

    /// Whether `c` was truncated by one of the retained recent segments.
    /// Used to drop re-deliveries and re-proposals of already-stable
    /// commands, which would otherwise re-enter live windows (their
    /// membership entries are gone after truncation).
    pub fn contains_recent(&self, c: &C::Cmd) -> bool {
        self.recent.iter().any(|(_, seg)| seg.contains(c))
    }

    /// Strips applied segments out of `v` until it reaches the local
    /// watermark. Returns `false` (leaving `v` in a partially normalized
    /// but self-consistent state) when `v` is ahead of the watermark, or
    /// so far behind that the needed segments have left `recent`, or a
    /// strip fails.
    pub fn normalize(&self, v: &mut C) -> bool {
        while v.watermark() < self.watermark {
            let seg = match self.recent.iter().find(|(from, _)| *from == v.watermark()) {
                Some((_, cmds)) => cmds,
                None => return false, // fell out of the window
            };
            if !v.truncate_stable(seg) {
                return false;
            }
        }
        v.watermark() == self.watermark
    }

    /// Resolves an ingested payload against `base` (the last value this
    /// peer shipped for the same round, already at the local watermark).
    ///
    /// Full values are normalized to the local watermark (cloning only
    /// when stripping is needed); deltas are applied on a copy of the
    /// base. The `bool` in [`Resolved::Value`] reports whether the
    /// resolved value differs from `base`.
    pub fn resolve(&self, payload: Payload<C>, base: Option<&Arc<C>>) -> Resolved<C> {
        match payload {
            Payload::Full(v) => {
                let v = if v.watermark() == self.watermark {
                    v
                } else if v.watermark() < self.watermark {
                    let mut owned = (*v).clone();
                    if !self.normalize(&mut owned) {
                        return Resolved::Unaligned(Payload::Full(v));
                    }
                    Arc::new(owned)
                } else {
                    // We are behind the sender.
                    return Resolved::Unaligned(Payload::Full(v));
                };
                let changed = match base {
                    Some(b) => b.watermark() != v.watermark() || **b != *v,
                    None => true,
                };
                Resolved::Value(v, changed)
            }
            Payload::Delta {
                base_len,
                digest,
                mut suffix,
            } => {
                let b = match base {
                    Some(b) if b.watermark() == self.watermark => b,
                    _ => return Resolved::Gap,
                };
                // A re-delivered stale delta may carry commands that were
                // truncated (as stable) since: they must not re-enter the
                // live window.
                suffix.retain(|c| !self.contains_recent(c));
                if suffix.is_empty() && base_len <= b.total_len() {
                    // Pure keep-alive: the sender claims our base IS its
                    // value. A digest mismatch means the base diverged
                    // (e.g. rolled back by a crash) — resync.
                    if crate::msg::value_digest(&**b) != digest {
                        return Resolved::Gap;
                    }
                    return Resolved::Value(b.clone(), false);
                }
                let mut owned = (**b).clone();
                match owned.apply_suffix(base_len, &suffix) {
                    Ok(appended) => {
                        // The suffix applied positionally, but `base_len`
                        // alone cannot authenticate the base: verify the
                        // reconstruction against the sender's digest and
                        // treat divergence exactly like a gap.
                        if crate::msg::value_digest(&owned) != digest {
                            return Resolved::Gap;
                        }
                        Resolved::Value(Arc::new(owned), appended > 0)
                    }
                    Err(_) => Resolved::Gap,
                }
            }
        }
    }

    /// Normalizes a stored shared value in place; returns `false` when it
    /// cannot be brought to the watermark (caller should drop it).
    pub fn normalize_arc(&self, v: &mut Arc<C>) -> bool {
        if v.watermark() == self.watermark {
            return true;
        }
        if v.watermark() > self.watermark {
            return false;
        }
        let mut owned = (**v).clone();
        if !self.normalize(&mut owned) {
            return false;
        }
        *v = Arc::new(owned);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpaxos_actor::wire::{Wire, WireError};
    use mcpaxos_cstruct::{CommandHistory, Conflict, ConflictKeys};

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct K(u16, u16);
    impl Conflict for K {
        fn conflicts(&self, other: &Self) -> bool {
            self.0 == other.0
        }
        fn conflict_keys(&self) -> ConflictKeys {
            ConflictKeys::one(u64::from(self.0))
        }
    }
    impl Wire for K {
        fn encode(&self, out: &mut Vec<u8>) {
            self.0.encode(out);
            self.1.encode(out);
        }
        fn decode(i: &mut &[u8]) -> Result<Self, WireError> {
            Ok(K(u16::decode(i)?, u16::decode(i)?))
        }
    }

    type H = CommandHistory<K>;

    fn h(n: u16) -> H {
        (0..n).map(|i| K(i % 4, i)).collect()
    }

    #[test]
    fn advance_waits_for_primary_coverage() {
        let mut c: Compactor<H> = Compactor::new(4);
        let seg: Vec<K> = (0..4).map(|i| K(i % 4, i)).collect();
        c.offer(0, seg);
        let mut small = h(2); // does not contain K(2,2), K(3,3) yet
        assert_eq!(c.advance(&mut small, |_| {}), 0);
        assert_eq!(c.watermark(), 0);
        let mut big = h(6);
        assert_eq!(c.advance(&mut big, |_| {}), 1);
        assert_eq!(c.watermark(), 4);
        assert_eq!(big.watermark(), 4);
        assert_eq!(big.live_len(), 2);
    }

    #[test]
    fn normalize_strips_recent_segments() {
        let mut c: Compactor<H> = Compactor::new(4);
        c.offer(0, (0..4).map(|i| K(i % 4, i)).collect());
        let mut primary = h(8);
        c.advance(&mut primary, |_| {});
        // A peer value that has not truncated yet.
        let mut lagging = h(8);
        assert!(c.normalize(&mut lagging));
        assert_eq!(lagging.watermark(), 4);
        assert_eq!(lagging, primary);
        // A value ahead of us cannot be normalized.
        let c2: Compactor<H> = Compactor::new(4);
        let mut ahead = h(8);
        c.normalize(&mut ahead);
        assert!(!c2.normalize(&mut ahead));
    }

    #[test]
    fn resolve_applies_deltas_and_flags_gaps() {
        let c: Compactor<H> = Compactor::new(4);
        let base = Arc::new(h(4));
        // Suffix extending the base, digested as the sender would.
        let suffix: Vec<K> = (4..6).map(|i| K(i % 4, i)).collect();
        match c.resolve(
            Payload::Delta {
                base_len: 4,
                digest: crate::msg::value_digest(&h(6)),
                suffix,
            },
            Some(&base),
        ) {
            Resolved::Value(v, changed) => {
                assert!(changed);
                assert_eq!(v.total_len(), 6);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Delta past the base: gap.
        assert!(matches!(
            c.resolve(
                Payload::Delta {
                    base_len: 9,
                    digest: crate::msg::value_digest(&h(10)),
                    suffix: vec![K(0, 9)]
                },
                Some(&base)
            ),
            Resolved::Gap
        ));
        // Delta without a base: gap.
        assert!(matches!(
            c.resolve(
                Payload::Delta {
                    base_len: 0,
                    digest: crate::msg::value_digest(&h(1)),
                    suffix: vec![K(0, 0)]
                },
                None
            ),
            Resolved::Gap
        ));
    }

    #[test]
    fn resolve_rejects_equal_length_divergent_base() {
        let c: Compactor<H> = Compactor::new(4);
        // The sender extends ITS history 0..4 by 4..6 and digests the
        // result; the receiver's stored base has the same LENGTH but a
        // divergent command at position 3 (the post-crash rollback
        // scenario). Length-only matching would silently misapply.
        let mut divergent = h(3);
        divergent.append(K(0, 99));
        let base = Arc::new(divergent);
        assert_eq!(base.total_len(), 4);
        let suffix: Vec<K> = (4..6).map(|i| K(i % 4, i)).collect();
        let sender_digest = crate::msg::value_digest(&h(6));
        assert!(
            matches!(
                c.resolve(
                    Payload::Delta {
                        base_len: 4,
                        digest: sender_digest,
                        suffix,
                    },
                    Some(&base)
                ),
                Resolved::Gap
            ),
            "divergent base of equal length must force a full resync"
        );
        // Keep-alive against a divergent base is rejected too.
        assert!(matches!(
            c.resolve(
                Payload::Delta {
                    base_len: 4,
                    digest: crate::msg::value_digest(&h(4)),
                    suffix: vec![],
                },
                Some(&base)
            ),
            Resolved::Gap
        ));
    }
}
