//! The `ProvedSafe` value-picking rule (Definition 1, §3.2–§3.3.2).
//!
//! After collecting phase "1b" messages for round `i` from a quorum `Q`,
//! a coordinator must pick a value that extends every c-struct that was or
//! might still be chosen in a lower round. `ProvedSafe` computes the set of
//! such *pickable* values:
//!
//! * let `k` be the highest `vrnd` among the messages;
//! * if no `k`-quorum `R` has all of `Q ∩ R` reporting `vrnd = k`, nothing
//!   (beyond what is implied by lower rounds) was chosen at `k`, and any
//!   reported `k`-value is pickable;
//! * otherwise, for every such `R` the glb of the values reported by
//!   `Q ∩ R` might have been chosen; the Fast Quorum Requirement makes the
//!   set `Γ` of those glbs compatible, and `⊔Γ` is the pickable value.
//!
//! Two implementations are provided: the cardinality shortcut of §3.3.2
//! ([`proved_safe`]), used by coordinators, and a direct transcription of
//! Definition 1 that enumerates actual quorums ([`proved_safe_exact`]),
//! kept as a differential-testing oracle.

use crate::quorum::{combination_count, for_each_combination, QuorumSpec};
use crate::round::Round;
use crate::schedule::RoundKind;
use mcpaxos_actor::ProcessId;
use mcpaxos_cstruct::{glb_all_ref, lub_all, CStruct};
use std::sync::Arc;

/// One phase "1b" report: acceptor `from` last accepted `vval` at `vrnd`.
///
/// The value is `Arc`-shared with the message it arrived in (and with any
/// sibling reports of the same value), so collecting a quorum of reports
/// never deep-copies a history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OneB<C> {
    /// The reporting acceptor.
    pub from: ProcessId,
    /// Round of the acceptor's latest accepted value.
    pub vrnd: Round,
    /// The acceptor's latest accepted c-struct.
    pub vval: Arc<C>,
}

/// Upper bound on the number of quorum intersections [`proved_safe`] will
/// enumerate before panicking; reached only with implausibly large
/// deployments (the experiments use `n ≤ 13`).
const MAX_ENUMERATION: u64 = 200_000;

/// Computes the pickable values from the 1b reports of quorum `Q`
/// (§3.3.2 cardinality form). `kind_of` maps a round to its kind (fast
/// rounds have bigger quorums and therefore smaller guaranteed
/// intersections).
///
/// Returns a non-empty set of pickable c-structs; the coordinator may pick
/// any of them (when more than one is returned, each is individually
/// pickable — they are the `vals(kacceptors)` of Definition 1).
///
/// # Panics
///
/// * If `msgs` is empty (the caller must supply a full classic quorum).
/// * If the glbs of the quorum intersections are incompatible, which the
///   Fast Quorum Requirement rules out — reaching this indicates a
///   misconfigured quorum system or a safety bug upstream.
pub fn proved_safe<C: CStruct>(
    msgs: &[OneB<C>],
    spec: &QuorumSpec,
    kind_of: impl Fn(Round) -> RoundKind,
) -> Vec<C> {
    assert!(!msgs.is_empty(), "ProvedSafe needs a non-empty quorum");
    let k = msgs.iter().map(|m| m.vrnd).max().expect("non-empty");
    let kvals: Vec<&C> = msgs
        .iter()
        .filter(|m| m.vrnd == k)
        .map(|m| m.vval.as_ref())
        .collect();

    // Minimum size of Q ∩ R over k-quorums R, for the actual |Q| received:
    // |Q ∩ R| >= |Q| + |R| − n.
    let k_quorum_size = if k.is_zero() {
        // Round zero "quorums" are the implicit unanimous vote for ⊥;
        // every value reported is ⊥ and any of them is pickable.
        return vec![kvals[0].clone()];
    } else {
        spec.size_for(kind_of(k))
    };
    let inter = (msgs.len() + k_quorum_size).saturating_sub(spec.n());
    assert!(
        inter >= 1,
        "quorum too small: |Q|={} with k-quorums of {} over n={}",
        msgs.len(),
        k_quorum_size,
        spec.n()
    );

    if kvals.len() < inter {
        // No k-quorum has its whole intersection with Q at vrnd = k:
        // nothing new chosen at k; any reported k-value is pickable.
        return kvals.into_iter().cloned().collect();
    }

    // Γ = { ⊓ vals(e) : e ⊆ kacceptors, |e| = inter }.
    let combos = combination_count(kvals.len(), inter);
    assert!(
        combos <= MAX_ENUMERATION,
        "ProvedSafe would enumerate {combos} intersections; deployment too large"
    );
    let mut gamma: Vec<C> = Vec::with_capacity(combos as usize);
    for_each_combination(kvals.len(), inter, |idx| {
        gamma.push(glb_all_ref(idx.iter().map(|&i| kvals[i])));
        true
    });
    let lub = lub_all(gamma.iter().cloned()).expect(
        "Fast Quorum Requirement violated: incompatible quorum-intersection glbs in ProvedSafe",
    );
    vec![lub]
}

/// Direct transcription of Definition 1: enumerates real `k`-quorums `R`
/// over the full acceptor set and forms `Γ` from the intersections
/// `Q ∩ R` whose members all reported `vrnd = k`.
///
/// Exponential in `n`; used only as a test oracle.
///
/// # Panics
///
/// As [`proved_safe`].
pub fn proved_safe_exact<C: CStruct>(
    msgs: &[OneB<C>],
    all_acceptors: &[ProcessId],
    spec: &QuorumSpec,
    kind_of: impl Fn(Round) -> RoundKind,
) -> Vec<C> {
    assert!(!msgs.is_empty(), "ProvedSafe needs a non-empty quorum");
    let k = msgs.iter().map(|m| m.vrnd).max().expect("non-empty");
    let kacceptors: Vec<ProcessId> = msgs
        .iter()
        .filter(|m| m.vrnd == k)
        .map(|m| m.from)
        .collect();
    let val_of = |p: ProcessId| -> &C {
        msgs.iter()
            .find(|m| m.from == p)
            .expect("member of Q")
            .vval
            .as_ref()
    };
    if k.is_zero() {
        return vec![val_of(kacceptors[0]).clone()];
    }
    let q_members: Vec<ProcessId> = msgs.iter().map(|m| m.from).collect();
    let k_quorum_size = spec.size_for(kind_of(k));

    let mut gamma: Vec<C> = Vec::new();
    for_each_combination(all_acceptors.len(), k_quorum_size, |idx| {
        let inter: Vec<ProcessId> = idx
            .iter()
            .map(|&i| all_acceptors[i])
            .filter(|p| q_members.contains(p))
            .collect();
        // QinterRAtk: intersections whose members all reported vrnd = k.
        if !inter.is_empty() && inter.iter().all(|p| kacceptors.contains(p)) {
            gamma.push(glb_all_ref(inter.iter().map(|&p| val_of(p))));
        }
        true
    });

    if gamma.is_empty() {
        return kacceptors.iter().map(|&p| val_of(p).clone()).collect();
    }
    let lub = lub_all(gamma).expect("Fast Quorum Requirement violated in exact ProvedSafe");
    vec![lub]
}

/// Picks one value from a non-empty pickable set: a maximal element under
/// `⊑` (any would be safe; a maximal one carries the most commands).
pub fn pick<C: CStruct>(mut pickable: Vec<C>) -> C {
    assert!(!pickable.is_empty(), "nothing pickable");
    let mut best = pickable.pop().expect("non-empty");
    for v in pickable {
        if best.le(&v) {
            best = v;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{RTYPE_FAST, RTYPE_SINGLE};
    use mcpaxos_cstruct::{CStruct, CmdSet, SingleDecree};

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    fn classic_kind(_r: Round) -> RoundKind {
        RoundKind::Classic
    }

    fn onb<C: CStruct>(from: u32, vrnd: Round, vval: C) -> OneB<C> {
        OneB {
            from: p(from),
            vrnd,
            vval: Arc::new(vval),
        }
    }

    #[test]
    fn all_bottom_returns_bottom() {
        let spec = QuorumSpec::majority(3).unwrap();
        let msgs: Vec<OneB<SingleDecree<u32>>> = vec![
            onb(0, Round::ZERO, SingleDecree::bottom()),
            onb(1, Round::ZERO, SingleDecree::bottom()),
        ];
        let picked = proved_safe(&msgs, &spec, classic_kind);
        assert_eq!(picked, vec![SingleDecree::bottom()]);
    }

    #[test]
    fn previously_chosen_value_is_forced() {
        // n = 3, majorities of 2. Acceptors 0 and 1 accepted v at round k:
        // v may be chosen, so it must be picked.
        let spec = QuorumSpec::majority(3).unwrap();
        let k = Round::new(0, 1, 0, RTYPE_SINGLE);
        let v = SingleDecree::decided(7u32);
        let msgs = vec![onb(0, k, v.clone()), onb(1, k, v.clone())];
        let picked = proved_safe(&msgs, &spec, classic_kind);
        assert_eq!(picked, vec![v]);
    }

    #[test]
    fn partial_k_round_still_forces_value() {
        // Only acceptor 1 reports round k, acceptor 0 reports ZERO. With
        // majorities of 2 over n=3, Q∩R min size is 1, so {a1} is a
        // potential intersection: its value might be chosen at k.
        let spec = QuorumSpec::majority(3).unwrap();
        let k = Round::new(0, 1, 0, RTYPE_SINGLE);
        let v = SingleDecree::decided(7u32);
        let msgs = vec![
            onb(0, Round::ZERO, SingleDecree::bottom()),
            onb(1, k, v.clone()),
        ];
        let picked = proved_safe(&msgs, &spec, classic_kind);
        assert_eq!(picked, vec![v]);
    }

    #[test]
    fn bigger_quorum_sees_no_kquorum_intersection() {
        // n = 5, F = 2 (classic quorums of 3). Q = {0,1,2}; only acceptor
        // 2 reports k. Min intersection = 3+3-5 = 1, so {a2} is possible:
        // its value is forced. But if Q = {0,1,2,3,4} (all five) and only
        // acceptor 2 reports k... intersection min = 5+3-5 = 3 > 1
        // reporter, so nothing chosen at k: any k-value pickable.
        let spec = QuorumSpec::majority(5).unwrap();
        let k = Round::new(0, 1, 0, RTYPE_SINGLE);
        let v = SingleDecree::decided(7u32);
        let msgs = vec![
            onb(0, Round::ZERO, SingleDecree::bottom()),
            onb(1, Round::ZERO, SingleDecree::bottom()),
            onb(2, k, v.clone()),
            onb(3, Round::ZERO, SingleDecree::bottom()),
            onb(4, Round::ZERO, SingleDecree::bottom()),
        ];
        let picked = proved_safe(&msgs, &spec, classic_kind);
        // kacceptors = {2}: count 1 < inter 3 → vals(kacceptors).
        assert_eq!(picked, vec![v]);
    }

    #[test]
    fn generalized_lub_of_intersection_glbs() {
        // CmdSet c-structs: three acceptors at round k with different but
        // compatible sets; majorities over n=3 → inter = 1 → Γ = each
        // value; pick = lub = union.
        let spec = QuorumSpec::majority(3).unwrap();
        let k = Round::new(0, 1, 0, RTYPE_SINGLE);
        let mk = |v: &[u32]| -> CmdSet<u32> { v.iter().copied().collect() };
        let msgs = vec![onb(0, k, mk(&[1, 2])), onb(1, k, mk(&[2, 3]))];
        let picked = proved_safe(&msgs, &spec, classic_kind);
        assert_eq!(picked, vec![mk(&[1, 2, 3])]);
    }

    #[test]
    fn fast_round_uses_bigger_intersections() {
        // n = 5, E = 1 → fast quorums of 4; |Q| = 3 → inter = 3+4-5 = 2.
        // Two acceptors at fast k with values {1} and {2}: Γ = {glb} over
        // the single 2-subset = {} → pick ⊔Γ = {} ∪ ... = glb({1},{2}) = ∅.
        let spec = QuorumSpec::majority(5).unwrap();
        let kind = |r: Round| {
            if r.rtype == RTYPE_FAST {
                RoundKind::Fast
            } else {
                RoundKind::Classic
            }
        };
        let k = Round::new(0, 1, 0, RTYPE_FAST);
        let mk = |v: &[u32]| -> CmdSet<u32> { v.iter().copied().collect() };
        let msgs = vec![
            onb(0, k, mk(&[1])),
            onb(1, k, mk(&[2])),
            onb(2, Round::ZERO, CmdSet::bottom()),
        ];
        let picked = proved_safe(&msgs, &spec, kind);
        assert_eq!(picked, vec![CmdSet::bottom()]);
    }

    #[test]
    fn exact_agrees_with_cardinality_on_samples() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2024);
        let all: Vec<ProcessId> = (0..5).map(p).collect();
        let spec = QuorumSpec::majority(5).unwrap();
        let kind = |r: Round| {
            if r.rtype == RTYPE_FAST {
                RoundKind::Fast
            } else {
                RoundKind::Classic
            }
        };
        for _ in 0..300 {
            // Random 1b messages from a random quorum of size 3..=5.
            let qsize = rng.gen_range(3..=5usize);
            let mut members: Vec<u32> = (0..5).collect();
            for i in (1..members.len()).rev() {
                let j = rng.gen_range(0..=i);
                members.swap(i, j);
            }
            members.truncate(qsize);
            let rounds = [
                Round::ZERO,
                Round::new(0, 1, 0, RTYPE_FAST),
                Round::new(0, 2, 0, RTYPE_SINGLE),
            ];
            let msgs: Vec<OneB<CmdSet<u32>>> = members
                .iter()
                .map(|&m| {
                    let vrnd = rounds[rng.gen_range(0..rounds.len())];
                    let vval: CmdSet<u32> = if vrnd.is_zero() {
                        CmdSet::bottom()
                    } else {
                        (0..rng.gen_range(0..3))
                            .map(|_| rng.gen_range(0..5u32))
                            .collect()
                    };
                    onb(m, vrnd, vval)
                })
                .collect();
            let fast = proved_safe(&msgs, &spec, kind);
            let exact = proved_safe_exact(&msgs, &all, &spec, kind);
            // Both return either a forced lub (singleton) or a pickable
            // set; compare as sets.
            let mut f = fast.clone();
            let mut e = exact.clone();
            let key = |c: &CmdSet<u32>| format!("{c:?}");
            f.sort_by_key(&key);
            e.sort_by_key(&key);
            assert_eq!(f, e, "divergence on {msgs:?}");
        }
    }

    #[test]
    fn pick_prefers_maximal() {
        let mk = |v: &[u32]| -> CmdSet<u32> { v.iter().copied().collect() };
        let picked = pick(vec![mk(&[1]), mk(&[1, 2]), mk(&[3])]);
        // Any maximal element is fine; {1,2} or {3} are maximal, {1} not.
        assert_ne!(picked, mk(&[1]));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_quorum_panics() {
        let spec = QuorumSpec::majority(3).unwrap();
        let _ = proved_safe::<SingleDecree<u32>>(&[], &spec, classic_kind);
    }
}
