//! The proposer agent.
//!
//! Proposers take commands from clients (the hosting application calls
//! [`Msg::Propose`] at them) and forward them to the round machinery:
//! to every coordinator, and — because rounds may be fast — to every
//! acceptor (§2.2: "proposers should send their propose messages to both
//! coordinators and acceptors"). Under §4.1 load balancing the proposer
//! instead picks one coordinator quorum and one acceptor quorum per
//! command and pins the acceptor choice in the message.
//!
//! Proposers retransmit pending commands until a learner reports them
//! learned, which (together with coordinators re-sending their "2a" on
//! duplicate proposals) makes the protocol live under fair-lossy links.

use crate::agents::{metrics, TOK_BATCH, TOK_RESEND};
use crate::config::{DeployConfig, Overflow};
use crate::msg::Msg;
use mcpaxos_actor::{Actor, Backoff, Context, Metric, ProcessId, TimerToken};
use mcpaxos_cstruct::CStruct;
use std::sync::Arc;

/// The proposer role (§2.1: clients issuing commands).
pub struct Proposer<C: CStruct> {
    cfg: Arc<DeployConfig>,
    pending: Vec<C::Cmd>,
    /// Consecutive retransmission rounds without learning progress. When
    /// `Timing::proposer_backoff_max` is set, the resend period doubles
    /// with each attempt (capped there) so a partitioned or failing-over
    /// cluster is not hammered at the base rate; any progress resets it.
    attempts: u32,
    /// Batching mode: admitted commands awaiting the next
    /// [`Msg::ProposeBatch`] flush (a subset of `pending`).
    outbox: Vec<C::Cmd>,
    /// Batching mode, [`Overflow::Stall`]: commands held un-forwarded
    /// because the in-flight window is full (a subset of `pending`);
    /// promoted into the outbox as learning progress frees space.
    stalled: Vec<C::Cmd>,
    /// Whether a `TOK_BATCH` linger flush is armed.
    linger_armed: bool,
}

impl<C: CStruct> Proposer<C> {
    /// Creates a proposer for the given deployment.
    pub fn new(cfg: Arc<DeployConfig>) -> Self {
        Proposer {
            cfg,
            pending: Vec::new(),
            attempts: 0,
            outbox: Vec::new(),
            stalled: Vec::new(),
            linger_armed: false,
        }
    }

    /// Commands proposed but not yet reported learned.
    pub fn pending(&self) -> &[C::Cmd] {
        &self.pending
    }

    /// Commands held back by a full [`Overflow::Stall`] window.
    pub fn stalled(&self) -> &[C::Cmd] {
        &self.stalled
    }

    fn batching(&self) -> bool {
        self.cfg.batch.enabled()
    }

    /// Commands forwarded and not yet learned (outside the outbox and the
    /// stall hold): the in-flight window the `Stall` policy bounds.
    fn in_flight(&self) -> usize {
        self.pending.len() - self.outbox.len() - self.stalled.len()
    }

    fn pick_subset(
        &self,
        pool: &[ProcessId],
        size: usize,
        ctx: &mut dyn Context<Msg<C>>,
    ) -> Vec<ProcessId> {
        // Rotate the pool by a random offset and take `size` members: a
        // cheap uniform-ish quorum choice that spreads load (§4.1).
        let n = pool.len();
        let start = (ctx.random() as usize) % n;
        (0..size.min(n)).map(|i| pool[(start + i) % n]).collect()
    }

    fn forward(&self, cmd: &C::Cmd, ctx: &mut dyn Context<Msg<C>>) {
        let coords = self.cfg.roles.coordinators().to_vec();
        let accs = self.cfg.roles.acceptors().to_vec();
        if self.cfg.load_balance {
            // §4.1: pick one coordinator quorum and one acceptor quorum
            // per command; the acceptor choice rides in the message so the
            // whole coordinator quorum forwards to the same acceptors.
            // In classic rounds proposals go only to the coordinators;
            // under a fast policy they also go to the (fast-sized) chosen
            // acceptor quorum.
            let fresh = self.cfg.schedule.initial(0, 0);
            let cq = self.cfg.schedule.coord_quorum(fresh);
            let fast = self.cfg.schedule.kind(fresh) == crate::schedule::RoundKind::Fast;
            let acc_size = if fast {
                self.cfg.quorums.fast_size()
            } else {
                self.cfg.quorums.classic_size()
            };
            let coord_targets = self.pick_subset(&coords, cq.quorum_size(), ctx);
            let acc_targets = self.pick_subset(&accs, acc_size, ctx);
            let msg = Msg::Propose {
                cmd: cmd.clone(),
                acc_quorum: Some(acc_targets.clone()),
            };
            ctx.multicast(&coord_targets, msg.clone());
            if fast {
                ctx.multicast(&acc_targets, msg);
            }
        } else {
            let msg = Msg::Propose {
                cmd: cmd.clone(),
                acc_quorum: None,
            };
            ctx.multicast(&coords, msg.clone());
            ctx.multicast(&accs, msg);
        }
    }

    /// Ships one `ProposeBatch` to the same targets `forward` would use,
    /// amortizing the fan-out over the whole chunk (one quorum pick per
    /// batch under §4.1 load balancing).
    fn forward_batch(&self, cmds: Vec<C::Cmd>, ctx: &mut dyn Context<Msg<C>>) {
        if cmds.is_empty() {
            return;
        }
        let coords = self.cfg.roles.coordinators().to_vec();
        let accs = self.cfg.roles.acceptors().to_vec();
        if self.cfg.load_balance {
            let fresh = self.cfg.schedule.initial(0, 0);
            let cq = self.cfg.schedule.coord_quorum(fresh);
            let fast = self.cfg.schedule.kind(fresh) == crate::schedule::RoundKind::Fast;
            let acc_size = if fast {
                self.cfg.quorums.fast_size()
            } else {
                self.cfg.quorums.classic_size()
            };
            let coord_targets = self.pick_subset(&coords, cq.quorum_size(), ctx);
            let acc_targets = self.pick_subset(&accs, acc_size, ctx);
            let msg = Msg::ProposeBatch {
                cmds,
                acc_quorum: Some(acc_targets.clone()),
            };
            ctx.multicast(&coord_targets, msg.clone());
            if fast {
                ctx.multicast(&acc_targets, msg);
            }
        } else {
            let msg = Msg::ProposeBatch {
                cmds,
                acc_quorum: None,
            };
            ctx.multicast(&coords, msg.clone());
            ctx.multicast(&accs, msg);
        }
    }

    /// Flushes the outbox as `ProposeBatch` chunks. A partial chunk only
    /// goes out when the linger expired (or no linger is configured);
    /// otherwise the `TOK_BATCH` timer is armed to bound its wait.
    fn flush_outbox(&mut self, linger_expired: bool, ctx: &mut dyn Context<Msg<C>>) {
        let b = self.cfg.batch;
        let mut allow_partial = linger_expired || b.batch_ticks.ticks() == 0;
        while !self.outbox.is_empty() {
            if self.outbox.len() < b.batch_size && !allow_partial {
                if !self.linger_armed {
                    self.linger_armed = true;
                    ctx.set_timer(b.batch_ticks, TOK_BATCH);
                }
                return;
            }
            // One linger expiry flushes exactly one partial chunk.
            allow_partial = b.batch_ticks.ticks() == 0;
            let take = self.outbox.len().min(b.batch_size);
            let chunk: Vec<C::Cmd> = self.outbox.drain(..take).collect();
            self.forward_batch(chunk, ctx);
        }
    }

    /// Moves stalled commands into the outbox while the in-flight window
    /// has room, then flushes.
    fn promote_stalled(&mut self, ctx: &mut dyn Context<Msg<C>>) {
        let cap = self.cfg.batch.queue_cap;
        if self.stalled.is_empty() || cap == 0 {
            return;
        }
        while !self.stalled.is_empty() && self.in_flight() + self.outbox.len() < cap {
            let cmd = self.stalled.remove(0);
            self.outbox.push(cmd);
        }
        self.flush_outbox(false, ctx);
    }

    fn arm_resend(&self, ctx: &mut dyn Context<Msg<C>>) {
        let every = self.cfg.timing.proposer_resend;
        if every.ticks() == 0 {
            return;
        }
        // The same jittered-exponential policy the TCP transport uses
        // for reconnect supervision. Jitter decorrelates proposers
        // retransmitting into the same recovering cluster; the draw
        // happens only when jitter is configured, so default deployments
        // consume no randomness here.
        let policy = Backoff::new(
            every,
            self.cfg.timing.proposer_backoff_max,
            self.cfg.timing.proposer_jitter,
        );
        let delay = policy.delay(self.attempts, || ctx.random());
        ctx.set_timer(delay, TOK_RESEND);
    }
}

impl<C: CStruct> Actor for Proposer<C> {
    type Msg = Msg<C>;

    fn on_start(&mut self, ctx: &mut dyn Context<Msg<C>>) {
        self.arm_resend(ctx);
    }

    fn on_message(&mut self, _from: ProcessId, msg: Msg<C>, ctx: &mut dyn Context<Msg<C>>) {
        match msg {
            Msg::Propose { cmd, .. } => {
                if !self.batching() {
                    if !self.pending.contains(&cmd) {
                        self.pending.push(cmd.clone());
                        ctx.metric(Metric::incr(metrics::PROPOSED));
                    }
                    self.forward(&cmd, ctx);
                    return;
                }
                // Batching mode: admit once, then let the outbox/linger
                // machinery decide when the command reaches the wire.
                // Duplicate submissions are covered by the resend timer
                // instead of an immediate re-forward.
                if self.pending.contains(&cmd) {
                    return;
                }
                // Window occupancy before this admission: forwarded or
                // outboxed commands, not stall-held ones.
                let occupied = self.in_flight() + self.outbox.len();
                self.pending.push(cmd.clone());
                ctx.metric(Metric::incr(metrics::PROPOSED));
                let b = self.cfg.batch;
                if b.overflow == Overflow::Stall && b.queue_cap > 0 && occupied >= b.queue_cap {
                    ctx.metric(Metric::incr(metrics::BACKPRESSURE_STALLS));
                    self.stalled.push(cmd);
                    return;
                }
                self.outbox.push(cmd);
                self.flush_outbox(false, ctx);
            }
            Msg::Learned { cmds } => {
                let before = self.pending.len();
                self.pending.retain(|c| !cmds.contains(c));
                self.outbox.retain(|c| !cmds.contains(c));
                self.stalled.retain(|c| !cmds.contains(c));
                if self.pending.len() < before {
                    // Progress: the path works again, restart the ladder.
                    self.attempts = 0;
                    if self.batching() {
                        self.promote_stalled(ctx);
                    }
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut dyn Context<Msg<C>>) {
        if token == TOK_RESEND {
            if !self.pending.is_empty() {
                ctx.metric(Metric::incr(metrics::RESENDS));
                if self.batching() {
                    // Re-forward the in-flight window (everything pending
                    // except stall-held commands) in batch-sized chunks;
                    // the outbox rides along, so clear it — its contents
                    // are on the wire after this.
                    let window: Vec<C::Cmd> = self
                        .pending
                        .iter()
                        .filter(|c| !self.stalled.contains(c))
                        .cloned()
                        .collect();
                    self.outbox.clear();
                    if std::mem::take(&mut self.linger_armed) {
                        ctx.cancel_timer(TOK_BATCH);
                    }
                    let chunk = self.cfg.batch.batch_size.max(1);
                    for part in window.chunks(chunk) {
                        self.forward_batch(part.to_vec(), ctx);
                    }
                } else {
                    for cmd in &self.pending {
                        self.forward(cmd, ctx);
                    }
                }
                self.attempts = self.attempts.saturating_add(1);
            } else {
                self.attempts = 0;
            }
            self.arm_resend(ctx);
        } else if token == TOK_BATCH {
            self.linger_armed = false;
            self.flush_outbox(true, ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Policy;
    use mcpaxos_actor::{MemStore, SimDuration, SimTime, StableStore};
    use mcpaxos_cstruct::SingleDecree;

    type C = SingleDecree<u32>;

    struct Ctx {
        sent: Vec<(ProcessId, Msg<C>)>,
        store: MemStore,
        timers: Vec<TimerToken>,
        rnd: u64,
    }

    impl Context<Msg<C>> for Ctx {
        fn me(&self) -> ProcessId {
            ProcessId(0)
        }
        fn now(&self) -> SimTime {
            SimTime::ZERO
        }
        fn send(&mut self, to: ProcessId, msg: Msg<C>) {
            self.sent.push((to, msg));
        }
        fn set_timer(&mut self, _after: SimDuration, token: TimerToken) {
            self.timers.push(token);
        }
        fn cancel_timer(&mut self, _token: TimerToken) {}
        fn storage(&mut self) -> &mut dyn StableStore {
            &mut self.store
        }
        fn metric(&mut self, _m: Metric) {}
        fn random(&mut self) -> u64 {
            self.rnd = self.rnd.wrapping_add(0x9E37_79B9_7F4A_7C15);
            self.rnd
        }
    }

    fn ctx() -> Ctx {
        Ctx {
            sent: vec![],
            store: MemStore::new(),
            timers: vec![],
            rnd: 0,
        }
    }

    #[test]
    fn broadcasts_to_coordinators_and_acceptors() {
        let cfg = Arc::new(DeployConfig::simple(1, 3, 5, 1, Policy::MultiCoordinated));
        let mut p: Proposer<C> = Proposer::new(cfg.clone());
        let mut c = ctx();
        p.on_message(
            ProcessId(99),
            Msg::Propose {
                cmd: 7,
                acc_quorum: None,
            },
            &mut c,
        );
        // 3 coordinators + 5 acceptors.
        assert_eq!(c.sent.len(), 8);
        assert_eq!(p.pending(), &[7]);
        // Duplicate submission does not duplicate pending but re-forwards.
        p.on_message(
            ProcessId(99),
            Msg::Propose {
                cmd: 7,
                acc_quorum: None,
            },
            &mut c,
        );
        assert_eq!(p.pending(), &[7]);
        assert_eq!(c.sent.len(), 16);
    }

    #[test]
    fn load_balance_pins_an_acceptor_quorum() {
        let cfg = Arc::new(
            DeployConfig::simple(1, 3, 5, 1, Policy::MultiCoordinated).with_load_balance(true),
        );
        let mut p: Proposer<C> = Proposer::new(cfg);
        let mut c = ctx();
        p.on_message(
            ProcessId(99),
            Msg::Propose {
                cmd: 7,
                acc_quorum: None,
            },
            &mut c,
        );
        // 2-of-3 coordinator quorum only (classic rounds: acceptors are
        // reached by the coordinators, §4.1), acceptor pin piggybacked.
        assert_eq!(c.sent.len(), 2);
        for (_, m) in &c.sent {
            match m {
                Msg::Propose { acc_quorum, .. } => {
                    assert_eq!(acc_quorum.as_ref().unwrap().len(), 3);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    fn batch_cfg(batch: usize, cap: usize, overflow: crate::config::Overflow) -> Arc<DeployConfig> {
        let b = crate::config::BatchConfig {
            batch_size: batch,
            batch_ticks: SimDuration(2),
            pipeline_depth: 4,
            queue_cap: cap,
            overflow,
        };
        Arc::new(DeployConfig::simple(1, 1, 3, 1, Policy::SingleCoordinated).with_batching(b))
    }

    /// Batches as seen by one process (the first coordinator), so each
    /// multicast counts once.
    fn batches_of(c: &Ctx, cfg: &DeployConfig) -> Vec<Vec<u32>> {
        let coord = cfg.roles.coordinators()[0];
        let mut out = vec![];
        for (to, m) in &c.sent {
            if let (true, Msg::ProposeBatch { cmds, .. }) = (*to == coord, m) {
                out.push(cmds.clone());
            }
        }
        out
    }

    #[test]
    fn batching_lingers_partial_and_flushes_full_batches() {
        let cfg = batch_cfg(2, 0, crate::config::Overflow::Shed);
        let mut p: Proposer<C> = Proposer::new(cfg.clone());
        let mut c = ctx();
        p.on_message(
            ProcessId(99),
            Msg::Propose {
                cmd: 1,
                acc_quorum: None,
            },
            &mut c,
        );
        // Partial batch lingers: nothing on the wire, TOK_BATCH armed.
        assert!(c.sent.is_empty());
        assert_eq!(c.timers, vec![TOK_BATCH]);
        p.on_message(
            ProcessId(99),
            Msg::Propose {
                cmd: 2,
                acc_quorum: None,
            },
            &mut c,
        );
        // Full batch: one ProposeBatch to 1 coordinator + 3 acceptors.
        assert_eq!(c.sent.len(), 4);
        assert_eq!(batches_of(&c, &cfg)[0], vec![1, 2]);
        // A new partial lingers until the timer fires, then flushes as-is.
        p.on_message(
            ProcessId(99),
            Msg::Propose {
                cmd: 3,
                acc_quorum: None,
            },
            &mut c,
        );
        assert_eq!(c.sent.len(), 4);
        p.on_timer(TOK_BATCH, &mut c);
        assert_eq!(c.sent.len(), 8);
        assert_eq!(batches_of(&c, &cfg)[1], vec![3]);
        assert_eq!(p.pending(), &[1, 2, 3]);
    }

    #[test]
    fn stall_window_holds_commands_and_promotes_on_progress() {
        let cfg = batch_cfg(1, 2, crate::config::Overflow::Stall);
        // batch_size 1 + linger still means a chunk of 1 flushes as soon
        // as it is full, so every admitted command hits the wire at once.
        let mut p: Proposer<C> = Proposer::new(cfg.clone());
        let mut c = ctx();
        for cmd in [1u32, 2, 3] {
            p.on_message(
                ProcessId(99),
                Msg::Propose {
                    cmd,
                    acc_quorum: None,
                },
                &mut c,
            );
        }
        // Window of 2 in flight; the third command is held back.
        assert_eq!(batches_of(&c, &cfg), vec![vec![1], vec![2]]);
        assert_eq!(p.stalled(), &[3]);
        // Learning progress frees a slot: the stalled command goes out.
        p.on_message(ProcessId(50), Msg::Learned { cmds: vec![1] }, &mut c);
        assert_eq!(batches_of(&c, &cfg), vec![vec![1], vec![2], vec![3]]);
        assert!(p.stalled().is_empty());
        assert_eq!(p.pending(), &[2, 3]);
    }

    #[test]
    fn resend_rebatches_the_inflight_window() {
        let cfg = batch_cfg(2, 0, crate::config::Overflow::Shed);
        let mut p: Proposer<C> = Proposer::new(cfg.clone());
        let mut c = ctx();
        for cmd in [1u32, 2, 3, 4, 5] {
            p.on_message(
                ProcessId(99),
                Msg::Propose {
                    cmd,
                    acc_quorum: None,
                },
                &mut c,
            );
        }
        // Two full batches flushed, command 5 lingering in the outbox.
        assert_eq!(batches_of(&c, &cfg), vec![vec![1, 2], vec![3, 4]]);
        c.sent.clear();
        p.on_timer(TOK_RESEND, &mut c);
        // The whole pending window is re-forwarded in batch-size chunks
        // (the lingering outbox rides along instead of waiting).
        assert_eq!(batches_of(&c, &cfg), vec![vec![1, 2], vec![3, 4], vec![5]]);
        // The outbox was absorbed by the resend: a later linger expiry
        // has nothing left to flush.
        c.sent.clear();
        p.on_timer(TOK_BATCH, &mut c);
        assert!(c.sent.is_empty());
    }

    #[test]
    fn learned_clears_pending_and_resend_repeats() {
        let cfg = Arc::new(DeployConfig::simple(1, 1, 3, 1, Policy::SingleCoordinated));
        let mut p: Proposer<C> = Proposer::new(cfg);
        let mut c = ctx();
        p.on_start(&mut c);
        assert_eq!(c.timers, vec![TOK_RESEND]);
        for cmd in [1u32, 2, 3] {
            p.on_message(
                ProcessId(99),
                Msg::Propose {
                    cmd,
                    acc_quorum: None,
                },
                &mut c,
            );
        }
        p.on_message(ProcessId(50), Msg::Learned { cmds: vec![1, 3] }, &mut c);
        assert_eq!(p.pending(), &[2]);
        let before = c.sent.len();
        p.on_timer(TOK_RESEND, &mut c);
        assert_eq!(c.sent.len() - before, 4, "1 coord + 3 acceptors for cmd 2");
    }
}
