//! The proposer agent.
//!
//! Proposers take commands from clients (the hosting application calls
//! [`Msg::Propose`] at them) and forward them to the round machinery:
//! to every coordinator, and — because rounds may be fast — to every
//! acceptor (§2.2: "proposers should send their propose messages to both
//! coordinators and acceptors"). Under §4.1 load balancing the proposer
//! instead picks one coordinator quorum and one acceptor quorum per
//! command and pins the acceptor choice in the message.
//!
//! Proposers retransmit pending commands until a learner reports them
//! learned, which (together with coordinators re-sending their "2a" on
//! duplicate proposals) makes the protocol live under fair-lossy links.

use crate::agents::{metrics, TOK_RESEND};
use crate::config::DeployConfig;
use crate::msg::Msg;
use mcpaxos_actor::{Actor, Backoff, Context, Metric, ProcessId, TimerToken};
use mcpaxos_cstruct::CStruct;
use std::sync::Arc;

/// The proposer role (§2.1: clients issuing commands).
pub struct Proposer<C: CStruct> {
    cfg: Arc<DeployConfig>,
    pending: Vec<C::Cmd>,
    /// Consecutive retransmission rounds without learning progress. When
    /// `Timing::proposer_backoff_max` is set, the resend period doubles
    /// with each attempt (capped there) so a partitioned or failing-over
    /// cluster is not hammered at the base rate; any progress resets it.
    attempts: u32,
}

impl<C: CStruct> Proposer<C> {
    /// Creates a proposer for the given deployment.
    pub fn new(cfg: Arc<DeployConfig>) -> Self {
        Proposer {
            cfg,
            pending: Vec::new(),
            attempts: 0,
        }
    }

    /// Commands proposed but not yet reported learned.
    pub fn pending(&self) -> &[C::Cmd] {
        &self.pending
    }

    fn pick_subset(
        &self,
        pool: &[ProcessId],
        size: usize,
        ctx: &mut dyn Context<Msg<C>>,
    ) -> Vec<ProcessId> {
        // Rotate the pool by a random offset and take `size` members: a
        // cheap uniform-ish quorum choice that spreads load (§4.1).
        let n = pool.len();
        let start = (ctx.random() as usize) % n;
        (0..size.min(n)).map(|i| pool[(start + i) % n]).collect()
    }

    fn forward(&self, cmd: &C::Cmd, ctx: &mut dyn Context<Msg<C>>) {
        let coords = self.cfg.roles.coordinators().to_vec();
        let accs = self.cfg.roles.acceptors().to_vec();
        if self.cfg.load_balance {
            // §4.1: pick one coordinator quorum and one acceptor quorum
            // per command; the acceptor choice rides in the message so the
            // whole coordinator quorum forwards to the same acceptors.
            // In classic rounds proposals go only to the coordinators;
            // under a fast policy they also go to the (fast-sized) chosen
            // acceptor quorum.
            let fresh = self.cfg.schedule.initial(0, 0);
            let cq = self.cfg.schedule.coord_quorum(fresh);
            let fast = self.cfg.schedule.kind(fresh) == crate::schedule::RoundKind::Fast;
            let acc_size = if fast {
                self.cfg.quorums.fast_size()
            } else {
                self.cfg.quorums.classic_size()
            };
            let coord_targets = self.pick_subset(&coords, cq.quorum_size(), ctx);
            let acc_targets = self.pick_subset(&accs, acc_size, ctx);
            let msg = Msg::Propose {
                cmd: cmd.clone(),
                acc_quorum: Some(acc_targets.clone()),
            };
            ctx.multicast(&coord_targets, msg.clone());
            if fast {
                ctx.multicast(&acc_targets, msg);
            }
        } else {
            let msg = Msg::Propose {
                cmd: cmd.clone(),
                acc_quorum: None,
            };
            ctx.multicast(&coords, msg.clone());
            ctx.multicast(&accs, msg);
        }
    }

    fn arm_resend(&self, ctx: &mut dyn Context<Msg<C>>) {
        let every = self.cfg.timing.proposer_resend;
        if every.ticks() == 0 {
            return;
        }
        // The same jittered-exponential policy the TCP transport uses
        // for reconnect supervision. Jitter decorrelates proposers
        // retransmitting into the same recovering cluster; the draw
        // happens only when jitter is configured, so default deployments
        // consume no randomness here.
        let policy = Backoff::new(
            every,
            self.cfg.timing.proposer_backoff_max,
            self.cfg.timing.proposer_jitter,
        );
        let delay = policy.delay(self.attempts, || ctx.random());
        ctx.set_timer(delay, TOK_RESEND);
    }
}

impl<C: CStruct> Actor for Proposer<C> {
    type Msg = Msg<C>;

    fn on_start(&mut self, ctx: &mut dyn Context<Msg<C>>) {
        self.arm_resend(ctx);
    }

    fn on_message(&mut self, _from: ProcessId, msg: Msg<C>, ctx: &mut dyn Context<Msg<C>>) {
        match msg {
            Msg::Propose { cmd, .. } => {
                if !self.pending.contains(&cmd) {
                    self.pending.push(cmd.clone());
                    ctx.metric(Metric::incr(metrics::PROPOSED));
                }
                self.forward(&cmd, ctx);
            }
            Msg::Learned { cmds } => {
                let before = self.pending.len();
                self.pending.retain(|c| !cmds.contains(c));
                if self.pending.len() < before {
                    // Progress: the path works again, restart the ladder.
                    self.attempts = 0;
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut dyn Context<Msg<C>>) {
        if token == TOK_RESEND {
            if !self.pending.is_empty() {
                ctx.metric(Metric::incr(metrics::RESENDS));
                for cmd in &self.pending {
                    self.forward(cmd, ctx);
                }
                self.attempts = self.attempts.saturating_add(1);
            } else {
                self.attempts = 0;
            }
            self.arm_resend(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Policy;
    use mcpaxos_actor::{MemStore, SimDuration, SimTime, StableStore};
    use mcpaxos_cstruct::SingleDecree;

    type C = SingleDecree<u32>;

    struct Ctx {
        sent: Vec<(ProcessId, Msg<C>)>,
        store: MemStore,
        timers: Vec<TimerToken>,
        rnd: u64,
    }

    impl Context<Msg<C>> for Ctx {
        fn me(&self) -> ProcessId {
            ProcessId(0)
        }
        fn now(&self) -> SimTime {
            SimTime::ZERO
        }
        fn send(&mut self, to: ProcessId, msg: Msg<C>) {
            self.sent.push((to, msg));
        }
        fn set_timer(&mut self, _after: SimDuration, token: TimerToken) {
            self.timers.push(token);
        }
        fn cancel_timer(&mut self, _token: TimerToken) {}
        fn storage(&mut self) -> &mut dyn StableStore {
            &mut self.store
        }
        fn metric(&mut self, _m: Metric) {}
        fn random(&mut self) -> u64 {
            self.rnd = self.rnd.wrapping_add(0x9E37_79B9_7F4A_7C15);
            self.rnd
        }
    }

    fn ctx() -> Ctx {
        Ctx {
            sent: vec![],
            store: MemStore::new(),
            timers: vec![],
            rnd: 0,
        }
    }

    #[test]
    fn broadcasts_to_coordinators_and_acceptors() {
        let cfg = Arc::new(DeployConfig::simple(1, 3, 5, 1, Policy::MultiCoordinated));
        let mut p: Proposer<C> = Proposer::new(cfg.clone());
        let mut c = ctx();
        p.on_message(
            ProcessId(99),
            Msg::Propose {
                cmd: 7,
                acc_quorum: None,
            },
            &mut c,
        );
        // 3 coordinators + 5 acceptors.
        assert_eq!(c.sent.len(), 8);
        assert_eq!(p.pending(), &[7]);
        // Duplicate submission does not duplicate pending but re-forwards.
        p.on_message(
            ProcessId(99),
            Msg::Propose {
                cmd: 7,
                acc_quorum: None,
            },
            &mut c,
        );
        assert_eq!(p.pending(), &[7]);
        assert_eq!(c.sent.len(), 16);
    }

    #[test]
    fn load_balance_pins_an_acceptor_quorum() {
        let cfg = Arc::new(
            DeployConfig::simple(1, 3, 5, 1, Policy::MultiCoordinated).with_load_balance(true),
        );
        let mut p: Proposer<C> = Proposer::new(cfg);
        let mut c = ctx();
        p.on_message(
            ProcessId(99),
            Msg::Propose {
                cmd: 7,
                acc_quorum: None,
            },
            &mut c,
        );
        // 2-of-3 coordinator quorum only (classic rounds: acceptors are
        // reached by the coordinators, §4.1), acceptor pin piggybacked.
        assert_eq!(c.sent.len(), 2);
        for (_, m) in &c.sent {
            match m {
                Msg::Propose { acc_quorum, .. } => {
                    assert_eq!(acc_quorum.as_ref().unwrap().len(), 3);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn learned_clears_pending_and_resend_repeats() {
        let cfg = Arc::new(DeployConfig::simple(1, 1, 3, 1, Policy::SingleCoordinated));
        let mut p: Proposer<C> = Proposer::new(cfg);
        let mut c = ctx();
        p.on_start(&mut c);
        assert_eq!(c.timers, vec![TOK_RESEND]);
        for cmd in [1u32, 2, 3] {
            p.on_message(
                ProcessId(99),
                Msg::Propose {
                    cmd,
                    acc_quorum: None,
                },
                &mut c,
            );
        }
        p.on_message(ProcessId(50), Msg::Learned { cmds: vec![1, 3] }, &mut c);
        assert_eq!(p.pending(), &[2]);
        let before = c.sent.len();
        p.on_timer(TOK_RESEND, &mut c);
        assert_eq!(c.sent.len() - before, 4, "1 coord + 3 acceptors for cmd 2");
    }
}
