//! The coordinator agent.
//!
//! Coordinators implement `Phase1a`, `Phase2Start` and `Phase2aClassic` of
//! §3.2, plus the liveness machinery of §4.3: heartbeat-based leader
//! election, stall detection, reaction to `RoundTooLow` nacks, and the
//! collision-recovery variants of §4.2 (observing "2b" traffic to detect
//! fast-round collisions, reusing it as "1b" evidence for the successor
//! round under coordinated recovery).
//!
//! Durability (§4.4): a coordinator performs **no disk writes per
//! command**. It persists only the id of each round it engages in (one
//! small write per round change); after a crash it refuses to act in
//! rounds at or below the persisted floor, which realises the paper's
//! "recovered coordinator is a new coordinator" (incarnation) argument
//! while keeping `Phase2Start` once-per-round.

use crate::agents::{metrics, TOK_BATCH, TOK_TICK};
use crate::compact::{Compactor, Resolved};
use crate::config::{CollisionPolicy, DeployConfig};
use crate::msg::{Msg, Payload};
use crate::provedsafe::{pick, proved_safe, OneB};
use crate::round::Round;
use crate::schedule::RoundKind;
use mcpaxos_actor::wire::{from_bytes, to_bytes};
use mcpaxos_actor::{Actor, Context, Metric, ProcessId, SimTime, TimerToken};
use mcpaxos_cstruct::{glb_all_ref, CStruct};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// Storage key for the round floor (see module docs).
const KEY_FLOOR: &str = "crnd";

/// Rounds of bookkeeping kept before pruning.
const ROUND_WINDOW: usize = 8;

/// The coordinator role.
pub struct Coordinator<C: CStruct> {
    cfg: Arc<DeployConfig>,
    me: ProcessId,
    me_idx: u16,
    crnd: Round,
    /// The round's value, shared: full-payload 2a sends bump this Arc
    /// instead of deep-cloning the history (mutation uses copy-on-write).
    cval: Option<Arc<C>>,
    /// Persisted barrier: never act in rounds ≤ floor after recovery.
    floor: Round,
    round_1b: BTreeMap<Round, BTreeMap<ProcessId, OneB<C>>>,
    /// Observed "2b" values per acceptor, per round (payloads shared with
    /// the messages they arrived in).
    round_2b: BTreeMap<Round, BTreeMap<ProcessId, Arc<C>>>,
    collided: BTreeSet<Round>,
    /// Recovery rounds whose "1a" we already echoed to acceptors.
    echoed_1a: BTreeSet<Round>,
    /// Last time collision evidence was seen (drives the §4.2 backoff to
    /// single-coordinated rounds).
    last_collision: Option<SimTime>,
    /// Proposals awaiting a round to carry them.
    backlog: Vec<C::Cmd>,
    /// Proposals not yet observed accepted by an acceptor quorum.
    outstanding: Vec<C::Cmd>,
    /// Last heartbeat received, per coordinator.
    alive: BTreeMap<ProcessId, SimTime>,
    /// Failure detector (active when `Timing::fd_suspect_after` > 0):
    /// peer coordinators currently suspected of having crashed. The
    /// leader view skips suspected peers, so a dead leader is demoted as
    /// soon as its suspicion timeout lapses instead of `leader_timeout`.
    suspected: BTreeSet<ProcessId>,
    /// Per-peer suspicion backoff level: each *false* suspicion (the
    /// suspect is heard from again) doubles that peer's suspicion
    /// timeout, capped at `Timing::fd_backoff_max` doublings.
    suspect_level: BTreeMap<ProcessId, u32>,
    max_heard: Round,
    last_progress: SimTime,
    /// Stable-prefix compaction state.
    comp: Compactor<C>,
    /// Per acceptor: the round and logical value length of the last "2a"
    /// we shipped it — the base the next delta extends.
    sent_2a: BTreeMap<ProcessId, (Round, u64)>,
    /// Batching mode: commands admitted to the current classic round but
    /// not yet shipped in a `2a` wave.
    batch_queue: Vec<C::Cmd>,
    /// Batching mode: in-flight `2a` waves, each recorded as the
    /// `total_len` of `cval` when the wave went out. A wave retires once
    /// an acceptor quorum's `2b` values all reach its target length;
    /// retirement frees a pipeline slot and pumps the next wave.
    waves: VecDeque<u64>,
    /// Whether a `TOK_BATCH` linger flush is currently armed (avoids
    /// re-arming — and thereby pushing back — the timer on every
    /// admission while a partial batch waits).
    linger_armed: bool,
}

impl<C: CStruct> Coordinator<C> {
    /// Creates the coordinator with identity `me`.
    ///
    /// # Panics
    ///
    /// Panics if `me` is not a coordinator in the deployment's role map.
    pub fn new(cfg: Arc<DeployConfig>, me: ProcessId) -> Self {
        let me_idx = cfg
            .roles
            .coordinators()
            .iter()
            .position(|&c| c == me)
            .expect("process is not a coordinator in this deployment") as u16;
        let comp = Compactor::new(cfg.wire.stable_keep);
        Coordinator {
            cfg,
            me,
            me_idx,
            crnd: Round::ZERO,
            cval: None,
            floor: Round::ZERO,
            round_1b: BTreeMap::new(),
            round_2b: BTreeMap::new(),
            collided: BTreeSet::new(),
            echoed_1a: BTreeSet::new(),
            last_collision: None,
            backlog: Vec::new(),
            outstanding: Vec::new(),
            alive: BTreeMap::new(),
            suspected: BTreeSet::new(),
            suspect_level: BTreeMap::new(),
            max_heard: Round::ZERO,
            last_progress: SimTime::ZERO,
            comp,
            sent_2a: BTreeMap::new(),
            batch_queue: Vec::new(),
            waves: VecDeque::new(),
            linger_armed: false,
        }
    }

    fn batching(&self) -> bool {
        self.cfg.batch.enabled()
    }

    /// Batching-mode admission: queue `cmd` for the next `2a` wave of the
    /// current classic round, shedding (counted) past `queue_cap`.
    /// Commands already queued or already shipped in `cval` are
    /// retransmissions of in-flight work and are dropped — loss recovery
    /// runs through the stall detector's round change, which re-seeds
    /// `outstanding`.
    fn enqueue_batched(&mut self, cmd: C::Cmd, ctx: &mut dyn Context<Msg<C>>) {
        let dup =
            self.batch_queue.contains(&cmd) || self.cval.as_ref().is_some_and(|v| v.contains(&cmd));
        if dup {
            return;
        }
        let cap = self.cfg.batch.queue_cap;
        if cap > 0 && self.batch_queue.len() >= cap {
            // Shed regardless of the configured overflow policy: Stall is
            // enforced at the proposer's forward window, so a command
            // overflowing *here* has already escaped that window.
            ctx.metric(Metric::incr(metrics::BACKPRESSURE_SHEDS));
            return;
        }
        self.batch_queue.push(cmd);
    }

    /// Drains the batch queue into `2a` waves: up to `batch_size`
    /// commands per wave, up to `pipeline_depth` waves in flight. A
    /// partial batch lingers for `batch_ticks` (armed once per wait)
    /// unless `linger_expired` — or a zero linger — flushes it as-is.
    fn pump_batches(&mut self, linger_expired: bool, ctx: &mut dyn Context<Msg<C>>) {
        if !self.batching() || self.batch_queue.is_empty() {
            return;
        }
        let mut val = match self.cval.take() {
            Some(v) => v,
            None => return,
        };
        if self.cfg.schedule.kind(self.crnd) != RoundKind::Classic {
            self.cval = Some(val);
            return;
        }
        let b = self.cfg.batch;
        let mut allow_partial = linger_expired || b.batch_ticks.ticks() == 0;
        while !self.batch_queue.is_empty() && self.waves.len() < b.pipeline_depth {
            if self.batch_queue.len() < b.batch_size && !allow_partial {
                if !self.linger_armed {
                    self.linger_armed = true;
                    ctx.set_timer(b.batch_ticks, TOK_BATCH);
                }
                break;
            }
            // One linger expiry flushes one partial wave; full waves keep
            // draining.
            allow_partial = b.batch_ticks.ticks() == 0;
            let take = self.batch_queue.len().min(b.batch_size);
            let target = {
                let v = Arc::make_mut(&mut val);
                v.append_all(self.batch_queue.drain(..take));
                v.total_len()
            };
            ctx.metric(Metric::incr(metrics::PHASE2A));
            ctx.metric(Metric::incr(metrics::BATCHES));
            ctx.metric(Metric::add(metrics::BATCHED_CMDS, take as i64));
            let acceptors = self.cfg.roles.acceptors().to_vec();
            self.send_2a(&acceptors, self.crnd, &val, ctx);
            self.waves.push_back(target);
        }
        self.cval = Some(val);
    }

    /// Clears the batch scheduler on a round change: queued commands
    /// survive in `outstanding` (the next `Phase2Start` re-seeds them),
    /// in-flight waves belong to the abandoned round.
    fn reset_batches(&mut self, ctx: &mut dyn Context<Msg<C>>) {
        if !self.batching() {
            return;
        }
        self.batch_queue.clear();
        self.waves.clear();
        if std::mem::take(&mut self.linger_armed) {
            ctx.cancel_timer(TOK_BATCH);
        }
    }

    /// The coordinator's current round.
    pub fn crnd(&self) -> Round {
        self.crnd
    }

    /// The latest c-struct sent in a phase "2a" for the current round.
    pub fn cval(&self) -> Option<&C> {
        self.cval.as_deref()
    }

    /// Whether this coordinator currently believes itself leader.
    pub fn believes_leader(&self, now: SimTime) -> bool {
        self.leader(now) == self.me
    }

    fn leader(&self, now: SimTime) -> ProcessId {
        let timeout = self.cfg.timing.leader_timeout;
        // Never self-suspecting means the scan always terminates at
        // `self.me` in the worst case: some coordinator is always leader
        // in every view, so suspicion can demote but never livelock.
        *self
            .cfg
            .roles
            .coordinators()
            .iter()
            .find(|&&c| {
                if self.fd_enabled() && self.suspected.contains(&c) {
                    return false;
                }
                c == self.me
                    || self
                        .alive
                        .get(&c)
                        .map(|&t| now.since(t) <= timeout)
                        .unwrap_or(false)
            })
            .unwrap_or(&self.me)
    }

    /// Coordinators this coordinator currently suspects (test accessor).
    pub fn suspects(&self) -> Vec<ProcessId> {
        self.suspected.iter().copied().collect()
    }

    /// The coordinator this one currently believes is leader.
    pub fn leader_view(&self, now: SimTime) -> ProcessId {
        self.leader(now)
    }

    fn fd_enabled(&self) -> bool {
        self.cfg.timing.fd_suspect_after.ticks() > 0
    }

    /// Current suspicion timeout for `peer`: the base timeout doubled
    /// once per past false suspicion, capped at `fd_backoff_max`.
    fn fd_timeout(&self, peer: ProcessId) -> mcpaxos_actor::SimDuration {
        let level = self
            .suspect_level
            .get(&peer)
            .copied()
            .unwrap_or(0)
            .min(self.cfg.timing.fd_backoff_max);
        mcpaxos_actor::SimDuration(self.cfg.timing.fd_suspect_after.ticks() << level)
    }

    /// Whether round `r` keeps serving despite the currently suspected
    /// coordinators: its unsuspected coordinator set still forms a
    /// coordinator quorum (§4.1 — the availability edge of
    /// multicoordinated rounds; a single-owner round rides through only
    /// while its owner is unsuspected).
    fn round_rides_through(&self, r: Round) -> bool {
        let members = self.cfg.schedule.coordinators_of(r);
        let live = members
            .iter()
            .filter(|c| !self.suspected.contains(c))
            .count();
        self.cfg.schedule.coord_quorum(r).is_quorum(live)
    }

    /// Failure-detector scan: suspect peers whose heartbeat silence
    /// exceeds their (backed-off) suspicion timeout. If demoting them
    /// makes this coordinator the leader, take over immediately — with a
    /// fresh higher round if the active round lost its coordinator
    /// quorum, and *without* one if it still rides through (§4.1: a
    /// multicoordinated round absorbs the crash, so a phase-1 restart
    /// would only add the stall it exists to avoid). Returns `true` when
    /// a failover round was started (the caller's remaining leader
    /// duties are moot for this tick).
    fn fd_scan(&mut self, now: SimTime, ctx: &mut dyn Context<Msg<C>>) -> bool {
        if !self.fd_enabled() {
            return false;
        }
        let led_before = self.leader(now);
        for c in self.cfg.roles.coordinators().to_vec() {
            if c == self.me || self.suspected.contains(&c) {
                continue;
            }
            let heard = self.alive.get(&c).copied().unwrap_or(SimTime::ZERO);
            if now.since(heard) > self.fd_timeout(c) {
                self.suspected.insert(c);
                ctx.metric(Metric::incr(metrics::SUSPICIONS));
            }
        }
        if led_before != self.me && self.leader(now) == self.me {
            ctx.metric(Metric::incr(metrics::FAILOVERS));
            let active = self.max_heard.max(self.crnd);
            if !active.is_zero() && self.round_rides_through(active) {
                // Ride-through takeover: leadership duties change hands,
                // the round does not.
                return false;
            }
            // The suspected leader's round is dead weight; claim a fresh
            // higher round right away.
            let r = self.fresh_round(active, now);
            self.start_round(r, ctx);
            return true;
        }
        false
    }

    /// A suspected peer spoke: the suspicion was false. Clear it and
    /// double that peer's future suspicion timeout (up to the cap).
    fn fd_hear(&mut self, from: ProcessId, ctx: &mut dyn Context<Msg<C>>) {
        if self.suspected.remove(&from) {
            let lvl = self.suspect_level.entry(from).or_insert(0);
            *lvl = (*lvl + 1).min(self.cfg.timing.fd_backoff_max);
            ctx.metric(Metric::incr(metrics::FALSE_SUSPICIONS));
        }
    }

    /// Fresh-round type, honouring the §4.2 collision backoff: while a
    /// recent collision is in memory, new rounds are single-coordinated.
    fn fresh_round(&self, heard: Round, now: SimTime) -> Round {
        let backing_off = self
            .last_collision
            .map(|t| now.since(t) <= self.cfg.timing.collision_backoff)
            .unwrap_or(false);
        let r = self.cfg.schedule.preempt(heard, self.me_idx);
        if backing_off {
            r.with_rtype(crate::schedule::RTYPE_SINGLE)
        } else {
            r
        }
    }

    fn note_heard(&mut self, r: Round) {
        if r > self.max_heard {
            self.max_heard = r;
        }
    }

    /// Emits the `bytes_sent` metric for `n` sends of `payload`, when byte
    /// accounting is on.
    fn account(&self, payload: &Payload<C>, n: usize, ctx: &mut dyn Context<Msg<C>>) {
        if self.cfg.wire.account_bytes {
            ctx.metric(Metric::add(
                metrics::BYTES_SENT,
                (payload.encoded_len() * n as u64) as i64,
            ));
        }
    }

    /// Ships `val` as the round's "2a" to `targets`: full values by
    /// default, per-peer suffix deltas against each peer's acked base
    /// under `WireConfig::delta_ship` (gaps surface as `NeedFull`).
    fn send_2a(
        &mut self,
        targets: &[ProcessId],
        round: Round,
        val: &Arc<C>,
        ctx: &mut dyn Context<Msg<C>>,
    ) {
        let total = val.total_len();
        if !self.cfg.wire.delta_ship {
            let payload = Payload::Full(val.clone());
            self.account(&payload, targets.len(), ctx);
            ctx.multicast(
                targets,
                Msg::P2a {
                    round,
                    val: payload,
                },
            );
            return;
        }
        // Digest of the shipped value: lets receivers reject deltas whose
        // base silently diverged despite matching lengths.
        let digest = crate::msg::value_digest(val.as_ref());
        for &t in targets {
            let base = match self.sent_2a.get(&t) {
                Some(&(r, len)) if r == round && len <= total => Some(len),
                _ => None,
            };
            let payload = match base.and_then(|len| Some((len, val.suffix_from(len)?))) {
                Some((base_len, suffix)) => {
                    ctx.metric(Metric::incr(metrics::DELTA_SENDS));
                    Payload::Delta {
                        base_len,
                        digest,
                        suffix,
                    }
                }
                None => Payload::Full(val.clone()),
            };
            self.account(&payload, 1, ctx);
            self.sent_2a.insert(t, (round, total));
            ctx.send(
                t,
                Msg::P2a {
                    round,
                    val: payload,
                },
            );
        }
    }

    /// Applies pending stable segments: `cval` (when held) is truncated,
    /// stored 1b/2b bookkeeping follows the new watermark, and proposals
    /// now below the watermark stop arming the stall detector.
    fn apply_compaction(&mut self, ctx: &mut dyn Context<Msg<C>>) {
        if self.cfg.wire.compact_every == 0 {
            return;
        }
        let mut pruned: Vec<C::Cmd> = Vec::new();
        let applied = match self.cval.as_mut() {
            Some(v) => self
                .comp
                .advance(Arc::make_mut(v), |seg| pruned.extend_from_slice(seg)),
            None => self.comp.advance_free(|seg| pruned.extend_from_slice(seg)),
        };
        if applied == 0 {
            return;
        }
        ctx.metric(Metric::add(metrics::TRUNCATIONS, applied as i64));
        self.outstanding.retain(|c| !pruned.contains(c));
        self.backlog.retain(|c| !pruned.contains(c));
        let comp = &self.comp;
        for m in self.round_1b.values_mut() {
            m.retain(|_, r| comp.normalize_arc(&mut r.vval));
        }
        for m in self.round_2b.values_mut() {
            m.retain(|_, v| comp.normalize_arc(v));
        }
    }

    /// Resolves an ingested c-struct payload against `base`, retrying once
    /// after advancing compaction on watermark mismatch. `None` = drop,
    /// `Some(Err(()))` = delta gap (ask the sender for a full value).
    #[allow(clippy::type_complexity)]
    fn ingest(
        &mut self,
        from: ProcessId,
        payload: Payload<C>,
        base: impl Fn(&Self) -> Option<Arc<C>>,
        ctx: &mut dyn Context<Msg<C>>,
    ) -> Option<Result<(Arc<C>, bool), ()>> {
        let b = base(self);
        match self.comp.resolve(payload, b.as_ref()) {
            Resolved::Value(v, changed) => Some(Ok((v, changed))),
            Resolved::Gap => Some(Err(())),
            Resolved::Unaligned(payload) => {
                self.apply_compaction(ctx);
                let b = base(self);
                match self.comp.resolve(payload, b.as_ref()) {
                    Resolved::Value(v, changed) => Some(Ok((v, changed))),
                    Resolved::Gap => Some(Err(())),
                    Resolved::Unaligned(p) => {
                        // Still behind the sender: ask for the missing
                        // stable segments.
                        if p.as_full()
                            .is_some_and(|v| v.watermark() > self.comp.watermark())
                        {
                            ctx.send(
                                from,
                                Msg::NeedStable {
                                    from: self.comp.watermark(),
                                },
                            );
                        }
                        None
                    }
                }
            }
        }
    }

    fn prune(&mut self) {
        while self.round_1b.len() > ROUND_WINDOW {
            let lowest = *self.round_1b.keys().next().expect("non-empty");
            self.round_1b.remove(&lowest);
        }
        while self.round_2b.len() > ROUND_WINDOW {
            let lowest = *self.round_2b.keys().next().expect("non-empty");
            self.round_2b.remove(&lowest);
        }
    }

    /// `Phase1a`: start round `r` by asking acceptors to join.
    fn start_round(&mut self, r: Round, ctx: &mut dyn Context<Msg<C>>) {
        if r <= self.crnd || r <= self.floor {
            return;
        }
        self.persist_floor(r, ctx);
        self.crnd = r;
        self.cval = None;
        self.reset_batches(ctx);
        self.note_heard(r);
        self.last_progress = ctx.now();
        ctx.metric(Metric::incr(metrics::ROUNDS_STARTED));
        let acceptors = self.cfg.roles.acceptors().to_vec();
        ctx.multicast(&acceptors, Msg::P1a { round: r });
    }

    fn persist_floor(&mut self, r: Round, ctx: &mut dyn Context<Msg<C>>) {
        if r > self.floor {
            self.floor = r;
            ctx.storage().write(KEY_FLOOR, to_bytes(&r));
        }
    }

    /// `Phase2Start`: once a classic quorum of "1b" messages for `round`
    /// arrived and we may still engage in it, pick a safe value and send
    /// the first "2a".
    fn try_phase2start(&mut self, round: Round, ctx: &mut dyn Context<Msg<C>>) {
        // Segments held back while no (or a stale) cval was around apply
        // now, so the picked value and the bookkeeping share a watermark.
        self.apply_compaction(ctx);
        let enabled = (self.crnd == round && self.cval.is_none())
            || (round > self.crnd && round > self.floor);
        if !enabled || !self.cfg.schedule.is_coordinator_of(self.me, round) {
            return;
        }
        let msgs: Vec<OneB<C>> = match self.round_1b.get(&round) {
            Some(m) if m.len() >= self.cfg.quorums.classic_size() => m.values().cloned().collect(),
            _ => return,
        };
        let sched = self.cfg.schedule.clone();
        let mut val = pick(proved_safe(&msgs, &self.cfg.quorums, |r| sched.kind(r)));
        for cmd in self.backlog.drain(..) {
            val.append(cmd);
        }
        // Also re-seed commands still in flight (proposed but not yet
        // observed chosen): a recovery round would otherwise start empty
        // and wait one proposer-retransmission period for its payload.
        for cmd in &self.outstanding {
            val.append(cmd.clone());
        }
        let val = Arc::new(val);
        self.persist_floor(round, ctx);
        self.crnd = round;
        self.note_heard(round);
        self.last_progress = ctx.now();
        ctx.metric(Metric::incr(metrics::PHASE2_STARTS));
        let acceptors = self.cfg.roles.acceptors().to_vec();
        self.send_2a(&acceptors, round, &val, ctx);
        if self.batching() {
            // The Phase2Start "2a" (carrying the re-seeded backlog and
            // outstanding commands) is itself the round's first wave; the
            // old round's scheduler state is void.
            self.reset_batches(ctx);
            if self.cfg.schedule.kind(round) == RoundKind::Classic {
                self.waves.push_back(val.total_len());
            }
        }
        self.cval = Some(val);
    }

    /// `Phase2aClassic`: extend the current value with a proposal and
    /// forward it.
    fn phase2a_classic(
        &mut self,
        cmd: C::Cmd,
        acc_quorum: Option<Vec<ProcessId>>,
        ctx: &mut dyn Context<Msg<C>>,
    ) {
        let mut val = match self.cval.take() {
            Some(v) => v,
            None => return,
        };
        Arc::make_mut(&mut val).append(cmd);
        ctx.metric(Metric::incr(metrics::PHASE2A));
        let targets = acc_quorum.unwrap_or_else(|| self.cfg.roles.acceptors().to_vec());
        // Under delta shipping each peer receives just the new suffix; the
        // full-value path shares the Arc with the fan-out — no clone.
        self.send_2a(&targets, self.crnd, &val, ctx);
        self.cval = Some(val);
    }

    /// Observes "2b" traffic: progress tracking plus fast-collision
    /// detection and recovery (§4.2).
    fn observe_2b(
        &mut self,
        from: ProcessId,
        round: Round,
        val: Arc<C>,
        ctx: &mut dyn Context<Msg<C>>,
    ) {
        let entry = self.round_2b.entry(round).or_default();
        let grew = match entry.get(&from) {
            Some(prev) => val.count() > prev.count(),
            None => true,
        };
        entry.insert(from, val);
        if grew {
            self.last_progress = ctx.now();
        }
        // Outstanding bookkeeping: a command accepted by an acceptor
        // quorum no longer needs a new round to make progress.
        let kind = self.cfg.schedule.kind(round);
        let entry = self.round_2b.get(&round).expect("just inserted");
        if entry.len() >= self.cfg.quorums.size_for(kind) && !self.outstanding.is_empty() {
            let g = glb_all_ref(entry.values().map(|v| v.as_ref()));
            // A command is served when the chosen value contains it — or
            // *absorbs* it (appending changes nothing): with consensus
            // c-structs a losing proposal can never be added once a value
            // is decided, so it must not keep the stall detector armed.
            self.outstanding
                .retain(|c| !g.contains(c) && g.appended(c) != g);
        }
        // Wave retirement: a pipelined `2a` wave is acknowledged once a
        // quorum of acceptors report `2b` values covering its target
        // length (the quorum'th-largest reported length, so one straggler
        // cannot hold the pipeline). Each retirement frees a slot and
        // pumps the next wave.
        if self.batching() && round == self.crnd && !self.waves.is_empty() {
            let entry = self.round_2b.get(&round).expect("just inserted");
            let quorum = self.cfg.quorums.size_for(kind);
            if entry.len() >= quorum {
                let mut lens: Vec<u64> = entry.values().map(|v| v.total_len()).collect();
                lens.sort_unstable_by(|a, b| b.cmp(a));
                let acked = lens[quorum - 1];
                let mut retired = false;
                while self.waves.front().is_some_and(|&t| t <= acked) {
                    self.waves.pop_front();
                    retired = true;
                }
                if retired {
                    self.pump_batches(false, ctx);
                }
            }
        }
        // Fast-round collision detection.
        if kind == RoundKind::Fast {
            if !self.collided.contains(&round) {
                let entry = self.round_2b.get(&round).expect("just inserted");
                let vals: Vec<&C> = entry.values().map(|v| v.as_ref()).collect();
                let mut incompatible = false;
                'outer: for (i, a) in vals.iter().enumerate() {
                    for b in &vals[i + 1..] {
                        if !a.compatible(b) {
                            incompatible = true;
                            break 'outer;
                        }
                    }
                }
                if incompatible {
                    self.collided.insert(round);
                    self.last_collision = Some(ctx.now());
                    ctx.metric(Metric::incr(metrics::COLLISION_FAST));
                }
            }
            // Run recovery on every report of a collided round, so "2b"s
            // arriving after detection still feed the successor's phase 1
            // evidence (coordinated recovery needs a full classic quorum).
            if self.collided.contains(&round) {
                self.recover_fast_collision(round, ctx);
            }
        }
        self.prune();
    }

    fn recover_fast_collision(&mut self, round: Round, ctx: &mut dyn Context<Msg<C>>) {
        match self.cfg.collision {
            CollisionPolicy::NewRound => {
                // Restart once per collided round: if we already moved past
                // it, the new round is in flight.
                if self.crnd <= round && self.believes_leader(ctx.now()) {
                    let r = self.fresh_round(self.max_heard.max(round), ctx.now());
                    self.start_round(r, ctx);
                }
            }
            CollisionPolicy::Coordinated | CollisionPolicy::Uncoordinated => {
                // Acceptor-driven: acceptors detect the collision through
                // gossiped "2b"s and issue binding "1b" promises for the
                // successor round (to this coordinator under Coordinated,
                // among themselves under Uncoordinated). Converting our
                // "2b" snapshots into "1b" evidence here would be unsound:
                // they are not the senders' final word for the round.
            }
        }
    }

    /// Handles one proposed command; `pump` is deferred by the batch
    /// handler so a whole [`Msg::ProposeBatch`] is admitted before waves
    /// form (otherwise the first admissions would ship as fragments).
    fn handle_propose(
        &mut self,
        cmd: C::Cmd,
        acc_quorum: Option<Vec<ProcessId>>,
        pump: bool,
        ctx: &mut dyn Context<Msg<C>>,
    ) {
        // A retransmission of an already-stabilized command (its
        // Learned notification was lost) must not re-enter the
        // protocol: its membership entry is below the watermark.
        if self.cfg.wire.compact_every > 0 && self.comp.contains_recent(&cmd) {
            return;
        }
        if !self.outstanding.contains(&cmd) {
            if self.outstanding.is_empty() {
                self.last_progress = ctx.now();
            }
            self.outstanding.push(cmd.clone());
        }
        let classic_active =
            self.cval.is_some() && self.cfg.schedule.kind(self.crnd) == RoundKind::Classic;
        if classic_active {
            if self.batching() {
                // Per-command acceptor pins are ignored in batching mode:
                // a wave amortizes one multicast over the whole batch.
                self.enqueue_batched(cmd, ctx);
                if pump {
                    self.pump_batches(false, ctx);
                }
            } else {
                self.phase2a_classic(cmd, acc_quorum, ctx);
            }
        } else if !self.backlog.contains(&cmd) {
            self.backlog.push(cmd);
        }
    }

    fn tick(&mut self, ctx: &mut dyn Context<Msg<C>>) {
        // Heartbeats to fellow coordinators.
        let me = self.me;
        let peers: Vec<ProcessId> = self
            .cfg
            .roles
            .coordinators()
            .iter()
            .copied()
            .filter(|&c| c != me)
            .collect();
        ctx.multicast(&peers, Msg::Heartbeat);
        let now = ctx.now();
        if self.fd_scan(now, ctx) {
            return;
        }
        // Leadership duties.
        if self.leader(now) != self.me {
            return;
        }
        if self.crnd.is_zero() && self.max_heard.is_zero() {
            let r = self.cfg.schedule.initial(self.me_idx, self.floor.major);
            self.start_round(r, ctx);
            return;
        }
        if self.crnd.is_zero() || self.crnd < self.max_heard {
            // Recovered or preempted: claim a fresh higher round.
            let r = self.fresh_round(self.max_heard, now);
            self.start_round(r, ctx);
            return;
        }
        // Stall: pending work but no acceptor progress for a while.
        if !self.outstanding.is_empty()
            && now.since(self.last_progress) > self.cfg.timing.stall_timeout
        {
            let base = self.max_heard.max(self.crnd);
            let r = self.fresh_round(base, now);
            self.start_round(r, ctx);
        }
    }
}

impl<C: CStruct> Actor for Coordinator<C> {
    type Msg = Msg<C>;

    fn on_start(&mut self, ctx: &mut dyn Context<Msg<C>>) {
        // Optimistic initial view: everyone alive. The lowest-id
        // coordinator acts as first leader; others take over only after a
        // real timeout.
        let now = ctx.now();
        for &c in self.cfg.roles.coordinators() {
            self.alive.insert(c, now);
        }
        self.last_progress = now;
        ctx.set_timer(self.cfg.timing.heartbeat_every, TOK_TICK);
    }

    fn on_recover(&mut self, ctx: &mut dyn Context<Msg<C>>) {
        let repaired = ctx.storage().corrupt_records();
        if repaired > 0 {
            ctx.metric(Metric::add(metrics::CORRUPT_RECORDS, repaired as i64));
        }
        let floor_bytes: Option<Vec<u8>> = ctx.storage().read(KEY_FLOOR).map(|b| b.to_vec());
        if let Some(bytes) = floor_bytes {
            match from_bytes(&bytes) {
                Ok(f) => self.floor = f,
                Err(_) => {
                    // Undecodable floor record: keep ZERO. The floor is a
                    // liveness hint (it stops a recovered leader from
                    // re-proposing old rounds); safety never depends on
                    // it, so degrading beats a crash loop.
                    ctx.metric(Metric::incr(metrics::CORRUPT_RECORDS));
                }
            }
        }
        // crnd stays ZERO: we no longer coordinate the pre-crash round.
        // But bootstrap max_heard to the floor, or a recovered leader
        // would keep proposing rounds below its own floor forever.
        self.max_heard = self.floor;
        // Announce the restart: acceptors holding a "2b" delta base for
        // this process must downgrade to Full payloads. Pure optimization
        // (a lost Hello just re-opens the NeedFull path), so it is only
        // worth wire bytes when delta shipping is on.
        if self.cfg.wire.delta_ship {
            let acceptors = self.cfg.roles.acceptors().to_vec();
            ctx.multicast(&acceptors, Msg::Hello);
        }
        self.on_start(ctx);
    }

    fn on_message(&mut self, from: ProcessId, msg: Msg<C>, ctx: &mut dyn Context<Msg<C>>) {
        match msg {
            Msg::Propose { cmd, acc_quorum } => {
                self.handle_propose(cmd, acc_quorum, true, ctx);
            }
            Msg::ProposeBatch { cmds, acc_quorum } => {
                for cmd in cmds {
                    self.handle_propose(cmd, acc_quorum.clone(), false, ctx);
                }
                self.pump_batches(false, ctx);
            }
            Msg::P1b { round, vrnd, vval } => {
                self.note_heard(round);
                // 1b values are shipped full; normalize to our watermark
                // (or drop until compaction catches up).
                let vval = match self.ingest(from, vval, |_| None, ctx) {
                    Some(Ok((v, _))) => v,
                    _ => return,
                };
                // An unsolicited "1b" for a single-coordinated round we
                // coordinate is collision-recovery evidence (§4.2): note
                // the collision for the round-type backoff, and echo the
                // implicit "1a" so acceptors that did not observe the
                // collision themselves join the recovery round too.
                if round > self.crnd
                    && round.rtype == crate::schedule::RTYPE_SINGLE
                    && self.cfg.schedule.is_coordinator_of(self.me, round)
                {
                    self.last_collision = Some(ctx.now());
                    if round > self.floor && self.echoed_1a.insert(round) {
                        let acceptors = self.cfg.roles.acceptors().to_vec();
                        ctx.multicast(&acceptors, Msg::P1a { round });
                        while self.echoed_1a.len() > ROUND_WINDOW {
                            let lowest = *self.echoed_1a.iter().next().expect("non-empty");
                            self.echoed_1a.remove(&lowest);
                        }
                    }
                }
                self.round_1b
                    .entry(round)
                    .or_default()
                    .insert(from, OneB { from, vrnd, vval });
                self.prune();
                self.try_phase2start(round, ctx);
            }
            Msg::P2b { round, val } => {
                self.note_heard(round);
                let val = match self.ingest(
                    from,
                    val,
                    move |c| c.round_2b.get(&round).and_then(|m| m.get(&from)).cloned(),
                    ctx,
                ) {
                    Some(Ok((v, _))) => v,
                    Some(Err(())) => {
                        ctx.send(from, Msg::NeedFull { round });
                        return;
                    }
                    None => return,
                };
                self.observe_2b(from, round, val, ctx);
            }
            Msg::NeedFull { round } => {
                // An acceptor lost the base of our deltas: re-ship the
                // full current value.
                if round == self.crnd {
                    if let Some(val) = self.cval.take() {
                        ctx.metric(Metric::incr(metrics::FULL_RESYNCS));
                        let payload = Payload::Full(val.clone());
                        self.account(&payload, 1, ctx);
                        self.sent_2a.insert(from, (round, val.total_len()));
                        ctx.send(
                            from,
                            Msg::P2a {
                                round,
                                val: payload,
                            },
                        );
                        self.cval = Some(val);
                    }
                } else {
                    self.sent_2a.remove(&from);
                }
            }
            Msg::Stable {
                from: seg_from,
                cmds,
            } if self.cfg.wire.compact_every > 0 => {
                self.comp.offer(seg_from, cmds);
                self.apply_compaction(ctx);
                // Still short of the announced frontier after applying,
                // with nothing buffered at our watermark: a segment
                // between us and `seg_from` was missed — request the gap
                // from the designated learner.
                if seg_from > self.comp.watermark() && self.comp.gap_at_watermark() {
                    ctx.send(
                        from,
                        Msg::NeedStable {
                            from: self.comp.watermark(),
                        },
                    );
                }
            }
            Msg::NeedStable { from: want } => {
                for (f, seg) in self.comp.recent_from(want) {
                    ctx.send(from, Msg::Stable { from: f, cmds: seg });
                }
            }
            Msg::RoundTooLow { heard } => {
                self.note_heard(heard);
                if self.believes_leader(ctx.now()) && heard >= self.crnd {
                    let r = self.fresh_round(self.max_heard, ctx.now());
                    self.start_round(r, ctx);
                }
            }
            Msg::Heartbeat => {
                self.fd_hear(from, ctx);
                self.alive.insert(from, ctx.now());
            }
            // A peer restarted: whatever delta base we had established
            // with it is gone on its side. Dropping ours proactively
            // means the next payload ships Full, saving the `NeedFull`
            // round-trip a stale delta would trigger.
            Msg::Hello if self.sent_2a.remove(&from).is_some() => {
                ctx.metric(Metric::incr(metrics::BASE_RESETS));
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut dyn Context<Msg<C>>) {
        if token == TOK_TICK {
            self.tick(ctx);
            ctx.set_timer(self.cfg.timing.heartbeat_every, TOK_TICK);
        } else if token == TOK_BATCH {
            self.linger_armed = false;
            self.pump_batches(true, ctx);
        }
    }

    fn on_link_reset(&mut self, peer: ProcessId, ctx: &mut dyn Context<Msg<C>>) {
        // A severed-then-healed link may have swallowed the "2a" whose
        // value the peer's next delta would extend; downgrade to a Full
        // payload rather than waiting for its `NeedFull`.
        if self.sent_2a.remove(&peer).is_some() {
            ctx.metric(Metric::incr(metrics::BASE_RESETS));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Policy, RTYPE_MULTI};
    use mcpaxos_actor::{MemStore, SimDuration, StableStore};
    use mcpaxos_cstruct::CmdSet;

    type C = CmdSet<u32>;

    struct Ctx {
        me: ProcessId,
        now: SimTime,
        sent: Vec<(ProcessId, Msg<C>)>,
        store: MemStore,
    }

    impl Context<Msg<C>> for Ctx {
        fn me(&self) -> ProcessId {
            self.me
        }
        fn now(&self) -> SimTime {
            self.now
        }
        fn send(&mut self, to: ProcessId, msg: Msg<C>) {
            self.sent.push((to, msg));
        }
        fn set_timer(&mut self, _a: SimDuration, _t: TimerToken) {}
        fn cancel_timer(&mut self, _t: TimerToken) {}
        fn storage(&mut self) -> &mut dyn StableStore {
            &mut self.store
        }
        fn metric(&mut self, _m: Metric) {}
        fn random(&mut self) -> u64 {
            0
        }
    }

    fn cfg() -> Arc<DeployConfig> {
        // p0 | c1 c2 c3 | a4..a8 | l9
        Arc::new(DeployConfig::simple(1, 3, 5, 1, Policy::MultiCoordinated))
    }

    fn ctx_for(me: u32) -> Ctx {
        Ctx {
            me: ProcessId(me),
            now: SimTime(100),
            sent: vec![],
            store: MemStore::new(),
        }
    }

    fn onb_msg(round: Round) -> Msg<C> {
        Msg::P1b {
            round,
            vrnd: Round::ZERO,
            vval: C::bottom().into(),
        }
    }

    #[test]
    fn lowest_id_coordinator_starts_the_first_round() {
        let cfg = cfg();
        let mut c1: Coordinator<C> = Coordinator::new(cfg.clone(), ProcessId(1));
        let mut cx = ctx_for(1);
        c1.on_start(&mut cx);
        c1.on_timer(TOK_TICK, &mut cx);
        let p1as: Vec<_> = cx
            .sent
            .iter()
            .filter(|(_, m)| matches!(m, Msg::P1a { .. }))
            .collect();
        assert_eq!(p1as.len(), 5, "1a to every acceptor");
        assert_eq!(c1.crnd().rtype, RTYPE_MULTI);

        // A non-lowest coordinator does not start rounds while c1 alive.
        let mut c2: Coordinator<C> = Coordinator::new(cfg, ProcessId(2));
        let mut cx2 = ctx_for(2);
        c2.on_start(&mut cx2);
        c2.on_timer(TOK_TICK, &mut cx2);
        assert!(!cx2.sent.iter().any(|(_, m)| matches!(m, Msg::P1a { .. })));
        assert!(cx2.sent.iter().any(|(_, m)| matches!(m, Msg::Heartbeat)));
    }

    #[test]
    fn phase2start_after_classic_quorum_of_1b() {
        let cfg = cfg();
        let mut c2: Coordinator<C> = Coordinator::new(cfg.clone(), ProcessId(2));
        let mut cx = ctx_for(2);
        c2.on_start(&mut cx);
        let r = Round::new(0, 1, 0, RTYPE_MULTI);
        // 1b from acceptors a4, a5: not a quorum of 5 yet (need 3).
        c2.on_message(ProcessId(4), onb_msg(r), &mut cx);
        c2.on_message(ProcessId(5), onb_msg(r), &mut cx);
        assert!(c2.cval().is_none());
        c2.on_message(ProcessId(6), onb_msg(r), &mut cx);
        assert!(c2.cval().is_some(), "non-owner quorum member also starts");
        assert_eq!(c2.crnd(), r);
        let p2as = cx
            .sent
            .iter()
            .filter(|(_, m)| matches!(m, Msg::P2a { .. }))
            .count();
        assert_eq!(p2as, 5);
    }

    #[test]
    fn proposals_extend_cval_and_are_forwarded() {
        let cfg = cfg();
        let mut c1: Coordinator<C> = Coordinator::new(cfg, ProcessId(1));
        let mut cx = ctx_for(1);
        c1.on_start(&mut cx);
        let r = Round::new(0, 1, 0, RTYPE_MULTI);
        for a in 4..=6 {
            c1.on_message(ProcessId(a), onb_msg(r), &mut cx);
        }
        cx.sent.clear();
        c1.on_message(
            ProcessId(0),
            Msg::Propose {
                cmd: 7,
                acc_quorum: None,
            },
            &mut cx,
        );
        let vals: Vec<&C> = cx
            .sent
            .iter()
            .filter_map(|(_, m)| match m {
                Msg::P2a { val, .. } => val.as_full().map(|v| v.as_ref()),
                _ => None,
            })
            .collect();
        assert_eq!(vals.len(), 5);
        assert!(vals[0].contains(&7));
        // Load-balanced proposal goes only to the pinned acceptors.
        cx.sent.clear();
        c1.on_message(
            ProcessId(0),
            Msg::Propose {
                cmd: 8,
                acc_quorum: Some(vec![ProcessId(4), ProcessId(5), ProcessId(6)]),
            },
            &mut cx,
        );
        assert_eq!(cx.sent.len(), 3);
    }

    #[test]
    fn proposals_before_round_go_to_backlog_then_ride_phase2start() {
        let cfg = cfg();
        let mut c1: Coordinator<C> = Coordinator::new(cfg, ProcessId(1));
        let mut cx = ctx_for(1);
        c1.on_start(&mut cx);
        c1.on_message(
            ProcessId(0),
            Msg::Propose {
                cmd: 42,
                acc_quorum: None,
            },
            &mut cx,
        );
        assert!(c1.cval().is_none());
        let r = Round::new(0, 1, 0, RTYPE_MULTI);
        for a in 4..=6 {
            c1.on_message(ProcessId(a), onb_msg(r), &mut cx);
        }
        assert!(c1.cval().unwrap().contains(&42));
    }

    #[test]
    fn nack_makes_leader_start_higher_round() {
        let cfg = cfg();
        let mut c1: Coordinator<C> = Coordinator::new(cfg, ProcessId(1));
        let mut cx = ctx_for(1);
        c1.on_start(&mut cx);
        c1.on_timer(TOK_TICK, &mut cx); // starts r(0,1,me)
        let started = c1.crnd();
        let heard = Round::new(0, 5, 2, RTYPE_MULTI);
        c1.on_message(ProcessId(4), Msg::RoundTooLow { heard }, &mut cx);
        assert!(c1.crnd() > heard);
        assert!(c1.crnd() > started);
    }

    #[test]
    fn floor_survives_recovery_and_blocks_old_rounds() {
        let cfg = cfg();
        let mut c1: Coordinator<C> = Coordinator::new(cfg.clone(), ProcessId(1));
        let mut cx = ctx_for(1);
        c1.on_start(&mut cx);
        c1.on_timer(TOK_TICK, &mut cx);
        let r = c1.crnd();
        // Crash, recover over the same store.
        let mut c1b: Coordinator<C> = Coordinator::new(cfg, ProcessId(1));
        c1b.on_recover(&mut cx);
        assert_eq!(c1b.crnd(), Round::ZERO);
        // 1b quorum for the pre-crash round must NOT re-trigger
        // Phase2Start (the floor blocks it).
        for a in 4..=6 {
            c1b.on_message(ProcessId(a), onb_msg(r), &mut cx);
        }
        assert!(c1b.cval().is_none(), "floor must block round {r:?}");
    }

    #[test]
    fn stall_triggers_new_round() {
        let cfg = cfg();
        let mut c1: Coordinator<C> = Coordinator::new(cfg.clone(), ProcessId(1));
        let mut cx = ctx_for(1);
        c1.on_start(&mut cx);
        c1.on_timer(TOK_TICK, &mut cx);
        let first = c1.crnd();
        c1.on_message(
            ProcessId(0),
            Msg::Propose {
                cmd: 9,
                acc_quorum: None,
            },
            &mut cx,
        );
        // No 2b progress past the stall timeout.
        cx.now = SimTime(100 + 1 + cfg.timing.stall_timeout.ticks() + 1);
        c1.on_timer(TOK_TICK, &mut cx);
        assert!(c1.crnd() > first, "stalled leader must start a new round");
    }

    fn fd_cfg() -> Arc<DeployConfig> {
        // FD suspicion (100) well below leader_timeout (160) and
        // stall_timeout (120): failover must beat both.
        Arc::new(
            DeployConfig::simple(1, 3, 5, 1, Policy::MultiCoordinated).with_timing(
                crate::config::Timing::default().with_failure_detector(SimDuration(100)),
            ),
        )
    }

    #[test]
    fn suspicion_fails_over_before_leader_or_stall_timeout() {
        let mut c2: Coordinator<C> = Coordinator::new(fd_cfg(), ProcessId(2));
        let mut cx = ctx_for(2);
        c2.on_start(&mut cx); // everyone optimistically alive at t=100
        cx.now = SimTime(100 + 99);
        c2.on_timer(TOK_TICK, &mut cx);
        assert!(c2.suspects().is_empty(), "inside the suspicion timeout");
        assert!(c2.crnd().is_zero());
        // One tick past the suspicion timeout — still well inside
        // leader_timeout (160), where the non-FD path would stay silent.
        cx.now = SimTime(100 + 101);
        c2.on_timer(TOK_TICK, &mut cx);
        assert!(c2.suspects().contains(&ProcessId(1)));
        assert_eq!(c2.leader_view(cx.now), ProcessId(2));
        assert!(!c2.crnd().is_zero(), "failover must start a round");
        assert!(cx.sent.iter().any(|(_, m)| matches!(m, Msg::P1a { .. })));
    }

    #[test]
    fn false_suspicion_doubles_the_timeout() {
        let mut c2: Coordinator<C> = Coordinator::new(fd_cfg(), ProcessId(2));
        let mut cx = ctx_for(2);
        c2.on_start(&mut cx);
        cx.now = SimTime(100 + 101);
        c2.on_timer(TOK_TICK, &mut cx);
        assert!(c2.suspects().contains(&ProcessId(1)));
        // The "dead" leader speaks: suspicion was false.
        cx.now = SimTime(210);
        c2.on_message(ProcessId(1), Msg::Heartbeat, &mut cx);
        assert!(!c2.suspects().contains(&ProcessId(1)));
        // 150 ticks of silence: past the base timeout (100) but inside
        // the doubled one (200) — the backoff holds fire.
        cx.now = SimTime(210 + 150);
        c2.on_timer(TOK_TICK, &mut cx);
        assert!(!c2.suspects().contains(&ProcessId(1)));
        // Past the doubled timeout: suspected again.
        cx.now = SimTime(210 + 201);
        c2.on_timer(TOK_TICK, &mut cx);
        assert!(c2.suspects().contains(&ProcessId(1)));
    }

    fn batch_cfg(batch: usize, depth: usize, cap: usize) -> Arc<DeployConfig> {
        Arc::new(
            DeployConfig::simple(1, 3, 5, 1, Policy::MultiCoordinated).with_batching(
                crate::config::BatchConfig {
                    batch_size: batch,
                    batch_ticks: SimDuration(0),
                    pipeline_depth: depth,
                    queue_cap: cap,
                    overflow: crate::config::Overflow::Shed,
                },
            ),
        )
    }

    fn p2as_of(cx: &Ctx) -> Vec<C> {
        cx.sent
            .iter()
            .filter_map(|(_, m)| match m {
                Msg::P2a { val, .. } => val.as_full().map(|v| v.as_ref().clone()),
                _ => None,
            })
            .collect()
    }

    fn quorum_2b(c: &mut Coordinator<C>, r: Round, val: &C, cx: &mut Ctx) {
        for a in 4..=6 {
            c.on_message(
                ProcessId(a),
                Msg::P2b {
                    round: r,
                    val: val.clone().into(),
                },
                cx,
            );
        }
    }

    #[test]
    fn batching_accumulates_waves_and_pipelines() {
        let mut c1: Coordinator<C> = Coordinator::new(batch_cfg(2, 1, 0), ProcessId(1));
        let mut cx = ctx_for(1);
        c1.on_start(&mut cx);
        let r = Round::new(0, 1, 0, RTYPE_MULTI);
        for a in 4..=6 {
            c1.on_message(ProcessId(a), onb_msg(r), &mut cx);
        }
        // Phase2Start shipped the round's initial (empty) wave, which
        // occupies the single pipeline slot: proposals must queue.
        cx.sent.clear();
        for cmd in [7u32, 8, 9] {
            c1.on_message(
                ProcessId(0),
                Msg::Propose {
                    cmd,
                    acc_quorum: None,
                },
                &mut cx,
            );
        }
        assert!(
            cx.sent.is_empty(),
            "pipeline full: no 2a before the initial wave retires"
        );
        // A classic quorum of 2bs at the initial wave's length retires it;
        // the freed slot ships ONE wave of batch_size commands.
        quorum_2b(&mut c1, r, &C::bottom(), &mut cx);
        let p2as = p2as_of(&cx);
        assert_eq!(p2as.len(), 5, "one wave = one 2a multicast to 5 acceptors");
        assert_eq!(p2as[0].count(), 2, "wave carries batch_size commands");
        // Acks covering that wave retire it and pump the queued remainder.
        let wave_val = p2as[0].clone();
        cx.sent.clear();
        quorum_2b(&mut c1, r, &wave_val, &mut cx);
        let p2as = p2as_of(&cx);
        assert_eq!(p2as.len(), 5);
        assert_eq!(p2as[0].count(), 3, "final wave appends the queued command");
    }

    #[test]
    fn batch_queue_sheds_past_cap_and_resends_recover() {
        let mut c1: Coordinator<C> = Coordinator::new(batch_cfg(2, 1, 2), ProcessId(1));
        let mut cx = ctx_for(1);
        c1.on_start(&mut cx);
        let r = Round::new(0, 1, 0, RTYPE_MULTI);
        for a in 4..=6 {
            c1.on_message(ProcessId(a), onb_msg(r), &mut cx);
        }
        cx.sent.clear();
        for cmd in [7u32, 8, 9, 10] {
            c1.on_message(
                ProcessId(0),
                Msg::Propose {
                    cmd,
                    acc_quorum: None,
                },
                &mut cx,
            );
        }
        // cap=2: 9 and 10 were shed; retiring the initial wave ships only
        // the two queued commands.
        quorum_2b(&mut c1, r, &C::bottom(), &mut cx);
        let p2as = p2as_of(&cx);
        assert_eq!(p2as[0].count(), 2);
        assert!(p2as[0].contains(&7) && p2as[0].contains(&8));
        // A proposer retransmission re-offers the shed command once the
        // queue has drained, and the next retirement carries it.
        let wave_val = p2as[0].clone();
        cx.sent.clear();
        c1.on_message(
            ProcessId(0),
            Msg::Propose {
                cmd: 9,
                acc_quorum: None,
            },
            &mut cx,
        );
        assert!(cx.sent.is_empty(), "first wave still in flight");
        quorum_2b(&mut c1, r, &wave_val, &mut cx);
        let p2as = p2as_of(&cx);
        assert_eq!(p2as[0].count(), 3);
        assert!(p2as[0].contains(&9));
    }

    #[test]
    fn propose_batch_is_admitted_as_one_wave() {
        // Without batching knobs, ProposeBatch degenerates to k sequential
        // proposals (one 2a each); with them, one wave.
        let cfg = cfg();
        let mut c1: Coordinator<C> = Coordinator::new(cfg, ProcessId(1));
        let mut cx = ctx_for(1);
        c1.on_start(&mut cx);
        let r = Round::new(0, 1, 0, RTYPE_MULTI);
        for a in 4..=6 {
            c1.on_message(ProcessId(a), onb_msg(r), &mut cx);
        }
        cx.sent.clear();
        c1.on_message(
            ProcessId(0),
            Msg::ProposeBatch {
                cmds: vec![7, 8],
                acc_quorum: None,
            },
            &mut cx,
        );
        assert_eq!(
            p2as_of(&cx).len(),
            10,
            "knobs off: one 2a multicast per command"
        );

        let mut cb: Coordinator<C> = Coordinator::new(batch_cfg(4, 2, 0), ProcessId(1));
        let mut cxb = ctx_for(1);
        cb.on_start(&mut cxb);
        for a in 4..=6 {
            cb.on_message(ProcessId(a), onb_msg(r), &mut cxb);
        }
        quorum_2b(&mut cb, r, &C::bottom(), &mut cxb); // retire initial wave
        cxb.sent.clear();
        cb.on_message(
            ProcessId(0),
            Msg::ProposeBatch {
                cmds: vec![7, 8, 9],
                acc_quorum: None,
            },
            &mut cxb,
        );
        let p2as = p2as_of(&cxb);
        assert_eq!(p2as.len(), 5, "batching on: the whole batch is one wave");
        assert_eq!(p2as[0].count(), 3);
    }

    #[test]
    fn round_change_reseeds_batched_commands() {
        let mut c1: Coordinator<C> = Coordinator::new(batch_cfg(2, 1, 0), ProcessId(1));
        let mut cx = ctx_for(1);
        c1.on_start(&mut cx);
        c1.on_timer(TOK_TICK, &mut cx);
        let r = c1.crnd();
        for a in 4..=6 {
            c1.on_message(ProcessId(a), onb_msg(r), &mut cx);
        }
        // Queue commands behind the in-flight initial wave, then lose all
        // 2bs: the stall detector starts a fresh round whose Phase2Start
        // must re-seed every outstanding command.
        for cmd in [7u32, 8, 9] {
            c1.on_message(
                ProcessId(0),
                Msg::Propose {
                    cmd,
                    acc_quorum: None,
                },
                &mut cx,
            );
        }
        cx.now = SimTime(cx.now.ticks() + cfg().timing.stall_timeout.ticks() + 60);
        c1.on_timer(TOK_TICK, &mut cx);
        let r2 = c1.crnd();
        assert!(r2 > r, "stall must start a new round");
        cx.sent.clear();
        for a in 4..=6 {
            c1.on_message(ProcessId(a), onb_msg(r2), &mut cx);
        }
        let p2as = p2as_of(&cx);
        assert_eq!(p2as.len(), 5);
        for cmd in [7u32, 8, 9] {
            assert!(p2as[0].contains(&cmd), "{cmd} must ride Phase2Start");
        }
    }

    #[test]
    fn hello_drops_the_peer_delta_base() {
        // `CmdSet` never produces deltas (no stable sequence), so observe
        // the base bookkeeping through the `base_resets` metric: exactly
        // one reset for the peer that said Hello, none for a repeat (the
        // Full-vs-delta wire effect is pinned in `tests/hello_resync.rs`).
        struct MCtx {
            inner: Ctx,
            metrics: Vec<&'static str>,
        }
        impl Context<Msg<C>> for MCtx {
            fn me(&self) -> ProcessId {
                self.inner.me
            }
            fn now(&self) -> SimTime {
                self.inner.now
            }
            fn send(&mut self, to: ProcessId, msg: Msg<C>) {
                self.inner.sent.push((to, msg));
            }
            fn set_timer(&mut self, _a: SimDuration, _t: TimerToken) {}
            fn cancel_timer(&mut self, _t: TimerToken) {}
            fn storage(&mut self) -> &mut dyn StableStore {
                &mut self.inner.store
            }
            fn metric(&mut self, m: Metric) {
                self.metrics.push(m.name);
            }
            fn random(&mut self) -> u64 {
                0
            }
        }
        let cfg = Arc::new(
            DeployConfig::simple(1, 3, 5, 1, Policy::MultiCoordinated).with_wire(
                crate::config::WireConfig {
                    delta_ship: true,
                    ..crate::config::WireConfig::default()
                },
            ),
        );
        let mut c1: Coordinator<C> = Coordinator::new(cfg, ProcessId(1));
        let mut cx = MCtx {
            inner: ctx_for(1),
            metrics: vec![],
        };
        c1.on_start(&mut cx);
        let r = Round::new(0, 1, 0, RTYPE_MULTI);
        for a in 4..=6 {
            c1.on_message(ProcessId(a), onb_msg(r), &mut cx);
        }
        // Phase2Start shipped a 2a to every acceptor: bases established.
        let resets = |cx: &MCtx| {
            cx.metrics
                .iter()
                .filter(|&&n| n == metrics::BASE_RESETS)
                .count()
        };
        assert_eq!(resets(&cx), 0);
        c1.on_message(ProcessId(4), Msg::Hello, &mut cx);
        assert_eq!(resets(&cx), 1, "a4's base dropped proactively");
        // Idempotent: a second Hello finds no base to drop.
        c1.on_message(ProcessId(4), Msg::Hello, &mut cx);
        assert_eq!(resets(&cx), 1);
        // Link reset takes the same path for another peer.
        c1.on_link_reset(ProcessId(5), &mut cx);
        assert_eq!(resets(&cx), 2);
        c1.on_link_reset(ProcessId(5), &mut cx);
        assert_eq!(resets(&cx), 2);
    }
}
