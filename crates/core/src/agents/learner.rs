//! The learner agent.
//!
//! A learner collects phase "2b" messages; when an acceptor quorum for a
//! round has reported, the glb of the quorum's values is *chosen* and the
//! learner extends `learned[l]` with it (action `Learn(l)` of §3.2).
//!
//! Because different quorums may be completed by different subsets of the
//! received reports, the learner considers quorum-sized subsets of the
//! reporting acceptors and takes the lub of their glbs — every such glb is
//! chosen, and by Proposition 1 the chosen set is compatible, so the lub
//! exists (a failure here is a hard safety-violation signal, valuable in
//! tests).
//!
//! The subset glbs are maintained *incrementally*: each round caches its
//! per-subset glbs keyed by the acceptor set, and a "2b" arrival updates
//! only the subsets containing the sender (a subset not containing it
//! cannot have changed), folding only glbs that actually moved into
//! `learned`. This replaces the seed's recompute-every-subset-from-full-
//! clones on every message; `tests/learner_diff.rs` pins the two against
//! each other.

use crate::agents::metrics;
use crate::config::DeployConfig;
use crate::msg::Msg;
use crate::quorum::{combination_count, for_each_combination};
use crate::round::Round;
use mcpaxos_actor::{Actor, Context, Metric, ProcessId, SimTime, TimerToken};
use mcpaxos_cstruct::{glb_all_ref, CStruct};
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

/// Rounds kept live for quorum completion; older rounds are pruned.
const ROUND_WINDOW: usize = 8;
/// Above this many quorum subsets, fall back to one conservative glb.
const MAX_QUORUM_ENUM: u64 = 5_000;

/// Per-round learner bookkeeping: the latest report per acceptor plus the
/// incrementally maintained glb of every quorum-sized reporter subset.
struct RoundState<C> {
    /// Latest "2b" value per acceptor (shared with the arriving message).
    reports: BTreeMap<ProcessId, Arc<C>>,
    /// Cached glb per quorum-sized subset, keyed by the (sorted) acceptor
    /// set. An entry is recomputed only when a member's report changes.
    glbs: BTreeMap<Vec<ProcessId>, C>,
}

impl<C> Default for RoundState<C> {
    fn default() -> Self {
        RoundState {
            reports: BTreeMap::new(),
            glbs: BTreeMap::new(),
        }
    }
}

/// The learner role.
pub struct Learner<C: CStruct> {
    cfg: Arc<DeployConfig>,
    learned: C,
    rounds: BTreeMap<Round, RoundState<C>>,
    notified: HashSet<C::Cmd>,
    history: Vec<(SimTime, usize)>,
}

impl<C: CStruct> Learner<C> {
    /// Creates a learner for the given deployment.
    pub fn new(cfg: Arc<DeployConfig>) -> Self {
        Learner {
            cfg,
            learned: C::bottom(),
            rounds: BTreeMap::new(),
            notified: HashSet::new(),
            history: Vec::new(),
        }
    }

    /// The c-struct learned so far.
    pub fn learned(&self) -> &C {
        &self.learned
    }

    /// `(time, learned-command-count)` pairs recorded whenever the learned
    /// value grew; the raw data for the latency experiments.
    pub fn history(&self) -> &[(SimTime, usize)] {
        &self.history
    }

    /// Folds one chosen value into `learned`; returns whether it grew.
    fn absorb(learned: &mut C, g: &C, round: Round) -> bool {
        let merged = learned.lub(g).unwrap_or_else(|| {
            panic!(
                "CONSISTENCY VIOLATION: learned value incompatible with chosen value \
                 at {round:?}: learned={learned:?} chosen={g:?}"
            )
        });
        if merged != *learned {
            *learned = merged;
            true
        } else {
            false
        }
    }

    /// Incremental `Learn(l)`: after `from`'s report for `round` changed,
    /// refresh the cached glbs of the quorum-sized subsets containing
    /// `from` and fold the ones that moved into `learned`.
    fn try_learn(&mut self, round: Round, from: ProcessId, ctx: &mut dyn Context<Msg<C>>) {
        let kind = self.cfg.schedule.kind(round);
        let qsize = self.cfg.quorums.size_for(kind);
        let st = match self.rounds.get_mut(&round) {
            Some(st) if st.reports.len() >= qsize => st,
            _ => return,
        };
        let learned = &mut self.learned;
        let mut grew = false;
        let ids: Vec<ProcessId> = st.reports.keys().copied().collect();
        if combination_count(ids.len(), qsize) <= MAX_QUORUM_ENUM {
            let reports = &st.reports;
            let glbs = &mut st.glbs;
            for_each_combination(ids.len(), qsize, |idx| {
                // Subsets not containing the changed reporter kept their
                // cached glb — skip them without touching any c-struct.
                if !idx.iter().any(|&i| ids[i] == from) {
                    return true;
                }
                let key: Vec<ProcessId> = idx.iter().map(|&i| ids[i]).collect();
                let g = glb_all_ref(key.iter().map(|p| reports[p].as_ref()));
                if glbs.get(&key) != Some(&g) {
                    grew |= Self::absorb(learned, &g, round);
                    glbs.insert(key, g);
                }
                true
            });
        } else {
            // Conservative: the glb over all reports is a lower bound of
            // every quorum's glb, hence also chosen.
            let g = glb_all_ref(st.reports.values().map(|v| v.as_ref()));
            grew |= Self::absorb(learned, &g, round);
        }
        if grew {
            let count = self.learned.count();
            self.history.push((ctx.now(), count));
            ctx.metric(Metric::add(metrics::LEARNED, count as i64));
            if self.cfg.notify_learned {
                let new: Vec<C::Cmd> = self
                    .learned
                    .commands()
                    .into_iter()
                    .filter(|c| !self.notified.contains(c))
                    .collect();
                if !new.is_empty() {
                    self.notified.extend(new.iter().cloned());
                    let proposers = self.cfg.roles.proposers().to_vec();
                    ctx.multicast(&proposers, Msg::Learned { cmds: new });
                }
            }
        }
    }

    fn prune(&mut self) {
        while self.rounds.len() > ROUND_WINDOW {
            let lowest = *self.rounds.keys().next().expect("non-empty");
            self.rounds.remove(&lowest);
        }
    }
}

impl<C: CStruct> Actor for Learner<C> {
    type Msg = Msg<C>;

    fn on_message(&mut self, from: ProcessId, msg: Msg<C>, ctx: &mut dyn Context<Msg<C>>) {
        if let Msg::P2b { round, val } = msg {
            let st = self.rounds.entry(round).or_default();
            // A re-delivered identical report cannot move any glb: skip
            // the subset sweep entirely (duplication is common under the
            // lossy network model and on retransmission timers).
            let changed = match st.reports.get(&from) {
                Some(prev) => **prev != *val,
                None => true,
            };
            st.reports.insert(from, val);
            self.prune();
            if changed {
                self.try_learn(round, from, ctx);
            }
        }
    }

    fn on_timer(&mut self, _token: TimerToken, _ctx: &mut dyn Context<Msg<C>>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Policy, RTYPE_MULTI};
    use mcpaxos_actor::{MemStore, SimDuration, StableStore};
    use mcpaxos_cstruct::{CmdSet, SingleDecree};

    struct Ctx {
        sent: Vec<(ProcessId, Msg<CmdSet<u32>>)>,
        store: MemStore,
        now: SimTime,
    }

    impl Context<Msg<CmdSet<u32>>> for Ctx {
        fn me(&self) -> ProcessId {
            ProcessId(42)
        }
        fn now(&self) -> SimTime {
            self.now
        }
        fn send(&mut self, to: ProcessId, msg: Msg<CmdSet<u32>>) {
            self.sent.push((to, msg));
        }
        fn set_timer(&mut self, _after: SimDuration, _token: TimerToken) {}
        fn cancel_timer(&mut self, _token: TimerToken) {}
        fn storage(&mut self) -> &mut dyn StableStore {
            &mut self.store
        }
        fn metric(&mut self, _m: Metric) {}
        fn random(&mut self) -> u64 {
            0
        }
    }

    fn mk(v: &[u32]) -> CmdSet<u32> {
        v.iter().copied().collect()
    }

    #[test]
    fn learns_glb_of_quorum() {
        // 3 acceptors (ids 4,5,6 in disjoint layout 1/3/3/1), majority 2.
        let cfg = Arc::new(DeployConfig::simple(1, 3, 3, 1, Policy::MultiCoordinated));
        let mut l: Learner<CmdSet<u32>> = Learner::new(cfg);
        let mut c = Ctx {
            sent: vec![],
            store: MemStore::new(),
            now: SimTime(5),
        };
        let r = Round::new(0, 1, 0, RTYPE_MULTI);
        let acc = |i: u32| ProcessId(3 + i);
        l.on_message(
            acc(1),
            Msg::P2b {
                round: r,
                val: mk(&[1, 2]).into(),
            },
            &mut c,
        );
        assert!(l.learned().is_bottom(), "one report is not a quorum");
        l.on_message(
            acc(2),
            Msg::P2b {
                round: r,
                val: mk(&[2, 3]).into(),
            },
            &mut c,
        );
        // glb({1,2},{2,3}) = {2} chosen.
        assert_eq!(l.learned(), &mk(&[2]));
        // Third report: quorums {a1,a3}, {a2,a3}, {a1,a2} → lub of glbs.
        l.on_message(
            acc(3),
            Msg::P2b {
                round: r,
                val: mk(&[1, 2, 3]).into(),
            },
            &mut c,
        );
        assert_eq!(l.learned(), &mk(&[1, 2, 3]));
        assert_eq!(l.history().len(), 2);
        assert_eq!(l.history()[0], (SimTime(5), 1));
    }

    #[test]
    fn notifies_proposers_once_per_command() {
        let cfg = Arc::new(DeployConfig::simple(1, 3, 3, 1, Policy::MultiCoordinated));
        let mut l: Learner<CmdSet<u32>> = Learner::new(cfg);
        let mut c = Ctx {
            sent: vec![],
            store: MemStore::new(),
            now: SimTime(1),
        };
        let r = Round::new(0, 1, 0, RTYPE_MULTI);
        let acc = |i: u32| ProcessId(3 + i);
        l.on_message(
            acc(1),
            Msg::P2b {
                round: r,
                val: mk(&[7]).into(),
            },
            &mut c,
        );
        l.on_message(
            acc(2),
            Msg::P2b {
                round: r,
                val: mk(&[7]).into(),
            },
            &mut c,
        );
        let notif: Vec<_> = c
            .sent
            .iter()
            .filter(|(_, m)| matches!(m, Msg::Learned { .. }))
            .collect();
        assert_eq!(notif.len(), 1, "one proposer, one notification");
        // Re-delivery does not re-notify.
        l.on_message(
            acc(1),
            Msg::P2b {
                round: r,
                val: mk(&[7]).into(),
            },
            &mut c,
        );
        let notif2 = c
            .sent
            .iter()
            .filter(|(_, m)| matches!(m, Msg::Learned { .. }))
            .count();
        assert_eq!(notif2, 1);
    }

    #[test]
    #[should_panic(expected = "CONSISTENCY VIOLATION")]
    fn incompatible_chosen_values_panic() {
        // Force the impossible: two quorums choosing incompatible values
        // (single-decree consensus with different decisions). The learner
        // must detect and loudly fail.
        let cfg = Arc::new(DeployConfig::simple(1, 3, 3, 1, Policy::MultiCoordinated));
        let mut l: Learner<SingleDecree<u32>> = Learner::new(cfg);
        struct C2 {
            store: MemStore,
        }
        impl Context<Msg<SingleDecree<u32>>> for C2 {
            fn me(&self) -> ProcessId {
                ProcessId(42)
            }
            fn now(&self) -> SimTime {
                SimTime::ZERO
            }
            fn send(&mut self, _to: ProcessId, _m: Msg<SingleDecree<u32>>) {}
            fn set_timer(&mut self, _a: SimDuration, _t: TimerToken) {}
            fn cancel_timer(&mut self, _t: TimerToken) {}
            fn storage(&mut self) -> &mut dyn StableStore {
                &mut self.store
            }
            fn metric(&mut self, _m: Metric) {}
            fn random(&mut self) -> u64 {
                0
            }
        }
        let mut c = C2 {
            store: MemStore::new(),
        };
        let r1 = Round::new(0, 1, 0, RTYPE_MULTI);
        let r2 = Round::new(0, 2, 0, RTYPE_MULTI);
        let acc = |i: u32| ProcessId(3 + i);
        let dec = SingleDecree::decided;
        l.on_message(
            acc(1),
            Msg::P2b {
                round: r1,
                val: dec(1).into(),
            },
            &mut c,
        );
        l.on_message(
            acc(2),
            Msg::P2b {
                round: r1,
                val: dec(1).into(),
            },
            &mut c,
        );
        l.on_message(
            acc(1),
            Msg::P2b {
                round: r2,
                val: dec(2).into(),
            },
            &mut c,
        );
        l.on_message(
            acc(2),
            Msg::P2b {
                round: r2,
                val: dec(2).into(),
            },
            &mut c,
        );
    }
}
