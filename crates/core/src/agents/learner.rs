//! The learner agent.
//!
//! A learner collects phase "2b" messages; when an acceptor quorum for a
//! round has reported, the glb of the quorum's values is *chosen* and the
//! learner extends `learned[l]` with it (action `Learn(l)` of §3.2).
//!
//! Because different quorums may be completed by different subsets of the
//! received reports, the learner considers quorum-sized subsets of the
//! reporting acceptors and takes the lub of their glbs — every such glb is
//! chosen, and by Proposition 1 the chosen set is compatible, so the lub
//! exists (a failure here is a hard safety-violation signal, valuable in
//! tests).
//!
//! The subset glbs are maintained *incrementally*: each round caches its
//! per-subset glbs keyed by the acceptor set, and a "2b" arrival updates
//! only the subsets containing the sender (a subset not containing it
//! cannot have changed), folding only glbs that actually moved into
//! `learned`. This replaces the seed's recompute-every-subset-from-full-
//! clones on every message; `tests/learner_diff.rs` pins the two against
//! each other.

use crate::agents::{metrics, TOK_STABLE_GOSSIP};
use crate::compact::{Compactor, Resolved};
use crate::config::DeployConfig;
use crate::msg::Msg;
use crate::quorum::{combination_count, for_each_combination};
use crate::round::Round;
use mcpaxos_actor::{Actor, Context, Metric, ProcessId, SimTime, TimerToken};
use mcpaxos_cstruct::{glb_all_ref, CStruct};
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::sync::Arc;

/// Rounds kept live for quorum completion; older rounds are pruned.
const ROUND_WINDOW: usize = 8;
/// Above this many quorum subsets, fall back to one conservative glb.
const MAX_QUORUM_ENUM: u64 = 5_000;

/// Per-round learner bookkeeping: the latest report per acceptor plus the
/// incrementally maintained glb of every quorum-sized reporter subset.
struct RoundState<C> {
    /// Latest "2b" value per acceptor (shared with the arriving message).
    reports: BTreeMap<ProcessId, Arc<C>>,
    /// Cached glb per quorum-sized subset, keyed by the (sorted) acceptor
    /// set. An entry is recomputed only when a member's report changes.
    glbs: BTreeMap<Vec<ProcessId>, C>,
}

impl<C> Default for RoundState<C> {
    fn default() -> Self {
        RoundState {
            reports: BTreeMap::new(),
            glbs: BTreeMap::new(),
        }
    }
}

/// The learner role.
pub struct Learner<C: CStruct> {
    cfg: Arc<DeployConfig>,
    learned: C,
    rounds: BTreeMap<Round, RoundState<C>>,
    notified: HashSet<C::Cmd>,
    history: Vec<(SimTime, usize)>,
    /// Stable-prefix compaction state.
    comp: Compactor<C>,
    /// Designated-learner bookkeeping: the stable segment currently
    /// proposed to the other learners, and the acks received for it.
    my_prop: Option<(u64, Vec<C::Cmd>)>,
    prop_acks: BTreeSet<ProcessId>,
    /// Segments proposed *to* us, awaiting containment in `learned`
    /// before we ack: segment start → (proposer, commands).
    #[allow(clippy::type_complexity)]
    pending_props: BTreeMap<u64, (ProcessId, Vec<C::Cmd>)>,
    /// Segments we (as designated learner) have finalized, kept for
    /// periodic re-gossip: a `Stable` lost to one agent would otherwise
    /// strand it behind the watermark forever.
    sent_segs: std::collections::VecDeque<(u64, Vec<C::Cmd>)>,
}

impl<C: CStruct> Learner<C> {
    /// Creates a learner for the given deployment.
    pub fn new(cfg: Arc<DeployConfig>) -> Self {
        let comp = Compactor::new(cfg.wire.stable_keep);
        Learner {
            cfg,
            learned: C::bottom(),
            rounds: BTreeMap::new(),
            notified: HashSet::new(),
            history: Vec::new(),
            comp,
            my_prop: None,
            prop_acks: BTreeSet::new(),
            pending_props: BTreeMap::new(),
            sent_segs: std::collections::VecDeque::new(),
        }
    }

    /// The c-struct learned so far.
    pub fn learned(&self) -> &C {
        &self.learned
    }

    /// The stable watermark this learner has truncated below.
    pub fn watermark(&self) -> u64 {
        self.comp.watermark()
    }

    /// Resumes a restarted learner at a checkpoint `watermark`: the
    /// history below it no longer exists in the deployment, so `learned`
    /// restarts as the empty extension of that stable prefix and catches
    /// up through [`crate::Msg::Stable`] segments (requested via
    /// [`crate::Msg::NeedStable`]) and live `2b` traffic.
    pub fn resume_at(&mut self, watermark: u64) {
        self.learned = C::bottom_at(watermark);
        self.comp.resume(watermark);
    }

    /// `(time, learned-command-count)` pairs recorded whenever the learned
    /// value grew; the raw data for the latency experiments.
    pub fn history(&self) -> &[(SimTime, usize)] {
        &self.history
    }

    /// Folds one chosen value into `learned`; returns whether it grew.
    fn absorb(learned: &mut C, g: &C, round: Round) -> bool {
        let merged = learned.lub(g).unwrap_or_else(|| {
            panic!(
                "CONSISTENCY VIOLATION: learned value incompatible with chosen value \
                 at {round:?}: learned={learned:?} chosen={g:?}"
            )
        });
        if merged != *learned {
            *learned = merged;
            true
        } else {
            false
        }
    }

    /// Incremental `Learn(l)`: after `from`'s report for `round` changed,
    /// refresh the cached glbs of the quorum-sized subsets containing
    /// `from` and fold the ones that moved into `learned`.
    fn try_learn(&mut self, round: Round, from: ProcessId, ctx: &mut dyn Context<Msg<C>>) {
        let kind = self.cfg.schedule.kind(round);
        let qsize = self.cfg.quorums.size_for(kind);
        let st = match self.rounds.get_mut(&round) {
            Some(st) if st.reports.len() >= qsize => st,
            _ => return,
        };
        let learned = &mut self.learned;
        let mut grew = false;
        let ids: Vec<ProcessId> = st.reports.keys().copied().collect();
        if combination_count(ids.len(), qsize) <= MAX_QUORUM_ENUM {
            let reports = &st.reports;
            let glbs = &mut st.glbs;
            for_each_combination(ids.len(), qsize, |idx| {
                // Subsets not containing the changed reporter kept their
                // cached glb — skip them without touching any c-struct.
                if !idx.iter().any(|&i| ids[i] == from) {
                    return true;
                }
                let key: Vec<ProcessId> = idx.iter().map(|&i| ids[i]).collect();
                let g = glb_all_ref(key.iter().map(|p| reports[p].as_ref()));
                if glbs.get(&key) != Some(&g) {
                    grew |= Self::absorb(learned, &g, round);
                    glbs.insert(key, g);
                }
                true
            });
        } else {
            // Conservative: the glb over all reports is a lower bound of
            // every quorum's glb, hence also chosen.
            let g = glb_all_ref(st.reports.values().map(|v| v.as_ref()));
            grew |= Self::absorb(learned, &g, round);
        }
        if grew {
            let count = self.learned.total_len() as usize;
            self.history.push((ctx.now(), count));
            ctx.metric(Metric::add(metrics::LEARNED, count as i64));
            if self.cfg.notify_learned {
                let new: Vec<C::Cmd> = self
                    .learned
                    .commands()
                    .into_iter()
                    .filter(|c| !self.notified.contains(c))
                    .collect();
                if !new.is_empty() {
                    self.notified.extend(new.iter().cloned());
                    let proposers = self.cfg.roles.proposers().to_vec();
                    ctx.multicast(&proposers, Msg::Learned { cmds: new });
                }
            }
            self.try_ack_pending(ctx);
            self.maybe_propose(ctx);
        }
    }

    fn prune(&mut self) {
        while self.rounds.len() > ROUND_WINDOW {
            let lowest = *self.rounds.keys().next().expect("non-empty");
            self.rounds.remove(&lowest);
        }
    }

    // ----- stable-watermark gossip (compaction) ---------------------------

    /// Applies pending stable segments to `learned` and brings the
    /// per-round bookkeeping to the new watermark. Runs at the *start* of
    /// every upcall, so a host that drains newly learned commands after
    /// each message (a replica's delivery cursor) always observes a
    /// segment in the live window before it is truncated.
    fn compact_tick(&mut self, ctx: &mut dyn Context<Msg<C>>) {
        if self.cfg.wire.compact_every == 0 {
            return;
        }
        // Checkpoint-restored catch-up: an empty-at-watermark learner
        // adopts the next quorum-finalized segment as learned, and leaves
        // it in the live window for this upcall so a replica host can
        // drain it; the truncation then happens on a later tick.
        if self.comp.adopt_into(&mut self.learned) {
            return;
        }
        let notified = &mut self.notified;
        let applied = self.comp.advance(&mut self.learned, |seg| {
            for c in seg {
                notified.remove(c);
            }
        });
        if applied == 0 {
            return;
        }
        ctx.metric(Metric::add(metrics::TRUNCATIONS, applied as i64));
        let comp = &self.comp;
        for st in self.rounds.values_mut() {
            st.reports.retain(|_, v| comp.normalize_arc(v));
            st.glbs.retain(|_, g| comp.normalize(g));
        }
        let w = self.comp.watermark();
        self.pending_props.retain(|&s, _| s >= w);
    }

    /// Designated-learner duty: once `compact_every` commands sit above
    /// the watermark, propose the next stable segment to the other
    /// learners (a single-learner deployment self-acks immediately).
    fn maybe_propose(&mut self, ctx: &mut dyn Context<Msg<C>>) {
        let every = self.cfg.wire.compact_every;
        if every == 0 || self.my_prop.is_some() {
            return;
        }
        let me = ctx.me();
        if self.cfg.roles.learners().first() != Some(&me) {
            return;
        }
        let w = self.comp.watermark();
        if self.learned.total_len().saturating_sub(w) < every {
            return;
        }
        let seg = match self.learned.stable_segment(w, every as usize) {
            Some(s) => s,
            None => return, // c-struct without a stable representation
        };
        self.my_prop = Some((w, seg.clone()));
        self.prop_acks.clear();
        self.prop_acks.insert(me);
        if self.prop_acks.len() >= self.cfg.learner_quorum() {
            self.finalize_stable(ctx);
        } else {
            let peers: Vec<ProcessId> = self
                .cfg
                .roles
                .learners()
                .iter()
                .copied()
                .filter(|&l| l != me)
                .collect();
            ctx.multicast(&peers, Msg::StableProposal { from: w, cmds: seg });
        }
    }

    /// A learner quorum has learned the proposed segment: broadcast the
    /// watermark to every agent and schedule our own truncation.
    fn finalize_stable(&mut self, ctx: &mut dyn Context<Msg<C>>) {
        let (w, seg) = match self.my_prop.take() {
            Some(p) => p,
            None => return,
        };
        self.prop_acks.clear();
        let me = ctx.me();
        let targets: Vec<ProcessId> = self
            .cfg
            .roles
            .acceptors()
            .iter()
            .chain(self.cfg.roles.coordinators())
            .chain(self.cfg.roles.learners())
            .copied()
            .filter(|&p| p != me)
            .collect();
        ctx.multicast(
            &targets,
            Msg::Stable {
                from: w,
                cmds: seg.clone(),
            },
        );
        self.sent_segs.push_back((w, seg.clone()));
        while self.sent_segs.len() > self.cfg.wire.stable_keep {
            self.sent_segs.pop_front();
        }
        // Our own truncation applies at the next upcall (compact_tick).
        self.comp.offer(w, seg);
    }

    /// Re-gossips recent stable segments and the outstanding proposal:
    /// one lost `Stable` or `StableProposal` must not strand an agent
    /// behind the watermark (fair-lossy links).
    fn regossip_stable(&mut self, ctx: &mut dyn Context<Msg<C>>) {
        let me = ctx.me();
        let targets: Vec<ProcessId> = self
            .cfg
            .roles
            .acceptors()
            .iter()
            .chain(self.cfg.roles.coordinators())
            .chain(self.cfg.roles.learners())
            .copied()
            .filter(|&p| p != me)
            .collect();
        // Only the newest segment rides the timer: an agent further
        // behind discovers it through the ahead-watermark traffic and
        // requests the gap explicitly (`NeedStable`), so steady-state
        // control traffic stays O(segment) per tick, not O(window).
        if let Some((w, seg)) = self.sent_segs.back() {
            ctx.multicast(
                &targets,
                Msg::Stable {
                    from: *w,
                    cmds: seg.clone(),
                },
            );
        }
        if let Some((w, seg)) = &self.my_prop {
            let learners: Vec<ProcessId> = self
                .cfg
                .roles
                .learners()
                .iter()
                .copied()
                .filter(|&l| l != me)
                .collect();
            ctx.multicast(
                &learners,
                Msg::StableProposal {
                    from: *w,
                    cmds: seg.clone(),
                },
            );
        }
    }

    fn arm_stable_gossip(&self, ctx: &mut dyn Context<Msg<C>>) {
        let every = self.cfg.timing.acceptor_resend;
        if self.cfg.wire.compact_every > 0
            && every.ticks() > 0
            && self.cfg.roles.learners().first() == Some(&ctx.me())
        {
            ctx.set_timer(every, TOK_STABLE_GOSSIP);
        }
    }

    /// Acks every pending proposal whose segment `learned` now contains.
    fn try_ack_pending(&mut self, ctx: &mut dyn Context<Msg<C>>) {
        if self.pending_props.is_empty() {
            return;
        }
        let w = self.comp.watermark();
        let mut done: Vec<u64> = Vec::new();
        for (&s, (proposer, cmds)) in &self.pending_props {
            if s < w {
                done.push(s); // already truncated past it
            } else if cmds.iter().all(|c| self.learned.contains(c)) {
                ctx.send(*proposer, Msg::StableAck { upto: s });
                done.push(s);
            }
        }
        for s in done {
            self.pending_props.remove(&s);
        }
    }
}

impl<C: CStruct> Actor for Learner<C> {
    type Msg = Msg<C>;

    fn on_start(&mut self, ctx: &mut dyn Context<Msg<C>>) {
        self.arm_stable_gossip(ctx);
    }

    fn on_recover(&mut self, ctx: &mut dyn Context<Msg<C>>) {
        // Acceptors hold "2b" delta bases for this learner; the restart
        // invalidated them on our side. Announce it so they downgrade to
        // Full payloads instead of waiting for our `NeedFull`.
        if self.cfg.wire.delta_ship {
            let acceptors = self.cfg.roles.acceptors().to_vec();
            ctx.multicast(&acceptors, Msg::Hello);
        }
        self.on_start(ctx);
    }

    fn on_message(&mut self, from: ProcessId, msg: Msg<C>, ctx: &mut dyn Context<Msg<C>>) {
        self.compact_tick(ctx);
        match msg {
            Msg::P2b { round, val } => {
                let base = self
                    .rounds
                    .get(&round)
                    .and_then(|st| st.reports.get(&from))
                    .cloned();
                // Resolve full or delta payloads against the acceptor's
                // last report; the `changed` flag subsumes the old
                // duplicate-delivery fast path (an identical re-delivery
                // cannot move any glb, so the subset sweep is skipped).
                let (val, changed) = match self.comp.resolve(val, base.as_ref()) {
                    Resolved::Value(v, c) => (v, c),
                    Resolved::Gap => {
                        ctx.send(from, Msg::NeedFull { round });
                        return;
                    }
                    Resolved::Unaligned(p) => {
                        // Behind the sender's watermark: request the
                        // missing stable segments.
                        if p.as_full()
                            .is_some_and(|v| v.watermark() > self.comp.watermark())
                        {
                            ctx.send(
                                from,
                                Msg::NeedStable {
                                    from: self.comp.watermark(),
                                },
                            );
                        }
                        return;
                    }
                };
                let st = self.rounds.entry(round).or_default();
                st.reports.insert(from, val);
                self.prune();
                if changed {
                    self.try_learn(round, from, ctx);
                }
            }
            Msg::StableProposal { from: s, cmds }
                if self.cfg.wire.compact_every > 0 && s >= self.comp.watermark() =>
            {
                self.pending_props.insert(s, (from, cmds));
                while self.pending_props.len() > 2 * self.cfg.wire.stable_keep {
                    let last = *self.pending_props.keys().next_back().expect("non-empty");
                    self.pending_props.remove(&last);
                }
                self.try_ack_pending(ctx);
            }
            Msg::StableAck { upto } => {
                if matches!(&self.my_prop, Some((w, _)) if *w == upto) {
                    self.prop_acks.insert(from);
                    if self.prop_acks.len() >= self.cfg.learner_quorum() {
                        self.finalize_stable(ctx);
                    }
                }
            }
            Msg::Stable { from: s, cmds } if self.cfg.wire.compact_every > 0 => {
                // A crash-recovered learner that has learned nothing yet
                // fast-forwards to the announced frontier: the segments
                // below it may no longer be retained anywhere, and an
                // empty learner loses nothing by re-anchoring. (A replica
                // host without a checkpoint fails loudly at its delivery
                // cursor instead of diverging silently.)
                if self.comp.watermark() == 0 && self.learned.total_len() == 0 && s > 0 {
                    self.resume_at(s);
                }
                // Applied at the next upcall's compact_tick, after the
                // host had a chance to drain the live window.
                self.comp.offer(s, cmds);
                // A segment ahead of our watermark with nothing buffered
                // at the watermark means we missed one: ask the
                // designated learner for the gap.
                if s > self.comp.watermark() && self.comp.gap_at_watermark() {
                    ctx.send(
                        from,
                        Msg::NeedStable {
                            from: self.comp.watermark(),
                        },
                    );
                }
            }
            Msg::NeedStable { from: want } => {
                for (f, seg) in self.comp.recent_from(want) {
                    ctx.send(from, Msg::Stable { from: f, cmds: seg });
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut dyn Context<Msg<C>>) {
        self.compact_tick(ctx);
        if token == TOK_STABLE_GOSSIP {
            self.regossip_stable(ctx);
            self.arm_stable_gossip(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Policy, RTYPE_MULTI};
    use mcpaxos_actor::{MemStore, SimDuration, StableStore};
    use mcpaxos_cstruct::{CmdSet, SingleDecree};

    struct Ctx {
        sent: Vec<(ProcessId, Msg<CmdSet<u32>>)>,
        store: MemStore,
        now: SimTime,
    }

    impl Context<Msg<CmdSet<u32>>> for Ctx {
        fn me(&self) -> ProcessId {
            ProcessId(42)
        }
        fn now(&self) -> SimTime {
            self.now
        }
        fn send(&mut self, to: ProcessId, msg: Msg<CmdSet<u32>>) {
            self.sent.push((to, msg));
        }
        fn set_timer(&mut self, _after: SimDuration, _token: TimerToken) {}
        fn cancel_timer(&mut self, _token: TimerToken) {}
        fn storage(&mut self) -> &mut dyn StableStore {
            &mut self.store
        }
        fn metric(&mut self, _m: Metric) {}
        fn random(&mut self) -> u64 {
            0
        }
    }

    fn mk(v: &[u32]) -> CmdSet<u32> {
        v.iter().copied().collect()
    }

    #[test]
    fn learns_glb_of_quorum() {
        // 3 acceptors (ids 4,5,6 in disjoint layout 1/3/3/1), majority 2.
        let cfg = Arc::new(DeployConfig::simple(1, 3, 3, 1, Policy::MultiCoordinated));
        let mut l: Learner<CmdSet<u32>> = Learner::new(cfg);
        let mut c = Ctx {
            sent: vec![],
            store: MemStore::new(),
            now: SimTime(5),
        };
        let r = Round::new(0, 1, 0, RTYPE_MULTI);
        let acc = |i: u32| ProcessId(3 + i);
        l.on_message(
            acc(1),
            Msg::P2b {
                round: r,
                val: mk(&[1, 2]).into(),
            },
            &mut c,
        );
        assert!(l.learned().is_bottom(), "one report is not a quorum");
        l.on_message(
            acc(2),
            Msg::P2b {
                round: r,
                val: mk(&[2, 3]).into(),
            },
            &mut c,
        );
        // glb({1,2},{2,3}) = {2} chosen.
        assert_eq!(l.learned(), &mk(&[2]));
        // Third report: quorums {a1,a3}, {a2,a3}, {a1,a2} → lub of glbs.
        l.on_message(
            acc(3),
            Msg::P2b {
                round: r,
                val: mk(&[1, 2, 3]).into(),
            },
            &mut c,
        );
        assert_eq!(l.learned(), &mk(&[1, 2, 3]));
        assert_eq!(l.history().len(), 2);
        assert_eq!(l.history()[0], (SimTime(5), 1));
    }

    #[test]
    fn notifies_proposers_once_per_command() {
        let cfg = Arc::new(DeployConfig::simple(1, 3, 3, 1, Policy::MultiCoordinated));
        let mut l: Learner<CmdSet<u32>> = Learner::new(cfg);
        let mut c = Ctx {
            sent: vec![],
            store: MemStore::new(),
            now: SimTime(1),
        };
        let r = Round::new(0, 1, 0, RTYPE_MULTI);
        let acc = |i: u32| ProcessId(3 + i);
        l.on_message(
            acc(1),
            Msg::P2b {
                round: r,
                val: mk(&[7]).into(),
            },
            &mut c,
        );
        l.on_message(
            acc(2),
            Msg::P2b {
                round: r,
                val: mk(&[7]).into(),
            },
            &mut c,
        );
        let notif: Vec<_> = c
            .sent
            .iter()
            .filter(|(_, m)| matches!(m, Msg::Learned { .. }))
            .collect();
        assert_eq!(notif.len(), 1, "one proposer, one notification");
        // Re-delivery does not re-notify.
        l.on_message(
            acc(1),
            Msg::P2b {
                round: r,
                val: mk(&[7]).into(),
            },
            &mut c,
        );
        let notif2 = c
            .sent
            .iter()
            .filter(|(_, m)| matches!(m, Msg::Learned { .. }))
            .count();
        assert_eq!(notif2, 1);
    }

    #[test]
    #[should_panic(expected = "CONSISTENCY VIOLATION")]
    fn incompatible_chosen_values_panic() {
        // Force the impossible: two quorums choosing incompatible values
        // (single-decree consensus with different decisions). The learner
        // must detect and loudly fail.
        let cfg = Arc::new(DeployConfig::simple(1, 3, 3, 1, Policy::MultiCoordinated));
        let mut l: Learner<SingleDecree<u32>> = Learner::new(cfg);
        struct C2 {
            store: MemStore,
        }
        impl Context<Msg<SingleDecree<u32>>> for C2 {
            fn me(&self) -> ProcessId {
                ProcessId(42)
            }
            fn now(&self) -> SimTime {
                SimTime::ZERO
            }
            fn send(&mut self, _to: ProcessId, _m: Msg<SingleDecree<u32>>) {}
            fn set_timer(&mut self, _a: SimDuration, _t: TimerToken) {}
            fn cancel_timer(&mut self, _t: TimerToken) {}
            fn storage(&mut self) -> &mut dyn StableStore {
                &mut self.store
            }
            fn metric(&mut self, _m: Metric) {}
            fn random(&mut self) -> u64 {
                0
            }
        }
        let mut c = C2 {
            store: MemStore::new(),
        };
        let r1 = Round::new(0, 1, 0, RTYPE_MULTI);
        let r2 = Round::new(0, 2, 0, RTYPE_MULTI);
        let acc = |i: u32| ProcessId(3 + i);
        let dec = SingleDecree::decided;
        l.on_message(
            acc(1),
            Msg::P2b {
                round: r1,
                val: dec(1).into(),
            },
            &mut c,
        );
        l.on_message(
            acc(2),
            Msg::P2b {
                round: r1,
                val: dec(1).into(),
            },
            &mut c,
        );
        l.on_message(
            acc(1),
            Msg::P2b {
                round: r2,
                val: dec(2).into(),
            },
            &mut c,
        );
        l.on_message(
            acc(2),
            Msg::P2b {
                round: r2,
                val: dec(2).into(),
            },
            &mut c,
        );
    }
}
