//! The learner agent.
//!
//! A learner collects phase "2b" messages; when an acceptor quorum for a
//! round has reported, the glb of the quorum's values is *chosen* and the
//! learner extends `learned[l]` with it (action `Learn(l)` of §3.2).
//!
//! Because different quorums may be completed by different subsets of the
//! received reports, the learner enumerates quorum-sized subsets of the
//! reporting acceptors and takes the lub of their glbs — every such glb is
//! chosen, and by Proposition 1 the chosen set is compatible, so the lub
//! exists (a failure here is a hard safety-violation signal, valuable in
//! tests).

use crate::agents::metrics;
use crate::config::DeployConfig;
use crate::msg::Msg;
use crate::quorum::{combination_count, for_each_combination};
use crate::round::Round;
use mcpaxos_actor::{Actor, Context, Metric, ProcessId, SimTime, TimerToken};
use mcpaxos_cstruct::{glb_all, CStruct};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Rounds kept live for quorum completion; older rounds are pruned.
const ROUND_WINDOW: usize = 8;
/// Above this many quorum subsets, fall back to one conservative glb.
const MAX_QUORUM_ENUM: u64 = 5_000;

/// The learner role.
pub struct Learner<C: CStruct> {
    cfg: Arc<DeployConfig>,
    learned: C,
    rounds: BTreeMap<Round, BTreeMap<ProcessId, C>>,
    notified: Vec<C::Cmd>,
    history: Vec<(SimTime, usize)>,
}

impl<C: CStruct> Learner<C> {
    /// Creates a learner for the given deployment.
    pub fn new(cfg: Arc<DeployConfig>) -> Self {
        Learner {
            cfg,
            learned: C::bottom(),
            rounds: BTreeMap::new(),
            notified: Vec::new(),
            history: Vec::new(),
        }
    }

    /// The c-struct learned so far.
    pub fn learned(&self) -> &C {
        &self.learned
    }

    /// `(time, learned-command-count)` pairs recorded whenever the learned
    /// value grew; the raw data for the latency experiments.
    pub fn history(&self) -> &[(SimTime, usize)] {
        &self.history
    }

    fn try_learn(&mut self, round: Round, ctx: &mut dyn Context<Msg<C>>) {
        let kind = self.cfg.schedule.kind(round);
        let qsize = self.cfg.quorums.size_for(kind);
        let reports = match self.rounds.get(&round) {
            Some(r) if r.len() >= qsize => r,
            _ => return,
        };
        let vals: Vec<&C> = reports.values().collect();
        let mut grew = false;
        let absorb = |g: C, learned: &mut C| {
            let merged = learned.lub(&g).unwrap_or_else(|| {
                panic!(
                    "CONSISTENCY VIOLATION: learned value incompatible with chosen value \
                     at {round:?}: learned={learned:?} chosen={g:?}"
                )
            });
            if merged != *learned {
                *learned = merged;
                true
            } else {
                false
            }
        };
        if combination_count(vals.len(), qsize) <= MAX_QUORUM_ENUM {
            let mut glbs: Vec<C> = Vec::new();
            for_each_combination(vals.len(), qsize, |idx| {
                glbs.push(glb_all(idx.iter().map(|&i| vals[i].clone())));
                true
            });
            for g in glbs {
                grew |= absorb(g, &mut self.learned);
            }
        } else {
            // Conservative: the glb over all reports is a lower bound of
            // every quorum's glb, hence also chosen.
            let g = glb_all(vals.into_iter().cloned());
            grew |= absorb(g, &mut self.learned);
        }
        if grew {
            let count = self.learned.count();
            self.history.push((ctx.now(), count));
            ctx.metric(Metric::add(metrics::LEARNED, count as i64));
            if self.cfg.notify_learned {
                let new: Vec<C::Cmd> = self
                    .learned
                    .commands()
                    .into_iter()
                    .filter(|c| !self.notified.contains(c))
                    .collect();
                if !new.is_empty() {
                    self.notified.extend(new.iter().cloned());
                    let proposers = self.cfg.roles.proposers().to_vec();
                    ctx.multicast(&proposers, Msg::Learned { cmds: new });
                }
            }
        }
    }

    fn prune(&mut self) {
        while self.rounds.len() > ROUND_WINDOW {
            let lowest = *self.rounds.keys().next().expect("non-empty");
            self.rounds.remove(&lowest);
        }
    }
}

impl<C: CStruct> Actor for Learner<C> {
    type Msg = Msg<C>;

    fn on_message(&mut self, from: ProcessId, msg: Msg<C>, ctx: &mut dyn Context<Msg<C>>) {
        if let Msg::P2b { round, val } = msg {
            self.rounds.entry(round).or_default().insert(from, val);
            self.prune();
            self.try_learn(round, ctx);
        }
    }

    fn on_timer(&mut self, _token: TimerToken, _ctx: &mut dyn Context<Msg<C>>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Policy, RTYPE_MULTI};
    use mcpaxos_actor::{MemStore, SimDuration, StableStore};
    use mcpaxos_cstruct::{CmdSet, SingleDecree};

    struct Ctx {
        sent: Vec<(ProcessId, Msg<CmdSet<u32>>)>,
        store: MemStore,
        now: SimTime,
    }

    impl Context<Msg<CmdSet<u32>>> for Ctx {
        fn me(&self) -> ProcessId {
            ProcessId(42)
        }
        fn now(&self) -> SimTime {
            self.now
        }
        fn send(&mut self, to: ProcessId, msg: Msg<CmdSet<u32>>) {
            self.sent.push((to, msg));
        }
        fn set_timer(&mut self, _after: SimDuration, _token: TimerToken) {}
        fn cancel_timer(&mut self, _token: TimerToken) {}
        fn storage(&mut self) -> &mut dyn StableStore {
            &mut self.store
        }
        fn metric(&mut self, _m: Metric) {}
        fn random(&mut self) -> u64 {
            0
        }
    }

    fn mk(v: &[u32]) -> CmdSet<u32> {
        v.iter().copied().collect()
    }

    #[test]
    fn learns_glb_of_quorum() {
        // 3 acceptors (ids 4,5,6 in disjoint layout 1/3/3/1), majority 2.
        let cfg = Arc::new(DeployConfig::simple(1, 3, 3, 1, Policy::MultiCoordinated));
        let mut l: Learner<CmdSet<u32>> = Learner::new(cfg);
        let mut c = Ctx {
            sent: vec![],
            store: MemStore::new(),
            now: SimTime(5),
        };
        let r = Round::new(0, 1, 0, RTYPE_MULTI);
        let acc = |i: u32| ProcessId(3 + i);
        l.on_message(
            acc(1),
            Msg::P2b {
                round: r,
                val: mk(&[1, 2]),
            },
            &mut c,
        );
        assert!(l.learned().is_bottom(), "one report is not a quorum");
        l.on_message(
            acc(2),
            Msg::P2b {
                round: r,
                val: mk(&[2, 3]),
            },
            &mut c,
        );
        // glb({1,2},{2,3}) = {2} chosen.
        assert_eq!(l.learned(), &mk(&[2]));
        // Third report: quorums {a1,a3}, {a2,a3}, {a1,a2} → lub of glbs.
        l.on_message(
            acc(3),
            Msg::P2b {
                round: r,
                val: mk(&[1, 2, 3]),
            },
            &mut c,
        );
        assert_eq!(l.learned(), &mk(&[1, 2, 3]));
        assert_eq!(l.history().len(), 2);
        assert_eq!(l.history()[0], (SimTime(5), 1));
    }

    #[test]
    fn notifies_proposers_once_per_command() {
        let cfg = Arc::new(DeployConfig::simple(1, 3, 3, 1, Policy::MultiCoordinated));
        let mut l: Learner<CmdSet<u32>> = Learner::new(cfg);
        let mut c = Ctx {
            sent: vec![],
            store: MemStore::new(),
            now: SimTime(1),
        };
        let r = Round::new(0, 1, 0, RTYPE_MULTI);
        let acc = |i: u32| ProcessId(3 + i);
        l.on_message(
            acc(1),
            Msg::P2b {
                round: r,
                val: mk(&[7]),
            },
            &mut c,
        );
        l.on_message(
            acc(2),
            Msg::P2b {
                round: r,
                val: mk(&[7]),
            },
            &mut c,
        );
        let notif: Vec<_> = c
            .sent
            .iter()
            .filter(|(_, m)| matches!(m, Msg::Learned { .. }))
            .collect();
        assert_eq!(notif.len(), 1, "one proposer, one notification");
        // Re-delivery does not re-notify.
        l.on_message(
            acc(1),
            Msg::P2b {
                round: r,
                val: mk(&[7]),
            },
            &mut c,
        );
        let notif2 = c
            .sent
            .iter()
            .filter(|(_, m)| matches!(m, Msg::Learned { .. }))
            .count();
        assert_eq!(notif2, 1);
    }

    #[test]
    #[should_panic(expected = "CONSISTENCY VIOLATION")]
    fn incompatible_chosen_values_panic() {
        // Force the impossible: two quorums choosing incompatible values
        // (single-decree consensus with different decisions). The learner
        // must detect and loudly fail.
        let cfg = Arc::new(DeployConfig::simple(1, 3, 3, 1, Policy::MultiCoordinated));
        let mut l: Learner<SingleDecree<u32>> = Learner::new(cfg);
        struct C2 {
            store: MemStore,
        }
        impl Context<Msg<SingleDecree<u32>>> for C2 {
            fn me(&self) -> ProcessId {
                ProcessId(42)
            }
            fn now(&self) -> SimTime {
                SimTime::ZERO
            }
            fn send(&mut self, _to: ProcessId, _m: Msg<SingleDecree<u32>>) {}
            fn set_timer(&mut self, _a: SimDuration, _t: TimerToken) {}
            fn cancel_timer(&mut self, _t: TimerToken) {}
            fn storage(&mut self) -> &mut dyn StableStore {
                &mut self.store
            }
            fn metric(&mut self, _m: Metric) {}
            fn random(&mut self) -> u64 {
                0
            }
        }
        let mut c = C2 {
            store: MemStore::new(),
        };
        let r1 = Round::new(0, 1, 0, RTYPE_MULTI);
        let r2 = Round::new(0, 2, 0, RTYPE_MULTI);
        let acc = |i: u32| ProcessId(3 + i);
        let dec = SingleDecree::decided;
        l.on_message(
            acc(1),
            Msg::P2b {
                round: r1,
                val: dec(1),
            },
            &mut c,
        );
        l.on_message(
            acc(2),
            Msg::P2b {
                round: r1,
                val: dec(1),
            },
            &mut c,
        );
        l.on_message(
            acc(1),
            Msg::P2b {
                round: r2,
                val: dec(2),
            },
            &mut c,
        );
        l.on_message(
            acc(2),
            Msg::P2b {
                round: r2,
                val: dec(2),
            },
            &mut c,
        );
    }
}
