//! The acceptor agent.
//!
//! Acceptors implement actions `Phase1b`, `Phase2bClassic` and
//! `Phase2bFast` of §3.2, the multicoordinated collision detection of
//! §4.2, the uncoordinated recovery variant, and the disk-write reduction
//! of §4.4:
//!
//! * `(vrnd, vval)` is persisted on every accept — these are the writes
//!   the paper says cannot be avoided;
//! * under [`Durability::Reduced`], `rnd` is volatile except for its major
//!   count, which is written once at startup and bumped once per recovery;
//! * under [`Durability::Naive`], the full `rnd` is also written on every
//!   `Phase1b`, the baseline the E7 experiment compares against.

use crate::agents::{metrics, TOK_A_RESEND, TOK_FLUSH};
use crate::compact::{Compactor, Resolved};
use crate::config::{CollisionPolicy, DeployConfig, Durability};
use crate::msg::{value_digest, Msg, Payload};
use crate::provedsafe::{pick, proved_safe, OneB};
use crate::round::Round;
use crate::schedule::RoundKind;
use mcpaxos_actor::wire::{from_bytes, to_bytes, Wire};
use mcpaxos_actor::{Actor, Context, Metric, ProcessId, TimerToken};
use mcpaxos_cstruct::{glb_all_ref, CStruct};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Storage key for the accepted vote `(vrnd, vval)`.
const KEY_VOTE: &str = "vote";
/// Storage key for the persisted major round count (`MCount`, §4.4).
const KEY_MAJOR: &str = "major";
/// Storage key for the full round under naive durability.
const KEY_RND: &str = "rnd";

/// Rounds of "2a"/"2b" bookkeeping kept before pruning.
const ROUND_WINDOW: usize = 8;

/// The acceptor role.
pub struct Acceptor<C: CStruct> {
    cfg: Arc<DeployConfig>,
    rnd: Round,
    vrnd: Round,
    /// The accepted value, shared: full-payload sends bump this Arc
    /// instead of deep-cloning the history (mutation uses copy-on-write).
    vval: Arc<C>,
    persisted_major: u32,
    /// Latest "2a" value per coordinator, per round (payloads shared
    /// with the messages they arrived in).
    round_2a: BTreeMap<Round, BTreeMap<ProcessId, Arc<C>>>,
    /// Gossiped "2b" values per acceptor, per round (uncoordinated
    /// recovery collision *detection* only).
    round_2b: BTreeMap<Round, BTreeMap<ProcessId, Arc<C>>>,
    /// Binding "1b" reports exchanged among acceptors for uncoordinated
    /// recovery rounds.
    recovery_1b: BTreeMap<Round, BTreeMap<ProcessId, OneB<C>>>,
    /// Proposals buffered for fast appends.
    fast_buf: Vec<C::Cmd>,
    /// Stable-prefix compaction state (watermark, pending/recent segments).
    comp: Compactor<C>,
    /// Per peer: the round and logical value length of the last "2b" we
    /// shipped it — the base the next delta extends.
    sent_2b: BTreeMap<ProcessId, (Round, u64)>,
    /// Group commit: whether a `TOK_FLUSH` tick is armed.
    flush_armed: bool,
    /// Group commit: a "2b" broadcast is waiting for the next flush (a 2b
    /// must never announce a vote that is not yet durable).
    pending_2b: bool,
}

impl<C: CStruct> Acceptor<C> {
    /// Creates an acceptor for the given deployment.
    pub fn new(cfg: Arc<DeployConfig>) -> Self {
        let comp = Compactor::new(cfg.wire.stable_keep);
        Acceptor {
            cfg,
            rnd: Round::ZERO,
            vrnd: Round::ZERO,
            vval: Arc::new(C::bottom()),
            persisted_major: 0,
            round_2a: BTreeMap::new(),
            round_2b: BTreeMap::new(),
            recovery_1b: BTreeMap::new(),
            fast_buf: Vec::new(),
            comp,
            sent_2b: BTreeMap::new(),
            flush_armed: false,
            pending_2b: false,
        }
    }

    /// The highest round this acceptor has heard of.
    pub fn rnd(&self) -> Round {
        self.rnd
    }

    /// The round of the latest accepted value.
    pub fn vrnd(&self) -> Round {
        self.vrnd
    }

    /// The latest accepted c-struct.
    pub fn vval(&self) -> &C {
        &self.vval
    }

    // ----- durability (§4.4) ---------------------------------------------

    fn persist_vote(&mut self, ctx: &mut dyn Context<Msg<C>>) {
        // Encode the pair in place: no clone of the (possibly large)
        // accepted value just to serialize it.
        let mut bytes = Vec::new();
        self.vrnd.encode(&mut bytes);
        self.vval.encode(&mut bytes);
        ctx.storage().write(KEY_VOTE, bytes);
    }

    fn persist_round(&mut self, ctx: &mut dyn Context<Msg<C>>) {
        match self.cfg.durability {
            Durability::Naive => {
                ctx.storage().write(KEY_RND, to_bytes(&self.rnd));
            }
            Durability::Reduced => {
                if self.rnd.major > self.persisted_major {
                    self.persisted_major = self.rnd.major;
                    ctx.storage()
                        .write(KEY_MAJOR, to_bytes(&self.persisted_major));
                }
            }
        }
    }

    // ----- protocol helpers ------------------------------------------------

    /// Emits the `bytes_sent` metric for `n` sends of `payload`, when byte
    /// accounting is on.
    fn account(&self, payload: &Payload<C>, n: usize, ctx: &mut dyn Context<Msg<C>>) {
        if self.cfg.wire.account_bytes {
            ctx.metric(Metric::add(
                metrics::BYTES_SENT,
                (payload.encoded_len() * n as u64) as i64,
            ));
        }
    }

    /// Whether vote persistence is group-committed (deferred flushes).
    fn group_commit_on(&self) -> bool {
        self.cfg.group_commit.ticks() > 0
    }

    fn send_1b(&mut self, round: Round, ctx: &mut dyn Context<Msg<C>>) {
        // Group commit: a "1b" is *evidence* — ProvedSafe folds the
        // reported `(vrnd, vval)` into its safety argument, so the report
        // must never run ahead of the durable state (a phantom vote that a
        // crash then rolls back could make `pick()` choose wrongly).
        // Flush synchronously; joins are per-round, so this stays cheap.
        if self.group_commit_on() {
            ctx.storage().flush();
        }
        let coords = self.cfg.schedule.coordinators_of(round);
        // The fan-out shares the accepted value's Arc — no clone. 1b
        // values are always shipped full: the receiving coordinator
        // generally holds no base from us for this round.
        let payload = Payload::Full(self.vval.clone());
        self.account(&payload, coords.len(), ctx);
        ctx.multicast(
            &coords,
            Msg::P1b {
                round,
                vrnd: self.vrnd,
                vval: payload,
            },
        );
    }

    fn join(&mut self, round: Round, ctx: &mut dyn Context<Msg<C>>) {
        debug_assert!(round > self.rnd);
        self.rnd = round;
        self.persist_round(ctx);
        self.send_1b(round, ctx);
    }

    fn nack(&self, to: ProcessId, ctx: &mut dyn Context<Msg<C>>) {
        ctx.metric(Metric::incr(metrics::NACKS));
        ctx.send(to, Msg::RoundTooLow { heard: self.rnd });
    }

    fn arm_resend(&self, ctx: &mut dyn Context<Msg<C>>) {
        let every = self.cfg.timing.acceptor_resend;
        if every.ticks() > 0 {
            ctx.set_timer(every, TOK_A_RESEND);
        }
    }

    /// Whether "2b" messages are also gossiped to fellow acceptors
    /// (acceptor-driven collision recovery, §4.2).
    fn gossip_2b(&self) -> bool {
        match self.cfg.collision {
            CollisionPolicy::Uncoordinated => true,
            CollisionPolicy::Coordinated => self.cfg.schedule.kind(self.vrnd) == RoundKind::Fast,
            CollisionPolicy::NewRound => false,
        }
    }

    /// Broadcasts the current vote, deferring to the next group-commit
    /// flush when one is configured: a "2b" announces a durable vote, so
    /// it must not leave before the write buffering it is synced.
    fn broadcast_2b(&mut self, ctx: &mut dyn Context<Msg<C>>) {
        if self.group_commit_on() {
            self.pending_2b = true;
            if !self.flush_armed {
                self.flush_armed = true;
                ctx.set_timer(self.cfg.group_commit, TOK_FLUSH);
            }
            return;
        }
        self.broadcast_2b_now(ctx);
    }

    fn broadcast_2b_now(&mut self, ctx: &mut dyn Context<Msg<C>>) {
        let learners = self.cfg.roles.learners().to_vec();
        // Coordinators monitor 2b traffic for progress tracking, fast
        // collision detection and coordinated recovery (§4.2–4.3).
        let coords = self.cfg.roles.coordinators().to_vec();
        // Fast rounds under acceptor-driven recovery (§4.2): gossip "2b"
        // to fellow acceptors so collisions are detected at the acceptors,
        // which then issue *binding* "1b" promises for the successor
        // round. (Converting 2b snapshots into 1b evidence at a
        // coordinator is unsound for generalized rounds, which accept
        // incrementally — a snapshot is not the sender's final word.)
        let me = ctx.me();
        let peers: Vec<ProcessId> = if self.gossip_2b() {
            self.cfg
                .roles
                .acceptors()
                .iter()
                .copied()
                .filter(|&a| a != me)
                .collect()
        } else {
            Vec::new()
        };
        if !self.cfg.wire.delta_ship {
            let payload = Payload::Full(self.vval.clone());
            self.account(&payload, learners.len() + coords.len() + peers.len(), ctx);
            let msg = Msg::P2b {
                round: self.vrnd,
                val: payload,
            };
            ctx.multicast(&learners, msg.clone());
            ctx.multicast(&coords, msg.clone());
            if !peers.is_empty() {
                ctx.multicast(&peers, msg);
            }
            return;
        }
        // Delta shipping: per peer, extend the base we last shipped it in
        // this round; fall back to the full value on a new round or an
        // unproducible suffix. Lost messages surface as `NeedFull` nacks,
        // which reset the peer's base.
        let round = self.vrnd;
        let total = self.vval.total_len();
        // One digest of the current value for every delta this round: the
        // receiver recomputes it over its reconstruction and rejects
        // silently divergent equal-length bases (answers `NeedFull`).
        let digest = value_digest(self.vval.as_ref());
        for &t in learners.iter().chain(&coords).chain(&peers) {
            let base = match self.sent_2b.get(&t) {
                Some(&(r, len)) if r == round && len <= total => Some(len),
                _ => None,
            };
            let payload = match base.and_then(|len| Some((len, self.vval.suffix_from(len)?))) {
                Some((base_len, suffix)) => {
                    ctx.metric(Metric::incr(metrics::DELTA_SENDS));
                    Payload::Delta {
                        base_len,
                        digest,
                        suffix,
                    }
                }
                None => Payload::Full(self.vval.clone()),
            };
            self.account(&payload, 1, ctx);
            self.sent_2b.insert(t, (round, total));
            ctx.send(
                t,
                Msg::P2b {
                    round,
                    val: payload,
                },
            );
        }
    }

    /// Applies every pending stable segment `vval` covers, truncating the
    /// live window and bringing all per-round bookkeeping to the new
    /// watermark (entries that cannot follow are dropped — they will be
    /// re-established by their senders' next messages).
    fn apply_compaction(&mut self, ctx: &mut dyn Context<Msg<C>>) {
        if self.cfg.wire.compact_every == 0 {
            return;
        }
        let fast_buf = &mut self.fast_buf;
        let applied = self.comp.advance(Arc::make_mut(&mut self.vval), |seg| {
            fast_buf.retain(|c| !seg.contains(c));
        });
        if applied == 0 {
            return;
        }
        ctx.metric(Metric::add(metrics::TRUNCATIONS, applied as i64));
        let comp = &self.comp;
        for m in self.round_2a.values_mut() {
            m.retain(|_, v| comp.normalize_arc(v));
        }
        for m in self.round_2b.values_mut() {
            m.retain(|_, v| comp.normalize_arc(v));
        }
        for m in self.recovery_1b.values_mut() {
            m.retain(|_, r| comp.normalize_arc(&mut r.vval));
        }
        // Re-persist the compacted vote: recovery then resumes at the new
        // watermark instead of replaying the truncated prefix.
        self.persist_vote(ctx);
    }

    /// Resolves an ingested c-struct payload against `base`, retrying once
    /// after advancing compaction when watermarks disagree. `None` means
    /// the message must be dropped; `Some(Err(()))` (gap) means the sender
    /// should be asked for a full value.
    #[allow(clippy::type_complexity)]
    fn ingest(
        &mut self,
        from: ProcessId,
        payload: Payload<C>,
        base: impl Fn(&Self) -> Option<Arc<C>>,
        ctx: &mut dyn Context<Msg<C>>,
    ) -> Option<Result<(Arc<C>, bool), ()>> {
        let b = base(self);
        match self.comp.resolve(payload, b.as_ref()) {
            Resolved::Value(v, changed) => Some(Ok((v, changed))),
            Resolved::Gap => Some(Err(())),
            Resolved::Unaligned(payload) => {
                // Maybe a pending segment unlocks the mismatch.
                self.apply_compaction(ctx);
                let b = base(self);
                match self.comp.resolve(payload, b.as_ref()) {
                    Resolved::Value(v, changed) => Some(Ok((v, changed))),
                    Resolved::Gap => Some(Err(())),
                    Resolved::Unaligned(p) => {
                        // Still behind the sender: ask for the missing
                        // stable segments.
                        if p.as_full()
                            .is_some_and(|v| v.watermark() > self.comp.watermark())
                        {
                            ctx.send(
                                from,
                                Msg::NeedStable {
                                    from: self.comp.watermark(),
                                },
                            );
                        }
                        None
                    }
                }
            }
        }
    }

    fn prune(&mut self) {
        while self.round_2a.len() > ROUND_WINDOW {
            let lowest = *self.round_2a.keys().next().expect("non-empty");
            self.round_2a.remove(&lowest);
        }
        while self.round_2b.len() > ROUND_WINDOW {
            let lowest = *self.round_2b.keys().next().expect("non-empty");
            self.round_2b.remove(&lowest);
        }
        while self.recovery_1b.len() > ROUND_WINDOW {
            let lowest = *self.recovery_1b.keys().next().expect("non-empty");
            self.recovery_1b.remove(&lowest);
        }
    }

    /// Multicoordinated collision (§4.2): incompatible "2a" values from
    /// coordinators of the same round. The acceptor behaves as if it had
    /// received a "1a" for the successor round, skipping its phase 1.
    fn handle_mc_collision(&mut self, round: Round, ctx: &mut dyn Context<Msg<C>>) {
        ctx.metric(Metric::incr(metrics::COLLISION_MC));
        if self.cfg.collision == CollisionPolicy::NewRound {
            return; // the leader will notice the stall and start afresh
        }
        let next = self.cfg.schedule.next(round);
        if next > self.rnd {
            self.rnd = next;
            self.persist_round(ctx);
            self.send_1b(next, ctx);
        }
    }

    /// `Phase2bClassic` (§3.2): accept once a full coordinator quorum has
    /// forwarded compatible values.
    fn try_accept_classic(&mut self, round: Round, ctx: &mut dyn Context<Msg<C>>) {
        if round < self.rnd {
            return;
        }
        let quorum = self.cfg.schedule.coord_quorum(round);
        let vals: Vec<&C> = match self.round_2a.get(&round) {
            Some(m) if quorum.is_quorum(m.len()) => m.values().map(|v| v.as_ref()).collect(),
            _ => return,
        };
        // Each coordinator quorum L among the reporters yields a valid
        // lower bound u_L = ⊓ L2aVals; accepting several in sequence is
        // just repeated Phase2bClassic, so fold their lub. Quorum glbs are
        // always compatible: two coordinator quorums share a member c
        // (Assumption 3), and both glbs are lower bounds of c's value.
        // A crashed coordinator's stale value therefore cannot cap
        // progress — the quorums that exclude it keep growing.
        let qsize = quorum.quorum_size();
        let mut u_acc: Option<C> = None;
        crate::quorum::for_each_combination(vals.len(), qsize, |idx| {
            let g = glb_all_ref(idx.iter().map(|&i| vals[i]));
            u_acc = Some(match u_acc.take() {
                None => g,
                Some(u) => u
                    .lub(&g)
                    .expect("coordinator-quorum glbs must be compatible (Assumption 3 violated?)"),
            });
            true
        });
        let u = u_acc.expect("at least one quorum combination");
        let new_val = if self.vrnd == round {
            match self.vval.lub(&u) {
                Some(v) => v,
                None => {
                    // Our accepted value cannot extend to the quorum's
                    // suggestion: a collision shape; switch rounds.
                    self.handle_mc_collision(round, ctx);
                    return;
                }
            }
        } else {
            u
        };
        if !self.vval.is_bottom() && !self.vval.le(&new_val) {
            // A previously persisted vote is superseded by a value that
            // does not extend it: that disk write bought nothing (§4.2).
            ctx.metric(Metric::incr(metrics::OVERWRITTEN_VOTES));
        }
        // Change detection without snapshotting the whole previous value.
        let mut changed = self.vrnd != round || *self.vval != new_val;
        self.vrnd = round;
        self.vval = Arc::new(new_val);
        // Fast rounds: fold in any buffered proposals right away.
        if self.cfg.schedule.kind(round) == RoundKind::Fast {
            let before = self.vval.count();
            let buf = std::mem::take(&mut self.fast_buf);
            if !buf.is_empty() {
                let v = Arc::make_mut(&mut self.vval);
                for cmd in buf {
                    v.append(cmd);
                }
            }
            changed |= self.vval.count() != before;
        }
        if round > self.rnd {
            self.rnd = round;
        }
        if changed {
            ctx.metric(Metric::incr(metrics::ACCEPTS));
            self.persist_vote(ctx);
            self.persist_round(ctx);
        }
        // Re-broadcast even when unchanged: retransmission for lossy
        // links rides on duplicate "2a"s triggered by proposer resends.
        self.broadcast_2b(ctx);
    }

    /// `Phase2bFast` (§3.2): extend the accepted value directly with a
    /// proposal, without coordinator involvement.
    fn try_accept_fast(&mut self, cmd: C::Cmd, ctx: &mut dyn Context<Msg<C>>) {
        // Re-proposals of stabilized commands must not re-enter the live
        // window (their membership entries were truncated away).
        if self.cfg.wire.compact_every > 0 && self.comp.contains_recent(&cmd) {
            return;
        }
        if self.cfg.schedule.kind(self.rnd) != RoundKind::Fast || self.vrnd != self.rnd {
            // Round not fast or not yet primed by Phase2Start: buffer.
            if !self.fast_buf.contains(&cmd) && !self.vval.contains(&cmd) {
                self.fast_buf.push(cmd);
            }
            return;
        }
        let before = self.vval.count();
        Arc::make_mut(&mut self.vval).append(cmd);
        if self.vval.count() != before {
            ctx.metric(Metric::incr(metrics::ACCEPTS));
            self.persist_vote(ctx);
        }
        self.broadcast_2b(ctx);
    }

    /// Uncoordinated recovery, step 1 (§4.2, spec B.5 `CollisionDetection`):
    /// on noticing incompatible gossiped "2b" values in fast round
    /// `round`, promise the successor round and broadcast a **binding**
    /// "1b" for it to every acceptor (each acceptor is a coordinator
    /// quorum of itself for fast recovery rounds).
    ///
    /// The binding 1b exchange costs one message step more than naively
    /// reusing the "2b" messages as "1b" evidence, but the naive variant
    /// is unsound here: generalized fast rounds accept *incrementally*
    /// (one accept per append), so an old "2b" snapshot is not the
    /// sender's final word for the collided round — exactly the trap §4.2
    /// warns about when porting Fast Paxos recovery to Generalized Paxos.
    fn detect_fast_collision(&mut self, round: Round, ctx: &mut dyn Context<Msg<C>>) {
        if self.cfg.schedule.kind(round) != RoundKind::Fast {
            return;
        }
        let reports = match self.round_2b.get(&round) {
            Some(r) => r,
            None => return,
        };
        let vals: Vec<&C> = reports.values().map(|v| v.as_ref()).collect();
        let mut collided = false;
        'outer: for (i, a) in vals.iter().enumerate() {
            for b in &vals[i + 1..] {
                if !a.compatible(b) {
                    collided = true;
                    break 'outer;
                }
            }
        }
        if !collided {
            return;
        }
        let next = self.cfg.schedule.next(round);
        if next <= self.rnd {
            return; // already promised (or passed) the recovery round
        }
        ctx.metric(Metric::incr(metrics::COLLISION_FAST));
        match self.cfg.collision {
            // Uncoordinated: the successor round is fast and every
            // acceptor coordinates itself — exchange binding 1b among
            // acceptors and pick locally.
            CollisionPolicy::Uncoordinated => self.join_recovery(next, ctx),
            // Coordinated: the successor round is classic; promise it and
            // send the binding 1b to its coordinators, exactly as if a
            // "1a" for it had arrived (the §4.2 mechanism).
            CollisionPolicy::Coordinated => {
                self.rnd = next;
                self.persist_round(ctx);
                self.send_1b(next, ctx);
            }
            CollisionPolicy::NewRound => {}
        }
    }

    /// Promises recovery round `next` and broadcasts the binding "1b".
    fn join_recovery(&mut self, next: Round, ctx: &mut dyn Context<Msg<C>>) {
        self.rnd = next;
        self.persist_round(ctx);
        // Binding recovery reports are 1b evidence: sync any buffered
        // vote/promise writes before they leave (see `send_1b`).
        if self.group_commit_on() {
            ctx.storage().flush();
        }
        let me = ctx.me();
        let shared = self.vval.clone();
        let report = OneB {
            from: me,
            vrnd: self.vrnd,
            vval: shared.clone(),
        };
        self.recovery_1b.entry(next).or_default().insert(me, report);
        let peers: Vec<ProcessId> = self
            .cfg
            .roles
            .acceptors()
            .iter()
            .copied()
            .filter(|&a| a != me)
            .collect();
        let payload: Payload<C> = shared.into();
        self.account(&payload, peers.len(), ctx);
        ctx.multicast(
            &peers,
            Msg::P1b {
                round: next,
                vrnd: self.vrnd,
                vval: payload,
            },
        );
        self.try_complete_recovery(next, ctx);
    }

    /// Uncoordinated recovery, step 2 (spec B.5 `UncoordinatedRecovery`):
    /// with binding "1b" reports from a classic quorum, pick a safe value
    /// locally and accept it in the fast recovery round.
    fn try_complete_recovery(&mut self, round: Round, ctx: &mut dyn Context<Msg<C>>) {
        if self.vrnd >= round || self.rnd > round {
            return;
        }
        let msgs: Vec<OneB<C>> = match self.recovery_1b.get(&round) {
            Some(m) if m.len() >= self.cfg.quorums.classic_size() => m.values().cloned().collect(),
            _ => return,
        };
        let sched = self.cfg.schedule.clone();
        let picked = pick(proved_safe(&msgs, &self.cfg.quorums, |r| sched.kind(r)));
        ctx.metric(Metric::incr(metrics::UNCOORDINATED_RECOVERIES));
        if !self.vval.is_bottom() && !self.vval.le(&picked) {
            ctx.metric(Metric::incr(metrics::OVERWRITTEN_VOTES));
        }
        self.rnd = round;
        self.vrnd = round;
        self.vval = Arc::new(picked);
        {
            let v = Arc::make_mut(&mut self.vval);
            for cmd in std::mem::take(&mut self.fast_buf) {
                v.append(cmd);
            }
        }
        self.persist_vote(ctx);
        self.persist_round(ctx);
        self.broadcast_2b(ctx);
    }
}

impl<C: CStruct> Actor for Acceptor<C> {
    type Msg = Msg<C>;

    fn on_start(&mut self, ctx: &mut dyn Context<Msg<C>>) {
        // §4.4: "acceptors write on disk only once, when they are started".
        match self.cfg.durability {
            Durability::Reduced => {
                ctx.storage().write(KEY_MAJOR, to_bytes(&0u32));
            }
            Durability::Naive => {
                ctx.storage().write(KEY_RND, to_bytes(&Round::ZERO));
            }
        }
        self.arm_resend(ctx);
    }

    fn on_recover(&mut self, ctx: &mut dyn Context<Msg<C>>) {
        // Log-level damage (torn or corrupt WAL tail) that the store
        // truncated away at replay: surface it for operators.
        let repaired = ctx.storage().corrupt_records();
        if repaired > 0 {
            ctx.metric(Metric::add(metrics::CORRUPT_RECORDS, repaired as i64));
        }
        // Copy records out before decoding: decode failures emit metrics,
        // which need `ctx` back.
        let vote_bytes: Option<Vec<u8>> = ctx.storage().read(KEY_VOTE).map(|b| b.to_vec());
        let mut have_vote = false;
        if let Some(bytes) = vote_bytes {
            match from_bytes::<(Round, C)>(&bytes) {
                Ok((vrnd, vval)) => {
                    self.vrnd = vrnd;
                    self.vval = Arc::new(vval);
                    have_vote = true;
                    // The persisted vote carries its watermark; resume
                    // compaction there (the normalization window refills
                    // from fresh Stable segments).
                    self.comp.resume(self.vval.watermark());
                }
                Err(_) => {
                    // Undecodable vote record: recover from bottom, as if
                    // the vote had never been flushed — a state every
                    // asynchronous run already tolerates. Crashing here
                    // (the old behavior) turned one bad record into a
                    // permanent crash loop.
                    ctx.metric(Metric::incr(metrics::CORRUPT_RECORDS));
                }
            }
        }
        match self.cfg.durability {
            Durability::Reduced => {
                let major_bytes: Option<Vec<u8>> =
                    ctx.storage().read(KEY_MAJOR).map(|b| b.to_vec());
                let major: u32 = match major_bytes {
                    Some(b) => from_bytes(&b).unwrap_or_else(|_| {
                        // Corrupt MCount: the vote's own round is the
                        // strongest surviving evidence of majors seen.
                        ctx.metric(Metric::incr(metrics::CORRUPT_RECORDS));
                        self.vrnd.major
                    }),
                    None if have_vote => {
                        // `on_start` writes MCount before any vote can be
                        // cast, so a surviving vote without it means the
                        // record was *lost*, not that we never started.
                        ctx.metric(Metric::incr(metrics::LOST_RECORDS));
                        self.vrnd.major
                    }
                    None => 0, // genuinely never started
                };
                // Resume one major epoch up: dominates every round we may
                // have promised in volatile state, then persist the bump.
                self.persisted_major = major + 1;
                self.rnd = Round::new(major + 1, 0, 0, crate::schedule::RTYPE_SINGLE);
                ctx.storage()
                    .write(KEY_MAJOR, to_bytes(&self.persisted_major));
            }
            Durability::Naive => {
                let rnd_bytes: Option<Vec<u8>> = ctx.storage().read(KEY_RND).map(|b| b.to_vec());
                self.rnd = match rnd_bytes {
                    Some(b) => from_bytes(&b).unwrap_or_else(|_| {
                        // Corrupt promise record: fall back to `vrnd`, the
                        // strongest promise with surviving evidence.
                        ctx.metric(Metric::incr(metrics::CORRUPT_RECORDS));
                        self.vrnd
                    }),
                    None if have_vote => {
                        // Naive mode persists `rnd` at startup: a vote
                        // without a promise record means the record was
                        // lost. Re-promising from zero here would let us
                        // answer old "1a"s we already promised past —
                        // distinguish "record lost" from "never started".
                        ctx.metric(Metric::incr(metrics::LOST_RECORDS));
                        self.vrnd
                    }
                    None => Round::ZERO, // genuinely never started
                };
                if self.rnd < self.vrnd {
                    self.rnd = self.vrnd;
                }
            }
        }
        // Announce the restart: our pre-crash ingest caches are gone, so
        // senders holding a delta base for us (coordinators' "2a" bases,
        // fellow acceptors' gossip "2b" bases) must downgrade to Full.
        // Pure optimization — a lost Hello just re-opens the NeedFull
        // path — so only spend the wire bytes when delta shipping is on.
        if self.cfg.wire.delta_ship {
            let me = ctx.me();
            let peers: Vec<ProcessId> = self
                .cfg
                .roles
                .coordinators()
                .iter()
                .chain(self.cfg.roles.acceptors())
                .copied()
                .filter(|&p| p != me)
                .collect();
            ctx.multicast(&peers, Msg::Hello);
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: Msg<C>, ctx: &mut dyn Context<Msg<C>>) {
        match msg {
            Msg::P1a { round } => {
                if round > self.rnd {
                    self.join(round, ctx);
                } else if round < self.rnd {
                    self.nack(from, ctx);
                }
            }
            Msg::P2a { round, val } => {
                if round < self.rnd {
                    self.nack(from, ctx);
                    return;
                }
                let val = match self.ingest(
                    from,
                    val,
                    move |a| a.round_2a.get(&round).and_then(|m| m.get(&from)).cloned(),
                    ctx,
                ) {
                    Some(Ok((v, _))) => v,
                    Some(Err(())) => {
                        ctx.send(from, Msg::NeedFull { round });
                        return;
                    }
                    None => return,
                };
                let entry = self.round_2a.entry(round).or_default();
                entry.insert(from, val.clone());
                // §4.2 collision detection: incompatible suggestions from
                // coordinators of one round.
                let collided = entry
                    .iter()
                    .any(|(&c, v)| c != from && !v.compatible(val.as_ref()));
                self.prune();
                if collided {
                    self.handle_mc_collision(round, ctx);
                    return;
                }
                self.try_accept_classic(round, ctx);
            }
            Msg::Propose { cmd, .. } => {
                self.try_accept_fast(cmd, ctx);
            }
            Msg::ProposeBatch { cmds, .. } => {
                // Identical to k consecutive proposals; in a fast round the
                // group-commit buffer (§4.4) amortizes the vote writes.
                for cmd in cmds {
                    self.try_accept_fast(cmd, ctx);
                }
            }
            // Gossip from fellow acceptors: collision detection for
            // acceptor-driven recovery.
            Msg::P2b { round, val } if self.cfg.collision != CollisionPolicy::NewRound => {
                let val = match self.ingest(
                    from,
                    val,
                    move |a| a.round_2b.get(&round).and_then(|m| m.get(&from)).cloned(),
                    ctx,
                ) {
                    Some(Ok((v, _))) => v,
                    Some(Err(())) => {
                        ctx.send(from, Msg::NeedFull { round });
                        return;
                    }
                    None => return,
                };
                self.round_2b.entry(round).or_default().insert(from, val);
                // Include our own vote in the picture.
                if self.vrnd == round {
                    let me = ctx.me();
                    let own = self.vval.clone();
                    self.round_2b.entry(round).or_default().insert(me, own);
                }
                self.prune();
                self.detect_fast_collision(round, ctx);
            }
            // A fellow acceptor's binding recovery report (only sent
            // under uncoordinated recovery).
            Msg::P1b { round, vrnd, vval }
                if self.cfg.collision == CollisionPolicy::Uncoordinated
                    && self.cfg.schedule.kind(round) == RoundKind::Fast =>
            {
                // Recovery reports are always shipped full; anything
                // unresolvable is dropped (the exchange retries).
                let vval = match self.ingest(from, vval, |_| None, ctx) {
                    Some(Ok((v, _))) => v,
                    _ => return,
                };
                self.recovery_1b
                    .entry(round)
                    .or_default()
                    .insert(from, OneB { from, vrnd, vval });
                if round > self.rnd {
                    // Late to the party: promise and report too.
                    self.join_recovery(round, ctx);
                } else {
                    self.try_complete_recovery(round, ctx);
                }
                self.prune();
            }
            Msg::NeedFull { round } => {
                // A receiver could not apply one of our deltas: reset its
                // base and re-ship the full current value.
                if round == self.vrnd {
                    ctx.metric(Metric::incr(metrics::FULL_RESYNCS));
                    let payload = Payload::Full(self.vval.clone());
                    self.account(&payload, 1, ctx);
                    self.sent_2b
                        .insert(from, (self.vrnd, self.vval.total_len()));
                    ctx.send(
                        from,
                        Msg::P2b {
                            round: self.vrnd,
                            val: payload,
                        },
                    );
                } else {
                    self.sent_2b.remove(&from);
                }
            }
            Msg::Stable {
                from: seg_from,
                cmds,
            } if self.cfg.wire.compact_every > 0 => {
                self.comp.offer(seg_from, cmds);
                self.apply_compaction(ctx);
                // Still short of the announced frontier after applying,
                // with nothing buffered at our watermark: a segment
                // between us and `seg_from` was missed — request the gap
                // from the designated learner.
                if seg_from > self.comp.watermark() && self.comp.gap_at_watermark() {
                    ctx.send(
                        from,
                        Msg::NeedStable {
                            from: self.comp.watermark(),
                        },
                    );
                }
            }
            Msg::NeedStable { from: want } => {
                for (f, seg) in self.comp.recent_from(want) {
                    ctx.send(from, Msg::Stable { from: f, cmds: seg });
                }
            }
            // A peer restarted and lost the base of our "2b" deltas:
            // drop it so the next send ships Full, saving the
            // `NeedFull` round-trip a stale delta would trigger.
            Msg::Hello if self.sent_2b.remove(&from).is_some() => {
                ctx.metric(Metric::incr(metrics::BASE_RESETS));
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut dyn Context<Msg<C>>) {
        if token == TOK_A_RESEND {
            // §A retransmission: rebroadcast the latest accepted value so
            // learners separated at decision time still converge.
            if !self.vrnd.is_zero() {
                self.broadcast_2b(ctx);
            }
            self.arm_resend(ctx);
        } else if token == TOK_FLUSH {
            // Group commit: sync every vote buffered since the last tick
            // in one disk write, then release the deferred "2b".
            ctx.storage().flush();
            self.flush_armed = false;
            if std::mem::take(&mut self.pending_2b) {
                self.broadcast_2b_now(ctx);
            }
        }
    }

    fn on_link_reset(&mut self, peer: ProcessId, ctx: &mut dyn Context<Msg<C>>) {
        // A severed-then-healed link may have swallowed the "2b" whose
        // value the peer's next delta would extend; downgrade to a Full
        // payload rather than waiting for its `NeedFull`.
        if self.sent_2b.remove(&peer).is_some() {
            ctx.metric(Metric::incr(metrics::BASE_RESETS));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Policy, RTYPE_MULTI, RTYPE_SINGLE};
    use mcpaxos_actor::{MemStore, SimDuration, SimTime, StableStore};
    use mcpaxos_cstruct::CmdSet;

    type C = CmdSet<u32>;

    struct Ctx {
        me: ProcessId,
        sent: Vec<(ProcessId, Msg<C>)>,
        store: MemStore,
    }

    impl Context<Msg<C>> for Ctx {
        fn me(&self) -> ProcessId {
            self.me
        }
        fn now(&self) -> SimTime {
            SimTime::ZERO
        }
        fn send(&mut self, to: ProcessId, msg: Msg<C>) {
            self.sent.push((to, msg));
        }
        fn set_timer(&mut self, _a: SimDuration, _t: TimerToken) {}
        fn cancel_timer(&mut self, _t: TimerToken) {}
        fn storage(&mut self) -> &mut dyn StableStore {
            &mut self.store
        }
        fn metric(&mut self, _m: Metric) {}
        fn random(&mut self) -> u64 {
            0
        }
    }

    fn ctx() -> Ctx {
        Ctx {
            me: ProcessId(4), // an acceptor in the 1/3/5/1 layout
            sent: vec![],
            store: MemStore::new(),
        }
    }

    fn cfg() -> Arc<DeployConfig> {
        // roles: p0 | c1 c2 c3 | a4..a8 | l9
        Arc::new(DeployConfig::simple(1, 3, 5, 1, Policy::MultiCoordinated))
    }

    fn mk(v: &[u32]) -> C {
        v.iter().copied().collect()
    }

    #[test]
    fn phase1b_joins_higher_rounds_only() {
        let mut a: Acceptor<C> = Acceptor::new(cfg());
        let mut c = ctx();
        a.on_start(&mut c);
        let r1 = Round::new(0, 1, 0, RTYPE_MULTI);
        let r2 = Round::new(0, 2, 0, RTYPE_MULTI);
        a.on_message(ProcessId(1), Msg::P1a { round: r2 }, &mut c);
        assert_eq!(a.rnd(), r2);
        // 1b went to all three coordinators of the multi round.
        let onebs = c
            .sent
            .iter()
            .filter(|(_, m)| matches!(m, Msg::P1b { .. }))
            .count();
        assert_eq!(onebs, 3);
        // Lower round: nacked.
        a.on_message(ProcessId(1), Msg::P1a { round: r1 }, &mut c);
        assert!(matches!(c.sent.last().unwrap().1, Msg::RoundTooLow { .. }));
        assert_eq!(a.rnd(), r2);
    }

    #[test]
    fn accepts_after_full_coordinator_quorum() {
        let mut a: Acceptor<C> = Acceptor::new(cfg());
        let mut c = ctx();
        a.on_start(&mut c);
        let r = Round::new(0, 1, 0, RTYPE_MULTI); // quorum = 2 of 3
        a.on_message(
            ProcessId(1),
            Msg::P2a {
                round: r,
                val: mk(&[1, 2]).into(),
            },
            &mut c,
        );
        assert!(a.vval().is_bottom(), "one coordinator is not a quorum");
        a.on_message(
            ProcessId(2),
            Msg::P2a {
                round: r,
                val: mk(&[2, 3]).into(),
            },
            &mut c,
        );
        // glb({1,2},{2,3}) = {2} accepted.
        assert_eq!(a.vval(), &mk(&[2]));
        assert_eq!(a.vrnd(), r);
        // 2b went to learner l9 and coordinators c1..c3.
        let twobs = c
            .sent
            .iter()
            .filter(|(_, m)| matches!(m, Msg::P2b { .. }))
            .count();
        assert_eq!(twobs, 4);
        // Third coordinator joins: quorum glbs are {2} ({c1,c2}), {1,2}
        // ({c1,c3}) and {2,3} ({c2,c3}); the acceptor accepts their lub.
        a.on_message(
            ProcessId(3),
            Msg::P2a {
                round: r,
                val: mk(&[1, 2, 3]).into(),
            },
            &mut c,
        );
        assert_eq!(a.vval(), &mk(&[1, 2, 3]));
    }

    #[test]
    fn growing_cvals_grow_the_accepted_value() {
        let mut a: Acceptor<C> = Acceptor::new(cfg());
        let mut c = ctx();
        a.on_start(&mut c);
        let r = Round::new(0, 1, 0, RTYPE_MULTI);
        a.on_message(
            ProcessId(1),
            Msg::P2a {
                round: r,
                val: mk(&[1]).into(),
            },
            &mut c,
        );
        a.on_message(
            ProcessId(2),
            Msg::P2a {
                round: r,
                val: mk(&[1]).into(),
            },
            &mut c,
        );
        assert_eq!(a.vval(), &mk(&[1]));
        a.on_message(
            ProcessId(1),
            Msg::P2a {
                round: r,
                val: mk(&[1, 2]).into(),
            },
            &mut c,
        );
        a.on_message(
            ProcessId(2),
            Msg::P2a {
                round: r,
                val: mk(&[1, 2]).into(),
            },
            &mut c,
        );
        assert_eq!(a.vval(), &mk(&[1, 2]));
    }

    #[test]
    fn single_coordinated_round_needs_one_coordinator() {
        let mut a: Acceptor<C> = Acceptor::new(cfg());
        let mut c = ctx();
        a.on_start(&mut c);
        let r = Round::new(0, 1, 0, RTYPE_SINGLE);
        a.on_message(
            ProcessId(1),
            Msg::P2a {
                round: r,
                val: mk(&[9]).into(),
            },
            &mut c,
        );
        assert_eq!(a.vval(), &mk(&[9]));
    }

    #[test]
    fn disk_writes_reduced_vs_naive() {
        // Reduced: start = 1 write (major); joins don't write; accept = 1.
        let mut a: Acceptor<C> = Acceptor::new(cfg());
        let mut c = ctx();
        a.on_start(&mut c);
        assert_eq!(c.store.write_count(), 1);
        a.on_message(
            ProcessId(1),
            Msg::P1a {
                round: Round::new(0, 1, 0, RTYPE_MULTI),
            },
            &mut c,
        );
        assert_eq!(c.store.write_count(), 1, "Phase1b writes nothing (§4.4)");
        let r = Round::new(0, 2, 0, RTYPE_SINGLE);
        a.on_message(
            ProcessId(1),
            Msg::P2a {
                round: r,
                val: mk(&[1]).into(),
            },
            &mut c,
        );
        assert_eq!(c.store.write_count(), 2, "accept persists the vote");

        // Naive: every Phase1b writes too.
        let naive = Arc::new(
            DeployConfig::simple(1, 3, 5, 1, Policy::MultiCoordinated)
                .with_durability(Durability::Naive),
        );
        let mut a: Acceptor<C> = Acceptor::new(naive);
        let mut c = ctx();
        a.on_start(&mut c);
        let w0 = c.store.write_count();
        a.on_message(
            ProcessId(1),
            Msg::P1a {
                round: Round::new(0, 1, 0, RTYPE_MULTI),
            },
            &mut c,
        );
        assert_eq!(c.store.write_count(), w0 + 1, "naive persists rnd on 1b");
    }

    #[test]
    fn recovery_resumes_one_major_up() {
        let cfg = cfg();
        let mut a: Acceptor<C> = Acceptor::new(cfg.clone());
        let mut c = ctx();
        a.on_start(&mut c);
        let r = Round::new(0, 3, 0, RTYPE_SINGLE);
        a.on_message(
            ProcessId(1),
            Msg::P2a {
                round: r,
                val: mk(&[5]).into(),
            },
            &mut c,
        );
        // Crash: new acceptor over the same store.
        let mut a2: Acceptor<C> = Acceptor::new(cfg);
        a2.on_recover(&mut c);
        assert_eq!(a2.vval(), &mk(&[5]), "vote survives");
        assert_eq!(a2.vrnd(), r);
        assert_eq!(a2.rnd().major, 1, "resumes at major+1");
        // Old-epoch rounds are now too low.
        let stale = Round::new(0, 9, 0, RTYPE_SINGLE);
        let sent_before = c.sent.len();
        a2.on_message(ProcessId(1), Msg::P1a { round: stale }, &mut c);
        assert!(matches!(
            c.sent[sent_before..].last().unwrap().1,
            Msg::RoundTooLow { .. }
        ));
    }

    #[test]
    fn incompatible_coordinator_values_trigger_collision_round_change() {
        // Need a c-struct with possible incompatibility: use CmdSeq via
        // CommandHistory? CmdSet never collides — use SingleDecree.
        use mcpaxos_cstruct::SingleDecree;
        type S = SingleDecree<u32>;
        struct Cx {
            sent: Vec<(ProcessId, Msg<S>)>,
            store: MemStore,
        }
        impl Context<Msg<S>> for Cx {
            fn me(&self) -> ProcessId {
                ProcessId(4)
            }
            fn now(&self) -> SimTime {
                SimTime::ZERO
            }
            fn send(&mut self, to: ProcessId, msg: Msg<S>) {
                self.sent.push((to, msg));
            }
            fn set_timer(&mut self, _a: SimDuration, _t: TimerToken) {}
            fn cancel_timer(&mut self, _t: TimerToken) {}
            fn storage(&mut self) -> &mut dyn StableStore {
                &mut self.store
            }
            fn metric(&mut self, _m: Metric) {}
            fn random(&mut self) -> u64 {
                0
            }
        }
        let cfg = Arc::new(DeployConfig::simple(1, 3, 5, 1, Policy::MultiCoordinated));
        let mut a: Acceptor<S> = Acceptor::new(cfg.clone());
        let mut c = Cx {
            sent: vec![],
            store: MemStore::new(),
        };
        a.on_start(&mut c);
        let r = Round::new(0, 1, 0, RTYPE_MULTI);
        a.on_message(
            ProcessId(1),
            Msg::P2a {
                round: r,
                val: SingleDecree::decided(1).into(),
            },
            &mut c,
        );
        a.on_message(
            ProcessId(2),
            Msg::P2a {
                round: r,
                val: SingleDecree::decided(2).into(),
            },
            &mut c,
        );
        // Collision: the acceptor jumps to next(r), a single-coordinated
        // round, and sends 1b to its owner.
        let next = cfg.schedule.next(r);
        assert_eq!(a.rnd(), next);
        let onebs: Vec<_> = c
            .sent
            .iter()
            .filter(|(_, m)| matches!(m, Msg::P1b { round, .. } if *round == next))
            .collect();
        assert_eq!(onebs.len(), 1);
        assert!(a.vval().is_bottom(), "nothing was accepted");
    }

    #[test]
    fn fast_appends_after_priming() {
        let cfg = Arc::new(DeployConfig::simple(1, 1, 5, 1, Policy::FastForever));
        let mut a: Acceptor<C> = Acceptor::new(cfg.clone());
        let mut c = ctx();
        a.on_start(&mut c);
        // Proposal before the round is primed: buffered.
        a.on_message(
            ProcessId(0),
            Msg::Propose {
                cmd: 9,
                acc_quorum: None,
            },
            &mut c,
        );
        assert!(a.vval().is_bottom());
        // Owner primes the fast round with ⊥ via Phase2Start.
        let r = cfg.schedule.initial(0, 0);
        assert_eq!(cfg.schedule.kind(r), RoundKind::Fast);
        a.on_message(
            ProcessId(1),
            Msg::P2a {
                round: r,
                val: C::bottom().into(),
            },
            &mut c,
        );
        // Buffered proposal folded in immediately.
        assert_eq!(a.vval(), &mk(&[9]));
        assert_eq!(a.vrnd(), r);
        // Later proposals append directly (Phase2bFast).
        a.on_message(
            ProcessId(0),
            Msg::Propose {
                cmd: 11,
                acc_quorum: None,
            },
            &mut c,
        );
        assert_eq!(a.vval(), &mk(&[9, 11]));
    }
}
