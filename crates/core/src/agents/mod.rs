//! The four protocol agents: proposer, coordinator, acceptor, learner.
//!
//! Each agent implements [`mcpaxos_actor::Actor`] over [`crate::Msg`] and
//! is driven by whichever runtime hosts it. Agents share a deployment
//! [`crate::DeployConfig`] via `Arc` and communicate only through
//! messages; all protocol state is private to the agent that owns it.

mod acceptor;
mod coordinator;
mod learner;
mod proposer;

pub use acceptor::Acceptor;
pub use coordinator::Coordinator;
pub use learner::Learner;
pub use proposer::Proposer;

use mcpaxos_actor::TimerToken;

/// Coordinator heartbeat / leadership tick.
pub const TOK_TICK: TimerToken = TimerToken(1);
/// Proposer retransmission tick.
pub const TOK_RESEND: TimerToken = TimerToken(2);
/// Acceptor "2b" rebroadcast tick.
pub const TOK_A_RESEND: TimerToken = TimerToken(3);
/// Designated-learner stable-segment re-gossip tick (compaction
/// liveness under message loss).
pub const TOK_STABLE_GOSSIP: TimerToken = TimerToken(4);
/// Acceptor group-commit flush tick: buffered vote writes are synced and
/// the deferred "2b" broadcast goes out (§4.4 disk-write amortization).
pub const TOK_FLUSH: TimerToken = TimerToken(5);
/// Batch linger tick: a partial batch (proposer outbox or coordinator
/// batch queue) has waited `batch_ticks` and is flushed as-is.
pub const TOK_BATCH: TimerToken = TimerToken(6);

/// Metric names emitted by the agents (collected by the host runtime).
pub mod metrics {
    /// Commands submitted to a proposer.
    pub const PROPOSED: &str = "proposed";
    /// Proposer retransmission rounds.
    pub const RESENDS: &str = "resends";
    /// Rounds started with a phase "1a" broadcast.
    pub const ROUNDS_STARTED: &str = "rounds_started";
    /// `Phase2Start` executions (value picked from a 1b quorum).
    pub const PHASE2_STARTS: &str = "phase2_starts";
    /// Phase "2a" value extensions sent by coordinators.
    pub const PHASE2A: &str = "phase2a";
    /// Genuine accepts (the acceptor's value changed).
    pub const ACCEPTS: &str = "accepts";
    /// Multicoordinated collisions detected by acceptors (§4.2).
    pub const COLLISION_MC: &str = "collision_mc";
    /// Fast-round collisions detected (by coordinators or acceptors).
    pub const COLLISION_FAST: &str = "collision_fast";
    /// `RoundTooLow` nacks sent by acceptors.
    pub const NACKS: &str = "nacks";
    /// Commands newly learned (per learner).
    pub const LEARNED: &str = "learned";
    /// Uncoordinated recoveries executed by acceptors.
    pub const UNCOORDINATED_RECOVERIES: &str = "uncoordinated_recoveries";
    /// Persisted votes later overwritten by a non-extending value: the
    /// "wasted disk writes" of fast-round collisions (§4.2).
    pub const OVERWRITTEN_VOTES: &str = "overwritten_votes";
    /// Serialized payload bytes handed to the network by an agent
    /// (emitted only when `WireConfig::account_bytes` is on).
    pub const BYTES_SENT: &str = "bytes_sent";
    /// `2a`/`2b` payloads shipped as suffix deltas instead of full values.
    pub const DELTA_SENDS: &str = "delta_sends";
    /// Full values re-shipped after a receiver reported a delta gap
    /// (`NeedFull`), or because no per-peer base was established yet.
    pub const FULL_RESYNCS: &str = "full_resyncs";
    /// Stable segments truncated out of an agent's live state.
    pub const TRUNCATIONS: &str = "truncations";
    /// Stable-storage records found undecodable at recovery (the agent
    /// fell back to the last good state instead of crashing).
    pub const CORRUPT_RECORDS: &str = "corrupt_records";
    /// Stable-storage records that should exist but were missing at
    /// recovery (e.g. a promise record lost to a torn tail while the vote
    /// survived): recovered conservatively, surfaced for operators.
    pub const LOST_RECORDS: &str = "lost_records";
    /// Failure-detector suspicions raised by coordinators (a peer
    /// coordinator exceeded its suspicion timeout).
    pub const SUSPICIONS: &str = "suspicions";
    /// False suspicions: a suspected coordinator was heard from again
    /// (its per-peer suspicion timeout doubles, up to the backoff cap).
    pub const FALSE_SUSPICIONS: &str = "false_suspicions";
    /// Leader failovers: a coordinator took over leadership after
    /// suspecting the previous leader (starting a fresh higher round
    /// only if the active round lost its coordinator quorum — a
    /// multicoordinated round that still has one rides through).
    pub const FAILOVERS: &str = "failovers";
    /// Per-peer delta bases dropped proactively (peer recovery `Hello` or
    /// a link reset) — each one is a `NeedFull` round-trip saved.
    pub const BASE_RESETS: &str = "base_resets";
    /// Batched `2a` waves issued by coordinators (each amortizes one
    /// 2a/2b/WAL cycle over up to `batch_size` commands).
    pub const BATCHES: &str = "batches";
    /// Commands carried inside batched `2a` waves (`BATCHED_CMDS /
    /// BATCHES` = achieved batch occupancy).
    pub const BATCHED_CMDS: &str = "batched_cmds";
    /// Commands shed by a full coordinator batch queue
    /// ([`crate::Overflow::Shed`]); proposers re-offer them on resend.
    pub const BACKPRESSURE_SHEDS: &str = "backpressure_sheds";
    /// Commands held back at a proposer by a full forward window
    /// ([`crate::Overflow::Stall`]); forwarded once learning progresses.
    pub const BACKPRESSURE_STALLS: &str = "backpressure_stalls";
}
