//! Protocol messages.
//!
//! One message enum serves the consensus instantiation (§3.1, via the
//! `SingleDecree` c-struct) and the generalized algorithm (§3.2): the
//! message *structure* is identical, only the payload type changes.

use crate::round::Round;
use mcpaxos_actor::wire::{Wire, WireError};
use mcpaxos_actor::ProcessId;
use mcpaxos_cstruct::CStruct;
use std::sync::Arc;

/// Messages exchanged by Multicoordinated Paxos agents.
///
/// The type parameter is the c-struct set the deployment agrees on;
/// commands are `C::Cmd`. C-struct payloads (`vval`/`val`) are
/// [`Arc`]-shared: a message cloned for an n-way multicast, or duplicated
/// by the lossy network, shares one allocation of the (potentially large)
/// command history instead of deep-copying it per recipient. Receivers
/// that keep the payload store the same `Arc`, so a value accepted by one
/// agent and relayed to f+1 others exists once in memory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Msg<C: CStruct> {
    /// `⟨"propose", C⟩` — from a proposer to coordinators (and to
    /// acceptors, for fast rounds). `acc_quorum` optionally pins the
    /// acceptor quorum that should handle the command (the load-balancing
    /// scheme of §4.1: the chosen quorum is piggybacked so every
    /// coordinator in the chosen coordinator quorum forwards to the same
    /// acceptors).
    Propose {
        /// The proposed command.
        cmd: C::Cmd,
        /// Load-balancing pin: acceptors that should handle the command.
        acc_quorum: Option<Vec<ProcessId>>,
    },
    /// `⟨"1a", i⟩` — a coordinator asks acceptors to join round `i`.
    P1a {
        /// The round being started.
        round: Round,
    },
    /// `⟨"1b", i, vval, vrnd⟩` — an acceptor reports its latest accepted
    /// value to the coordinators of round `i`.
    P1b {
        /// The round being joined.
        round: Round,
        /// Round at which `vval` was accepted.
        vrnd: Round,
        /// Latest accepted c-struct, shared across the fan-out.
        vval: Arc<C>,
    },
    /// `⟨"2a", i, val⟩` — a coordinator forwards (its current suggestion
    /// of) the round-`i` value to acceptors.
    P2a {
        /// The round.
        round: Round,
        /// The coordinator's current `cval`, shared across the fan-out.
        val: Arc<C>,
    },
    /// `⟨"2b", i, val⟩` — an acceptor announces its accepted value. Sent
    /// to learners, and to coordinators (who monitor progress, detect fast
    /// collisions and run coordinated recovery, §4.2–4.3). Under
    /// uncoordinated recovery acceptors also gossip `2b` to each other.
    P2b {
        /// The round.
        round: Round,
        /// The acceptor's accepted c-struct, shared across the fan-out.
        val: Arc<C>,
    },
    /// Nack: the receiver's round is below the sender's current round
    /// (§4.3 — lets a leader discover it must start a higher round).
    RoundTooLow {
        /// The sender's current round.
        heard: Round,
    },
    /// Leader-election keep-alive among coordinators (§4.3).
    Heartbeat,
    /// Learner → proposer notification that commands are now contained in
    /// the learned c-struct; stops retransmission.
    Learned {
        /// Commands newly contained in the learner's `learned` value.
        cmds: Vec<C::Cmd>,
    },
}

impl<C: CStruct> Msg<C> {
    /// Short tag for metrics and traces.
    pub fn tag(&self) -> &'static str {
        match self {
            Msg::Propose { .. } => "propose",
            Msg::P1a { .. } => "1a",
            Msg::P1b { .. } => "1b",
            Msg::P2a { .. } => "2a",
            Msg::P2b { .. } => "2b",
            Msg::RoundTooLow { .. } => "nack",
            Msg::Heartbeat => "heartbeat",
            Msg::Learned { .. } => "learned",
        }
    }
}

impl<C: CStruct> Wire for Msg<C> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Msg::Propose { cmd, acc_quorum } => {
                out.push(0);
                cmd.encode(out);
                acc_quorum.encode(out);
            }
            Msg::P1a { round } => {
                out.push(1);
                round.encode(out);
            }
            Msg::P1b { round, vrnd, vval } => {
                out.push(2);
                round.encode(out);
                vrnd.encode(out);
                vval.encode(out);
            }
            Msg::P2a { round, val } => {
                out.push(3);
                round.encode(out);
                val.encode(out);
            }
            Msg::P2b { round, val } => {
                out.push(4);
                round.encode(out);
                val.encode(out);
            }
            Msg::RoundTooLow { heard } => {
                out.push(5);
                heard.encode(out);
            }
            Msg::Heartbeat => out.push(6),
            Msg::Learned { cmds } => {
                out.push(7);
                cmds.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(input)? {
            0 => Ok(Msg::Propose {
                cmd: Wire::decode(input)?,
                acc_quorum: Wire::decode(input)?,
            }),
            1 => Ok(Msg::P1a {
                round: Round::decode(input)?,
            }),
            2 => Ok(Msg::P1b {
                round: Round::decode(input)?,
                vrnd: Round::decode(input)?,
                vval: Arc::<C>::decode(input)?,
            }),
            3 => Ok(Msg::P2a {
                round: Round::decode(input)?,
                val: Arc::<C>::decode(input)?,
            }),
            4 => Ok(Msg::P2b {
                round: Round::decode(input)?,
                val: Arc::<C>::decode(input)?,
            }),
            5 => Ok(Msg::RoundTooLow {
                heard: Round::decode(input)?,
            }),
            6 => Ok(Msg::Heartbeat),
            7 => Ok(Msg::Learned {
                cmds: Wire::decode(input)?,
            }),
            _ => Err(WireError {
                what: "invalid msg tag",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpaxos_actor::wire::{from_bytes, to_bytes};
    use mcpaxos_cstruct::{CStruct, SingleDecree};

    #[test]
    fn tags() {
        type M = Msg<SingleDecree<u32>>;
        let msgs: Vec<M> = vec![
            Msg::Propose {
                cmd: 1,
                acc_quorum: None,
            },
            Msg::P1a { round: Round::ZERO },
            Msg::P1b {
                round: Round::ZERO,
                vrnd: Round::ZERO,
                vval: Arc::new(SingleDecree::bottom()),
            },
            Msg::P2a {
                round: Round::ZERO,
                val: Arc::new(SingleDecree::bottom()),
            },
            Msg::P2b {
                round: Round::ZERO,
                val: Arc::new(SingleDecree::bottom()),
            },
            Msg::RoundTooLow { heard: Round::ZERO },
            Msg::Heartbeat,
            Msg::Learned { cmds: vec![] },
        ];
        let tags: Vec<&str> = msgs.iter().map(|m| m.tag()).collect();
        assert_eq!(
            tags,
            vec![
                "propose",
                "1a",
                "1b",
                "2a",
                "2b",
                "nack",
                "heartbeat",
                "learned"
            ]
        );
    }

    #[test]
    fn clone_and_eq() {
        type M = Msg<SingleDecree<u32>>;
        let m: M = Msg::P2a {
            round: Round::new(1, 2, 0, 1),
            val: Arc::new(SingleDecree::decided(9)),
        };
        assert_eq!(m.clone(), m);
    }

    #[test]
    fn wire_roundtrips_every_variant() {
        type M = Msg<SingleDecree<u32>>;
        let msgs: Vec<M> = vec![
            Msg::Propose {
                cmd: 7,
                acc_quorum: Some(vec![ProcessId(4), ProcessId(5)]),
            },
            Msg::Propose {
                cmd: 8,
                acc_quorum: None,
            },
            Msg::P1a {
                round: Round::new(3, 1, 2, 0),
            },
            Msg::P1b {
                round: Round::new(3, 1, 2, 0),
                vrnd: Round::ZERO,
                vval: Arc::new(SingleDecree::decided(11)),
            },
            Msg::P2a {
                round: Round::new(1, 0, 0, 1),
                val: Arc::new(SingleDecree::bottom()),
            },
            Msg::P2b {
                round: Round::new(1, 0, 0, 1),
                val: Arc::new(SingleDecree::decided(2)),
            },
            Msg::RoundTooLow {
                heard: Round::new(9, 9, 9, 2),
            },
            Msg::Heartbeat,
            Msg::Learned {
                cmds: vec![1, 2, 3],
            },
        ];
        for m in msgs {
            let back: M = from_bytes(&to_bytes(&m)).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn wire_rejects_unknown_tag() {
        let r: Result<Msg<SingleDecree<u32>>, _> = from_bytes(&[250]);
        assert_eq!(r.unwrap_err().what, "invalid msg tag");
    }
}
