//! Protocol messages.
//!
//! One message enum serves the consensus instantiation (§3.1, via the
//! `SingleDecree` c-struct) and the generalized algorithm (§3.2): the
//! message *structure* is identical, only the payload type changes.

use crate::round::Round;
use mcpaxos_actor::wire::{Wire, WireError};
use mcpaxos_actor::ProcessId;
use mcpaxos_cstruct::CStruct;
use std::sync::Arc;

/// A c-struct carried by `1b`/`2a`/`2b` messages: either the whole value
/// or a *delta* against a base the receiver is known (optimistically) to
/// hold.
///
/// Senders that just shipped a value of `base_len` commands to a peer can
/// follow up with `Delta { base_len, digest, suffix }` — the commands at
/// logical positions `base_len..` — turning the O(n²) cumulative cost of
/// re-serializing ever-growing histories into O(n). Receivers reconstruct
/// against their stored copy of the sender's last value and answer
/// [`Msg::NeedFull`] on a gap (lost base, truncated past the base), upon
/// which the sender falls back to `Full`. `Full` payloads are `Arc`-shared
/// exactly as before: fan-out clones a pointer, not the history.
///
/// `base_len` alone cannot authenticate the base: after a crash/recover a
/// receiver can hold an equal-length-but-divergent value (e.g. a vote
/// rolled back to an older history of the same length), and appending the
/// suffix to it would silently corrupt the reconstruction. `digest` is
/// [`value_digest`] of the *result* the sender intends; receivers verify
/// it after applying the suffix and treat a mismatch exactly like a gap.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Payload<C: CStruct> {
    /// The whole c-struct, shared across the fan-out.
    Full(Arc<C>),
    /// The commands at logical positions `base_len..` of the sender's
    /// value; the receiver appends them to its copy of the sender's last
    /// shipped value (`base_len` counts the truncated stable prefix too,
    /// so lengths are comparable across compactions).
    Delta {
        /// Logical length of the base the suffix extends.
        base_len: u64,
        /// [`value_digest`] of the sender's full value (base + suffix):
        /// what the receiver must reconstruct.
        digest: u64,
        /// The commands beyond the base, in the sender's order.
        suffix: Vec<C::Cmd>,
    },
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Content digest of a c-struct, for delta-base validation (FNV-1a over
/// the watermark and the wire encoding of every live command, in
/// representation order).
///
/// Two equal values always digest equally. The watermark is included so a
/// receiver whose compaction frontier diverges from the sender's digests
/// differently and conservatively resyncs. C-structs without a sequence
/// representation ([`CStruct::suffix_from`] returns `None`) digest their
/// logical length only — they never ship deltas, so the digest is never
/// compared.
pub fn value_digest<C: CStruct>(v: &C) -> u64 {
    let wm = v.watermark();
    let mut h = fnv1a(FNV_OFFSET, &wm.to_le_bytes());
    match v.suffix_from(wm) {
        Some(cmds) => {
            let mut buf = Vec::new();
            for c in &cmds {
                buf.clear();
                c.encode(&mut buf);
                h = fnv1a(h, &buf);
            }
        }
        None => h = fnv1a(h, &v.total_len().to_le_bytes()),
    }
    h
}

impl<C: CStruct> Payload<C> {
    /// Wraps a full value.
    pub fn full(v: C) -> Self {
        Payload::Full(Arc::new(v))
    }

    /// Whether this is a delta payload.
    pub fn is_delta(&self) -> bool {
        matches!(self, Payload::Delta { .. })
    }

    /// The shared full value, when this is a `Full` payload. Test and
    /// harness convenience; agents resolve payloads against their bases.
    pub fn as_full(&self) -> Option<&Arc<C>> {
        match self {
            Payload::Full(v) => Some(v),
            Payload::Delta { .. } => None,
        }
    }

    /// Serialized size in bytes, as the wire accounting sees it.
    pub fn encoded_len(&self) -> u64 {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf.len() as u64
    }
}

/// `C` and `Arc<C>` convert into full payloads, so call sites (and tests)
/// can keep writing `val: value.into()`.
impl<C: CStruct> From<C> for Payload<C> {
    fn from(v: C) -> Self {
        Payload::full(v)
    }
}

impl<C: CStruct> From<Arc<C>> for Payload<C> {
    fn from(v: Arc<C>) -> Self {
        Payload::Full(v)
    }
}

impl<C: CStruct> Wire for Payload<C> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Payload::Full(v) => {
                out.push(0);
                v.encode(out);
            }
            Payload::Delta {
                base_len,
                digest,
                suffix,
            } => {
                out.push(1);
                base_len.encode(out);
                digest.encode(out);
                suffix.encode(out);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(input)? {
            0 => Ok(Payload::Full(Arc::<C>::decode(input)?)),
            1 => Ok(Payload::Delta {
                base_len: u64::decode(input)?,
                digest: u64::decode(input)?,
                suffix: Wire::decode(input)?,
            }),
            _ => Err(WireError {
                what: "invalid payload tag",
            }),
        }
    }
}

/// Messages exchanged by Multicoordinated Paxos agents.
///
/// The type parameter is the c-struct set the deployment agrees on;
/// commands are `C::Cmd`. C-struct payloads (`vval`/`val`) are
/// [`Arc`]-shared: a message cloned for an n-way multicast, or duplicated
/// by the lossy network, shares one allocation of the (potentially large)
/// command history instead of deep-copying it per recipient. Receivers
/// that keep the payload store the same `Arc`, so a value accepted by one
/// agent and relayed to f+1 others exists once in memory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Msg<C: CStruct> {
    /// `⟨"propose", C⟩` — from a proposer to coordinators (and to
    /// acceptors, for fast rounds). `acc_quorum` optionally pins the
    /// acceptor quorum that should handle the command (the load-balancing
    /// scheme of §4.1: the chosen quorum is piggybacked so every
    /// coordinator in the chosen coordinator quorum forwards to the same
    /// acceptors).
    Propose {
        /// The proposed command.
        cmd: C::Cmd,
        /// Load-balancing pin: acceptors that should handle the command.
        acc_quorum: Option<Vec<ProcessId>>,
    },
    /// `⟨"1a", i⟩` — a coordinator asks acceptors to join round `i`.
    P1a {
        /// The round being started.
        round: Round,
    },
    /// `⟨"1b", i, vval, vrnd⟩` — an acceptor reports its latest accepted
    /// value to the coordinators of round `i`.
    P1b {
        /// The round being joined.
        round: Round,
        /// Round at which `vval` was accepted.
        vrnd: Round,
        /// Latest accepted c-struct (full or delta-shipped).
        vval: Payload<C>,
    },
    /// `⟨"2a", i, val⟩` — a coordinator forwards (its current suggestion
    /// of) the round-`i` value to acceptors.
    P2a {
        /// The round.
        round: Round,
        /// The coordinator's current `cval` (full or delta-shipped).
        val: Payload<C>,
    },
    /// `⟨"2b", i, val⟩` — an acceptor announces its accepted value. Sent
    /// to learners, and to coordinators (who monitor progress, detect fast
    /// collisions and run coordinated recovery, §4.2–4.3). Under
    /// uncoordinated recovery acceptors also gossip `2b` to each other.
    P2b {
        /// The round.
        round: Round,
        /// The acceptor's accepted c-struct (full or delta-shipped).
        val: Payload<C>,
    },
    /// Nack: the receiver's round is below the sender's current round
    /// (§4.3 — lets a leader discover it must start a higher round).
    RoundTooLow {
        /// The sender's current round.
        heard: Round,
    },
    /// Leader-election keep-alive among coordinators (§4.3).
    Heartbeat,
    /// Learner → proposer notification that commands are now contained in
    /// the learned c-struct; stops retransmission.
    Learned {
        /// Commands newly contained in the learner's `learned` value.
        cmds: Vec<C::Cmd>,
    },
    /// Receiver → sender: a delta payload for `round` could not be
    /// applied (missing or truncated base); the sender should re-ship its
    /// full current value to this process.
    NeedFull {
        /// The round whose payload failed to resolve.
        round: Round,
    },
    /// Designated learner → other learners: "I have learned this stable
    /// segment (the commands at logical positions `from..from+len`); ack
    /// once you have learned it too."
    StableProposal {
        /// Logical position of the segment's first command (the proposing
        /// learner's watermark).
        from: u64,
        /// The segment's commands, in the proposer's learned order.
        cmds: Vec<C::Cmd>,
    },
    /// Learner → designated learner: "my learned value contains the
    /// segment starting at `upto`."
    StableAck {
        /// The `from` of the acked [`Msg::StableProposal`].
        upto: u64,
    },
    /// Designated learner → everyone: a learner quorum has learned the
    /// segment at `from`; truncate it out of live state once your own
    /// value covers it.
    Stable {
        /// Logical position of the segment's first command.
        from: u64,
        /// The segment's commands.
        cmds: Vec<C::Cmd>,
    },
    /// Receiver → sender: "you are ahead of my watermark `from`; re-send
    /// the stable segments between us" (answered with [`Msg::Stable`]
    /// messages from the sender's retained window). Lets a restarted or
    /// lagging agent catch up with the compaction frontier.
    NeedStable {
        /// The requester's current watermark.
        from: u64,
    },
    /// `⟨"propose", ⟨C₁…Cₖ⟩⟩` — a proposer forwards a *batch* of commands
    /// in one message, amortizing the per-message envelope over k
    /// proposals. Semantically identical to k consecutive
    /// [`Msg::Propose`]s with the same `acc_quorum`; receivers process
    /// the commands in order. Only emitted when
    /// [`crate::BatchConfig::enabled`] is on.
    ProposeBatch {
        /// The proposed commands, in submission order.
        cmds: Vec<C::Cmd>,
        /// Load-balancing pin, as in [`Msg::Propose`].
        acc_quorum: Option<Vec<ProcessId>>,
    },
    /// Restart announcement: "whatever you last shipped me died with my
    /// volatile state — your next payload to me must be `Full`."
    /// Broadcast from `on_recover` to the peers that track a per-peer
    /// delta base for the sender, it proactively downgrades that base and
    /// saves the `NeedFull` round-trip a stale delta would otherwise
    /// cost. Purely an optimization: losing a `Hello` only re-opens the
    /// `NeedFull` path.
    Hello,
}

impl<C: CStruct> Msg<C> {
    /// Short tag for metrics and traces.
    pub fn tag(&self) -> &'static str {
        match self {
            Msg::Propose { .. } => "propose",
            Msg::P1a { .. } => "1a",
            Msg::P1b { .. } => "1b",
            Msg::P2a { .. } => "2a",
            Msg::P2b { .. } => "2b",
            Msg::RoundTooLow { .. } => "nack",
            Msg::Heartbeat => "heartbeat",
            Msg::Learned { .. } => "learned",
            Msg::NeedFull { .. } => "needfull",
            Msg::StableProposal { .. } => "stable_prop",
            Msg::StableAck { .. } => "stable_ack",
            Msg::Stable { .. } => "stable",
            Msg::NeedStable { .. } => "needstable",
            Msg::ProposeBatch { .. } => "propose_batch",
            Msg::Hello => "hello",
        }
    }
}

impl<C: CStruct> Wire for Msg<C> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Msg::Propose { cmd, acc_quorum } => {
                out.push(0);
                cmd.encode(out);
                acc_quorum.encode(out);
            }
            Msg::P1a { round } => {
                out.push(1);
                round.encode(out);
            }
            Msg::P1b { round, vrnd, vval } => {
                out.push(2);
                round.encode(out);
                vrnd.encode(out);
                vval.encode(out);
            }
            Msg::P2a { round, val } => {
                out.push(3);
                round.encode(out);
                val.encode(out);
            }
            Msg::P2b { round, val } => {
                out.push(4);
                round.encode(out);
                val.encode(out);
            }
            Msg::RoundTooLow { heard } => {
                out.push(5);
                heard.encode(out);
            }
            Msg::Heartbeat => out.push(6),
            Msg::Learned { cmds } => {
                out.push(7);
                cmds.encode(out);
            }
            Msg::NeedFull { round } => {
                out.push(8);
                round.encode(out);
            }
            Msg::StableProposal { from, cmds } => {
                out.push(9);
                from.encode(out);
                cmds.encode(out);
            }
            Msg::StableAck { upto } => {
                out.push(10);
                upto.encode(out);
            }
            Msg::Stable { from, cmds } => {
                out.push(11);
                from.encode(out);
                cmds.encode(out);
            }
            Msg::NeedStable { from } => {
                out.push(12);
                from.encode(out);
            }
            Msg::Hello => out.push(13),
            Msg::ProposeBatch { cmds, acc_quorum } => {
                out.push(14);
                cmds.encode(out);
                acc_quorum.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(input)? {
            0 => Ok(Msg::Propose {
                cmd: Wire::decode(input)?,
                acc_quorum: Wire::decode(input)?,
            }),
            1 => Ok(Msg::P1a {
                round: Round::decode(input)?,
            }),
            2 => Ok(Msg::P1b {
                round: Round::decode(input)?,
                vrnd: Round::decode(input)?,
                vval: Payload::<C>::decode(input)?,
            }),
            3 => Ok(Msg::P2a {
                round: Round::decode(input)?,
                val: Payload::<C>::decode(input)?,
            }),
            4 => Ok(Msg::P2b {
                round: Round::decode(input)?,
                val: Payload::<C>::decode(input)?,
            }),
            5 => Ok(Msg::RoundTooLow {
                heard: Round::decode(input)?,
            }),
            6 => Ok(Msg::Heartbeat),
            7 => Ok(Msg::Learned {
                cmds: Wire::decode(input)?,
            }),
            8 => Ok(Msg::NeedFull {
                round: Round::decode(input)?,
            }),
            9 => Ok(Msg::StableProposal {
                from: u64::decode(input)?,
                cmds: Wire::decode(input)?,
            }),
            10 => Ok(Msg::StableAck {
                upto: u64::decode(input)?,
            }),
            11 => Ok(Msg::Stable {
                from: u64::decode(input)?,
                cmds: Wire::decode(input)?,
            }),
            12 => Ok(Msg::NeedStable {
                from: u64::decode(input)?,
            }),
            13 => Ok(Msg::Hello),
            14 => Ok(Msg::ProposeBatch {
                cmds: Wire::decode(input)?,
                acc_quorum: Wire::decode(input)?,
            }),
            _ => Err(WireError {
                what: "invalid msg tag",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpaxos_actor::wire::{from_bytes, to_bytes};
    use mcpaxos_cstruct::{CStruct, SingleDecree};

    #[test]
    fn tags() {
        type M = Msg<SingleDecree<u32>>;
        let msgs: Vec<M> = vec![
            Msg::Propose {
                cmd: 1,
                acc_quorum: None,
            },
            Msg::P1a { round: Round::ZERO },
            Msg::P1b {
                round: Round::ZERO,
                vrnd: Round::ZERO,
                vval: SingleDecree::bottom().into(),
            },
            Msg::P2a {
                round: Round::ZERO,
                val: SingleDecree::bottom().into(),
            },
            Msg::P2b {
                round: Round::ZERO,
                val: SingleDecree::bottom().into(),
            },
            Msg::RoundTooLow { heard: Round::ZERO },
            Msg::Heartbeat,
            Msg::Learned { cmds: vec![] },
            Msg::NeedFull { round: Round::ZERO },
            Msg::StableProposal {
                from: 0,
                cmds: vec![],
            },
            Msg::StableAck { upto: 0 },
            Msg::Stable {
                from: 0,
                cmds: vec![],
            },
            Msg::NeedStable { from: 0 },
            Msg::ProposeBatch {
                cmds: vec![1, 2],
                acc_quorum: None,
            },
            Msg::Hello,
        ];
        let tags: Vec<&str> = msgs.iter().map(|m| m.tag()).collect();
        assert_eq!(
            tags,
            vec![
                "propose",
                "1a",
                "1b",
                "2a",
                "2b",
                "nack",
                "heartbeat",
                "learned",
                "needfull",
                "stable_prop",
                "stable_ack",
                "stable",
                "needstable",
                "propose_batch",
                "hello"
            ]
        );
    }

    #[test]
    fn clone_and_eq() {
        type M = Msg<SingleDecree<u32>>;
        let m: M = Msg::P2a {
            round: Round::new(1, 2, 0, 1),
            val: SingleDecree::decided(9).into(),
        };
        assert_eq!(m.clone(), m);
    }

    #[test]
    fn wire_roundtrips_every_variant() {
        type M = Msg<SingleDecree<u32>>;
        let msgs: Vec<M> = vec![
            Msg::Propose {
                cmd: 7,
                acc_quorum: Some(vec![ProcessId(4), ProcessId(5)]),
            },
            Msg::Propose {
                cmd: 8,
                acc_quorum: None,
            },
            Msg::P1a {
                round: Round::new(3, 1, 2, 0),
            },
            Msg::P1b {
                round: Round::new(3, 1, 2, 0),
                vrnd: Round::ZERO,
                vval: SingleDecree::decided(11).into(),
            },
            Msg::P2a {
                round: Round::new(1, 0, 0, 1),
                val: SingleDecree::bottom().into(),
            },
            Msg::P2b {
                round: Round::new(1, 0, 0, 1),
                val: SingleDecree::decided(2).into(),
            },
            Msg::P2b {
                round: Round::new(1, 0, 0, 1),
                val: Payload::Delta {
                    base_len: 3,
                    digest: 0xDEAD_BEEF,
                    suffix: vec![4, 5],
                },
            },
            Msg::RoundTooLow {
                heard: Round::new(9, 9, 9, 2),
            },
            Msg::Heartbeat,
            Msg::Learned {
                cmds: vec![1, 2, 3],
            },
            Msg::NeedFull {
                round: Round::new(2, 0, 1, 0),
            },
            Msg::StableProposal {
                from: 64,
                cmds: vec![9, 10],
            },
            Msg::StableAck { upto: 64 },
            Msg::Stable {
                from: 64,
                cmds: vec![9, 10],
            },
            Msg::NeedStable { from: 64 },
            Msg::ProposeBatch {
                cmds: vec![21, 22, 23],
                acc_quorum: Some(vec![ProcessId(4)]),
            },
            Msg::ProposeBatch {
                cmds: vec![],
                acc_quorum: None,
            },
            Msg::Hello,
        ];
        for m in msgs {
            let back: M = from_bytes(&to_bytes(&m)).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn wire_rejects_unknown_tag() {
        let r: Result<Msg<SingleDecree<u32>>, _> = from_bytes(&[250]);
        assert_eq!(r.unwrap_err().what, "invalid msg tag");
    }
}
