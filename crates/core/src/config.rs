//! Deployment configuration shared by every agent of a cluster.

use crate::quorum::{check_intersections, QuorumSpec};
use crate::schedule::{Policy, Schedule};
use mcpaxos_actor::{RoleMap, SimDuration};

/// When acceptors write to stable storage (§4.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Durability {
    /// Persist the full round state on every `Phase1b` *and* every accept:
    /// the straightforward reading of the algorithm.
    Naive,
    /// The paper's optimized scheme: persist `(vrnd, vval)` on accepts and
    /// only the major round count (`MCount`) when it grows; on recovery,
    /// resume at `major + 1`. One write at startup, one extra per
    /// recovery, none per `Phase1b`.
    Reduced,
}

/// How collisions are recovered (§4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollisionPolicy {
    /// The leader observes the collision and starts the successor round
    /// from scratch (phase 1 included): four extra communication steps.
    NewRound,
    /// Coordinated recovery: messages of the collided round are reused as
    /// phase "1b" messages for the successor round, skipping its phase 1:
    /// two extra steps. (For multicoordinated collisions this is the §4.2
    /// scheme where acceptors answer the implicit "1a" of round `i+1`.)
    Coordinated,
    /// Uncoordinated recovery: each acceptor acts as a coordinator quorum
    /// of itself for the (fast) successor round and picks a value locally:
    /// one extra step. Requires acceptors to gossip their "2b" messages.
    Uncoordinated,
}

/// Value-propagation and retention policy: delta shipping and
/// stable-prefix compaction.
///
/// Everything here defaults to *off*, reproducing the paper's
/// whole-c-struct message semantics exactly; deployments that need bounded
/// wire bytes and memory under long command streams switch the pieces on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireConfig {
    /// Ship `2a`/`2b` c-structs as suffix deltas against each peer's last
    /// shipped value, falling back to full values on gaps (`NeedFull`).
    pub delta_ship: bool,
    /// Stable-prefix compaction: once the designated learner has this many
    /// commands above the current watermark and a learner quorum acks
    /// them, broadcast a `Stable` segment and truncate. 0 disables.
    pub compact_every: u64,
    /// Applied stable segments each agent keeps for normalizing values
    /// from peers that have not yet truncated as far.
    pub stable_keep: usize,
    /// Replicas persist a state-machine checkpoint every this many applied
    /// commands (0 disables); a restarted replica resumes from it instead
    /// of replaying a full history.
    pub checkpoint_every: u64,
    /// Emit per-send `bytes_sent` metrics from the agents (costs one
    /// serialization per send; off for the latency experiments).
    pub account_bytes: bool,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            delta_ship: false,
            compact_every: 0,
            stable_keep: 8,
            checkpoint_every: 0,
            account_bytes: false,
        }
    }
}

impl WireConfig {
    /// The bounded-resources preset: delta shipping plus compaction every
    /// `segment` commands (and replica checkpoints at the same cadence),
    /// with byte accounting on.
    pub fn bounded(segment: u64) -> Self {
        WireConfig {
            delta_ship: true,
            compact_every: segment,
            stable_keep: 8,
            checkpoint_every: segment,
            account_bytes: true,
        }
    }
}

/// Protocol timing constants, in ticks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Timing {
    /// Interval between coordinator heartbeats.
    pub heartbeat_every: SimDuration,
    /// Silence after which a coordinator is suspected (leader election).
    pub leader_timeout: SimDuration,
    /// Progress silence after which the leader starts a higher round.
    pub stall_timeout: SimDuration,
    /// Proposer retransmission interval (0 disables).
    pub proposer_resend: SimDuration,
    /// Acceptor "2b" rebroadcast interval (0 disables); lets partitioned
    /// or freshly recovered learners catch up (§A: agents keep re-sending
    /// their last message).
    pub acceptor_resend: SimDuration,
    /// After a collision, leaders keep starting *single-coordinated*
    /// rounds for this long before returning to the policy's fresh round
    /// type (§4.2: "after some time of normal execution ... start a
    /// multicoordinated round again").
    pub collision_backoff: SimDuration,
    /// Failure detector: heartbeat silence after which a coordinator
    /// actively *suspects* a peer coordinator, demotes it from its leader
    /// view and — if that makes this coordinator the leader — immediately
    /// starts a higher round instead of waiting for `stall_timeout`.
    /// 0 (the default) disables the detector: liveness then rests on
    /// `leader_timeout`/`stall_timeout` exactly as before.
    pub fd_suspect_after: SimDuration,
    /// Exponential backoff cap for the failure detector: each time a
    /// suspicion proves wrong (the suspect is heard from again) the
    /// suspicion timeout for that peer doubles, up to `fd_suspect_after
    /// << fd_backoff_max`. Guards against flapping on slow WAN links.
    pub fd_backoff_max: u32,
    /// Proposer retransmission backoff cap: when nonzero, consecutive
    /// resends of the same pending set back off exponentially from
    /// `proposer_resend` up to this cap (reset when the pending set
    /// drains). 0 (the default) keeps the fixed `proposer_resend` period.
    pub proposer_backoff_max: SimDuration,
    /// Random jitter added to each proposer resend delay (uniform in
    /// `[0, jitter)`), decorrelating retransmission bursts from many
    /// proposers after a failover. 0 (the default) disables jitter.
    pub proposer_jitter: SimDuration,
}

impl Default for Timing {
    fn default() -> Self {
        Timing {
            heartbeat_every: SimDuration(50),
            leader_timeout: SimDuration(160),
            stall_timeout: SimDuration(120),
            proposer_resend: SimDuration(200),
            acceptor_resend: SimDuration(170),
            collision_backoff: SimDuration(600),
            fd_suspect_after: SimDuration(0),
            fd_backoff_max: 3,
            proposer_backoff_max: SimDuration(0),
            proposer_jitter: SimDuration(0),
        }
    }
}

impl Timing {
    /// Returns `self` with the failure detector enabled at the given
    /// suspicion timeout (size it above the worst heartbeat RTT plus one
    /// `heartbeat_every`, or every slow link becomes a false suspicion).
    pub fn with_failure_detector(mut self, suspect_after: SimDuration) -> Self {
        self.fd_suspect_after = suspect_after;
        self
    }

    /// Returns `self` with proposer resends backing off exponentially up
    /// to `cap`, each delay jittered by a uniform draw from `[0, jitter)`.
    pub fn with_proposer_backoff(mut self, cap: SimDuration, jitter: SimDuration) -> Self {
        self.proposer_backoff_max = cap;
        self.proposer_jitter = jitter;
        self
    }
}

/// What a bounded batching queue does when it is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Overflow {
    /// Drop the overflowing command and count it
    /// (`backpressure_sheds`); the proposer's retransmission timer
    /// re-offers it once the queue drains. Bounds coordinator memory at
    /// the cost of extra resend traffic under overload.
    Shed,
    /// Hold the overflowing command at the *proposer* — it stays pending
    /// but is not forwarded until learning progress frees window space
    /// (`backpressure_stalls`). Bounds in-flight work without dropping.
    Stall,
}

/// Proposal batching and phase-2 pipelining knobs (the hot-path
/// scheduler).
///
/// Defaults to *off* (`batch_size == 0`): proposers forward each command
/// the instant it arrives and coordinators issue one `2a` per proposal,
/// reproducing the paper's per-command message semantics exactly. With
/// batching on, coordinators accumulate up to `batch_size` proposals (or
/// whatever has arrived after `batch_ticks` of linger) and amortize one
/// 2a/2b/WAL-group-commit cycle over the whole batch, while keeping up to
/// `pipeline_depth` such waves in flight instead of waiting for each
/// wave's quorum before issuing the next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchConfig {
    /// Maximum commands amortized into one `2a` (0 disables batching and
    /// pipelining entirely; 1 is a lockstep wave-per-command baseline).
    pub batch_size: usize,
    /// How long a partial batch lingers waiting for more commands before
    /// being flushed anyway (0 = flush immediately, never linger).
    pub batch_ticks: SimDuration,
    /// Maximum unacknowledged `2a` waves in flight per coordinator (and
    /// un-learned commands, in batches, per proposer). Must be ≥ 1 when
    /// batching is on.
    pub pipeline_depth: usize,
    /// Bound on queued-but-not-yet-sent commands (coordinator batch queue
    /// / proposer forward window). 0 = unbounded.
    pub queue_cap: usize,
    /// What happens to commands past `queue_cap`.
    pub overflow: Overflow,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            batch_size: 0,
            batch_ticks: SimDuration(0),
            pipeline_depth: 1,
            queue_cap: 0,
            overflow: Overflow::Shed,
        }
    }
}

impl BatchConfig {
    /// Whether the batching/pipelining scheduler is active at all.
    pub fn enabled(&self) -> bool {
        self.batch_size > 0
    }

    /// The throughput preset: waves of up to `batch` commands, `depth`
    /// in flight, a 2-tick linger for partial batches, and a shed-on-
    /// overflow queue sized to hold one full pipeline of batches.
    pub fn pipelined(batch: usize, depth: usize) -> Self {
        BatchConfig {
            batch_size: batch,
            batch_ticks: SimDuration(2),
            pipeline_depth: depth,
            queue_cap: batch.saturating_mul(depth).saturating_mul(4),
            overflow: Overflow::Shed,
        }
    }
}

/// Full configuration of a Multicoordinated Paxos deployment.
///
/// Shared (via `Arc`) by all agents; contains only immutable data.
#[derive(Clone, Debug)]
pub struct DeployConfig {
    /// Which processes play which roles.
    pub roles: RoleMap,
    /// Acceptor quorum sizes (Assumptions 1–2).
    pub quorums: QuorumSpec,
    /// Round typing and coordinator quorums (Assumption 3, §4.5).
    pub schedule: Schedule,
    /// Acceptor disk-write scheme (§4.4).
    pub durability: Durability,
    /// Collision recovery scheme (§4.2).
    pub collision: CollisionPolicy,
    /// §4.1 load balancing: proposers pick one coordinator quorum and one
    /// acceptor quorum per command instead of broadcasting.
    pub load_balance: bool,
    /// Learners notify proposers of learned commands (enables proposer
    /// retransmission to stop; required for liveness under message loss).
    pub notify_learned: bool,
    /// Timers.
    pub timing: Timing,
    /// Delta shipping, compaction and checkpoint policy.
    pub wire: WireConfig,
    /// Acceptor group-commit interval: with a write-ahead-log store, vote
    /// writes buffer and the "2b" announcing them is deferred until the
    /// next flush tick, amortizing many accepts into one disk write
    /// (§4.4's per-accept write is the `SimDuration(0)` default, which
    /// flushes synchronously and changes nothing).
    pub group_commit: SimDuration,
    /// Proposal batching and phase-2 pipelining (off by default).
    pub batch: BatchConfig,
}

impl DeployConfig {
    /// A ready-to-run configuration: `n_coord` coordinators and `n_acc`
    /// acceptors with majority quorums, one proposer, one learner,
    /// reduced durability and coordinated collision recovery.
    ///
    /// # Panics
    ///
    /// Panics if `n_acc` does not admit majority quorums (`n_acc == 0`).
    pub fn simple(
        n_prop: usize,
        n_coord: usize,
        n_acc: usize,
        n_learn: usize,
        policy: Policy,
    ) -> Self {
        Self::simple_from(0, n_prop, n_coord, n_acc, n_learn, policy)
    }

    /// Like [`DeployConfig::simple`], but with process ids starting at
    /// `start`. Sharded deployments instantiate one such configuration per
    /// shard, each over its own disjoint id range.
    ///
    /// # Panics
    ///
    /// Panics if `n_acc` does not admit majority quorums (`n_acc == 0`).
    pub fn simple_from(
        start: u32,
        n_prop: usize,
        n_coord: usize,
        n_acc: usize,
        n_learn: usize,
        policy: Policy,
    ) -> Self {
        let roles = RoleMap::disjoint_from(start, n_prop, n_coord, n_acc, n_learn);
        let quorums = QuorumSpec::majority(n_acc).expect("majority quorums");
        let schedule = Schedule::new(roles.coordinators().to_vec(), policy);
        DeployConfig {
            roles,
            quorums,
            schedule,
            durability: Durability::Reduced,
            collision: CollisionPolicy::Coordinated,
            load_balance: false,
            notify_learned: true,
            timing: Timing::default(),
            wire: WireConfig::default(),
            group_commit: SimDuration(0),
            batch: BatchConfig::default(),
        }
    }

    /// Returns `self` with the given group-commit flush interval
    /// (`SimDuration(0)` = flush synchronously on every vote).
    pub fn with_group_commit(mut self, every: SimDuration) -> Self {
        self.group_commit = every;
        self
    }

    /// Returns `self` with the given collision policy.
    pub fn with_collision(mut self, collision: CollisionPolicy) -> Self {
        self.collision = collision;
        self
    }

    /// Returns `self` with the given durability scheme.
    pub fn with_durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// Returns `self` with §4.1 load balancing switched on or off.
    pub fn with_load_balance(mut self, on: bool) -> Self {
        self.load_balance = on;
        self
    }

    /// Returns `self` with the given quorum spec.
    pub fn with_quorums(mut self, quorums: QuorumSpec) -> Self {
        self.quorums = quorums;
        self
    }

    /// Returns `self` with the given timing constants.
    pub fn with_timing(mut self, timing: Timing) -> Self {
        self.timing = timing;
        self
    }

    /// Returns `self` with learner→proposer notifications on or off.
    pub fn with_notify_learned(mut self, on: bool) -> Self {
        self.notify_learned = on;
        self
    }

    /// Returns `self` with the given wire (delta/compaction) policy.
    pub fn with_wire(mut self, wire: WireConfig) -> Self {
        self.wire = wire;
        self
    }

    /// Returns `self` with the given batching/pipelining knobs.
    pub fn with_batching(mut self, batch: BatchConfig) -> Self {
        self.batch = batch;
        self
    }

    /// Learner-quorum size for stable-watermark agreement: a majority of
    /// the deployed learners (1 for a single learner).
    pub fn learner_quorum(&self) -> usize {
        self.roles.learners().len() / 2 + 1
    }

    /// Checks internal consistency: quorum requirements, role coverage,
    /// and that the collision policy fits the schedule.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.roles.n_acceptors() != self.quorums.n() {
            return Err(format!(
                "quorum spec is for {} acceptors but {} are deployed",
                self.quorums.n(),
                self.roles.n_acceptors()
            ));
        }
        check_intersections(&self.quorums)?;
        if self.roles.coordinators().is_empty() {
            return Err("no coordinators".into());
        }
        if self.roles.learners().is_empty() {
            return Err("no learners".into());
        }
        if self.schedule.all_coordinators() != self.roles.coordinators() {
            return Err("schedule coordinators differ from role map".into());
        }
        if self.wire.compact_every > 0 && self.wire.stable_keep == 0 {
            return Err("compaction requires stable_keep >= 1 (normalization window)".into());
        }
        if self.batch.enabled() {
            if self.batch.pipeline_depth == 0 {
                return Err("batching requires pipeline_depth >= 1".into());
            }
            if self.batch.queue_cap > 0 && self.batch.queue_cap < self.batch.batch_size {
                return Err("batch queue_cap smaller than one batch can never fill a batch".into());
            }
        }
        if self.collision == CollisionPolicy::Uncoordinated
            && self.schedule.policy() != Policy::FastForever
        {
            return Err(
                "uncoordinated recovery requires fast successor rounds (Policy::FastForever)"
                    .into(),
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_config_validates() {
        for policy in [
            Policy::SingleCoordinated,
            Policy::MultiCoordinated,
            Policy::FastThenClassic,
        ] {
            let cfg = DeployConfig::simple(1, 3, 5, 2, policy);
            cfg.validate().unwrap_or_else(|e| panic!("{policy:?}: {e}"));
        }
        let cfg = DeployConfig::simple(1, 3, 5, 2, Policy::FastForever)
            .with_collision(CollisionPolicy::Uncoordinated);
        cfg.validate().unwrap();
    }

    #[test]
    fn uncoordinated_requires_fast_forever() {
        let cfg = DeployConfig::simple(1, 3, 5, 2, Policy::MultiCoordinated)
            .with_collision(CollisionPolicy::Uncoordinated);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn mismatched_quorums_rejected() {
        let cfg = DeployConfig::simple(1, 3, 5, 2, Policy::MultiCoordinated)
            .with_quorums(QuorumSpec::majority(7).unwrap());
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn builders_apply() {
        let cfg = DeployConfig::simple(1, 1, 3, 1, Policy::SingleCoordinated)
            .with_durability(Durability::Naive)
            .with_load_balance(true)
            .with_notify_learned(false)
            .with_timing(Timing {
                heartbeat_every: SimDuration(5),
                leader_timeout: SimDuration(20),
                stall_timeout: SimDuration(30),
                proposer_resend: SimDuration(40),
                acceptor_resend: SimDuration(0),
                collision_backoff: SimDuration(0),
                ..Timing::default()
            });
        assert_eq!(cfg.durability, Durability::Naive);
        assert!(cfg.load_balance);
        assert!(!cfg.notify_learned);
        assert_eq!(cfg.timing.heartbeat_every, SimDuration(5));
    }

    #[test]
    fn batching_defaults_off_and_builder_applies() {
        let cfg = DeployConfig::simple(1, 3, 5, 2, Policy::MultiCoordinated);
        assert!(!cfg.batch.enabled(), "batching must default off");
        assert_eq!(cfg.batch, BatchConfig::default());
        cfg.validate().unwrap();

        let cfg = cfg.with_batching(BatchConfig::pipelined(16, 8));
        assert!(cfg.batch.enabled());
        assert_eq!(cfg.batch.batch_size, 16);
        assert_eq!(cfg.batch.pipeline_depth, 8);
        assert_eq!(cfg.batch.overflow, Overflow::Shed);
        cfg.validate().unwrap();

        let bad =
            DeployConfig::simple(1, 3, 5, 2, Policy::MultiCoordinated).with_batching(BatchConfig {
                batch_size: 4,
                pipeline_depth: 0,
                ..BatchConfig::default()
            });
        assert!(bad.validate().is_err(), "depth 0 with batching on");
        let bad =
            DeployConfig::simple(1, 3, 5, 2, Policy::MultiCoordinated).with_batching(BatchConfig {
                batch_size: 8,
                queue_cap: 4,
                ..BatchConfig::default()
            });
        assert!(bad.validate().is_err(), "cap below one batch");
    }

    #[test]
    fn timing_builders_apply_and_default_off() {
        let t = Timing::default();
        assert_eq!(t.fd_suspect_after, SimDuration(0), "FD defaults off");
        assert_eq!(t.proposer_backoff_max, SimDuration(0));
        assert_eq!(t.proposer_jitter, SimDuration(0));
        let t = t
            .with_failure_detector(SimDuration(90))
            .with_proposer_backoff(SimDuration(800), SimDuration(30));
        assert_eq!(t.fd_suspect_after, SimDuration(90));
        assert_eq!(t.proposer_backoff_max, SimDuration(800));
        assert_eq!(t.proposer_jitter, SimDuration(30));
    }
}
