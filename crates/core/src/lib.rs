//! Multicoordinated Paxos: consensus and generalized consensus with
//! classic, fast and *multicoordinated* rounds.
//!
//! This crate implements the protocol of Camargos, Schmidt and Pedone,
//! *Multicoordinated Paxos* (Tech. Report 2007/02, PODC'07 brief
//! announcement): an extension of Fast Paxos in which classic rounds may
//! be coordinated by a *quorum of coordinators* instead of a single
//! leader. Multicoordinated rounds keep the three-message-step latency
//! and majority acceptor quorums of classic rounds while tolerating
//! coordinator crashes with no round change, at the price of a new — but
//! disk-write-free — collision mode.
//!
//! The implementation is generic over the c-struct set (see
//! [`mcpaxos_cstruct`]): instantiate with `SingleDecree` for ordinary
//! consensus (§3.1 of the paper), `CmdSeq` for total-order broadcast, or
//! `CommandHistory` for generic broadcast (§3.3, see `mcpaxos-gbcast`).
//!
//! # Architecture
//!
//! * [`Round`] — structured round numbers `⟨major:minor, owner, rtype⟩`
//!   (§4.4).
//! * [`QuorumSpec`] / [`CoordQuorum`] — acceptor and coordinator quorum
//!   rules (Assumptions 1–3).
//! * [`Schedule`] / [`Policy`] — round-type scheduling (§4.5).
//! * [`proved_safe`] — the value-picking rule (Definition 1, §3.3.2).
//! * [`agents`] — the four protocol roles as [`mcpaxos_actor::Actor`]s.
//! * [`DeployConfig`] — everything a deployment shares.
//!
//! # Example
//!
//! Agents are plain actors; host them on any runtime. Deployments are
//! described by a [`DeployConfig`]:
//!
//! ```
//! use mcpaxos_core::{DeployConfig, Policy};
//!
//! let cfg = DeployConfig::simple(1, 3, 5, 2, Policy::MultiCoordinated);
//! assert!(cfg.validate().is_ok());
//! // 3 coordinators: any 2 form a coordinator quorum, so one coordinator
//! // crash needs no round change (the paper's availability claim).
//! let r = cfg.schedule.initial(0, 0);
//! assert_eq!(cfg.schedule.coord_quorum(r).failures_tolerated(), 1);
//! ```

pub mod agents;
mod compact;
mod config;
mod msg;
mod provedsafe;
mod quorum;
mod round;
mod schedule;
mod shard;

pub use agents::{Acceptor, Coordinator, Learner, Proposer};
pub use compact::{Compactor, Resolved};
pub use config::{
    BatchConfig, CollisionPolicy, DeployConfig, Durability, Overflow, Timing, WireConfig,
};
pub use msg::{value_digest, Msg, Payload};
pub use provedsafe::{pick, proved_safe, proved_safe_exact, OneB};
pub use quorum::{check_intersections, CoordQuorum, QuorumSpec, RoundInfo};
pub use round::Round;
pub use schedule::{Policy, RoundKind, Schedule, RTYPE_FAST, RTYPE_MULTI, RTYPE_SINGLE};
pub use shard::{shard_configs, shard_tag, ShardMsg, Sharded, SHARD_ID_STRIDE};
