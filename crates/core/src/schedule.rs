//! Round scheduling policies (§4.5 of the paper).
//!
//! A [`Schedule`] fixes, for every round id, the round's *kind* (classic or
//! fast), its coordinator set and coordinator-quorum rule, and the
//! successor round used for collision recovery. The paper's scenarios map
//! onto the provided [`Policy`] values:
//!
//! * [`Policy::SingleCoordinated`] — Classic Paxos: every round is classic
//!   with a single coordinator (the round owner).
//! * [`Policy::MultiCoordinated`] — the paper's contribution: classic
//!   rounds coordinated by *all* coordinators, any majority of which is a
//!   coordinator quorum (Assumption 3); collisions are recovered in a
//!   single-coordinated successor round (§4.2), after which the leader may
//!   return to multicoordinated rounds.
//! * [`Policy::FastThenClassic`] — Fast Paxos for clustered systems:
//!   fast rounds whose collision recovery is a classic single-coordinated
//!   round (coordinated recovery).
//! * [`Policy::FastForever`] — fast rounds recovered by further fast
//!   rounds (uncoordinated recovery, §4.2).

use crate::quorum::CoordQuorum;
use crate::round::Round;
use mcpaxos_actor::ProcessId;

/// Round type selectors stored in [`Round::rtype`].
pub const RTYPE_FAST: u8 = 0;
/// Classic round coordinated by every coordinator (majority quorums).
pub const RTYPE_MULTI: u8 = 1;
/// Classic round coordinated by the owner alone.
pub const RTYPE_SINGLE: u8 = 2;

/// Whether a round is classic or fast (the paper's `RType` semantics).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RoundKind {
    /// Values reach acceptors through a quorum of coordinators.
    Classic,
    /// Proposers reach acceptors directly after the round starts.
    Fast,
}

/// The deployment-wide round policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// All rounds single-coordinated classic (Classic Paxos baseline).
    SingleCoordinated,
    /// Fresh rounds are multicoordinated classic; collision recovery
    /// switches to a single-coordinated round (§4.2).
    MultiCoordinated,
    /// Fresh rounds are fast; collision recovery switches to a
    /// single-coordinated classic round (coordinated recovery).
    FastThenClassic,
    /// Fresh rounds are fast; collision recovery stays fast
    /// (uncoordinated recovery).
    FastForever,
}

/// Maps round ids to kinds, coordinator sets and successors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    coordinators: Vec<ProcessId>,
    policy: Policy,
}

impl Schedule {
    /// Creates a schedule over the given coordinator identities.
    ///
    /// # Panics
    ///
    /// Panics if `coordinators` is empty.
    pub fn new(coordinators: Vec<ProcessId>, policy: Policy) -> Self {
        assert!(!coordinators.is_empty(), "need at least one coordinator");
        Schedule {
            coordinators,
            policy,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// All coordinator identities of the deployment.
    pub fn all_coordinators(&self) -> &[ProcessId] {
        &self.coordinators
    }

    /// The kind of round `r`. The initial round [`Round::ZERO`] (at which
    /// every acceptor implicitly accepts `⊥`) counts as classic.
    pub fn kind(&self, r: Round) -> RoundKind {
        if r.rtype == RTYPE_FAST && !r.is_zero() {
            RoundKind::Fast
        } else {
            RoundKind::Classic
        }
    }

    /// The coordinator set of round `r`: every coordinator for
    /// multicoordinated rounds, the owner alone otherwise (fast rounds
    /// only need their owner for `Phase2Start`).
    pub fn coordinators_of(&self, r: Round) -> Vec<ProcessId> {
        match r.rtype {
            RTYPE_MULTI => self.coordinators.clone(),
            _ => vec![self.owner_id(r)],
        }
    }

    /// The identity of the coordinator that owns round `r`.
    pub fn owner_id(&self, r: Round) -> ProcessId {
        self.coordinators[(r.owner as usize) % self.coordinators.len()]
    }

    /// Whether process `p` coordinates round `r`.
    pub fn is_coordinator_of(&self, p: ProcessId, r: Round) -> bool {
        match r.rtype {
            RTYPE_MULTI => self.coordinators.contains(&p),
            _ => self.owner_id(r) == p,
        }
    }

    /// The coordinator-quorum rule for round `r` (Assumption 3:
    /// majorities of the round's coordinator set).
    pub fn coord_quorum(&self, r: Round) -> CoordQuorum {
        CoordQuorum::majority_of(self.coordinators_of(r).len())
    }

    /// The round type used for *fresh* rounds under this policy.
    pub fn fresh_rtype(&self) -> u8 {
        match self.policy {
            Policy::SingleCoordinated => RTYPE_SINGLE,
            Policy::MultiCoordinated => RTYPE_MULTI,
            Policy::FastThenClassic | Policy::FastForever => RTYPE_FAST,
        }
    }

    /// The first round a leader (by coordinator index) starts in a major
    /// epoch.
    pub fn initial(&self, owner_idx: u16, major: u32) -> Round {
        Round::new(major, 1, owner_idx, self.fresh_rtype())
    }

    /// The collision-recovery successor of round `r` (§4.2): the next
    /// minor count, owned by the same coordinator, with the policy's
    /// recovery type. Deterministic, so every process derives the same
    /// successor — the property coordinated and uncoordinated recovery
    /// rely on.
    pub fn next(&self, r: Round) -> Round {
        let rtype = match self.policy {
            Policy::SingleCoordinated => RTYPE_SINGLE,
            Policy::MultiCoordinated => RTYPE_SINGLE, // §4.2: recover in a single-coordinated round
            Policy::FastThenClassic => RTYPE_SINGLE,
            Policy::FastForever => RTYPE_FAST,
        };
        Round::new(r.major, r.minor + 1, r.owner, rtype)
    }

    /// A fresh round strictly greater than `heard`, owned by coordinator
    /// index `owner_idx`; used by a leader preempted by (or preempting)
    /// round `heard`.
    pub fn preempt(&self, heard: Round, owner_idx: u16) -> Round {
        Round::new(heard.major, heard.minor + 1, owner_idx, self.fresh_rtype())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coords() -> Vec<ProcessId> {
        vec![ProcessId(1), ProcessId(2), ProcessId(3)]
    }

    #[test]
    fn kinds_follow_rtype() {
        let s = Schedule::new(coords(), Policy::MultiCoordinated);
        assert_eq!(s.kind(Round::new(1, 1, 0, RTYPE_FAST)), RoundKind::Fast);
        assert_eq!(s.kind(Round::new(1, 1, 0, RTYPE_MULTI)), RoundKind::Classic);
        assert_eq!(
            s.kind(Round::new(1, 1, 0, RTYPE_SINGLE)),
            RoundKind::Classic
        );
    }

    #[test]
    fn multicoordinated_rounds_use_all_coordinators() {
        let s = Schedule::new(coords(), Policy::MultiCoordinated);
        let r = s.initial(0, 0);
        assert_eq!(r.rtype, RTYPE_MULTI);
        assert_eq!(s.coordinators_of(r), coords());
        assert_eq!(s.coord_quorum(r).quorum_size(), 2);
        assert!(s.is_coordinator_of(ProcessId(2), r));
        // Recovery round is single-coordinated by the same owner.
        let n = s.next(r);
        assert_eq!(n.rtype, RTYPE_SINGLE);
        assert_eq!(n.minor, r.minor + 1);
        assert_eq!(s.coordinators_of(n), vec![ProcessId(1)]);
        assert_eq!(s.coord_quorum(n).quorum_size(), 1);
        assert!(!s.is_coordinator_of(ProcessId(2), n));
    }

    #[test]
    fn single_coordinated_rounds() {
        let s = Schedule::new(coords(), Policy::SingleCoordinated);
        let r = s.initial(1, 0);
        assert_eq!(r.rtype, RTYPE_SINGLE);
        assert_eq!(s.coordinators_of(r), vec![ProcessId(2)]);
        assert_eq!(s.owner_id(r), ProcessId(2));
        // Owner indices wrap around.
        assert_eq!(s.owner_id(Round::new(0, 1, 4, RTYPE_SINGLE)), ProcessId(2));
    }

    #[test]
    fn fast_policies_differ_in_recovery() {
        let coord = Schedule::new(coords(), Policy::FastThenClassic);
        let r = coord.initial(0, 0);
        assert_eq!(coord.kind(r), RoundKind::Fast);
        assert_eq!(coord.kind(coord.next(r)), RoundKind::Classic);

        let unco = Schedule::new(coords(), Policy::FastForever);
        let r = unco.initial(0, 0);
        assert_eq!(unco.kind(unco.next(r)), RoundKind::Fast);
    }

    #[test]
    fn preempt_is_strictly_greater() {
        let s = Schedule::new(coords(), Policy::MultiCoordinated);
        let heard = Round::new(2, 7, 1, RTYPE_SINGLE);
        let p = s.preempt(heard, 2);
        assert!(p > heard);
        assert_eq!(p.owner, 2);
        assert_eq!(p.rtype, RTYPE_MULTI);
    }

    #[test]
    #[should_panic(expected = "at least one coordinator")]
    fn empty_coordinators_rejected() {
        let _ = Schedule::new(vec![], Policy::SingleCoordinated);
    }
}
