//! Round numbers (*ballot numbers*), structured per §4.4 of the paper.
//!
//! A round is a record `⟨Count, Id, RType⟩` where `Count = MCount:mCount`
//! splits into a *major* and a *minor* counter, `Id` names the coordinator
//! that created the round, and `RType` selects the round's type under the
//! deployment's [`crate::Schedule`]. Rounds are totally ordered
//! lexicographically on `(major, minor, owner, rtype)`.
//!
//! The major/minor split implements the disk-write reduction of §4.4: an
//! acceptor persists only the major count; on recovery it resumes at
//! `major + 1`, which dominates every round it might have promised before
//! crashing, so the volatile minor count and owner need never be written.
//!
//! The paper's fourth field `S` (the set of coordinator quorums) is
//! informative; here it is derived from the deployment schedule instead of
//! being carried in every round id.

use mcpaxos_actor::wire::{Wire, WireError};
use std::fmt;

/// A round (ballot) number: `⟨major:minor, owner, rtype⟩`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Round {
    /// Major count (`MCount`): bumped on acceptor recovery; the only
    /// round component acceptors persist.
    pub major: u32,
    /// Minor count (`mCount`): bumped for each successive round within a
    /// major epoch; kept in volatile memory.
    pub minor: u32,
    /// Index (into the deployment's coordinator list) of the coordinator
    /// that created the round.
    pub owner: u16,
    /// Round-type selector, interpreted by the schedule (e.g. 0 = fast,
    /// 1 = multicoordinated, 2 = single-coordinated).
    pub rtype: u8,
}

impl Round {
    /// The distinguished initial round, smaller than every started round.
    /// Every acceptor implicitly accepts `⊥` at `ZERO`, so the algorithm
    /// begins with `⊥` chosen.
    pub const ZERO: Round = Round {
        major: 0,
        minor: 0,
        owner: 0,
        rtype: 0,
    };

    /// Creates a round.
    pub fn new(major: u32, minor: u32, owner: u16, rtype: u8) -> Self {
        Round {
            major,
            minor,
            owner,
            rtype,
        }
    }

    /// Whether this is the initial round [`Round::ZERO`].
    pub fn is_zero(&self) -> bool {
        *self == Round::ZERO
    }

    /// The same logical position with a different round type; used by
    /// schedules that map one counter to several round flavours.
    pub fn with_rtype(mut self, rtype: u8) -> Self {
        self.rtype = rtype;
        self
    }
}

impl fmt::Debug for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "r{}:{}.c{}t{}",
            self.major, self.minor, self.owner, self.rtype
        )
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Wire for Round {
    fn encode(&self, out: &mut Vec<u8>) {
        self.major.encode(out);
        self.minor.encode(out);
        self.owner.encode(out);
        self.rtype.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Round {
            major: u32::decode(input)?,
            minor: u32::decode(input)?,
            owner: u16::decode(input)?,
            rtype: u8::decode(input)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpaxos_actor::wire::{from_bytes, to_bytes};

    #[test]
    fn lexicographic_order() {
        let r = Round::new(1, 2, 3, 1);
        assert!(Round::ZERO < r);
        // major dominates
        assert!(Round::new(2, 0, 0, 0) > Round::new(1, 99, 9, 3));
        // then minor
        assert!(Round::new(1, 3, 0, 0) > Round::new(1, 2, 9, 3));
        // then owner
        assert!(Round::new(1, 2, 4, 0) > Round::new(1, 2, 3, 3));
        // then rtype
        assert!(Round::new(1, 2, 3, 2) > Round::new(1, 2, 3, 1));
    }

    #[test]
    fn recovery_major_dominates_all_prior_minors() {
        // The §4.4 argument: any round with a larger major exceeds every
        // round of the previous major epoch.
        for minor in [0u32, 1, 17, u32::MAX] {
            for owner in [0u16, 9] {
                assert!(Round::new(4, 0, 0, 0) > Round::new(3, minor, owner, 3));
            }
        }
    }

    #[test]
    fn zero_and_display() {
        assert!(Round::ZERO.is_zero());
        assert!(!Round::new(0, 1, 0, 0).is_zero());
        assert_eq!(format!("{}", Round::new(1, 2, 3, 1)), "r1:2.c3t1");
    }

    #[test]
    fn wire_roundtrip() {
        let r = Round::new(7, 8, 9, 2);
        let back: Round = from_bytes(&to_bytes(&r)).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn with_rtype_keeps_position() {
        let r = Round::new(1, 5, 2, 0).with_rtype(2);
        assert_eq!((r.major, r.minor, r.owner, r.rtype), (1, 5, 2, 2));
    }
}
