//! Sharding layer: N independent Multicoordinated Paxos instances
//! multiplexed over one runtime (WPaxos-style multi-leader scaling).
//!
//! One consensus instance serializes every command through a single
//! `CommandHistory`/learner/compactor pipeline. When the conflict relation
//! is local — `Conflict::conflict_keys` already partitions the workload —
//! the command space can be split by conflict-key hash into *shards*, each
//! a full Multicoordinated Paxos deployment with its own coordinators,
//! acceptors, learners, compaction watermark and WAL. This module provides
//! the pieces that let the existing agents run per shard without change:
//!
//! * [`ShardMsg`] — a shard-tagged envelope around [`Msg`], so one
//!   runtime (and one byte meter) can carry all instances with per-shard
//!   accounting;
//! * [`Sharded`] — an actor adapter wrapping any protocol agent, stamping
//!   its outgoing messages with its shard id and unwrapping incoming ones;
//! * [`shard_configs`] — per-shard [`DeployConfig`]s over disjoint
//!   process-id ranges.
//!
//! Routing and the cross-shard command path live in the application layer
//! (`mcpaxos-smr`): agents never see more than their own instance.

use crate::config::DeployConfig;
use crate::msg::Msg;
use crate::schedule::Policy;
use mcpaxos_actor::wire::{Wire, WireError};
use mcpaxos_actor::{
    Actor, Context, Metric, ProcessId, SimDuration, SimTime, StableStore, TimerToken,
};
use mcpaxos_cstruct::CStruct;

/// Process ids of shard `s` live in `[s * SHARD_ID_STRIDE, (s+1) * ..)`:
/// plenty for any per-shard role map while keeping ids readable.
pub const SHARD_ID_STRIDE: u32 = 64;

/// Distinct per-shard byte-accounting tags (shards beyond this share one).
const SHARD_TAGS: [&str; 8] = [
    "shard0", "shard1", "shard2", "shard3", "shard4", "shard5", "shard6", "shard7",
];

/// The byte-meter/metric tag of shard `shard`.
pub fn shard_tag(shard: u16) -> &'static str {
    SHARD_TAGS
        .get(usize::from(shard))
        .copied()
        .unwrap_or("shard+")
}

/// A protocol message addressed to one shard's consensus instance.
///
/// The envelope is what rides the shared runtime; agents themselves
/// exchange plain [`Msg`] values through the [`Sharded`] adapter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMsg<C: CStruct> {
    /// The consensus instance this message belongs to.
    pub shard: u16,
    /// The protocol message.
    pub inner: Msg<C>,
}

impl<C: CStruct> ShardMsg<C> {
    /// Per-shard tag for byte accounting and traces.
    pub fn tag(&self) -> &'static str {
        shard_tag(self.shard)
    }
}

impl<C: CStruct> Wire for ShardMsg<C> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.shard.encode(out);
        self.inner.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(ShardMsg {
            shard: u16::decode(input)?,
            inner: Msg::decode(input)?,
        })
    }
}

/// Context adapter: presents a plain [`Msg`] context to the wrapped agent,
/// stamping everything it sends with the shard id.
struct ShardCtx<'a, C: CStruct> {
    shard: u16,
    ctx: &'a mut dyn Context<ShardMsg<C>>,
}

impl<C: CStruct> Context<Msg<C>> for ShardCtx<'_, C> {
    fn me(&self) -> ProcessId {
        self.ctx.me()
    }
    fn now(&self) -> SimTime {
        self.ctx.now()
    }
    fn send(&mut self, to: ProcessId, msg: Msg<C>) {
        self.ctx.send(
            to,
            ShardMsg {
                shard: self.shard,
                inner: msg,
            },
        );
    }
    fn set_timer(&mut self, after: SimDuration, token: TimerToken) {
        self.ctx.set_timer(after, token);
    }
    fn cancel_timer(&mut self, token: TimerToken) {
        self.ctx.cancel_timer(token);
    }
    fn storage(&mut self) -> &mut dyn StableStore {
        self.ctx.storage()
    }
    fn metric(&mut self, metric: Metric) {
        self.ctx.metric(metric);
    }
    fn random(&mut self) -> u64 {
        self.ctx.random()
    }
}

/// Actor adapter hosting one protocol agent inside shard `shard`.
///
/// Incoming envelopes for other shards are dropped (with disjoint id
/// ranges none should arrive; a stray one must not corrupt this
/// instance), matching the fair-lossy link model the agents already
/// tolerate.
pub struct Sharded<A> {
    shard: u16,
    inner: A,
}

impl<A> Sharded<A> {
    /// Wraps `inner` as a member of shard `shard`.
    pub fn new(shard: u16, inner: A) -> Self {
        Sharded { shard, inner }
    }

    /// The shard this agent belongs to.
    pub fn shard(&self) -> u16 {
        self.shard
    }

    /// The wrapped agent.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// The wrapped agent, mutably.
    pub fn inner_mut(&mut self) -> &mut A {
        &mut self.inner
    }
}

impl<C: CStruct, A: Actor<Msg = Msg<C>>> Actor for Sharded<A> {
    type Msg = ShardMsg<C>;

    fn on_start(&mut self, ctx: &mut dyn Context<ShardMsg<C>>) {
        let mut sc = ShardCtx {
            shard: self.shard,
            ctx,
        };
        self.inner.on_start(&mut sc);
    }

    fn on_recover(&mut self, ctx: &mut dyn Context<ShardMsg<C>>) {
        let mut sc = ShardCtx {
            shard: self.shard,
            ctx,
        };
        self.inner.on_recover(&mut sc);
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: ShardMsg<C>,
        ctx: &mut dyn Context<ShardMsg<C>>,
    ) {
        if msg.shard != self.shard {
            return;
        }
        let mut sc = ShardCtx {
            shard: self.shard,
            ctx,
        };
        self.inner.on_message(from, msg.inner, &mut sc);
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut dyn Context<ShardMsg<C>>) {
        let mut sc = ShardCtx {
            shard: self.shard,
            ctx,
        };
        self.inner.on_timer(token, &mut sc);
    }

    fn on_link_reset(&mut self, peer: ProcessId, ctx: &mut dyn Context<ShardMsg<C>>) {
        let mut sc = ShardCtx {
            shard: self.shard,
            ctx,
        };
        self.inner.on_link_reset(peer, &mut sc);
    }
}

/// Per-shard deployment configurations: shard `s` gets a
/// [`DeployConfig::simple_from`] over the id range starting at
/// `s * SHARD_ID_STRIDE`, so all instances coexist in one runtime with no
/// id collisions.
///
/// # Panics
///
/// Panics if one shard's roles need more than [`SHARD_ID_STRIDE`] ids.
pub fn shard_configs(
    n_shards: u16,
    n_prop: usize,
    n_coord: usize,
    n_acc: usize,
    n_learn: usize,
    policy: Policy,
) -> Vec<DeployConfig> {
    assert!(
        n_prop + n_coord + n_acc + n_learn <= SHARD_ID_STRIDE as usize,
        "shard role map exceeds the per-shard id stride"
    );
    (0..n_shards)
        .map(|s| {
            DeployConfig::simple_from(
                u32::from(s) * SHARD_ID_STRIDE,
                n_prop,
                n_coord,
                n_acc,
                n_learn,
                policy,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agents::Proposer;
    use mcpaxos_actor::wire::{from_bytes, to_bytes};
    use mcpaxos_actor::MemStore;
    use mcpaxos_cstruct::CmdSet;
    use std::sync::Arc;

    type C = CmdSet<u32>;

    struct Ctx {
        sent: Vec<(ProcessId, ShardMsg<C>)>,
        store: MemStore,
    }

    impl Context<ShardMsg<C>> for Ctx {
        fn me(&self) -> ProcessId {
            ProcessId(64)
        }
        fn now(&self) -> SimTime {
            SimTime(1)
        }
        fn send(&mut self, to: ProcessId, msg: ShardMsg<C>) {
            self.sent.push((to, msg));
        }
        fn set_timer(&mut self, _a: SimDuration, _t: TimerToken) {}
        fn cancel_timer(&mut self, _t: TimerToken) {}
        fn storage(&mut self) -> &mut dyn StableStore {
            &mut self.store
        }
        fn metric(&mut self, _m: Metric) {}
        fn random(&mut self) -> u64 {
            0
        }
    }

    #[test]
    fn wrapped_agent_sends_are_shard_tagged_and_foreign_shards_dropped() {
        let cfg = Arc::new(shard_configs(2, 1, 1, 3, 1, Policy::SingleCoordinated)[1].clone());
        cfg.validate().unwrap();
        let mut p: Sharded<Proposer<C>> = Sharded::new(1, Proposer::new(cfg));
        let mut cx = Ctx {
            sent: vec![],
            store: MemStore::new(),
        };
        let propose = Msg::Propose {
            cmd: 7,
            acc_quorum: None,
        };
        p.on_message(
            ProcessId(9_999),
            ShardMsg {
                shard: 1,
                inner: propose.clone(),
            },
            &mut cx,
        );
        assert!(!cx.sent.is_empty(), "proposer forwards inside its shard");
        assert!(cx.sent.iter().all(|(_, m)| m.shard == 1));
        assert!(cx.sent.iter().all(|(_, m)| m.tag() == "shard1"));
        // A stray envelope for another shard is ignored entirely.
        let before = cx.sent.len();
        p.on_message(
            ProcessId(9_999),
            ShardMsg {
                shard: 0,
                inner: propose,
            },
            &mut cx,
        );
        assert_eq!(cx.sent.len(), before);
    }

    #[test]
    fn shard_configs_use_disjoint_id_ranges() {
        let cfgs = shard_configs(4, 1, 1, 3, 1, Policy::MultiCoordinated);
        for (s, cfg) in cfgs.iter().enumerate() {
            cfg.validate().unwrap();
            for p in cfg.roles.all() {
                assert_eq!((p.raw() / SHARD_ID_STRIDE) as usize, s);
            }
        }
    }

    #[test]
    fn shard_msg_wire_roundtrip() {
        let m: ShardMsg<C> = ShardMsg {
            shard: 3,
            inner: Msg::Heartbeat,
        };
        let back: ShardMsg<C> = from_bytes(&to_bytes(&m)).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.tag(), "shard3");
        assert_eq!(shard_tag(99), "shard+");
    }
}
