//! Regression suite: timers armed before a crash are cancelled by the
//! crash and never fire across a recover.
//!
//! `Sim::crash` clears the per-process arm table and bumps the crash
//! epoch; a stale pre-crash timer event must fail arm validation, and the
//! simulator asserts the epoch matches whenever an arm *does* validate.
//! These tests pin both: no stale fire reaches the recovered agent, and a
//! legitimately re-armed token still works.

use mcpaxos_actor::{Actor, Context, ProcessId, SimDuration, SimTime, TimerToken};
use mcpaxos_simnet::{NetConfig, Sim};

const P0: ProcessId = ProcessId(0);
const P1: ProcessId = ProcessId(1);
const TOK: TimerToken = TimerToken(7);

/// Arms `TOK` from `on_start` only. `on_recover` deliberately does *not*
/// re-arm, so any post-recover fire can only be the stale pre-crash arm.
/// A message of `1` re-arms the token explicitly.
struct ArmOnStart {
    fired: Vec<u64>,
}

impl Actor for ArmOnStart {
    type Msg = u32;
    fn on_start(&mut self, ctx: &mut dyn Context<u32>) {
        ctx.set_timer(SimDuration(100), TOK);
    }
    fn on_recover(&mut self, _ctx: &mut dyn Context<u32>) {
        // No re-arm: isolates the stale pre-crash timer.
    }
    fn on_message(&mut self, _from: ProcessId, msg: u32, ctx: &mut dyn Context<u32>) {
        if msg == 1 {
            ctx.set_timer(SimDuration(50), TOK);
        }
    }
    fn on_timer(&mut self, token: TimerToken, ctx: &mut dyn Context<u32>) {
        assert_eq!(token, TOK);
        self.fired.push(ctx.now().ticks());
    }
}

#[test]
fn pre_crash_timer_never_fires_after_recover() {
    let mut sim = Sim::new(1, NetConfig::lockstep());
    sim.add_process(P0, || Box::new(ArmOnStart { fired: vec![] }));
    // Armed at t=0 for t=100; the crash at t=10 must cancel it.
    sim.crash_at(SimTime(10), P0);
    sim.recover_at(SimTime(20), P0);
    sim.run_until(SimTime(300));
    let a: &ArmOnStart = sim.actor(P0).unwrap();
    assert!(
        a.fired.is_empty(),
        "stale pre-crash timer fired at {:?}",
        a.fired
    );
    assert_eq!(sim.stats(P0).timers_fired, 0);
}

#[test]
fn rearmed_token_fires_once_after_recover() {
    let mut sim = Sim::new(1, NetConfig::lockstep());
    sim.add_process(P0, || Box::new(ArmOnStart { fired: vec![] }));
    sim.crash_at(SimTime(10), P0);
    sim.recover_at(SimTime(20), P0);
    // Explicit re-arm after recovery: delivered at t=30, fires at t=80.
    sim.inject_at(SimTime(30), P0, P1, 1);
    sim.run_until(SimTime(300));
    let a: &ArmOnStart = sim.actor(P0).unwrap();
    assert_eq!(
        a.fired,
        vec![80],
        "the post-recover arm must fire exactly once; the pre-crash arm \
         (due t=100) must not"
    );
    assert_eq!(sim.stats(P0).timers_fired, 1);
}

/// A periodic ticker: re-arms itself on every start/recover and fire.
struct Ticker {
    ticks: Vec<u64>,
}

impl Actor for Ticker {
    type Msg = u32;
    fn on_start(&mut self, ctx: &mut dyn Context<u32>) {
        ctx.set_timer(SimDuration(10), TOK);
    }
    fn on_message(&mut self, _f: ProcessId, _m: u32, _c: &mut dyn Context<u32>) {}
    fn on_timer(&mut self, _t: TimerToken, ctx: &mut dyn Context<u32>) {
        self.ticks.push(ctx.now().ticks());
        ctx.set_timer(SimDuration(10), TOK);
    }
}

#[test]
fn periodic_timers_survive_repeated_crash_recover_cycles() {
    // Several crash/recover cycles with a self-re-arming timer: the epoch
    // assertion must never trip, and ticks only accrue while up.
    let mut sim = Sim::new(1, NetConfig::lockstep());
    sim.add_process(P0, || Box::new(Ticker { ticks: vec![] }));
    for k in 0..3u64 {
        sim.crash_at(SimTime(35 + 100 * k), P0);
        sim.recover_at(SimTime(65 + 100 * k), P0);
    }
    sim.run_until(SimTime(330));
    // Up intervals: [0,35), [65,135), [165,235), [265,330]. A fresh arm
    // happens at each recover; no tick may land inside a down window.
    let a: &Ticker = sim.actor(P0).unwrap();
    assert!(!a.ticks.is_empty());
    for down_start in [35u64, 135, 235] {
        assert!(
            !a.ticks
                .iter()
                .any(|&t| (down_start..down_start + 30).contains(&t)),
            "tick inside down window starting at {down_start}: {:?}",
            a.ticks
        );
    }
}
