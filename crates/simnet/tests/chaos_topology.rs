//! Behavioural tests for the latency-matrix topology, scheduled
//! reconfiguration, heal-driven link resets and chaos-schedule replay.

use mcpaxos_actor::{Actor, Context, ProcessId, SimDuration, SimTime, TimerToken};
use mcpaxos_simnet::{ChaosSchedule, DelayDist, NetConfig, Sim, Topology};

const P0: ProcessId = ProcessId(0);
const P1: ProcessId = ProcessId(1);
const P2: ProcessId = ProcessId(2);

/// Records `(msg, arrival_time)` and echoes `msg+1` while below a bound.
struct Echo {
    bound: u32,
    received: Vec<(u32, u64)>,
    resets: Vec<ProcessId>,
}

impl Echo {
    fn boxed(bound: u32) -> Box<dyn Actor<Msg = u32>> {
        Box::new(Echo {
            bound,
            received: vec![],
            resets: vec![],
        })
    }
}

impl Actor for Echo {
    type Msg = u32;
    fn on_message(&mut self, from: ProcessId, msg: u32, ctx: &mut dyn Context<u32>) {
        self.received.push((msg, ctx.now().ticks()));
        if msg < self.bound {
            ctx.send(from, msg + 1);
        }
    }
    fn on_timer(&mut self, _t: TimerToken, _c: &mut dyn Context<u32>) {}
    fn on_link_reset(&mut self, peer: ProcessId, _ctx: &mut dyn Context<u32>) {
        self.resets.push(peer);
    }
}

#[test]
fn topology_applies_asymmetric_pair_delays() {
    let mut sim = Sim::new(1, NetConfig::lockstep());
    sim.set_topology(Topology::new().link(P0, P1, DelayDist::Fixed(10)).link(
        P1,
        P0,
        DelayDist::Fixed(3),
    ));
    sim.add_process(P0, || Echo::boxed(2));
    sim.add_process(P1, || Echo::boxed(2));
    sim.inject_at(SimTime(1), P0, P1, 0);
    sim.run_to_quiescence(100);
    // 0 lands at P0 at t=1; P0→P1 takes 10 → 1 at t=11; P1→P0 takes 3 →
    // 2 at t=14; bound reached.
    let a: &Echo = sim.actor(P0).unwrap();
    let b: &Echo = sim.actor(P1).unwrap();
    assert_eq!(a.received, vec![(0, 1), (2, 14)]);
    assert_eq!(b.received, vec![(1, 11)]);
}

#[test]
fn pairs_without_topology_entry_fall_back_to_global_delay() {
    let mut sim = Sim::new(1, NetConfig::lockstep());
    // Matrix only covers P0↔P1; P2 traffic uses the global Fixed(1).
    sim.set_topology(Topology::new().symmetric(P0, P1, DelayDist::Fixed(10)));
    sim.add_process(P0, || Echo::boxed(0));
    sim.add_process(P2, || Echo::boxed(2));
    sim.inject_at(SimTime(1), P2, P0, 0);
    sim.run_to_quiescence(100);
    let c: &Echo = sim.actor(P2).unwrap();
    assert_eq!(c.received, vec![(0, 1)]);
    let a: &Echo = sim.actor(P0).unwrap();
    assert_eq!(a.received, vec![(1, 2)], "P2→P0 must take the global 1");
}

#[test]
fn datacenter_matrix_shapes_round_trips() {
    // Two DCs: {P0} and {P1, P2}. Intra 1 tick, inter 25 ticks.
    let topo = Topology::datacenters(
        &[vec![P0], vec![P1, P2]],
        DelayDist::Fixed(1),
        &[(0, 1, DelayDist::Fixed(25))],
    );
    let mut sim = Sim::new(1, NetConfig::lockstep());
    sim.set_topology(topo);
    sim.add_process(P0, || Echo::boxed(0));
    sim.add_process(P1, || Echo::boxed(1));
    sim.add_process(P2, || Echo::boxed(2));
    // P2 → P1 intra-DC, then P1 → P2 intra back.
    sim.inject_at(SimTime(1), P1, P2, 0);
    sim.run_to_quiescence(100);
    let b: &Echo = sim.actor(P1).unwrap();
    let c: &Echo = sim.actor(P2).unwrap();
    assert_eq!(b.received, vec![(0, 1), (2, 3)]);
    assert_eq!(c.received, vec![(1, 2)], "intra-DC hop is 1 tick");
    // P0 → P2 crosses DCs: seed 0 at P2, echo crosses back at 25 ticks.
    let mut sim2 = Sim::new(1, NetConfig::lockstep());
    sim2.set_topology(Topology::datacenters(
        &[vec![P0], vec![P1, P2]],
        DelayDist::Fixed(1),
        &[(0, 1, DelayDist::Fixed(25))],
    ));
    sim2.add_process(P0, || Echo::boxed(1));
    sim2.add_process(P2, || Echo::boxed(1));
    sim2.inject_at(SimTime(1), P2, P0, 0);
    sim2.run_to_quiescence(100);
    let a: &Echo = sim2.actor(P0).unwrap();
    let c: &Echo = sim2.actor(P2).unwrap();
    assert_eq!(c.received, vec![(0, 1)]);
    assert_eq!(a.received, vec![(1, 26)], "inter-DC hop is 25 ticks");
}

#[test]
fn set_config_at_degrades_at_the_scheduled_time() {
    let mut sim = Sim::new(1, NetConfig::lockstep());
    sim.add_process(P0, || Echo::boxed(0));
    sim.set_config_at(
        SimTime(50),
        NetConfig::lockstep().with_delay(DelayDist::Fixed(10)),
    );
    // Before the burst: global delay 1.
    sim.run_until(SimTime(10));
    sim.inject(P0, P1, 1);
    // After the burst: global delay 10.
    sim.run_until(SimTime(60));
    sim.inject(P0, P1, 2);
    sim.run_until(SimTime(100));
    let a: &Echo = sim.actor(P0).unwrap();
    assert_eq!(a.received, vec![(1, 11), (2, 70)]);
    assert_eq!(sim.config().delay, DelayDist::Fixed(10));
}

#[test]
fn heal_notifies_both_sides_of_each_severed_link() {
    let mut sim = Sim::new(1, NetConfig::lockstep());
    sim.add_process(P0, || Echo::boxed(0));
    sim.add_process(P1, || Echo::boxed(0));
    sim.add_process(P2, || Echo::boxed(0));
    sim.partition_at(SimTime(5), vec![P0], vec![P1, P2]);
    sim.heal_at(SimTime(20));
    sim.run_until(SimTime(30));
    let a: &Echo = sim.actor(P0).unwrap();
    let b: &Echo = sim.actor(P1).unwrap();
    let c: &Echo = sim.actor(P2).unwrap();
    assert_eq!(a.resets, vec![P1, P2], "P0 was cut from both peers");
    assert_eq!(b.resets, vec![P0]);
    assert_eq!(c.resets, vec![P0]);
}

#[test]
fn heal_skips_downed_processes() {
    let mut sim = Sim::new(1, NetConfig::lockstep());
    sim.add_process(P0, || Echo::boxed(0));
    sim.add_process(P1, || Echo::boxed(0));
    sim.partition_at(SimTime(5), vec![P0], vec![P1]);
    sim.crash_at(SimTime(10), P1);
    sim.heal_at(SimTime(20));
    sim.recover_at(SimTime(25), P1);
    sim.run_until(SimTime(30));
    let a: &Echo = sim.actor(P0).unwrap();
    let b: &Echo = sim.actor(P1).unwrap();
    assert_eq!(a.resets, vec![P1], "the up side still hears the reset");
    assert!(b.resets.is_empty(), "a downed process gets no upcall");
}

#[test]
fn chaos_schedule_replays_identically_from_a_seed() {
    let run = |seed: u64| -> (Vec<String>, Vec<(u32, u64)>) {
        let mut sim = Sim::new(
            seed,
            NetConfig::lockstep().with_delay(DelayDist::Uniform(1, 5)),
        );
        sim.set_topology(Topology::new().symmetric(P0, P1, DelayDist::Uniform(2, 9)));
        sim.enable_trace(10_000);
        sim.add_process(P0, || Echo::boxed(40));
        sim.add_process(P1, || Echo::boxed(40));
        ChaosSchedule::new()
            .crash_for(SimTime(30), P1, SimDuration(20))
            .partition_for(SimTime(80), vec![P0], vec![P1], SimDuration(15))
            .degrade_for(
                SimTime(120),
                NetConfig::lockstep().with_delay(DelayDist::Uniform(5, 30)),
                SimDuration(50),
                NetConfig::lockstep().with_delay(DelayDist::Uniform(1, 5)),
            )
            .apply(&mut sim);
        sim.inject_at(SimTime(1), P0, P1, 0);
        sim.inject_at(SimTime(90), P0, P1, 0);
        sim.run_until(SimTime(400));
        let trace = sim.trace().iter().map(|e| e.render()).collect();
        let got = sim.actor::<Echo>(P0).unwrap().received.clone();
        (trace, got)
    };
    let (t1, r1) = run(11);
    let (t2, r2) = run(11);
    assert_eq!(t1, t2, "same seed + schedule must replay identically");
    assert_eq!(r1, r2);
    let (t3, _) = run(12);
    assert_ne!(t1, t3, "a different seed must diverge under jitter");
}

#[test]
fn topology_does_not_perturb_untopologized_rng_stream() {
    // Installing a matrix that covers NO pairs used by the run must leave
    // a jittery execution bit-for-bit identical: the fallback path draws
    // the same RNG samples in the same order.
    let run = |with_topo: bool| -> Vec<String> {
        let mut sim = Sim::new(
            7,
            NetConfig::lockstep()
                .with_delay(DelayDist::Uniform(1, 6))
                .with_loss(0.1),
        );
        if with_topo {
            sim.set_topology(Topology::new().symmetric(
                ProcessId(50),
                ProcessId(51),
                DelayDist::Fixed(99),
            ));
        }
        sim.enable_trace(10_000);
        sim.add_process(P0, || Echo::boxed(30));
        sim.add_process(P1, || Echo::boxed(30));
        sim.inject_at(SimTime(1), P0, P1, 0);
        sim.run_until(SimTime(500));
        sim.trace().iter().map(|e| e.render()).collect()
    };
    assert_eq!(run(false), run(true));
}
