//! Behavioural tests for the discrete-event simulator: determinism, timer
//! semantics, fault injection, storage durability and message accounting.

use mcpaxos_actor::{Actor, Context, Metric, ProcessId, SimDuration, SimTime, TimerToken};
use mcpaxos_simnet::{DelayDist, NetConfig, Sim, TraceKind};

const P0: ProcessId = ProcessId(0);
const P1: ProcessId = ProcessId(1);
const P2: ProcessId = ProcessId(2);

/// Counts messages; replies with `msg+1` while below a bound.
struct Counter {
    bound: u32,
    received: Vec<u32>,
}

impl Counter {
    fn boxed(bound: u32) -> Box<dyn Actor<Msg = u32>> {
        Box::new(Counter {
            bound,
            received: vec![],
        })
    }
}

impl Actor for Counter {
    type Msg = u32;
    fn on_message(&mut self, from: ProcessId, msg: u32, ctx: &mut dyn Context<u32>) {
        self.received.push(msg);
        ctx.metric(Metric::incr("received"));
        if msg < self.bound {
            ctx.send(from, msg + 1);
        }
    }
    fn on_timer(&mut self, _t: TimerToken, _c: &mut dyn Context<u32>) {}
}

#[test]
fn ping_pong_lockstep_counts_steps() {
    let mut sim = Sim::new(7, NetConfig::lockstep());
    sim.add_process(P0, || Counter::boxed(5));
    sim.add_process(P1, || Counter::boxed(5));
    sim.inject_at(SimTime(1), P0, P1, 0);
    sim.run_to_quiescence(100);
    // msgs 0..=5 delivered alternately at t=1..=6.
    assert_eq!(sim.now(), SimTime(6));
    let a: &Counter = sim.actor(P0).unwrap();
    let b: &Counter = sim.actor(P1).unwrap();
    assert_eq!(a.received, vec![0, 2, 4]);
    assert_eq!(b.received, vec![1, 3, 5]);
    assert_eq!(sim.metrics().total("received"), 6);
    assert_eq!(sim.stats(P0).sent, 3);
    assert_eq!(sim.stats(P0).delivered, 3);
}

#[test]
fn identical_seeds_give_identical_traces() {
    let run = |seed: u64| -> Vec<String> {
        let mut sim = Sim::new(seed, NetConfig::lan().with_loss(0.1).with_duplicate(0.1));
        sim.enable_trace(10_000);
        sim.add_process(P0, || Counter::boxed(50));
        sim.add_process(P1, || Counter::boxed(50));
        sim.inject_at(SimTime(1), P0, P1, 0);
        sim.run_to_quiescence(10_000);
        sim.trace().iter().map(|e| e.render()).collect()
    };
    let t1 = run(99);
    let t2 = run(99);
    assert_eq!(t1, t2, "same seed must reproduce the exact event sequence");
    let t3 = run(100);
    assert_ne!(t1, t3, "different seeds should diverge for a jittery net");
}

#[test]
fn loss_prevents_delivery() {
    // 100% loss: the injected message arrives (inject is lossless) but the
    // reply is dropped.
    let mut sim = Sim::new(1, NetConfig::lockstep().with_loss(1.0));
    sim.enable_trace(100);
    sim.add_process(P0, || Counter::boxed(5));
    sim.add_process(P1, || Counter::boxed(5));
    sim.inject_at(SimTime(1), P0, P1, 0);
    sim.run_to_quiescence(100);
    let a: &Counter = sim.actor(P0).unwrap();
    let b: &Counter = sim.actor(P1).unwrap();
    assert_eq!(a.received, vec![0]);
    assert!(b.received.is_empty());
    assert!(sim
        .trace()
        .iter()
        .any(|e| e.kind == TraceKind::Drop && e.process == P1));
}

#[test]
fn duplication_delivers_twice() {
    let mut sim = Sim::new(1, NetConfig::lockstep().with_duplicate(1.0));
    sim.add_process(P0, || Counter::boxed(0)); // bound 0: no replies
    sim.add_process(P1, || Counter::boxed(0));
    // P1 sends one message to P0 via an actor send (inject is never
    // duplicated): use a one-shot starter actor instead.
    struct Starter;
    impl Actor for Starter {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut dyn Context<u32>) {
            ctx.send(P0, 7);
        }
        fn on_message(&mut self, _f: ProcessId, _m: u32, _c: &mut dyn Context<u32>) {}
        fn on_timer(&mut self, _t: TimerToken, _c: &mut dyn Context<u32>) {}
    }
    sim.add_process(P2, || Box::new(Starter));
    sim.run_to_quiescence(100);
    let a: &Counter = sim.actor(P0).unwrap();
    assert_eq!(a.received, vec![7, 7]);
}

#[test]
fn partitions_block_and_heal() {
    let mut sim = Sim::new(1, NetConfig::lockstep());
    sim.add_process(P0, || Counter::boxed(0));
    sim.add_process(P1, || Counter::boxed(0));
    sim.partition_at(SimTime(1), vec![P0], vec![P1]);
    sim.inject_at(SimTime(5), P0, P1, 1); // blocked at delivery
    sim.heal_at(SimTime(10));
    sim.inject_at(SimTime(11), P0, P1, 2); // delivered
    sim.run_until(SimTime(20));
    let a: &Counter = sim.actor(P0).unwrap();
    assert_eq!(a.received, vec![2]);
}

/// An actor that persists every message and re-reads its state on recovery.
struct Durable {
    restored: Option<u32>,
}

impl Actor for Durable {
    type Msg = u32;
    fn on_start(&mut self, ctx: &mut dyn Context<u32>) {
        self.restored = ctx
            .storage()
            .read("last")
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()));
    }
    fn on_message(&mut self, _from: ProcessId, msg: u32, ctx: &mut dyn Context<u32>) {
        ctx.storage().write("last", msg.to_le_bytes().to_vec());
    }
    fn on_timer(&mut self, _t: TimerToken, _c: &mut dyn Context<u32>) {}
}

#[test]
fn storage_survives_crash_and_volatile_state_does_not() {
    let mut sim = Sim::new(1, NetConfig::lockstep());
    sim.add_process(P0, || Box::new(Durable { restored: None }));
    sim.inject_at(SimTime(1), P0, P1, 42);
    sim.crash_at(SimTime(5), P0);
    sim.recover_at(SimTime(9), P0);
    sim.run_until(SimTime(12));
    let a: &Durable = sim.actor(P0).unwrap();
    assert_eq!(a.restored, Some(42), "recovery must see persisted state");
    assert_eq!(sim.storage(P0).unwrap().write_count(), 1);
    assert!(sim.is_up(P0));
}

#[test]
fn messages_to_down_process_are_dropped() {
    let mut sim = Sim::new(1, NetConfig::lockstep());
    sim.enable_trace(100);
    sim.add_process(P0, || Counter::boxed(0));
    sim.crash_at(SimTime(2), P0);
    sim.inject_at(SimTime(5), P0, P1, 9);
    sim.recover_at(SimTime(8), P0);
    sim.run_until(SimTime(10));
    let a: &Counter = sim.actor(P0).unwrap();
    assert!(a.received.is_empty());
    assert!(!sim.trace().is_empty());
}

/// Timer semantics: rearm replaces, cancel removes, crash invalidates.
struct TimerBox {
    fired: Vec<(u64, u64)>, // (token, at)
}

const T_A: TimerToken = TimerToken(1);
const T_B: TimerToken = TimerToken(2);

impl Actor for TimerBox {
    type Msg = u32;
    fn on_start(&mut self, ctx: &mut dyn Context<u32>) {
        ctx.set_timer(SimDuration(10), T_A);
        ctx.set_timer(SimDuration(20), T_B);
    }
    fn on_message(&mut self, _from: ProcessId, msg: u32, ctx: &mut dyn Context<u32>) {
        match msg {
            0 => ctx.cancel_timer(T_A),
            1 => ctx.set_timer(SimDuration(100), T_A), // re-arm later
            _ => {}
        }
    }
    fn on_timer(&mut self, token: TimerToken, ctx: &mut dyn Context<u32>) {
        self.fired.push((token.0, ctx.now().ticks()));
    }
}

#[test]
fn timer_fire_cancel_rearm() {
    // Plain fire.
    let mut sim = Sim::new(1, NetConfig::lockstep());
    sim.add_process(P0, || Box::new(TimerBox { fired: vec![] }));
    sim.run_until(SimTime(30));
    let a: &TimerBox = sim.actor(P0).unwrap();
    assert_eq!(a.fired, vec![(1, 10), (2, 20)]);

    // Cancelled before firing.
    let mut sim = Sim::new(1, NetConfig::lockstep());
    sim.add_process(P0, || Box::new(TimerBox { fired: vec![] }));
    sim.inject_at(SimTime(3), P0, P1, 0); // cancel T_A
    sim.run_until(SimTime(30));
    let a: &TimerBox = sim.actor(P0).unwrap();
    assert_eq!(a.fired, vec![(2, 20)]);

    // Re-armed: old deadline must not fire, new one must.
    let mut sim = Sim::new(1, NetConfig::lockstep());
    sim.add_process(P0, || Box::new(TimerBox { fired: vec![] }));
    sim.inject_at(SimTime(3), P0, P1, 1); // re-arm T_A for t=103
    sim.run_until(SimTime(150));
    let a: &TimerBox = sim.actor(P0).unwrap();
    assert_eq!(a.fired, vec![(2, 20), (1, 103)]);
}

#[test]
fn crash_invalidates_pending_timers() {
    let mut sim = Sim::new(1, NetConfig::lockstep());
    sim.add_process(P0, || Box::new(TimerBox { fired: vec![] }));
    sim.crash_at(SimTime(5), P0);
    sim.recover_at(SimTime(6), P0); // on_recover re-arms at 16 and 26
    sim.run_until(SimTime(40));
    let a: &TimerBox = sim.actor(P0).unwrap();
    assert_eq!(a.fired, vec![(1, 16), (2, 26)]);
}

#[test]
fn disk_write_ticks_delay_outgoing_messages() {
    struct WriteThenSend;
    impl Actor for WriteThenSend {
        type Msg = u32;
        fn on_message(&mut self, from: ProcessId, _m: u32, ctx: &mut dyn Context<u32>) {
            ctx.storage().write("v", vec![1]);
            ctx.storage().write("w", vec![2]);
            ctx.send(from, 1);
        }
        fn on_timer(&mut self, _t: TimerToken, _c: &mut dyn Context<u32>) {}
    }
    let mut sim = Sim::new(1, NetConfig::lockstep().with_disk_write_ticks(5));
    sim.add_process(P0, || Box::new(WriteThenSend));
    sim.add_process(P1, || Counter::boxed(0));
    sim.inject_at(SimTime(1), P0, P1, 0);
    sim.run_to_quiescence(100);
    // Delivery to P0 at t=1; two writes cost 10 ticks; link delay 1 →
    // P1 receives at t=12.
    assert_eq!(sim.now(), SimTime(12));
    let b: &Counter = sim.actor(P1).unwrap();
    assert_eq!(b.received, vec![1]);
}

#[test]
fn run_until_advances_clock_without_events() {
    let mut sim: Sim<u32> = Sim::new(1, NetConfig::lockstep());
    sim.run_until(SimTime(100));
    assert_eq!(sim.now(), SimTime(100));
    assert_eq!(sim.events_processed(), 0);
}

#[test]
fn uniform_delays_reorder_messages() {
    // With high jitter, two messages sent back-to-back can arrive inverted;
    // check that at least one seed exhibits reordering (spontaneous-order
    // failure, the collision trigger of §4.5).
    struct Burst;
    impl Actor for Burst {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut dyn Context<u32>) {
            for i in 0..5 {
                ctx.send(P1, i);
            }
        }
        fn on_message(&mut self, _f: ProcessId, _m: u32, _c: &mut dyn Context<u32>) {}
        fn on_timer(&mut self, _t: TimerToken, _c: &mut dyn Context<u32>) {}
    }
    let mut reordered = false;
    for seed in 0..20 {
        let mut sim = Sim::new(
            seed,
            NetConfig::lockstep().with_delay(DelayDist::Uniform(1, 10)),
        );
        sim.add_process(P1, || Counter::boxed(0));
        sim.add_process(P0, || Box::new(Burst));
        sim.run_to_quiescence(100);
        let c: &Counter = sim.actor(P1).unwrap();
        let mut sorted = c.received.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4], "no loss configured");
        if c.received != sorted {
            reordered = true;
        }
    }
    assert!(reordered, "high jitter should reorder at least once");
}

#[test]
fn multicast_delivery_semantics_match_individual_sends() {
    // The default `Context::multicast` moves the message to the last
    // recipient instead of cloning for everyone (the shared-payload fast
    // path). Under an identically seeded lossy, duplicating, jittery
    // network it must produce exactly the event sequence of per-recipient
    // `send` calls: each copy independently delayed, duplicated or lost.
    struct Caster {
        use_multicast: bool,
        received: Vec<u32>,
    }
    impl Actor for Caster {
        type Msg = u32;
        fn on_message(&mut self, _f: ProcessId, m: u32, ctx: &mut dyn Context<u32>) {
            if m == 0 {
                // Trigger: fan the payload out to P1 and P2, twice.
                for round in 1..=2 {
                    if self.use_multicast {
                        ctx.multicast(&[P1, P2], round * 10);
                    } else {
                        for &p in &[P1, P2] {
                            ctx.send(p, round * 10);
                        }
                    }
                }
            } else {
                self.received.push(m);
            }
        }
        fn on_timer(&mut self, _t: TimerToken, _c: &mut dyn Context<u32>) {}
    }
    let run = |use_multicast: bool| -> (Vec<String>, Vec<u32>, Vec<u32>) {
        let mut sim = Sim::new(
            4242,
            NetConfig::lockstep()
                .with_delay(DelayDist::Uniform(1, 7))
                .with_loss(0.2)
                .with_duplicate(0.3),
        );
        sim.enable_trace(10_000);
        for p in [P0, P1, P2] {
            sim.add_process(p, move || {
                Box::new(Caster {
                    use_multicast,
                    received: vec![],
                })
            });
        }
        sim.inject_at(SimTime(1), P0, P2, 0);
        sim.run_to_quiescence(10_000);
        let r1 = sim.actor::<Caster>(P1).unwrap().received.clone();
        let r2 = sim.actor::<Caster>(P2).unwrap().received.clone();
        (sim.trace().iter().map(|e| e.render()).collect(), r1, r2)
    };
    let (trace_mc, mc1, mc2) = run(true);
    let (trace_send, s1, s2) = run(false);
    assert_eq!(
        trace_mc, trace_send,
        "multicast must be event-for-event equivalent to individual sends"
    );
    assert_eq!(mc1, s1);
    assert_eq!(mc2, s2);
    // Sanity: the lossy/duplicating config actually exercised both paths.
    assert_ne!(mc1.len() + mc2.len(), 4, "loss or duplication should show");
}
