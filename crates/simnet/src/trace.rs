//! Event tracing for debugging and experiment post-processing.

use mcpaxos_actor::{ProcessId, SimTime};

/// What kind of event a trace entry records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A message was handed to an actor.
    Deliver,
    /// A message transmission was dropped by the network.
    Drop,
    /// A timer fired.
    Timer,
    /// A process crashed.
    Crash,
    /// A process recovered.
    Recover,
}

/// One recorded simulator event.
///
/// The message payload is kept as its `Debug` rendering so traces do not
/// constrain the message type or keep large values alive.
#[derive(Clone, Debug)]
pub struct TraceEntry {
    /// When the event happened.
    pub at: SimTime,
    /// Event kind.
    pub kind: TraceKind,
    /// The process the event happened at.
    pub process: ProcessId,
    /// For deliveries/drops: the sender.
    pub from: Option<ProcessId>,
    /// Rendering of the payload (message debug text or timer token).
    pub detail: String,
    /// Serialized size of the message, when byte accounting is enabled
    /// ([`crate::Sim::enable_byte_meter`]); 0 otherwise.
    pub bytes: u64,
}

impl TraceEntry {
    /// Compact single-line rendering, convenient for golden-trace tests.
    /// The byte count is appended only when accounting recorded one, so
    /// unmetered golden traces are unchanged.
    pub fn render(&self) -> String {
        let bytes = if self.bytes > 0 {
            format!(" [{}B]", self.bytes)
        } else {
            String::new()
        };
        match self.from {
            Some(f) => format!(
                "{} {:?} {}<-{} {}{}",
                self.at.ticks(),
                self.kind,
                self.process,
                f,
                self.detail,
                bytes
            ),
            None => format!(
                "{} {:?} {} {}{}",
                self.at.ticks(),
                self.kind,
                self.process,
                self.detail,
                bytes
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_formats() {
        let e = TraceEntry {
            at: SimTime(5),
            kind: TraceKind::Deliver,
            process: ProcessId(1),
            from: Some(ProcessId(2)),
            detail: "hello".into(),
            bytes: 0,
        };
        assert_eq!(e.render(), "5 Deliver p1<-p2 hello");
        let t = TraceEntry {
            at: SimTime(9),
            kind: TraceKind::Crash,
            process: ProcessId(3),
            from: None,
            detail: String::new(),
            bytes: 0,
        };
        assert_eq!(t.render(), "9 Crash p3 ");
        let m = TraceEntry {
            at: SimTime(5),
            kind: TraceKind::Deliver,
            process: ProcessId(1),
            from: Some(ProcessId(2)),
            detail: "hello".into(),
            bytes: 42,
        };
        assert_eq!(m.render(), "5 Deliver p1<-p2 hello [42B]");
    }
}
