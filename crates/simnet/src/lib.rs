//! Deterministic discrete-event network simulator for `mcpaxos` actors.
//!
//! The paper assumes an asynchronous crash-recovery model: messages may be
//! delayed arbitrarily, lost or duplicated; processes fail by stopping and
//! may recover with only stable storage intact. This crate realises that
//! model as a seeded, fully deterministic event simulation, so that
//!
//! * every experiment is exactly reproducible from its seed,
//! * latency can be measured in *communication steps* (unit link delays),
//!   the currency of the paper's claims, and
//! * disk writes, message counts and protocol events are observable without
//!   instrumenting agent code.
//!
//! # Example
//!
//! ```
//! use mcpaxos_actor::{Actor, Context, ProcessId, TimerToken};
//! use mcpaxos_simnet::{NetConfig, Sim};
//!
//! struct Ping;
//! impl Actor for Ping {
//!     type Msg = u32;
//!     fn on_message(&mut self, from: ProcessId, msg: u32, ctx: &mut dyn Context<u32>) {
//!         if msg < 3 {
//!             ctx.send(from, msg + 1);
//!         }
//!     }
//!     fn on_timer(&mut self, _t: TimerToken, _c: &mut dyn Context<u32>) {}
//! }
//!
//! let mut sim = Sim::new(42, NetConfig::lockstep());
//! sim.add_process(ProcessId(0), || Box::new(Ping));
//! sim.add_process(ProcessId(1), || Box::new(Ping));
//! sim.inject(ProcessId(0), ProcessId(1), 0u32); // deliver 0 to p0, from p1
//! sim.run_to_quiescence(1_000);
//! assert_eq!(sim.now().ticks(), 4); // hops carrying 0,1,2,3 then silence
//! ```

mod chaos;
mod config;
pub mod explore;
mod sim;
mod stats;
mod topology;
mod trace;

pub use chaos::{ChaosEvent, ChaosSchedule};
pub use config::{DelayDist, NetConfig};
pub use explore::{explore, Choice, ExploreConfig, ExploreNet, ExploreStats, Violation};
pub use sim::{ByteMeter, ProcessStats, Sim, StorageFactory, WireTotal};
pub use stats::{percentile, percentile_sorted, LatencyStats};
pub use topology::Topology;
pub use trace::{TraceEntry, TraceKind};
