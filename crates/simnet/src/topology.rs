//! Latency-matrix topology: per-process-pair delay distributions.
//!
//! A [`Topology`] layers a directional delay matrix over the global
//! [`crate::NetConfig`]: pairs with an entry sample their own
//! [`DelayDist`]; pairs without one fall back to the global delay, with
//! the exact same RNG draw sequence as an un-topologized run. Entries are
//! directional, so asymmetric links (e.g. a congested up-link) are
//! expressible; [`Topology::symmetric`] installs both directions at once.

use crate::DelayDist;
use mcpaxos_actor::ProcessId;
use std::collections::BTreeMap;

/// A per-process-pair delay matrix (see module docs).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Topology {
    links: BTreeMap<(ProcessId, ProcessId), DelayDist>,
}

impl Topology {
    /// An empty matrix: every pair falls back to the global delay.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Installs `dist` for messages from `from` to `to` (one direction).
    pub fn link(mut self, from: ProcessId, to: ProcessId, dist: DelayDist) -> Self {
        self.links.insert((from, to), dist);
        self
    }

    /// Installs `dist` in both directions between `a` and `b`.
    pub fn symmetric(self, a: ProcessId, b: ProcessId, dist: DelayDist) -> Self {
        self.link(a, b, dist).link(b, a, dist)
    }

    /// Builds a multi-datacenter matrix: every ordered pair within one
    /// datacenter gets `intra`; every pair spanning datacenters `(i, j)`
    /// (unordered, `i < j` or `j < i` both match) gets the matching entry
    /// of `inter`, symmetrically. DC pairs absent from `inter` fall back
    /// to the global delay.
    pub fn datacenters(
        dcs: &[Vec<ProcessId>],
        intra: DelayDist,
        inter: &[(usize, usize, DelayDist)],
    ) -> Self {
        let mut t = Topology::new();
        for dc in dcs {
            for &a in dc {
                for &b in dc {
                    if a != b {
                        t = t.link(a, b, intra);
                    }
                }
            }
        }
        for &(i, j, dist) in inter {
            for &a in &dcs[i] {
                for &b in &dcs[j] {
                    t = t.symmetric(a, b, dist);
                }
            }
        }
        t
    }

    /// The delay distribution for `from → to`, if the matrix has one.
    pub fn delay_between(&self, from: ProcessId, to: ProcessId) -> Option<DelayDist> {
        self.links.get(&(from, to)).copied()
    }

    /// Number of directional links in the matrix.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// The largest delay any link in the matrix can produce (0 if empty).
    /// Useful for sizing failure-detector timeouts above the worst RTT.
    pub fn max_delay(&self) -> u64 {
        self.links.values().map(|d| d.max()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: fn(u32) -> ProcessId = ProcessId;

    #[test]
    fn links_are_directional() {
        let t = Topology::new().link(P(1), P(2), DelayDist::Fixed(10)).link(
            P(2),
            P(1),
            DelayDist::Fixed(90),
        );
        assert_eq!(t.delay_between(P(1), P(2)), Some(DelayDist::Fixed(10)));
        assert_eq!(t.delay_between(P(2), P(1)), Some(DelayDist::Fixed(90)));
        assert_eq!(t.delay_between(P(1), P(3)), None);
        assert_eq!(t.len(), 2);
        assert_eq!(t.max_delay(), 90);
    }

    #[test]
    fn symmetric_installs_both_directions() {
        let t = Topology::new().symmetric(P(1), P(2), DelayDist::Uniform(3, 5));
        assert_eq!(t.delay_between(P(1), P(2)), Some(DelayDist::Uniform(3, 5)));
        assert_eq!(t.delay_between(P(2), P(1)), Some(DelayDist::Uniform(3, 5)));
    }

    #[test]
    fn datacenter_matrix_covers_all_pairs() {
        let dcs = vec![vec![P(1), P(2)], vec![P(3)], vec![P(4)]];
        let t = Topology::datacenters(
            &dcs,
            DelayDist::Fixed(1),
            &[
                (0, 1, DelayDist::Uniform(20, 30)),
                (0, 2, DelayDist::Uniform(40, 60)),
                // DC pair (1, 2) intentionally absent: global fallback.
            ],
        );
        // Intra-DC.
        assert_eq!(t.delay_between(P(1), P(2)), Some(DelayDist::Fixed(1)));
        assert_eq!(t.delay_between(P(2), P(1)), Some(DelayDist::Fixed(1)));
        // Inter-DC, both directions.
        assert_eq!(
            t.delay_between(P(1), P(3)),
            Some(DelayDist::Uniform(20, 30))
        );
        assert_eq!(
            t.delay_between(P(3), P(2)),
            Some(DelayDist::Uniform(20, 30))
        );
        assert_eq!(
            t.delay_between(P(4), P(1)),
            Some(DelayDist::Uniform(40, 60))
        );
        // Unlisted DC pair falls through.
        assert_eq!(t.delay_between(P(3), P(4)), None);
        assert_eq!(t.max_delay(), 60);
    }

    #[test]
    fn empty_matrix_always_falls_back() {
        let t = Topology::new();
        assert!(t.is_empty());
        assert_eq!(t.delay_between(P(1), P(2)), None);
        assert_eq!(t.max_delay(), 0);
    }
}
