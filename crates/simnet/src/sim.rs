//! The simulator core: event heap, process table, fault injection.

use crate::{DelayDist, NetConfig, Topology, TraceEntry, TraceKind};
use mcpaxos_actor::{
    Actor, Context, MemStore, Metric, MetricSink, Metrics, ProcessId, SimDuration, SimTime,
    StableStore, TimerToken,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::any::Any;
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt::Debug;

type ActorBox<M> = Box<dyn Actor<Msg = M>>;
type Factory<M> = Box<dyn FnMut() -> ActorBox<M>>;

/// Builds the stable storage for a newly registered process. The default
/// factory hands every process a fresh [`MemStore`]; install a custom one
/// with [`Sim::set_storage_factory`] to back processes with a
/// write-ahead-log store instead.
pub type StorageFactory = Box<dyn FnMut(ProcessId) -> Box<dyn StableStore>>;

/// Per-process message counters, used by the load-balance experiment (E4).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProcessStats {
    /// Messages this process handed to the network.
    pub sent: u64,
    /// Messages delivered to this process.
    pub delivered: u64,
    /// Timer upcalls executed at this process.
    pub timers_fired: u64,
    /// Serialized bytes this process handed to the network (0 unless
    /// byte accounting is enabled).
    pub bytes_sent: u64,
}

/// Cumulative wire accounting for one message tag.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireTotal {
    /// Messages handed to the network.
    pub count: u64,
    /// Their cumulative serialized size in bytes.
    pub bytes: u64,
}

/// Classifies and sizes a message for wire accounting: returns a static
/// tag (e.g. the protocol message kind) and the serialized byte size.
pub type ByteMeter<M> = Box<dyn Fn(&M) -> (&'static str, u64)>;

enum Event<M> {
    Deliver {
        to: ProcessId,
        from: ProcessId,
        msg: M,
    },
    Timer {
        at: ProcessId,
        token: TimerToken,
        arm: u64,
        /// Crash epoch at arm time — see the assertion in `dispatch`.
        epoch: u64,
    },
    Crash(ProcessId),
    Recover(ProcessId),
    Partition(Vec<ProcessId>, Vec<ProcessId>),
    Heal,
    Reconfig(NetConfig),
}

struct Scheduled<M> {
    /// (time, sequence) — the total order of the run.
    key: (u64, u64),
    event: Event<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other.key.cmp(&self.key)
    }
}

struct ProcNode<M> {
    actor: Option<ActorBox<M>>,
    factory: Factory<M>,
    up: bool,
    storage: Box<dyn StableStore>,
    /// Monotonic arm counter: a timer event fires only if it carries the
    /// latest arm id for its token (cancel/re-arm/crash invalidate).
    next_arm: u64,
    timers: BTreeMap<TimerToken, u64>,
    /// Bumped on every crash; timer events stamped with an older epoch
    /// must never validate (the `timers` map was cleared at the crash).
    epoch: u64,
    stats: ProcessStats,
}

enum UpKind<M> {
    Start,
    Recover,
    Msg(ProcessId, M),
    Timer(TimerToken),
    LinkReset(ProcessId),
}

/// The deterministic discrete-event simulator.
///
/// All nondeterminism (delays, loss, duplication, tie-breaking randomness
/// requested by actors) is drawn from a single seeded RNG, so a `(seed,
/// scenario)` pair fully determines the execution.
pub struct Sim<M> {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Scheduled<M>>,
    rng: StdRng,
    config: NetConfig,
    topology: Option<Topology>,
    procs: BTreeMap<ProcessId, ProcNode<M>>,
    partitions: Vec<(Vec<ProcessId>, Vec<ProcessId>)>,
    metrics: Metrics,
    trace: Vec<TraceEntry>,
    trace_cap: usize,
    events_processed: u64,
    byte_meter: Option<ByteMeter<M>>,
    wire: BTreeMap<&'static str, WireTotal>,
    storage_factory: StorageFactory,
}

impl<M: Clone + Debug + 'static> Sim<M> {
    /// Creates a simulator with the given RNG seed and network config.
    pub fn new(seed: u64, config: NetConfig) -> Self {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            rng: StdRng::seed_from_u64(seed),
            config,
            topology: None,
            procs: BTreeMap::new(),
            partitions: Vec::new(),
            metrics: Metrics::new(),
            trace: Vec::new(),
            trace_cap: 0,
            events_processed: 0,
            byte_meter: None,
            wire: BTreeMap::new(),
            storage_factory: Box::new(|_| Box::new(MemStore::new())),
        }
    }

    /// Installs the storage factory consulted by every subsequent
    /// [`Sim::add_process`] call (already-registered processes keep their
    /// existing storage). Use this to back processes with a
    /// [`mcpaxos_actor::WalStore`] instead of the default [`MemStore`].
    pub fn set_storage_factory<F>(&mut self, factory: F)
    where
        F: FnMut(ProcessId) -> Box<dyn StableStore> + 'static,
    {
        self.storage_factory = Box::new(factory);
    }

    /// Registers a process and immediately runs its `on_start`.
    ///
    /// The factory is re-invoked on every recovery, modelling the loss of
    /// all volatile state; only [`Sim::storage`] survives.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is already registered.
    pub fn add_process<F>(&mut self, pid: ProcessId, mut factory: F)
    where
        F: FnMut() -> ActorBox<M> + 'static,
    {
        let actor = factory();
        let storage = (self.storage_factory)(pid);
        let prev = self.procs.insert(
            pid,
            ProcNode {
                actor: Some(actor),
                factory: Box::new(factory),
                up: true,
                storage,
                next_arm: 0,
                timers: BTreeMap::new(),
                epoch: 0,
                stats: ProcessStats::default(),
            },
        );
        assert!(prev.is_none(), "process {pid} registered twice");
        self.upcall(pid, UpKind::Start);
    }

    // ----- time and execution -------------------------------------------

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Processes a single event, returning its timestamp, or `None` if the
    /// event queue is empty.
    pub fn step(&mut self) -> Option<SimTime> {
        let Scheduled { key, event } = self.heap.pop()?;
        self.now = SimTime(key.0);
        self.events_processed += 1;
        self.dispatch(event);
        Some(self.now)
    }

    /// Runs every event scheduled up to and including time `t`, then
    /// advances the clock to `t`.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(s) = self.heap.peek() {
            if s.key.0 > t.0 {
                break;
            }
            self.step();
        }
        if t > self.now {
            self.now = t;
        }
    }

    /// Runs `d` ticks past the current time.
    pub fn run_for(&mut self, d: SimDuration) {
        let t = self.now + d;
        self.run_until(t);
    }

    /// Runs until no events remain or `max_events` have been processed.
    /// Returns the number of events processed by this call.
    ///
    /// Protocols with periodic timers never quiesce; use [`Sim::run_until`]
    /// for those.
    pub fn run_to_quiescence(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step().is_some() {
            n += 1;
        }
        n
    }

    // ----- fault & scenario injection ------------------------------------

    /// Delivers `msg` to `to`, appearing to come from `from`, after one
    /// sampled link delay. Never lost or duplicated — used by harnesses to
    /// feed client traffic.
    pub fn inject(&mut self, to: ProcessId, from: ProcessId, msg: M) {
        let d = self.pair_delay(from, to).sample(&mut self.rng);
        let at = self.now + SimDuration(d);
        self.schedule(at, Event::Deliver { to, from, msg });
    }

    /// Delivers `msg` to `to` at exactly time `t` (which must not be in
    /// the past).
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current time.
    pub fn inject_at(&mut self, t: SimTime, to: ProcessId, from: ProcessId, msg: M) {
        assert!(t >= self.now, "inject_at into the past");
        self.schedule(t, Event::Deliver { to, from, msg });
    }

    /// Crashes `p` at time `t`: volatile state and pending timers are lost;
    /// in-flight messages to `p` will be dropped.
    pub fn crash_at(&mut self, t: SimTime, p: ProcessId) {
        self.schedule(t, Event::Crash(p));
    }

    /// Recovers `p` at time `t`: a fresh actor is built by the factory and
    /// `on_recover` runs with the surviving stable storage.
    pub fn recover_at(&mut self, t: SimTime, p: ProcessId) {
        self.schedule(t, Event::Recover(p));
    }

    /// From time `t`, blocks all messages between group `a` and group `b`.
    pub fn partition_at(&mut self, t: SimTime, a: Vec<ProcessId>, b: Vec<ProcessId>) {
        self.schedule(t, Event::Partition(a, b));
    }

    /// Removes all partitions at time `t`. Every process that was cut
    /// off from a peer gets an [`Actor::on_link_reset`] upcall for that
    /// peer — the simulated analogue of a transport reconnect
    /// notification, letting senders drop per-peer incremental state.
    pub fn heal_at(&mut self, t: SimTime) {
        self.schedule(t, Event::Heal);
    }

    /// Replaces the network configuration at time `t` (e.g. a scheduled
    /// link-degradation burst). Unlike [`Sim::set_config`], the change is
    /// ordered into the event stream, so a `(seed, schedule)` pair stays
    /// deterministic.
    pub fn set_config_at(&mut self, t: SimTime, config: NetConfig) {
        self.schedule(t, Event::Reconfig(config));
    }

    // ----- inspection -----------------------------------------------------

    /// Whether `p` is currently up.
    pub fn is_up(&self, p: ProcessId) -> bool {
        self.procs.get(&p).map(|n| n.up).unwrap_or(false)
    }

    /// Immutable access to `p`'s actor, downcast to its concrete type.
    pub fn actor<A: Actor<Msg = M>>(&self, p: ProcessId) -> Option<&A> {
        let node = self.procs.get(&p)?;
        let a: &dyn Actor<Msg = M> = node.actor.as_deref()?;
        let any: &dyn Any = a;
        any.downcast_ref::<A>()
    }

    /// Mutable access to `p`'s actor, downcast to its concrete type.
    /// Intended for test assertions, not for bypassing the protocol.
    pub fn actor_mut<A: Actor<Msg = M>>(&mut self, p: ProcessId) -> Option<&mut A> {
        let node = self.procs.get_mut(&p)?;
        let a: &mut dyn Actor<Msg = M> = node.actor.as_deref_mut()?;
        let any: &mut dyn Any = a;
        any.downcast_mut::<A>()
    }

    /// The stable storage of `p` (survives crashes).
    pub fn storage(&self, p: ProcessId) -> Option<&(dyn StableStore + '_)> {
        self.procs.get(&p).map(|n| n.storage.as_ref())
    }

    /// Mutable access to `p`'s stable storage. Intended for test
    /// scenarios that corrupt or truncate the medium between a crash and
    /// the matching recovery.
    pub fn storage_mut(&mut self, p: ProcessId) -> Option<&mut (dyn StableStore + '_)> {
        match self.procs.get_mut(&p) {
            Some(n) => Some(n.storage.as_mut()),
            None => None,
        }
    }

    /// Message counters for `p`.
    pub fn stats(&self, p: ProcessId) -> ProcessStats {
        self.procs.get(&p).map(|n| n.stats).unwrap_or_default()
    }

    /// Aggregated metrics recorded by all actors.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The network configuration.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// Replaces the network configuration mid-run (e.g. to raise jitter).
    pub fn set_config(&mut self, config: NetConfig) {
        self.config = config;
    }

    /// Installs a per-pair latency matrix. Pairs with an entry sample
    /// their own delay distribution; all other pairs keep sampling the
    /// global [`NetConfig::delay`] exactly as before.
    pub fn set_topology(&mut self, topology: Topology) {
        self.topology = Some(topology);
    }

    /// The installed latency matrix, if any.
    pub fn topology(&self) -> Option<&Topology> {
        self.topology.as_ref()
    }

    /// All registered process ids.
    pub fn processes(&self) -> Vec<ProcessId> {
        self.procs.keys().copied().collect()
    }

    /// Enables event tracing, keeping at most `cap` entries.
    pub fn enable_trace(&mut self, cap: usize) {
        self.trace_cap = cap;
    }

    /// The recorded trace.
    pub fn trace(&self) -> &[TraceEntry] {
        &self.trace
    }

    /// Enables per-message byte accounting: every message handed to the
    /// network is classified and sized by `meter`, feeding per-tag
    /// [`Sim::wire_totals`], per-process [`ProcessStats::bytes_sent`] and
    /// the `bytes` field of trace entries.
    pub fn enable_byte_meter(&mut self, meter: ByteMeter<M>) {
        self.byte_meter = Some(meter);
    }

    /// Cumulative wire accounting per message tag (empty unless a byte
    /// meter is enabled).
    pub fn wire_totals(&self) -> &BTreeMap<&'static str, WireTotal> {
        &self.wire
    }

    /// Cumulative wire accounting for one tag.
    pub fn wire_total(&self, tag: &str) -> WireTotal {
        self.wire.get(tag).copied().unwrap_or_default()
    }

    // ----- internals ------------------------------------------------------

    fn schedule(&mut self, at: SimTime, event: Event<M>) {
        let key = (at.0, self.seq);
        self.seq += 1;
        self.heap.push(Scheduled { key, event });
    }

    fn record(
        &mut self,
        kind: TraceKind,
        process: ProcessId,
        from: Option<ProcessId>,
        detail: String,
        bytes: u64,
    ) {
        if self.trace_cap == 0 || self.trace.len() >= self.trace_cap {
            return;
        }
        self.trace.push(TraceEntry {
            at: self.now,
            kind,
            process,
            from,
            detail,
            bytes,
        });
    }

    /// Sizes `msg` for a trace entry: only when both tracing and byte
    /// accounting are active (metering is pure, so re-invoking it here is
    /// just a second measurement).
    fn trace_bytes(&self, msg: &M) -> u64 {
        if self.trace_cap == 0 || self.trace.len() >= self.trace_cap {
            return 0;
        }
        self.byte_meter.as_ref().map(|m| m(msg).1).unwrap_or(0)
    }

    /// The delay distribution for one transmission: the topology entry
    /// for the pair if present, the global delay otherwise.
    fn pair_delay(&self, from: ProcessId, to: ProcessId) -> DelayDist {
        self.topology
            .as_ref()
            .and_then(|t| t.delay_between(from, to))
            .unwrap_or(self.config.delay)
    }

    fn is_blocked(&self, a: ProcessId, b: ProcessId) -> bool {
        self.partitions.iter().any(|(ga, gb)| {
            (ga.contains(&a) && gb.contains(&b)) || (ga.contains(&b) && gb.contains(&a))
        })
    }

    fn dispatch(&mut self, event: Event<M>) {
        match event {
            Event::Deliver { to, from, msg } => {
                let up = self.procs.get(&to).map(|n| n.up).unwrap_or(false);
                let bytes = self.trace_bytes(&msg);
                if !up || self.is_blocked(from, to) {
                    self.record(TraceKind::Drop, to, Some(from), format!("{msg:?}"), bytes);
                    return;
                }
                self.record(
                    TraceKind::Deliver,
                    to,
                    Some(from),
                    format!("{msg:?}"),
                    bytes,
                );
                if let Some(n) = self.procs.get_mut(&to) {
                    n.stats.delivered += 1;
                }
                self.upcall(to, UpKind::Msg(from, msg));
            }
            Event::Timer {
                at,
                token,
                arm,
                epoch,
            } => {
                let valid = self
                    .procs
                    .get(&at)
                    .map(|n| n.up && n.timers.get(&token) == Some(&arm))
                    .unwrap_or(false);
                if !valid {
                    return;
                }
                // A timer armed before a crash must never validate after
                // the matching recover: the crash cleared `timers` and
                // `next_arm` only moves forward, so an arm match implies
                // the arm happened in the current crash epoch.
                assert_eq!(
                    epoch, self.procs[&at].epoch,
                    "stale pre-crash timer {token:?} fired across a recover at {at}"
                );
                if let Some(n) = self.procs.get_mut(&at) {
                    n.timers.remove(&token);
                    n.stats.timers_fired += 1;
                }
                self.record(TraceKind::Timer, at, None, format!("{token:?}"), 0);
                self.upcall(at, UpKind::Timer(token));
            }
            Event::Crash(p) => {
                if let Some(n) = self.procs.get_mut(&p) {
                    if n.up {
                        n.up = false;
                        n.actor = None;
                        n.timers.clear();
                        n.epoch += 1;
                        // Buffered-but-unflushed stable writes die with
                        // the process (group commit's crash semantics).
                        n.storage.lose_unflushed();
                        self.record(TraceKind::Crash, p, None, String::new(), 0);
                    }
                }
            }
            Event::Recover(p) => {
                let needs = self.procs.get(&p).map(|n| !n.up).unwrap_or(false);
                if needs {
                    let node = self.procs.get_mut(&p).expect("checked above");
                    node.actor = Some((node.factory)());
                    node.up = true;
                    self.record(TraceKind::Recover, p, None, String::new(), 0);
                    self.upcall(p, UpKind::Recover);
                }
            }
            Event::Partition(a, b) => {
                self.partitions.push((a, b));
            }
            Event::Heal => {
                // Collect the pairs that were cut off before clearing,
                // then notify both endpoints of each severed link. Pairs
                // are deduplicated and iterated in sorted order, so heal
                // notifications are deterministic.
                let mut pairs: std::collections::BTreeSet<(ProcessId, ProcessId)> =
                    std::collections::BTreeSet::new();
                for (ga, gb) in &self.partitions {
                    for &a in ga {
                        for &b in gb {
                            if a != b {
                                pairs.insert((a, b));
                                pairs.insert((b, a));
                            }
                        }
                    }
                }
                self.partitions.clear();
                for (p, peer) in pairs {
                    // `upcall` skips processes that are down or absent.
                    self.upcall(p, UpKind::LinkReset(peer));
                }
            }
            Event::Reconfig(config) => {
                self.config = config;
            }
        }
    }

    fn upcall(&mut self, pid: ProcessId, kind: UpKind<M>) {
        let (mut actor, mut storage) = {
            let node = match self.procs.get_mut(&pid) {
                Some(n) if n.up => n,
                _ => return,
            };
            let actor = node.actor.take().expect("up process has an actor");
            let storage = std::mem::replace(
                &mut node.storage,
                Box::new(MemStore::new()) as Box<dyn StableStore>,
            );
            (actor, storage)
        };
        let writes_before = storage.write_count();
        let mut fx = Effects::default();
        {
            let mut ctx = SimCtx {
                me: pid,
                now: self.now,
                storage: storage.as_mut(),
                rng: &mut self.rng,
                fx: &mut fx,
            };
            match kind {
                UpKind::Start => actor.on_start(&mut ctx),
                UpKind::Recover => actor.on_recover(&mut ctx),
                UpKind::Msg(from, m) => actor.on_message(from, m, &mut ctx),
                UpKind::Timer(tok) => actor.on_timer(tok, &mut ctx),
                UpKind::LinkReset(peer) => actor.on_link_reset(peer, &mut ctx),
            }
        }
        let disk_writes = storage.write_count() - writes_before;
        {
            let node = self.procs.get_mut(&pid).expect("node exists");
            node.actor = Some(actor);
            node.storage = storage;
        }
        for m in fx.metrics.drain(..) {
            self.metrics.record(pid, m);
        }
        // Disk writes delay everything the upcall produced (§4.4's cost
        // model: a synchronous write must finish before the results of the
        // action leave the process).
        let base = self.now + SimDuration(disk_writes * self.config.disk_write_ticks);
        for token in fx.timer_cancels.drain(..) {
            if let Some(node) = self.procs.get_mut(&pid) {
                node.timers.remove(&token);
            }
        }
        for (after, token) in fx.timer_sets.drain(..) {
            let (arm, epoch) = {
                let node = self.procs.get_mut(&pid).expect("node exists");
                node.next_arm += 1;
                let arm = node.next_arm;
                node.timers.insert(token, arm);
                (arm, node.epoch)
            };
            self.schedule(
                base + after,
                Event::Timer {
                    at: pid,
                    token,
                    arm,
                    epoch,
                },
            );
        }
        for (to, msg) in fx.sends.drain(..) {
            self.transmit(pid, to, msg, base);
        }
    }

    fn transmit(&mut self, from: ProcessId, to: ProcessId, msg: M, base: SimTime) {
        // Wire accounting happens at hand-off to the network: lost
        // messages cost the sender bytes too, duplicates injected by the
        // network do not.
        let metered = self.byte_meter.as_ref().map(|m| m(&msg));
        if let Some((tag, bytes)) = metered {
            let t = self.wire.entry(tag).or_default();
            t.count += 1;
            t.bytes += bytes;
        }
        if let Some(n) = self.procs.get_mut(&from) {
            n.stats.sent += 1;
            if let Some((_, bytes)) = metered {
                n.stats.bytes_sent += bytes;
            }
        }
        let trace_bytes = metered.map(|(_, b)| b).unwrap_or(0);
        if self.is_blocked(from, to) {
            self.record(
                TraceKind::Drop,
                to,
                Some(from),
                format!("{msg:?}"),
                trace_bytes,
            );
            return;
        }
        if self.config.loss > 0.0 && self.rng.gen_bool(self.config.loss) {
            self.record(
                TraceKind::Drop,
                to,
                Some(from),
                format!("{msg:?}"),
                trace_bytes,
            );
            return;
        }
        let copies = if self.config.duplicate > 0.0 && self.rng.gen_bool(self.config.duplicate) {
            2
        } else {
            1
        };
        let dist = self.pair_delay(from, to);
        for _ in 0..copies {
            let d = dist.sample(&mut self.rng);
            self.schedule(
                base + SimDuration(d),
                Event::Deliver {
                    to,
                    from,
                    msg: msg.clone(),
                },
            );
        }
    }
}

struct Effects<M> {
    sends: Vec<(ProcessId, M)>,
    timer_sets: Vec<(SimDuration, TimerToken)>,
    timer_cancels: Vec<TimerToken>,
    metrics: Vec<Metric>,
}

impl<M> Default for Effects<M> {
    fn default() -> Self {
        Effects {
            sends: Vec::new(),
            timer_sets: Vec::new(),
            timer_cancels: Vec::new(),
            metrics: Vec::new(),
        }
    }
}

struct SimCtx<'a, M> {
    me: ProcessId,
    now: SimTime,
    storage: &'a mut dyn StableStore,
    rng: &'a mut StdRng,
    fx: &'a mut Effects<M>,
}

impl<M> Context<M> for SimCtx<'_, M> {
    fn me(&self) -> ProcessId {
        self.me
    }
    fn now(&self) -> SimTime {
        self.now
    }
    fn send(&mut self, to: ProcessId, msg: M) {
        self.fx.sends.push((to, msg));
    }
    fn set_timer(&mut self, after: SimDuration, token: TimerToken) {
        self.fx.timer_sets.push((after, token));
    }
    fn cancel_timer(&mut self, token: TimerToken) {
        self.fx.timer_cancels.push(token);
    }
    fn storage(&mut self) -> &mut dyn StableStore {
        self.storage
    }
    fn metric(&mut self, metric: Metric) {
        self.fx.metrics.push(metric);
    }
    fn random(&mut self) -> u64 {
        self.rng.gen()
    }
}

impl<M> std::fmt::Debug for Sim<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("processes", &self.procs.len())
            .field("pending_events", &self.heap.len())
            .field("events_processed", &self.events_processed)
            .finish()
    }
}
