//! Declarative chaos schedules: timed crash/recover, partitions that
//! heal, and link-degradation bursts, replayed deterministically.
//!
//! A [`ChaosSchedule`] is a plain list of `(time, event)` pairs built with
//! chainable constructors, then installed into a [`Sim`] with
//! [`ChaosSchedule::apply`]. Because the simulator is deterministic, a
//! `(seed, topology, schedule)` triple fully determines the execution —
//! the same churn scenario can be replayed against different protocol
//! configurations and the results compared stall-for-stall.

use crate::{NetConfig, Sim};
use mcpaxos_actor::{ProcessId, SimDuration, SimTime};
use std::fmt::Debug;

/// One scheduled fault or environment change.
#[derive(Clone, Debug, PartialEq)]
pub enum ChaosEvent {
    /// Crash a process (volatile state and pending timers are lost).
    Crash(ProcessId),
    /// Recover a crashed process from its stable storage.
    Recover(ProcessId),
    /// Block all traffic between the two groups.
    Partition(Vec<ProcessId>, Vec<ProcessId>),
    /// Remove every partition (peers get a link-reset notification).
    Heal,
    /// Replace the global network configuration (e.g. a latency burst or
    /// loss spike); restore it with a later `Degrade` back to the
    /// original config.
    Degrade(NetConfig),
}

/// A deterministic, replayable fault schedule (see module docs).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChaosSchedule {
    events: Vec<(SimTime, ChaosEvent)>,
}

impl ChaosSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        ChaosSchedule::default()
    }

    /// Crashes `p` at time `t`.
    pub fn crash(mut self, t: SimTime, p: ProcessId) -> Self {
        self.events.push((t, ChaosEvent::Crash(p)));
        self
    }

    /// Recovers `p` at time `t`.
    pub fn recover(mut self, t: SimTime, p: ProcessId) -> Self {
        self.events.push((t, ChaosEvent::Recover(p)));
        self
    }

    /// Crashes `p` at `t` and recovers it `down_for` later.
    pub fn crash_for(self, t: SimTime, p: ProcessId, down_for: SimDuration) -> Self {
        self.crash(t, p).recover(t + down_for, p)
    }

    /// Partitions group `a` from group `b` at time `t`.
    pub fn partition(mut self, t: SimTime, a: Vec<ProcessId>, b: Vec<ProcessId>) -> Self {
        self.events.push((t, ChaosEvent::Partition(a, b)));
        self
    }

    /// Heals all partitions at time `t`.
    pub fn heal(mut self, t: SimTime) -> Self {
        self.events.push((t, ChaosEvent::Heal));
        self
    }

    /// Partitions `a` from `b` at `t` and heals `lasts` later.
    pub fn partition_for(
        self,
        t: SimTime,
        a: Vec<ProcessId>,
        b: Vec<ProcessId>,
        lasts: SimDuration,
    ) -> Self {
        let end = t + lasts;
        self.partition(t, a, b).heal(end)
    }

    /// Replaces the network configuration at time `t`.
    pub fn degrade(mut self, t: SimTime, cfg: NetConfig) -> Self {
        self.events.push((t, ChaosEvent::Degrade(cfg)));
        self
    }

    /// Applies `burst` at `t` and restores `normal` `lasts` later.
    pub fn degrade_for(
        self,
        t: SimTime,
        burst: NetConfig,
        lasts: SimDuration,
        normal: NetConfig,
    ) -> Self {
        let end = t + lasts;
        self.degrade(t, burst).degrade(end, normal)
    }

    /// Crashes each of `victims` in turn: the `i`-th crashes at
    /// `start + i * period` and recovers `down_for` later. With
    /// `down_for < period` at most one victim is down at a time — the
    /// rolling-restart shape of a datacenter coordinator deploy.
    pub fn rotate_crashes(
        mut self,
        victims: &[ProcessId],
        start: SimTime,
        period: SimDuration,
        down_for: SimDuration,
    ) -> Self {
        for (i, &p) in victims.iter().enumerate() {
            let t = SimTime(start.0 + i as u64 * period.0);
            self = self.crash_for(t, p, down_for);
        }
        self
    }

    /// Partitions each group of `groups` away from the rest in turn: the
    /// `i`-th group is cut off at `start + i * period` and healed
    /// `lasts` later.
    pub fn rotate_partitions(
        mut self,
        groups: &[Vec<ProcessId>],
        start: SimTime,
        period: SimDuration,
        lasts: SimDuration,
    ) -> Self {
        for (i, g) in groups.iter().enumerate() {
            let rest: Vec<ProcessId> = groups
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .flat_map(|(_, h)| h.iter().copied())
                .collect();
            let t = SimTime(start.0 + i as u64 * period.0);
            self = self.partition_for(t, g.clone(), rest, lasts);
        }
        self
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[(SimTime, ChaosEvent)] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The time of the last scheduled event (`SimTime::ZERO` if empty).
    /// Harnesses run at least this far to see the whole scenario.
    pub fn horizon(&self) -> SimTime {
        self.events
            .iter()
            .map(|&(t, _)| t)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Schedules every event into `sim`. Events are installed in
    /// insertion order, so ties at one timestamp resolve in the order the
    /// schedule listed them — deterministically.
    pub fn apply<M: Clone + Debug + 'static>(&self, sim: &mut Sim<M>) {
        for (t, ev) in &self.events {
            match ev {
                ChaosEvent::Crash(p) => sim.crash_at(*t, *p),
                ChaosEvent::Recover(p) => sim.recover_at(*t, *p),
                ChaosEvent::Partition(a, b) => sim.partition_at(*t, a.clone(), b.clone()),
                ChaosEvent::Heal => sim.heal_at(*t),
                ChaosEvent::Degrade(cfg) => sim.set_config_at(*t, cfg.clone()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DelayDist;

    const P: fn(u32) -> ProcessId = ProcessId;

    #[test]
    fn builders_record_events_in_order() {
        let s = ChaosSchedule::new()
            .crash_for(SimTime(100), P(2), SimDuration(50))
            .partition_for(SimTime(200), vec![P(1)], vec![P(2), P(3)], SimDuration(40))
            .degrade(SimTime(300), NetConfig::wan());
        assert_eq!(s.len(), 5);
        assert_eq!(s.events()[0], (SimTime(100), ChaosEvent::Crash(P(2))));
        assert_eq!(s.events()[1], (SimTime(150), ChaosEvent::Recover(P(2))));
        assert_eq!(
            s.events()[2],
            (
                SimTime(200),
                ChaosEvent::Partition(vec![P(1)], vec![P(2), P(3)])
            )
        );
        assert_eq!(s.events()[3], (SimTime(240), ChaosEvent::Heal));
        assert_eq!(s.horizon(), SimTime(300));
    }

    #[test]
    fn rotate_crashes_staggers_victims() {
        let s = ChaosSchedule::new().rotate_crashes(
            &[P(1), P(2), P(3)],
            SimTime(500),
            SimDuration(200),
            SimDuration(80),
        );
        assert_eq!(s.len(), 6);
        assert_eq!(s.events()[0], (SimTime(500), ChaosEvent::Crash(P(1))));
        assert_eq!(s.events()[1], (SimTime(580), ChaosEvent::Recover(P(1))));
        assert_eq!(s.events()[2], (SimTime(700), ChaosEvent::Crash(P(2))));
        assert_eq!(s.events()[5], (SimTime(980), ChaosEvent::Recover(P(3))));
    }

    #[test]
    fn rotate_partitions_cuts_each_group_from_the_rest() {
        let groups = vec![vec![P(1), P(2)], vec![P(3)], vec![P(4)]];
        let s = ChaosSchedule::new().rotate_partitions(
            &groups,
            SimTime(100),
            SimDuration(100),
            SimDuration(60),
        );
        assert_eq!(s.len(), 6);
        assert_eq!(
            s.events()[0],
            (
                SimTime(100),
                ChaosEvent::Partition(vec![P(1), P(2)], vec![P(3), P(4)])
            )
        );
        assert_eq!(s.events()[1], (SimTime(160), ChaosEvent::Heal));
        assert_eq!(
            s.events()[2],
            (
                SimTime(200),
                ChaosEvent::Partition(vec![P(3)], vec![P(1), P(2), P(4)])
            )
        );
    }

    #[test]
    fn degrade_for_restores_the_normal_config() {
        let normal = NetConfig::lockstep();
        let burst = NetConfig::lockstep().with_delay(DelayDist::Uniform(10, 50));
        let s = ChaosSchedule::new().degrade_for(
            SimTime(100),
            burst.clone(),
            SimDuration(200),
            normal.clone(),
        );
        assert_eq!(s.events()[0], (SimTime(100), ChaosEvent::Degrade(burst)));
        assert_eq!(s.events()[1], (SimTime(300), ChaosEvent::Degrade(normal)));
    }
}
