//! Network behaviour configuration.

use rand::Rng;

/// Distribution of per-message link delays, in ticks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DelayDist {
    /// Every message takes exactly this many ticks. `Fixed(1)` makes
    /// elapsed ticks equal communication steps.
    Fixed(u64),
    /// Uniformly distributed in `[lo, hi]` (inclusive). Jitter induces
    /// message reordering, the trigger for collisions in §4.2/§4.5.
    Uniform(u64, u64),
}

impl DelayDist {
    /// Samples a delay.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        match *self {
            DelayDist::Fixed(d) => d,
            DelayDist::Uniform(lo, hi) => rng.gen_range(lo..=hi),
        }
    }

    /// The largest delay this distribution can produce.
    pub fn max(&self) -> u64 {
        match *self {
            DelayDist::Fixed(d) => d,
            DelayDist::Uniform(_, hi) => hi,
        }
    }
}

/// Whole-network configuration.
///
/// Loss and duplication are sampled independently per transmission, as in
/// the paper's model ("messages can be lost or duplicated but not
/// corrupted").
#[derive(Clone, Debug, PartialEq)]
pub struct NetConfig {
    /// Link delay distribution applied to every message.
    pub delay: DelayDist,
    /// Probability that a transmission is silently dropped.
    pub loss: f64,
    /// Probability that a transmission is delivered twice.
    pub duplicate: f64,
    /// Extra ticks charged for each stable-storage write performed by an
    /// actor while handling an event (models the disk writes of §4.4; the
    /// charge delays everything the actor sent from that upcall).
    pub disk_write_ticks: u64,
}

impl NetConfig {
    /// Lockstep network: unit delay, no loss, no duplication, free disk
    /// writes. Elapsed ticks equal message steps — used for the latency
    /// experiments.
    pub fn lockstep() -> Self {
        NetConfig {
            delay: DelayDist::Fixed(1),
            loss: 0.0,
            duplicate: 0.0,
            disk_write_ticks: 0,
        }
    }

    /// A mildly chaotic LAN: jittered delays that reorder messages, no
    /// loss. Models the paper's "clustered system" scenario where
    /// spontaneous ordering mostly holds (§4.5).
    pub fn lan() -> Self {
        NetConfig {
            delay: DelayDist::Uniform(1, 3),
            loss: 0.0,
            duplicate: 0.0,
            disk_write_ticks: 0,
        }
    }

    /// A lossy, high-jitter WAN: the paper's "conflict prone" scenario
    /// (§4.5) where message inversions are common.
    pub fn wan() -> Self {
        NetConfig {
            delay: DelayDist::Uniform(2, 20),
            loss: 0.01,
            duplicate: 0.005,
            disk_write_ticks: 0,
        }
    }

    /// Returns `self` with the given loss probability.
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self
    }

    /// Returns `self` with the given duplication probability.
    pub fn with_duplicate(mut self, duplicate: f64) -> Self {
        self.duplicate = duplicate;
        self
    }

    /// Returns `self` with the given delay distribution.
    pub fn with_delay(mut self, delay: DelayDist) -> Self {
        self.delay = delay;
        self
    }

    /// Returns `self` charging `ticks` per stable-storage write.
    pub fn with_disk_write_ticks(mut self, ticks: u64) -> Self {
        self.disk_write_ticks = ticks;
        self
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig::lockstep()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_delay_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(DelayDist::Fixed(3).sample(&mut rng), 3);
        }
        assert_eq!(DelayDist::Fixed(3).max(), 3);
    }

    #[test]
    fn uniform_delay_within_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = DelayDist::Uniform(2, 5);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let s = d.sample(&mut rng);
            assert!((2..=5).contains(&s));
            seen.insert(s);
        }
        assert!(seen.len() > 1, "uniform delay should vary");
        assert_eq!(d.max(), 5);
    }

    #[test]
    fn builders_compose() {
        let c = NetConfig::lockstep()
            .with_loss(0.5)
            .with_duplicate(0.25)
            .with_delay(DelayDist::Uniform(1, 2))
            .with_disk_write_ticks(7);
        assert_eq!(c.loss, 0.5);
        assert_eq!(c.duplicate, 0.25);
        assert_eq!(c.delay, DelayDist::Uniform(1, 2));
        assert_eq!(c.disk_write_ticks, 7);
        assert_eq!(NetConfig::default(), NetConfig::lockstep());
    }
}
