//! Depth-bounded exhaustive interleaving exploration.
//!
//! The seeded simulator ([`crate::Sim`]) samples *one* schedule per seed;
//! this module instead enumerates **every** schedule of a small
//! configuration up to a depth bound — the "small-scope" model-checking
//! discipline: most protocol bugs already manifest in tiny configurations
//! (two coordinators, three acceptors, one crash), so exhaustively
//! checking those catches interleavings that random seeds practically
//! never hit, such as a crash landing exactly between a vote being
//! buffered and the group-commit flush that would have made it durable.
//!
//! The state space is explored by stateless depth-first search: actors are
//! not cloneable, so instead of snapshotting states the explorer re-executes
//! the choice prefix from a fresh [`ExploreNet`] at every tree node. All
//! sources of nondeterminism other than the schedule are pinned (no message
//! loss, unit conceptual delay, a constant for [`mcpaxos_actor::Context::random`]),
//! so a choice sequence determines the reached state exactly.
//!
//! At every node the caller's invariant runs against the full network
//! state; per-path observer state (e.g. "the learner's value only grows")
//! is threaded through an accumulator that is recomputed during each
//! replay.

use crate::sim::StorageFactory;
use mcpaxos_actor::{
    Actor, Context, MemStore, Metric, ProcessId, SimDuration, SimTime, StableStore, TimerToken,
};
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;

type ActorBox<M> = Box<dyn Actor<Msg = M>>;

/// One scheduling decision of the explorer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Choice {
    /// Deliver the in-flight message at this index of the pending queue.
    Deliver(usize),
    /// Fire an armed timer at a process.
    Fire(ProcessId, TimerToken),
    /// Crash a process (volatile state and unflushed storage writes die).
    Crash(ProcessId),
    /// Recover a crashed process (fresh actor + `on_recover` replay).
    Recover(ProcessId),
}

/// Bounds on the exploration. The defaults are deliberately tiny; every
/// increment of `max_depth` multiplies the tree by the branching factor.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Maximum choices per path (tree depth).
    pub max_depth: usize,
    /// Maximum `Crash` choices per path.
    pub max_crashes: usize,
    /// Maximum `Fire` choices per path (timers re-arm, so unbounded
    /// firing makes the tree infinite).
    pub max_timer_fires: usize,
    /// Hard cap on explored paths; hitting it sets
    /// [`ExploreStats::truncated`] instead of looping forever.
    pub max_paths: u64,
    /// Processes the explorer may crash and recover. Keep this small —
    /// each candidate adds crash/recover branches at every level.
    pub crash_candidates: Vec<ProcessId>,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_depth: 6,
            max_crashes: 1,
            max_timer_fires: 2,
            max_paths: 2_000_000,
            crash_candidates: Vec::new(),
        }
    }
}

/// Outcome counters of an exploration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Complete paths explored (leaves of the choice tree).
    pub paths: u64,
    /// Tree nodes visited (states checked against the invariant).
    pub states: u64,
    /// Largest branching factor seen at any node.
    pub max_branch: usize,
    /// Whether `max_paths` cut the exploration short.
    pub truncated: bool,
}

/// A failed invariant, with the choice path that reproduces it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The choice sequence from the initial state to the violation.
    pub path: Vec<Choice>,
    /// The invariant's error message.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "invariant violated: {}", self.message)?;
        writeln!(f, "reproducing schedule ({} choices):", self.path.len())?;
        for (i, c) in self.path.iter().enumerate() {
            writeln!(f, "  {i:3}: {c:?}")?;
        }
        Ok(())
    }
}

struct ENode<M> {
    actor: Option<ActorBox<M>>,
    factory: Box<dyn FnMut() -> ActorBox<M>>,
    up: bool,
    storage: Box<dyn StableStore>,
    timers: BTreeSet<TimerToken>,
}

/// The explorable network: a process table plus a queue of in-flight
/// messages, with *no* clock-driven event heap — when things happen is
/// entirely up to the sequence of [`Choice`]s applied.
pub struct ExploreNet<M> {
    procs: BTreeMap<ProcessId, ENode<M>>,
    /// In-flight messages as `(to, from, msg)`, in send order.
    pending: Vec<(ProcessId, ProcessId, M)>,
    now: SimTime,
    storage_factory: StorageFactory,
}

impl<M: Clone + Debug + 'static> Default for ExploreNet<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Clone + Debug + 'static> ExploreNet<M> {
    /// An empty network.
    pub fn new() -> Self {
        ExploreNet {
            procs: BTreeMap::new(),
            pending: Vec::new(),
            now: SimTime::ZERO,
            storage_factory: Box::new(|_| Box::new(MemStore::new())),
        }
    }

    /// Installs the storage factory consulted by subsequent
    /// [`ExploreNet::add_process`] calls (mirrors
    /// [`crate::Sim::set_storage_factory`]).
    pub fn set_storage_factory<F>(&mut self, factory: F)
    where
        F: FnMut(ProcessId) -> Box<dyn StableStore> + 'static,
    {
        self.storage_factory = Box::new(factory);
    }

    /// Registers a process and runs its `on_start`. Sends performed during
    /// start-up join the pending queue like any others.
    pub fn add_process<F>(&mut self, pid: ProcessId, mut factory: F)
    where
        F: FnMut() -> ActorBox<M> + 'static,
    {
        let actor = factory();
        let storage = (self.storage_factory)(pid);
        let prev = self.procs.insert(
            pid,
            ENode {
                actor: Some(actor),
                factory: Box::new(factory),
                up: true,
                storage,
                timers: BTreeSet::new(),
            },
        );
        assert!(prev.is_none(), "process {pid} registered twice");
        self.upcall(pid, EKind::Start);
    }

    /// Adds `msg` to the in-flight queue (client traffic, scripted
    /// prefixes).
    pub fn inject(&mut self, to: ProcessId, from: ProcessId, msg: M) {
        self.pending.push((to, from, msg));
    }

    /// The in-flight messages, in queue order.
    pub fn pending(&self) -> &[(ProcessId, ProcessId, M)] {
        &self.pending
    }

    /// Whether `p` is currently up.
    pub fn is_up(&self, p: ProcessId) -> bool {
        self.procs.get(&p).map(|n| n.up).unwrap_or(false)
    }

    /// The logical clock: one tick per applied [`Choice`]. Invariant
    /// checks that consult time-dependent actor views (leader election,
    /// failure detection) need the same `now` the actors last saw.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// All registered process ids.
    pub fn processes(&self) -> Vec<ProcessId> {
        self.procs.keys().copied().collect()
    }

    /// Immutable access to `p`'s actor, downcast to its concrete type.
    pub fn actor<A: Actor<Msg = M>>(&self, p: ProcessId) -> Option<&A> {
        let node = self.procs.get(&p)?;
        let a: &dyn Actor<Msg = M> = node.actor.as_deref()?;
        let any: &dyn Any = a;
        any.downcast_ref::<A>()
    }

    /// The stable storage of `p`.
    pub fn storage(&self, p: ProcessId) -> Option<&(dyn StableStore + '_)> {
        self.procs.get(&p).map(|n| n.storage.as_ref())
    }

    /// Enumerates every choice enabled in the current state, in a
    /// deterministic order. Identical in-flight messages (same recipient,
    /// sender and `Debug` rendering) yield a single `Deliver` choice:
    /// delivering either copy reaches the same state, so exploring both
    /// only inflates the tree (partial-order reduction in its simplest
    /// form). Budgets (`max_crashes`, `max_timer_fires`) are enforced by
    /// the [`explore`] driver, not here.
    pub fn choices(&self, cfg: &ExploreConfig) -> Vec<Choice> {
        let mut out = Vec::new();
        let mut seen = BTreeSet::new();
        for (i, (to, from, msg)) in self.pending.iter().enumerate() {
            if !self.is_up(*to) {
                continue; // delivering to a down process is a no-op state
            }
            if seen.insert((*to, *from, format!("{msg:?}"))) {
                out.push(Choice::Deliver(i));
            }
        }
        for (&p, node) in &self.procs {
            if node.up {
                for &t in &node.timers {
                    out.push(Choice::Fire(p, t));
                }
            }
        }
        for &p in &cfg.crash_candidates {
            match self.procs.get(&p) {
                Some(n) if n.up => out.push(Choice::Crash(p)),
                Some(_) => out.push(Choice::Recover(p)),
                None => {}
            }
        }
        out
    }

    /// Applies one choice. Panics on structurally invalid choices (bad
    /// index, unarmed timer) — replayed paths are always valid because
    /// execution is deterministic.
    pub fn apply(&mut self, choice: &Choice) {
        self.now += SimDuration(1);
        match choice {
            Choice::Deliver(i) => {
                let (to, from, msg) = self.pending.remove(*i);
                if self.is_up(to) {
                    self.upcall(to, EKind::Msg(from, msg));
                }
            }
            Choice::Fire(p, t) => {
                let armed = self
                    .procs
                    .get_mut(p)
                    .map(|n| n.up && n.timers.remove(t))
                    .unwrap_or(false);
                assert!(armed, "Fire({p}, {t:?}) on unarmed timer");
                self.upcall(*p, EKind::Timer(*t));
            }
            Choice::Crash(p) => {
                let n = self.procs.get_mut(p).expect("crash of unknown process");
                assert!(n.up, "Crash({p}) while down");
                n.up = false;
                n.actor = None;
                n.timers.clear();
                n.storage.lose_unflushed();
            }
            Choice::Recover(p) => {
                let n = self.procs.get_mut(p).expect("recover of unknown process");
                assert!(!n.up, "Recover({p}) while up");
                n.actor = Some((n.factory)());
                n.up = true;
                self.upcall(*p, EKind::Recover);
            }
        }
    }

    fn upcall(&mut self, pid: ProcessId, kind: EKind<M>) {
        let (mut actor, mut storage) = {
            let node = match self.procs.get_mut(&pid) {
                Some(n) if n.up => n,
                _ => return,
            };
            let actor = node.actor.take().expect("up process has an actor");
            let storage = std::mem::replace(
                &mut node.storage,
                Box::new(MemStore::new()) as Box<dyn StableStore>,
            );
            (actor, storage)
        };
        let mut fx = EEffects::default();
        {
            let mut ctx = ECtx {
                me: pid,
                now: self.now,
                storage: storage.as_mut(),
                fx: &mut fx,
            };
            match kind {
                EKind::Start => actor.on_start(&mut ctx),
                EKind::Recover => actor.on_recover(&mut ctx),
                EKind::Msg(from, m) => actor.on_message(from, m, &mut ctx),
                EKind::Timer(t) => actor.on_timer(t, &mut ctx),
            }
        }
        {
            let node = self.procs.get_mut(&pid).expect("node exists");
            node.actor = Some(actor);
            node.storage = storage;
            for t in fx.timer_cancels.drain(..) {
                node.timers.remove(&t);
            }
            for t in fx.timer_sets.drain(..) {
                node.timers.insert(t);
            }
        }
        for (to, msg) in fx.sends.drain(..) {
            self.pending.push((to, pid, msg));
        }
    }
}

enum EKind<M> {
    Start,
    Recover,
    Msg(ProcessId, M),
    Timer(TimerToken),
}

struct EEffects<M> {
    sends: Vec<(ProcessId, M)>,
    timer_sets: Vec<TimerToken>,
    timer_cancels: Vec<TimerToken>,
}

impl<M> Default for EEffects<M> {
    fn default() -> Self {
        EEffects {
            sends: Vec::new(),
            timer_sets: Vec::new(),
            timer_cancels: Vec::new(),
        }
    }
}

struct ECtx<'a, M> {
    me: ProcessId,
    now: SimTime,
    storage: &'a mut dyn StableStore,
    fx: &'a mut EEffects<M>,
}

impl<M> Context<M> for ECtx<'_, M> {
    fn me(&self) -> ProcessId {
        self.me
    }
    fn now(&self) -> SimTime {
        self.now
    }
    fn send(&mut self, to: ProcessId, msg: M) {
        self.fx.sends.push((to, msg));
    }
    fn set_timer(&mut self, _after: SimDuration, token: TimerToken) {
        // Timer *durations* are irrelevant here: firing order is a
        // scheduling choice, which is exactly what the explorer branches
        // over.
        self.fx.timer_sets.push(token);
    }
    fn cancel_timer(&mut self, token: TimerToken) {
        self.fx.timer_cancels.push(token);
    }
    fn storage(&mut self) -> &mut dyn StableStore {
        self.storage
    }
    fn metric(&mut self, _metric: Metric) {}
    fn random(&mut self) -> u64 {
        // Schedules are the only nondeterminism the explorer branches
        // over; actor-requested randomness is pinned to a constant so a
        // choice path fully determines the state.
        0x9E37_79B9_7F4A_7C15
    }
}

fn count_kind(path: &[Choice], want_crash: bool) -> usize {
    path.iter()
        .filter(|c| match c {
            Choice::Crash(_) => want_crash,
            Choice::Fire(..) => !want_crash,
            _ => false,
        })
        .count()
}

/// Exhaustively explores every schedule of the network produced by
/// `build`, up to the bounds in `cfg`, checking `invariant` at every
/// reached state (including the initial one).
///
/// `build` constructs the network and may run a *scripted prefix*
/// (deterministic [`ExploreNet::apply`]/[`ExploreNet::inject`] calls) to
/// steer the system into an interesting region before branching begins.
/// `invariant` receives the network and a per-path accumulator of type
/// `S` (fresh at the path root), letting it assert path properties such
/// as monotonic learner growth in addition to state properties.
///
/// Returns the exploration counters, or the first violation found with
/// its reproducing schedule.
pub fn explore<M, S, B, I>(
    cfg: &ExploreConfig,
    build: B,
    invariant: I,
) -> Result<ExploreStats, Box<Violation>>
where
    M: Clone + Debug + 'static,
    S: Default,
    B: Fn(&mut ExploreNet<M>),
    I: Fn(&ExploreNet<M>, &mut S) -> Result<(), String>,
{
    let mut stats = ExploreStats::default();
    let mut path = Vec::new();
    dfs(cfg, &build, &invariant, &mut path, &mut stats)?;
    Ok(stats)
}

/// One DFS node: replays `path` from scratch (checking the invariant at
/// every step — replays are cheap at small depths and re-checking keeps
/// the accumulator honest), then branches over the enabled choices.
fn dfs<M, S, B, I>(
    cfg: &ExploreConfig,
    build: &B,
    invariant: &I,
    path: &mut Vec<Choice>,
    stats: &mut ExploreStats,
) -> Result<(), Box<Violation>>
where
    M: Clone + Debug + 'static,
    S: Default,
    B: Fn(&mut ExploreNet<M>),
    I: Fn(&ExploreNet<M>, &mut S) -> Result<(), String>,
{
    let violate = |at: usize, message: String| {
        Box::new(Violation {
            path: path[..at].to_vec(),
            message,
        })
    };

    let mut net = ExploreNet::new();
    build(&mut net);
    let mut acc = S::default();
    invariant(&net, &mut acc).map_err(|m| violate(0, m))?;
    for (i, c) in path.iter().enumerate() {
        net.apply(c);
        invariant(&net, &mut acc).map_err(|m| violate(i + 1, m))?;
    }
    stats.states += 1;

    if path.len() >= cfg.max_depth || stats.paths >= cfg.max_paths {
        stats.truncated |= stats.paths >= cfg.max_paths;
        stats.paths += 1;
        return Ok(());
    }

    let crashes = count_kind(path, true);
    let fires = count_kind(path, false);
    let choices: Vec<Choice> = net
        .choices(cfg)
        .into_iter()
        .filter(|c| match c {
            Choice::Crash(_) => crashes < cfg.max_crashes,
            Choice::Fire(..) => fires < cfg.max_timer_fires,
            _ => true,
        })
        .collect();
    drop(net);

    if choices.is_empty() {
        stats.paths += 1; // quiescent leaf
        return Ok(());
    }
    stats.max_branch = stats.max_branch.max(choices.len());
    for c in choices {
        path.push(c);
        dfs(cfg, build, invariant, path, stats)?;
        path.pop();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpaxos_actor::WalStore;

    const P0: ProcessId = ProcessId(0);
    const P1: ProcessId = ProcessId(1);

    /// Counts received messages; forwards the first one to the peer.
    struct Relay {
        peer: ProcessId,
        got: Vec<u32>,
    }

    impl Actor for Relay {
        type Msg = u32;
        fn on_message(&mut self, _from: ProcessId, msg: u32, ctx: &mut dyn Context<u32>) {
            if self.got.is_empty() {
                ctx.send(self.peer, msg + 1);
            }
            self.got.push(msg);
            ctx.storage().write("last", msg.to_le_bytes().to_vec());
        }
        fn on_timer(&mut self, _t: TimerToken, _c: &mut dyn Context<u32>) {}
    }

    fn build_pair(net: &mut ExploreNet<u32>) {
        net.add_process(P0, || {
            Box::new(Relay {
                peer: P1,
                got: vec![],
            })
        });
        net.add_process(P1, || {
            Box::new(Relay {
                peer: P0,
                got: vec![],
            })
        });
        net.inject(P0, P1, 10);
        net.inject(P0, P1, 20);
    }

    #[test]
    fn explores_all_interleavings_of_two_messages() {
        let cfg = ExploreConfig {
            max_depth: 4,
            ..ExploreConfig::default()
        };
        let stats = explore(&cfg, build_pair, |_net: &ExploreNet<u32>, _s: &mut ()| {
            Ok(())
        })
        .expect("no violations");
        // Two initial deliveries in either order, each spawning a relay
        // message: more than one path, bounded branching.
        assert!(stats.paths > 1, "expected multiple schedules: {stats:?}");
        assert!(stats.max_branch >= 2);
        assert!(!stats.truncated);
    }

    #[test]
    fn violation_reports_reproducing_path() {
        let cfg = ExploreConfig {
            max_depth: 3,
            ..ExploreConfig::default()
        };
        let v = explore(&cfg, build_pair, |net: &ExploreNet<u32>, _s: &mut ()| {
            let got = &net.actor::<Relay>(P0).unwrap().got;
            if got.len() >= 2 {
                Err(format!("P0 saw two messages: {got:?}"))
            } else {
                Ok(())
            }
        })
        .expect_err("invariant must eventually fail");
        assert!(v.message.contains("two messages"));
        assert!(!v.path.is_empty());
        // The path must replay to the same violation.
        let mut net = ExploreNet::new();
        build_pair(&mut net);
        for c in &v.path {
            net.apply(c);
        }
        assert_eq!(net.actor::<Relay>(P0).unwrap().got.len(), 2);
    }

    #[test]
    fn crash_drops_unflushed_writes_and_recover_replays() {
        let cfg = ExploreConfig {
            max_depth: 3,
            max_crashes: 1,
            crash_candidates: vec![P0],
            ..ExploreConfig::default()
        };
        // With a WAL store and no flush, a crash after delivery must lose
        // the buffered write; the accumulator remembers whether P0 ever
        // wrote, so the invariant can distinguish the two orders.
        let stats = explore(
            &cfg,
            |net: &mut ExploreNet<u32>| {
                net.set_storage_factory(|_| Box::new(WalStore::new()));
                net.add_process(P0, || {
                    Box::new(Relay {
                        peer: P1,
                        got: vec![],
                    })
                });
                net.add_process(P1, || {
                    Box::new(Relay {
                        peer: P0,
                        got: vec![],
                    })
                });
                net.inject(P0, P1, 7);
            },
            |net: &ExploreNet<u32>, _s: &mut ()| {
                if !net.is_up(P0) {
                    return Ok(());
                }
                let st = net.storage(P0).unwrap();
                // Flushed state is only ever empty here: nothing flushes.
                if st.write_count() != 0 {
                    return Err("unexpected flush".into());
                }
                Ok(())
            },
        )
        .expect("no violations");
        assert!(stats.paths >= 2, "crash/recover branches expected");
    }

    #[test]
    fn max_paths_truncates() {
        let cfg = ExploreConfig {
            max_depth: 4,
            max_paths: 2,
            ..ExploreConfig::default()
        };
        let stats = explore(&cfg, build_pair, |_net: &ExploreNet<u32>, _s: &mut ()| {
            Ok(())
        })
        .expect("no violations");
        assert!(stats.truncated);
    }
}
