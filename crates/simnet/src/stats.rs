//! Latency-series statistics for experiment harnesses.
//!
//! Percentiles use the *nearest-rank* definition: `pXX` of a series of
//! `n` samples is the value at (1-based) rank `ceil(XX/100 · n)` in the
//! sorted series. Nearest-rank always returns an observed sample (no
//! interpolation), which keeps reported tails honest for the small-`n`,
//! long-tailed delivery-latency series the benches produce.

/// A summary of one latency series (ticks, or any unit the caller uses).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Number of samples summarized.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Nearest-rank 50th percentile (median).
    pub p50: u64,
    /// Nearest-rank 99th percentile.
    pub p99: u64,
    /// Nearest-rank 99.9th percentile.
    pub p999: u64,
    /// Largest sample.
    pub max: u64,
}

impl LatencyStats {
    /// Summarizes `samples` (order irrelevant). Returns `None` for an
    /// empty series — there is no honest percentile of nothing.
    pub fn of(samples: &[u64]) -> Option<LatencyStats> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let sum: u128 = sorted.iter().map(|&v| u128::from(v)).sum();
        Some(LatencyStats {
            count: sorted.len(),
            mean: sum as f64 / sorted.len() as f64,
            p50: percentile_sorted(&sorted, 50.0),
            p99: percentile_sorted(&sorted, 99.0),
            p999: percentile_sorted(&sorted, 99.9),
            max: sorted[sorted.len() - 1],
        })
    }
}

/// Nearest-rank percentile of an already-sorted series.
///
/// # Panics
///
/// Panics if `sorted` is empty or `pct` is outside `(0, 100]`.
pub fn percentile_sorted(sorted: &[u64], pct: f64) -> u64 {
    assert!(!sorted.is_empty(), "percentile of an empty series");
    assert!(pct > 0.0 && pct <= 100.0, "percentile {pct} out of range");
    // The true rank pct·n/100 is rational; subtract an epsilon far below
    // any rank gap so binary-representation overshoot (99.9/100·1000 =
    // 999.0000…01) cannot bump ceil() to the next rank.
    let rank = (pct / 100.0 * sorted.len() as f64 - 1e-9).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Nearest-rank percentile of an unsorted series (sorts a copy).
pub fn percentile(samples: &[u64], pct: f64) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    percentile_sorted(&sorted, pct)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_matches_the_definition() {
        // The classic worked example: 5 samples.
        let s = [15, 20, 35, 40, 50];
        assert_eq!(percentile(&s, 30.0), 20); // rank ceil(1.5) = 2
        assert_eq!(percentile(&s, 40.0), 20); // rank ceil(2.0) = 2
        assert_eq!(percentile(&s, 50.0), 35);
        assert_eq!(percentile(&s, 100.0), 50);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        assert_eq!(percentile(&[7], 0.1), 7);
        assert_eq!(percentile(&[7], 99.9), 7);
    }

    #[test]
    fn p999_separates_from_p99_at_scale() {
        // 0..=999: p99 = rank 990 → 989; p999 = rank 999 → 998.
        let s: Vec<u64> = (0..1000).collect();
        let st = LatencyStats::of(&s).unwrap();
        assert_eq!(st.p50, 499);
        assert_eq!(st.p99, 989);
        assert_eq!(st.p999, 998);
        assert_eq!(st.max, 999);
        assert_eq!(st.count, 1000);
        assert!((st.mean - 499.5).abs() < 1e-9);
    }

    #[test]
    fn empty_series_has_no_stats() {
        assert_eq!(LatencyStats::of(&[]), None);
    }
}
