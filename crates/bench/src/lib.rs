//! Experiment harness reproducing the quantitative claims of the
//! *Multicoordinated Paxos* paper.
//!
//! The paper is a theory report: its "evaluation" is the set of
//! quantitative claims made in §2 and §4 (latency in communication steps,
//! quorum sizes, availability under coordinator crashes, load balance,
//! collision costs, disk writes, scenario crossovers). Each claim is
//! reproduced here as a deterministic simulation experiment; the
//! `benches/` targets print one table per experiment and
//! `cargo run --bin gen_experiments` regenerates `EXPERIMENTS.md`.

pub mod churn_bench;
pub mod experiments;
pub mod harness;
pub mod history_workloads;
pub mod shard_bench;
pub mod table;
pub mod throughput_bench;
pub mod wal_bench;
pub mod wire_bench;

pub use harness::ClusterHarness;
pub use shard_bench::ShardedHarness;
pub use table::Table;

/// All experiment tables, in report order.
pub fn all_experiments() -> Vec<Table> {
    vec![
        experiments::e1_latency(),
        experiments::e2_quorums(),
        experiments::e3_availability(),
        experiments::e4_load_balance(),
        experiments::e5_collision_cost(),
        experiments::e6_conflict_rate(),
        experiments::e7_disk_writes(),
        experiments::e8_crossover(),
        experiments::e9_generic_broadcast(),
        experiments::a1_coordquorum_size(),
        experiments::e10_wire(),
        experiments::e11_wal(),
        experiments::e12_shards(),
        experiments::e13_churn(),
        experiments::e14_throughput(),
    ]
}
