//! E11 — WAL group commit: fsync amortization vs per-vote flushing.
//!
//! §4.4 prices the protocol in synchronous disk writes: one per accept at
//! every acceptor. A [`mcpaxos_actor::WalStore`] with group commit keeps
//! that logical write-per-accept but batches the *syncs*: votes buffer in
//! the log tail and one flush (armed by the acceptor's `TOK_FLUSH` timer)
//! makes the whole batch durable as a single counted disk write. The
//! matching soundness change — "2b"s defer to the flush tick, so no
//! acceptor ever announces a vote a crash could erase — is what the
//! `model_check` suite exhausts; this module measures what the batching
//! buys.
//!
//! The same paced command stream runs once per flush policy and the run
//! records total acceptor syncs, the amortization ratio against the
//! per-vote baseline, and the latency the deferral costs.
//! `bench_wal --check` fails CI if group commit stops amortizing
//! (reduction < 5×), loses commands, or surfaces corrupt records.

use crate::harness::ClusterHarness;
use mcpaxos_actor::{SimDuration, SimTime, WalStore};
use mcpaxos_core::{DeployConfig, Durability, Policy};
use mcpaxos_cstruct::CStruct;
use mcpaxos_cstruct::CmdSet;
use mcpaxos_simnet::NetConfig;

type Set = CmdSet<u32>;

/// Number of commands in the standard E11 run.
pub const WAL_COMMANDS: u32 = 1_000;
/// Group-commit interval (ticks) of the headline batching run.
pub const WAL_GROUP_COMMIT: u64 = 8;
/// Injection pacing: one command per tick, so a flush window covers
/// several buffered votes.
pub const WAL_PACE: u64 = 1;

/// Measurements of one WAL run under a fixed flush policy.
#[derive(Clone, Debug)]
pub struct WalRunStats {
    /// Flush-policy label ("per-vote" or "gc=N").
    pub label: String,
    /// Group-commit interval in ticks (0 = flush per vote).
    pub group_commit: u64,
    /// Commands injected (and required to be learned).
    pub commands: u32,
    /// Commands actually learned by the learner.
    pub learned: usize,
    /// Synchronous disk writes summed over all acceptors (the §4.4 unit:
    /// per-vote syncs for the baseline, non-empty flushes under batching).
    pub acc_syncs: u64,
    /// Syncs per command per acceptor.
    pub syncs_per_cmd: f64,
    /// Corrupt records surfaced by any acceptor store (must be 0 in a
    /// crash-free run).
    pub corrupt_records: u64,
    /// Mean learning latency in ticks.
    pub mean_latency: f64,
    /// Maximum learning latency in ticks (the deferral stall bound).
    pub max_latency: u64,
}

/// Runs the E11 command stream over WAL-backed acceptors with the given
/// group-commit interval (0 = per-vote flushing, the E7-style baseline).
pub fn wal_run(group_commit: u64, n: u32) -> WalRunStats {
    let cfg = DeployConfig::simple(1, 3, 5, 1, Policy::MultiCoordinated)
        .with_durability(Durability::Reduced)
        .with_group_commit(SimDuration(group_commit));
    // Group commit pairs with a buffering store; per-vote flushing is the
    // synchronous baseline (same pairing rule as the model checker).
    let buffered = group_commit > 0;
    let mut h: ClusterHarness<Set> =
        ClusterHarness::with_storage(cfg, 23, NetConfig::lockstep(), move |_| {
            if buffered {
                Box::new(WalStore::new())
            } else {
                Box::new(WalStore::synchronous())
            }
        });

    for i in 0..n {
        h.propose_at(SimTime(100 + WAL_PACE * u64::from(i)), 0, i);
    }
    let inject_end = 100 + WAL_PACE * u64::from(n);
    h.run_until_learned(0, n as usize, inject_end + 60_000);

    let learned = h.learned(0).count();
    let acc_syncs: u64 = h.acceptor_writes().iter().sum();
    let n_acc = h.cfg.roles.acceptors().len() as f64;
    let corrupt_records: u64 = h
        .cfg
        .roles
        .acceptors()
        .iter()
        .map(|&a| h.sim.storage(a).map(|s| s.corrupt_records()).unwrap_or(0))
        .sum();

    WalRunStats {
        label: if group_commit == 0 {
            "per-vote".to_string()
        } else {
            format!("gc={group_commit}")
        },
        group_commit,
        commands: n,
        learned,
        acc_syncs,
        syncs_per_cmd: acc_syncs as f64 / f64::from(n).max(1.0) / n_acc,
        corrupt_records,
        mean_latency: h.mean_latency(0),
        max_latency: h.max_latency(0),
    }
}

/// Disk-write amortization of `batched` against the per-vote `baseline` —
/// the quantity the ≥ 5× CI floor is on.
pub fn sync_reduction(baseline: &WalRunStats, batched: &WalRunStats) -> f64 {
    baseline.acc_syncs as f64 / batched.acc_syncs.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small smoke run (the full 1k-command comparison lives in
    /// `bench_wal --check`, which CI runs in release).
    #[test]
    fn wal_run_smoke() {
        let baseline = wal_run(0, 100);
        let batched = wal_run(WAL_GROUP_COMMIT, 100);
        assert_eq!(baseline.learned, 100);
        assert_eq!(batched.learned, 100);
        assert_eq!(baseline.corrupt_records, 0);
        assert_eq!(batched.corrupt_records, 0);
        assert!(
            sync_reduction(&baseline, &batched) > 2.0,
            "no amortization: {baseline:?} vs {batched:?}"
        );
    }
}
