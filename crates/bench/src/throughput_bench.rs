//! Open- and closed-loop throughput measurement for the batched +
//! pipelined hot path.
//!
//! Two drive modes over the same cluster and workload:
//!
//! * **Open loop** — commands arrive at a fixed rate
//!   ([`mcpaxos_smr::open_loop_arrivals`]) regardless of completions.
//!   Under overload the backlog shows up as delivery latency, which is
//!   what the p99/p999 columns are for: an open loop cannot hide a
//!   saturated system behind a throttled offered load.
//! * **Closed loop** — a fixed window of in-flight commands; a new
//!   command is issued only when one is learned. This measures the
//!   system's natural pipelining but its latencies stay flat at
//!   saturation, so it is reported alongside, never instead of, the
//!   open-loop numbers.
//!
//! Both modes run the full proposer → coordinator → acceptor → learner
//! path in the deterministic simulator (1 tick = 1 ms for the
//! commands-per-second conversion) over a `CommandHistory<KvCmd>`
//! workload, with batching/pipelining dialed by [`mcpaxos_core::BatchConfig`].
//! `batch = 0` means knobs off: the unbatched per-command path.

use crate::harness::ClusterHarness;
use mcpaxos_actor::{SimDuration, SimTime};
use mcpaxos_core::agents::metrics;
use mcpaxos_core::{BatchConfig, DeployConfig, Overflow, Policy};
use mcpaxos_cstruct::{CStruct, CommandHistory};
use mcpaxos_simnet::{LatencyStats, NetConfig};
use mcpaxos_smr::{open_loop_arrivals, KvCmd, Workload};

/// The c-struct the throughput runs decide over: generalized consensus
/// on a command history, the paper's target for high-rate workloads.
pub type ThroughputHistory = CommandHistory<KvCmd>;

/// Commands each throughput run pushes through the cluster.
pub const THROUGHPUT_COMMANDS: usize = 512;

/// Open-loop offered load, commands per tick. High enough to saturate
/// the unbatched lockstep path (which retires well under one command
/// per tick), so batching headroom is what the sweep measures.
pub const THROUGHPUT_RATE: f64 = 4.0;

/// Closed-loop window for the closed-loop companion runs.
pub const THROUGHPUT_WINDOW: usize = 64;

/// The CI gate: batch=16/depth=8 must beat batch=1/depth=1 by at least
/// this factor in open-loop commands/sec.
pub const THROUGHPUT_GATE_SPEEDUP: f64 = 5.0;

/// Tick at which the first command is injected (lets the cluster elect
/// its first round and reach phase 2 undisturbed, as E1 does).
const WARMUP_T: u64 = 100;

/// One throughput measurement.
#[derive(Clone, Debug)]
pub struct ThroughputStats {
    /// `"open"` or `"closed"`.
    pub mode: &'static str,
    /// Coordinator/proposer batch size (0 = batching off).
    pub batch: usize,
    /// Pipeline depth (in-flight 2a waves).
    pub depth: usize,
    /// Commands issued.
    pub commands: usize,
    /// Commands learned (the gate requires `== commands`).
    pub learned: usize,
    /// Ticks from first injection until every command was learned.
    pub makespan_ticks: u64,
    /// Commands per second at 1 tick = 1 ms.
    pub cps: f64,
    /// Delivery-latency distribution (ticks, nearest-rank percentiles).
    pub lat: LatencyStats,
    /// Batched 2a waves the coordinators issued.
    pub batches: i64,
    /// Commands carried in those waves.
    pub batched_cmds: i64,
    /// Commands shed by full coordinator queues.
    pub sheds: i64,
    /// Commands stall-held at proposers.
    pub stalls: i64,
}

fn deploy(batch: usize, depth: usize) -> DeployConfig {
    let cfg = DeployConfig::simple(1, 3, 5, 1, Policy::MultiCoordinated);
    if batch == 0 {
        return cfg;
    }
    cfg.with_batching(BatchConfig {
        batch_size: batch,
        batch_ticks: SimDuration(2),
        pipeline_depth: depth,
        // Uncapped queue: the sweep measures batching/pipelining, not
        // shedding policy (the backpressure rows exercise caps).
        queue_cap: 0,
        overflow: Overflow::Shed,
    })
}

fn harness(batch: usize, depth: usize, seed: u64) -> ClusterHarness<ThroughputHistory> {
    ClusterHarness::new(deploy(batch, depth), seed, NetConfig::lockstep())
}

fn finish(
    mode: &'static str,
    batch: usize,
    depth: usize,
    commands: usize,
    end: u64,
    h: &ClusterHarness<ThroughputHistory>,
) -> ThroughputStats {
    let learned = h.learned(0).total_len() as usize;
    let samples: Vec<u64> = h.latencies(0).into_iter().flatten().collect();
    let lat = LatencyStats::of(&samples).expect("at least one learned command");
    let makespan_ticks = end.saturating_sub(WARMUP_T).max(1);
    ThroughputStats {
        mode,
        batch,
        depth,
        commands,
        learned,
        makespan_ticks,
        cps: commands as f64 * 1_000.0 / makespan_ticks as f64,
        lat,
        batches: h.metric_total(metrics::BATCHES),
        batched_cmds: h.metric_total(metrics::BATCHED_CMDS),
        sheds: h.metric_total(metrics::BACKPRESSURE_SHEDS),
        stalls: h.metric_total(metrics::BACKPRESSURE_STALLS),
    }
}

/// Runs `commands` kv-put commands open-loop at `rate` commands/tick and
/// measures completion.
///
/// # Panics
///
/// Panics if the run stalls before every command is learned.
pub fn open_loop_run(batch: usize, depth: usize, commands: usize, seed: u64) -> ThroughputStats {
    let mut h = harness(batch, depth, seed);
    let mut w = Workload::new(seed, 0, 0.0);
    for at in open_loop_arrivals(THROUGHPUT_RATE, commands) {
        h.propose_at(SimTime(WARMUP_T + at), 0, w.next_kv_put());
    }
    let end = run_fine_until_learned(&mut h, commands, 2_000_000);
    let stats = finish("open", batch, depth, commands, end, &h);
    assert_eq!(
        stats.learned, commands,
        "open-loop b={batch}/d={depth} stalled at t={end}: {}/{commands} learned",
        stats.learned
    );
    stats
}

/// Runs `commands` kv-put commands closed-loop with `window` in flight:
/// a new command is issued only as learned commands free window slots.
///
/// # Panics
///
/// Panics if the run stalls before every command is learned.
pub fn closed_loop_run(
    batch: usize,
    depth: usize,
    commands: usize,
    window: usize,
    seed: u64,
) -> ThroughputStats {
    let mut h = harness(batch, depth, seed);
    let mut w = Workload::new(seed, 0, 0.0);
    let mut issued = 0usize;
    let mut t = WARMUP_T;
    let max_t = 2_000_000;
    loop {
        let learned = h.learned(0).total_len() as usize;
        if learned >= commands {
            break;
        }
        while issued < commands && issued - learned < window {
            h.propose_at(SimTime(t), 0, w.next_kv_put());
            issued += 1;
        }
        t += 5;
        assert!(
            t < max_t,
            "closed-loop b={batch}/d={depth} stalled at t={t}"
        );
        h.run_until(t);
    }
    let end = h.sim.now().ticks();
    finish("closed", batch, depth, commands, end, &h)
}

/// Runs in 5-tick slices until learner 0 holds `count` commands or
/// `max_t`, returning the stop time — finer-grained than
/// [`ClusterHarness::run_until_learned`] so short batched makespans are
/// not rounded up to 25-tick boundaries.
fn run_fine_until_learned(
    h: &mut ClusterHarness<ThroughputHistory>,
    count: usize,
    max_t: u64,
) -> u64 {
    let mut t = h.sim.now().ticks();
    while t < max_t {
        if h.learned(0).total_len() as usize >= count {
            break;
        }
        t = (t + 5).min(max_t);
        h.run_until(t);
    }
    t
}

/// The {batch × depth} grid the `bench_throughput` sweep runs open-loop.
/// `(0, 0)` is the knobs-off unbatched path; `(1, 1)` is the in-scheduler
/// lockstep baseline the CI gate compares against.
pub const THROUGHPUT_GRID: [(usize, usize); 5] = [(0, 0), (1, 1), (4, 4), (16, 8), (32, 16)];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_open_loop_learns_everything_and_batches() {
        let s = open_loop_run(8, 4, 64, 42);
        assert_eq!(s.learned, 64);
        assert!(s.batches > 0, "batched run must issue batched waves");
        assert!(
            s.batched_cmds >= 64,
            "every command rides a wave: {}",
            s.batched_cmds
        );
        assert!(s.lat.p999 >= s.lat.p50);
    }

    #[test]
    fn closed_loop_respects_the_window() {
        let s = closed_loop_run(8, 4, 64, 16, 42);
        assert_eq!(s.learned, 64);
        assert_eq!(s.mode, "closed");
    }

    #[test]
    fn batching_beats_lockstep() {
        let base = open_loop_run(1, 1, 128, 7);
        let batched = open_loop_run(16, 8, 128, 7);
        assert!(
            batched.cps > base.cps * 2.0,
            "batched {:.0} cps vs lockstep {:.0} cps",
            batched.cps,
            base.cps
        );
    }
}
