//! E13 — availability under coordinator churn on a 3-datacenter WAN.
//!
//! The paper's availability argument (§4.1) is qualitative: a
//! multicoordinated round keeps serving through any single coordinator
//! crash, while a single-coordinated round stalls for the full
//! detect-elect-rephase path. This module makes the claim quantitative
//! under *churn*: a latency-matrix WAN topology (three datacenters,
//! asymmetric inter-DC delays) plus declarative [`ChaosSchedule`]s —
//! leader crash, rolling coordinator restarts, a partitioned-then-healed
//! datacenter — replayed deterministically against both round policies
//! with the same seed, failure detector and proposer backoff. The
//! worst-case per-command delivery latency ("max stall") is the headline
//! number; `bench_churn --check` gates the ≥3× single-vs-multi ratio in
//! the leader-crash scenario.

use crate::harness::ClusterHarness;
use mcpaxos_actor::{ProcessId, SimDuration, SimTime};
use mcpaxos_core::{DeployConfig, Policy, Timing};
use mcpaxos_cstruct::{CStruct, CmdSet};
use mcpaxos_simnet::{ChaosSchedule, DelayDist, NetConfig, Topology};

type Set = CmdSet<u32>;

/// Commands per churn run.
pub const CHURN_COMMANDS: u32 = 40;
/// Ticks between command injections (keeps the stream alive across every
/// chaos window, so some command always lands mid-fault).
pub const CHURN_PACE: u64 = 40;
/// First injection time.
pub const CHURN_START: u64 = 100;
/// Run horizon: far past the last chaos event so every run either learns
/// everything or demonstrably never will.
pub const CHURN_HORIZON: u64 = 40_000;
/// The chaos seed shared by every run of one comparison.
pub const CHURN_SEED: u64 = 7;

/// The three churn scenarios of the E13 matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnScenario {
    /// The leader coordinator crashes mid-stream and stays down for 2 000
    /// ticks — the paper's headline availability case.
    LeaderCrash,
    /// Every coordinator is crash-restarted in turn (rolling deploy).
    RollingRestart,
    /// The leader's datacenter is cut off and later healed.
    PartitionHeal,
}

impl ChurnScenario {
    /// All scenarios, in report order.
    pub const ALL: [ChurnScenario; 3] = [
        ChurnScenario::LeaderCrash,
        ChurnScenario::RollingRestart,
        ChurnScenario::PartitionHeal,
    ];

    /// Stable scenario label for tables and JSON.
    pub fn name(self) -> &'static str {
        match self {
            ChurnScenario::LeaderCrash => "leader crash",
            ChurnScenario::RollingRestart => "rolling restart",
            ChurnScenario::PartitionHeal => "partition+heal",
        }
    }

    /// The deterministic fault schedule of this scenario for `cfg`.
    pub fn schedule(self, cfg: &DeployConfig) -> ChaosSchedule {
        let coords = cfg.roles.coordinators();
        match self {
            ChurnScenario::LeaderCrash => {
                ChaosSchedule::new().crash_for(SimTime(600), coords[0], SimDuration(2_000))
            }
            ChurnScenario::RollingRestart => ChaosSchedule::new().rotate_crashes(
                coords,
                SimTime(600),
                SimDuration(1_200),
                SimDuration(500),
            ),
            ChurnScenario::PartitionHeal => {
                let dcs = wan3_dcs(cfg);
                let cut = dcs[1].clone();
                let rest: Vec<ProcessId> = dcs[0].iter().chain(dcs[2].iter()).copied().collect();
                ChaosSchedule::new().partition_for(SimTime(600), cut, rest, SimDuration(1_500))
            }
        }
    }
}

/// The 3-DC process placement for the standard 1/3/5/1 deployment: the
/// client-facing edge (proposer, learner, one acceptor) in DC0, the
/// leader coordinator with two acceptors in DC1, the remaining
/// coordinators and acceptors in DC2. Cutting DC1 therefore severs the
/// leader *and* part of the acceptor set while both quorums survive
/// outside it.
pub fn wan3_dcs(cfg: &DeployConfig) -> [Vec<ProcessId>; 3] {
    let coords = cfg.roles.coordinators();
    let accs = cfg.roles.acceptors();
    let mut dc0: Vec<ProcessId> = cfg.roles.proposers().to_vec();
    dc0.extend_from_slice(cfg.roles.learners());
    dc0.extend_from_slice(&accs[4..]);
    let mut dc1 = vec![coords[0]];
    dc1.extend_from_slice(&accs[..2]);
    let mut dc2 = coords[1..].to_vec();
    dc2.extend_from_slice(&accs[2..4]);
    [dc0, dc1, dc2]
}

/// The WAN latency matrix over [`wan3_dcs`]: ~1-tick LANs inside each
/// datacenter, asymmetrically slow links between them. The worst
/// heartbeat gap (50-tick period + 10 ticks of delay spread) stays well
/// under the 120-tick suspicion timeout, so a healthy WAN produces no
/// false suspicions.
pub fn wan3_topology(cfg: &DeployConfig) -> Topology {
    let dcs = wan3_dcs(cfg);
    Topology::datacenters(
        &dcs,
        DelayDist::Fixed(1),
        &[
            (0, 1, DelayDist::Uniform(20, 30)),
            (0, 2, DelayDist::Uniform(25, 35)),
            (1, 2, DelayDist::Uniform(30, 40)),
        ],
    )
}

/// The churn timing profile for a WAN: the passive liveness timeouts
/// (`leader_timeout`, `stall_timeout`) are set conservatively — on slow
/// links aggressive passive timeouts misfire — which makes the active
/// failure detector (200 ticks: above the worst 60-tick heartbeat gap,
/// half the passive leader timeout) the primary crash detector, exactly
/// the deployment shape it exists for. Proposer resends run at 300
/// ticks (a few worst-case WAN round-trips) backing off exponentially
/// to 900 with 25 ticks of jitter.
pub fn churn_timing() -> Timing {
    Timing {
        leader_timeout: SimDuration(400),
        stall_timeout: SimDuration(300),
        proposer_resend: SimDuration(300),
        ..Timing::default()
    }
    .with_failure_detector(SimDuration(200))
    .with_proposer_backoff(SimDuration(900), SimDuration(25))
}

/// Everything one churn run measures.
#[derive(Clone, Debug)]
pub struct ChurnRunStats {
    /// Scenario label ([`ChurnScenario::name`]).
    pub scenario: &'static str,
    /// Round policy label.
    pub policy: &'static str,
    /// Commands injected.
    pub commands: u32,
    /// Commands learned by the horizon.
    pub learned: u64,
    /// Mean delivery latency over learned commands, in ticks.
    pub mean_latency: f64,
    /// Worst-case delivery latency — the visible stall.
    pub max_stall: u64,
    /// Failure-detector suspicions raised across the cluster.
    pub suspicions: i64,
    /// Suspicions later disproven by a heartbeat.
    pub false_suspicions: i64,
    /// Suspicion-driven leader failovers.
    pub failovers: i64,
    /// Rounds started over the whole run.
    pub rounds: i64,
    /// Per-command delivery-latency time series, in injection order
    /// (`None` = never learned).
    pub series: Vec<Option<u64>>,
}

/// Short policy label for tables and JSON.
pub fn policy_label(policy: Policy) -> &'static str {
    match policy {
        Policy::SingleCoordinated => "single-coord",
        Policy::MultiCoordinated => "multi-coord",
        Policy::FastThenClassic => "fast",
        Policy::FastForever => "fast-forever",
    }
}

/// A [`ClusterHarness`] deployed onto the 3-DC WAN with one churn
/// scenario's chaos schedule installed: the replay unit of the E13
/// matrix. Both policies run with three coordinators — the comparison
/// is purely the round type, so the single-coordinated runs *can* fail
/// over; their stall is the detect+elect+rephase window the
/// multicoordinated rounds never enter.
pub struct ChurnHarness {
    scenario: ChurnScenario,
    policy: Policy,
    cluster: ClusterHarness<Set>,
}

impl ChurnHarness {
    /// Deploys the standard 1/3/5/1 cluster under `policy` on the WAN
    /// topology, applies `scenario`'s chaos schedule and queues
    /// `CHURN_COMMANDS` commands paced `CHURN_PACE` ticks apart.
    pub fn new(policy: Policy, scenario: ChurnScenario, seed: u64) -> Self {
        let cfg = DeployConfig::simple(1, 3, 5, 1, policy).with_timing(churn_timing());
        let mut cluster: ClusterHarness<Set> =
            ClusterHarness::new(cfg, seed, NetConfig::lockstep());
        cluster.sim.set_topology(wan3_topology(&cluster.cfg));
        scenario.schedule(&cluster.cfg).apply(&mut cluster.sim);
        for i in 0..CHURN_COMMANDS {
            cluster.propose_at(SimTime(CHURN_START + CHURN_PACE * u64::from(i)), 0, i);
        }
        ChurnHarness {
            scenario,
            policy,
            cluster,
        }
    }

    /// The underlying cluster (e.g. for extra fault injection in tests).
    pub fn cluster_mut(&mut self) -> &mut ClusterHarness<Set> {
        &mut self.cluster
    }

    /// Replays the scenario to the horizon and collects the run's stats.
    pub fn run(mut self) -> ChurnRunStats {
        self.cluster.run_until(CHURN_HORIZON);
        let h = &self.cluster;
        ChurnRunStats {
            scenario: self.scenario.name(),
            policy: policy_label(self.policy),
            commands: CHURN_COMMANDS,
            learned: h.learned(0).count() as u64,
            mean_latency: h.mean_latency(0),
            max_stall: h.max_latency(0),
            suspicions: h.metric_total("suspicions"),
            false_suspicions: h.metric_total("false_suspicions"),
            failovers: h.metric_total("failovers"),
            rounds: h.metric_total("rounds_started"),
            series: h.latencies(0),
        }
    }
}

/// Runs one `(policy, scenario, seed)` cell of the churn matrix.
pub fn churn_run(policy: Policy, scenario: ChurnScenario, seed: u64) -> ChurnRunStats {
    ChurnHarness::new(policy, scenario, seed).run()
}

/// The full 2-policy × 3-scenario matrix at one seed, in report order
/// (scenario-major, single before multi).
pub fn churn_matrix(seed: u64) -> Vec<ChurnRunStats> {
    let mut out = Vec::new();
    for scenario in ChurnScenario::ALL {
        for policy in [Policy::SingleCoordinated, Policy::MultiCoordinated] {
            out.push(churn_run(policy, scenario, seed));
        }
    }
    out
}

/// The single-vs-multi worst-stall ratio for one scenario of a matrix
/// (`NaN` if either run is missing).
pub fn stall_ratio(matrix: &[ChurnRunStats], scenario: ChurnScenario) -> f64 {
    let find = |p: &str| {
        matrix
            .iter()
            .find(|r| r.scenario == scenario.name() && r.policy == p)
    };
    match (find("single-coord"), find("multi-coord")) {
        (Some(s), Some(m)) => s.max_stall as f64 / m.max_stall.max(1) as f64,
        _ => f64::NAN,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leader_crash_run_learns_everything_and_detects_the_crash() {
        let s = churn_run(Policy::MultiCoordinated, ChurnScenario::LeaderCrash, 3);
        assert_eq!(s.learned, u64::from(CHURN_COMMANDS));
        assert_eq!(s.series.len(), CHURN_COMMANDS as usize);
        assert!(s.suspicions > 0, "the crash must be suspected");
        assert!(s.max_stall >= s.mean_latency as u64);
    }

    #[test]
    fn wan3_partition_groups_cover_every_process_once() {
        let cfg = DeployConfig::simple(1, 3, 5, 1, Policy::MultiCoordinated);
        let dcs = wan3_dcs(&cfg);
        let mut all: Vec<ProcessId> = dcs.iter().flatten().copied().collect();
        all.sort_unstable();
        let mut expect = cfg.roles.all();
        expect.sort_unstable();
        assert_eq!(all, expect);
        let t = wan3_topology(&cfg);
        assert!(t.max_delay() >= 40);
    }
}
