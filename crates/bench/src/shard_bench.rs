//! Sharded cluster harness: N Multicoordinated Paxos instances in one
//! simulator, with routing, cross-shard sequencing and merge verification.
//!
//! This is the deployment the `bench_shards` scaling gate and the E12
//! experiment drive: each shard is a full 1-proposer/1-coordinator/
//! 3-acceptor/1-learner instance (its agents wrapped in
//! [`Sharded`]) over a disjoint process-id range, all sharing one
//! [`Sim`] so cross-shard traffic and per-shard byte accounting stay in a
//! single deterministic event loop. Commands route by conflict-key hash
//! ([`ShardRouter`]); multi-key commands pass through a
//! [`CrossShardSequencer`] and are proposed to every involved shard;
//! the per-shard learned histories merge through [`ShardedReplica`].

use mcpaxos_actor::{ProcessId, SimDuration, SimTime};
use mcpaxos_core::{
    shard_configs, shard_tag, Acceptor, BatchConfig, Coordinator, DeployConfig, Learner, Msg,
    Overflow, Policy, Proposer, ShardMsg, Sharded,
};
use mcpaxos_cstruct::{CStruct, CommandHistory};
use mcpaxos_simnet::{NetConfig, Sim, WireTotal};
use mcpaxos_smr::{Bank, BankCmd, CrossShardSequencer, ShardRouter, ShardedReplica, Workload};
use std::collections::BTreeMap;
use std::sync::Arc;

use crate::harness::CLIENT;

/// The c-struct every shard's instance runs over.
pub type ShardHistory = CommandHistory<BankCmd>;

/// The envelope type on the shared simulator.
pub type ShardNetMsg = ShardMsg<ShardHistory>;

/// N sharded consensus instances in one simulator, plus the routing and
/// sequencing glue a sharded deployment needs.
pub struct ShardedHarness {
    n_shards: u16,
    cfgs: Vec<Arc<DeployConfig>>,
    /// The simulator hosting every shard.
    pub sim: Sim<ShardNetMsg>,
    router: ShardRouter,
    sequencer: CrossShardSequencer<BankCmd>,
    /// Commands each shard is expected to learn (cross-shard commands
    /// count once per involved shard).
    expected: Vec<usize>,
    submitted: usize,
    cross_submitted: usize,
}

impl ShardedHarness {
    /// Deploys `n_shards` instances (1 proposer, 1 coordinator, 3
    /// acceptors, 1 learner each) into a fresh simulator.
    pub fn new(n_shards: u16, policy: Policy, seed: u64, net: NetConfig) -> Self {
        Self::build(n_shards, policy, Sim::new(seed, net), |c| c)
    }

    /// Like [`ShardedHarness::new`], but lets `tune` adjust each shard's
    /// [`DeployConfig`] (wire mode, group commit, …) and backs every
    /// process with storage from `factory` when given.
    pub fn with_config<T, F>(
        n_shards: u16,
        policy: Policy,
        seed: u64,
        net: NetConfig,
        tune: T,
        factory: Option<F>,
    ) -> Self
    where
        T: Fn(DeployConfig) -> DeployConfig,
        F: FnMut(ProcessId) -> Box<dyn mcpaxos_actor::StableStore> + 'static,
    {
        let mut sim: Sim<ShardNetMsg> = Sim::new(seed, net);
        if let Some(factory) = factory {
            sim.set_storage_factory(factory);
        }
        Self::build(n_shards, policy, sim, tune)
    }

    fn build(
        n_shards: u16,
        policy: Policy,
        mut sim: Sim<ShardNetMsg>,
        tune: impl Fn(DeployConfig) -> DeployConfig,
    ) -> Self {
        let cfgs: Vec<Arc<DeployConfig>> = shard_configs(n_shards, 1, 1, 3, 1, policy)
            .into_iter()
            .map(|c| {
                let c = tune(c);
                c.validate().expect("invalid shard config");
                Arc::new(c)
            })
            .collect();
        for (s, cfg) in cfgs.iter().enumerate() {
            let s = s as u16;
            for &p in cfg.roles.proposers() {
                let cfg = cfg.clone();
                sim.add_process(p, move || {
                    Box::new(Sharded::new(s, Proposer::<ShardHistory>::new(cfg.clone())))
                });
            }
            for &p in cfg.roles.coordinators() {
                let cfg = cfg.clone();
                sim.add_process(p, move || {
                    Box::new(Sharded::new(
                        s,
                        Coordinator::<ShardHistory>::new(cfg.clone(), p),
                    ))
                });
            }
            for &p in cfg.roles.acceptors() {
                let cfg = cfg.clone();
                sim.add_process(p, move || {
                    Box::new(Sharded::new(s, Acceptor::<ShardHistory>::new(cfg.clone())))
                });
            }
            for &p in cfg.roles.learners() {
                let cfg = cfg.clone();
                sim.add_process(p, move || {
                    Box::new(Sharded::new(s, Learner::<ShardHistory>::new(cfg.clone())))
                });
            }
        }
        ShardedHarness {
            n_shards,
            cfgs,
            sim,
            router: ShardRouter::new(n_shards),
            sequencer: CrossShardSequencer::new(),
            expected: vec![0; usize::from(n_shards)],
            submitted: 0,
            cross_submitted: 0,
        }
    }

    /// Meters every network message under its shard's tag ("shard0" …),
    /// making per-shard wire bytes visible in [`ShardedHarness::wire_totals`].
    pub fn enable_shard_byte_meter(&mut self) {
        self.sim.enable_byte_meter(Box::new(|m: &ShardNetMsg| {
            (m.tag(), mcpaxos_actor::wire::to_bytes(m).len() as u64)
        }));
    }

    /// Number of shards deployed.
    pub fn n_shards(&self) -> u16 {
        self.n_shards
    }

    /// The router commands are sharded by.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// Commands submitted so far.
    pub fn submitted(&self) -> usize {
        self.submitted
    }

    /// Cross-shard commands submitted so far.
    pub fn cross_submitted(&self) -> usize {
        self.cross_submitted
    }

    fn propose_to(&mut self, shard: u16, t: u64, cmd: BankCmd) {
        let t = SimTime(t.max(self.sim.now().ticks()));
        let p = self.cfgs[usize::from(shard)].roles.proposers()[0];
        self.sim.inject_at(
            t,
            p,
            CLIENT,
            ShardMsg {
                shard,
                inner: Msg::Propose {
                    cmd,
                    acc_quorum: None,
                },
            },
        );
    }

    /// Submits `cmd` at time `t`: single-shard commands go straight to
    /// their shard's proposer; cross-shard commands pass through the
    /// sequencer and are proposed to every involved shard (now, or when
    /// [`ShardedHarness::pump_at`] releases them).
    pub fn submit_at(&mut self, t: u64, cmd: BankCmd) {
        let involved = self.router.route(&cmd);
        for &s in &involved {
            self.expected[usize::from(s)] += 1;
        }
        self.submitted += 1;
        if involved.len() == 1 {
            self.propose_to(involved[0], t, cmd);
        } else {
            self.cross_submitted += 1;
            if self.sequencer.submit(cmd.clone()) {
                for &s in &involved {
                    self.propose_to(s, t, cmd.clone());
                }
            }
        }
    }

    /// Retires fully learned cross-shard commands and proposes any the
    /// sequencer releases. Call at slice boundaries while driving.
    pub fn pump_at(&mut self, t: u64) {
        let released = {
            let Self {
                sequencer,
                sim,
                router,
                cfgs,
                ..
            } = self;
            sequencer.on_progress(|c| {
                router.route(c).iter().all(|&s| {
                    let l = cfgs[usize::from(s)].roles.learners()[0];
                    sim.actor::<Sharded<Learner<ShardHistory>>>(l)
                        .is_some_and(|a| a.inner().learned().contains(c))
                })
            })
        };
        for cmd in released {
            let involved = self.router.route(&cmd);
            for &s in &involved {
                self.propose_to(s, t, cmd.clone());
            }
        }
    }

    /// Whether every submitted command has been learned by every shard it
    /// involves.
    pub fn done(&self) -> bool {
        self.sequencer.in_flight().is_empty()
            && self.sequencer.held_len() == 0
            && (0..self.n_shards).all(|s| self.learned_count(s) >= self.expected[usize::from(s)])
    }

    /// Runs in 25-tick slices (pumping the sequencer between slices) until
    /// [`ShardedHarness::done`] or `max_t`; returns the stop time.
    pub fn drive_until_done(&mut self, max_t: u64) -> u64 {
        let mut t = self.sim.now().ticks();
        while !self.done() && t < max_t {
            t = (t + 25).min(max_t);
            self.sim.run_until(SimTime(t));
            self.pump_at(t);
        }
        t
    }

    /// The learned history of shard `shard` (its designated learner).
    pub fn learned(&self, shard: u16) -> ShardHistory {
        let l = self.cfgs[usize::from(shard)].roles.learners()[0];
        self.sim
            .actor::<Sharded<Learner<ShardHistory>>>(l)
            .expect("shard learner exists")
            .inner()
            .learned()
            .clone()
    }

    /// Commands learned by shard `shard` — the *logical* total, which
    /// keeps counting commands a compacting deployment has truncated out
    /// of the live window.
    pub fn learned_count(&self, shard: u16) -> usize {
        let l = self.cfgs[usize::from(shard)].roles.learners()[0];
        self.sim
            .actor::<Sharded<Learner<ShardHistory>>>(l)
            .map_or(0, |a| a.inner().learned().total_len() as usize)
    }

    /// Total commands learned across shards (cross-shard commands counted
    /// once per involved shard).
    pub fn learned_total(&self) -> usize {
        (0..self.n_shards).map(|s| self.learned_count(s)).sum()
    }

    /// Merges every shard's learned history into one [`Bank`] via
    /// [`ShardedReplica`], for state verification.
    pub fn merged(&self) -> ShardedReplica<Bank> {
        let mut rep: ShardedReplica<Bank> = ShardedReplica::new(self.n_shards).keep_log();
        for s in 0..self.n_shards {
            rep.absorb_shard(s, &self.learned(s));
        }
        rep
    }

    /// Per-tag wire totals (enable the byte meter first).
    pub fn wire_totals(&self) -> &BTreeMap<&'static str, WireTotal> {
        self.sim.wire_totals()
    }

    /// Stable-storage write counts of shard `shard`'s acceptors.
    pub fn acceptor_writes(&self, shard: u16) -> Vec<u64> {
        self.cfgs[usize::from(shard)]
            .roles
            .acceptors()
            .iter()
            .map(|&a| self.sim.storage(a).map(|s| s.write_count()).unwrap_or(0))
            .collect()
    }

    /// The deployment configuration of shard `shard`.
    pub fn cfg(&self, shard: u16) -> &Arc<DeployConfig> {
        &self.cfgs[usize::from(shard)]
    }
}

/// One `bench_shards` measurement: a fixed command count pushed through
/// `shards` instances at a given transfer (cross-shard) fraction.
#[derive(Clone, Debug)]
pub struct ShardRunStats {
    /// Number of shards deployed.
    pub shards: u16,
    /// Transfer fraction requested, in percent.
    pub transfer_pct: f64,
    /// Commands submitted.
    pub commands: usize,
    /// Commands the router classified as cross-shard.
    pub cross_shard: usize,
    /// Commands applied by the merged replica (must equal `commands`).
    pub applied: u64,
    /// Wall-clock milliseconds for submit + drive.
    pub elapsed_ms: f64,
    /// Commands per wall-clock second.
    pub cps: f64,
    /// Final merged bank balance total (determinism anchor).
    pub bank_total: u64,
}

/// Command count the `bench_shards` scaling runs push through each
/// configuration. Large enough that per-message full-payload work — the
/// O(history) cost sharding divides — dominates fixed overheads.
pub const SHARD_BENCH_COMMANDS: usize = 1_000;

/// Accounts the sharded workload spreads over.
pub const SHARD_BENCH_ACCOUNTS: u16 = 4_096;

/// Runs the sharded workload and measures wall-clock throughput.
///
/// Uses the default wire mode (full payloads, compaction off) so the
/// per-message cost every consensus instance pays is proportional to its
/// own history length: the work sharding divides. The same harness drives
/// the 1-shard baseline, so routing/sequencer overhead is paid equally.
///
/// # Panics
///
/// Panics if the run stalls before every command is learned, or if the
/// merged replica does not apply exactly `commands` commands.
pub fn shard_run(shards: u16, transfer_fraction: f64, commands: usize, seed: u64) -> ShardRunStats {
    let start = std::time::Instant::now();
    let mut h = ShardedHarness::new(
        shards,
        Policy::MultiCoordinated,
        seed,
        NetConfig::lockstep(),
    );
    let mut w = Workload::new(seed, 0, 0.0)
        .with_cold_keys(SHARD_BENCH_ACCOUNTS)
        .with_transfer_fraction(transfer_fraction);
    let mut t = 100;
    for _ in 0..commands {
        h.submit_at(t, w.next_sharded_bank());
        t += 2;
    }
    let max_t = t + 1_000_000;
    let end = h.drive_until_done(max_t);
    assert!(
        h.done(),
        "{shards}-shard run stalled at t={end}: learned {} of expected {:?}",
        h.learned_total(),
        h.expected,
    );
    let rep = h.merged();
    assert_eq!(
        rep.applied_count(),
        commands as u64,
        "merged replica must apply every command exactly once"
    );
    assert_eq!(rep.pending(), 0);
    let elapsed = start.elapsed();
    let elapsed_ms = elapsed.as_secs_f64() * 1e3;
    ShardRunStats {
        shards,
        transfer_pct: transfer_fraction * 100.0,
        commands,
        cross_shard: h.cross_submitted(),
        applied: rep.applied_count(),
        elapsed_ms,
        cps: commands as f64 / elapsed.as_secs_f64(),
        bank_total: rep.machine().total(),
    }
}

/// One E12 measurement: deterministic (tick- and byte-level) statistics
/// for a sharded run, independent of host speed — the numbers the
/// `EXPERIMENTS.md` table reports, complementing the wall-clock
/// `BENCH_shards.json` artifact.
#[derive(Clone, Debug)]
pub struct ShardWireStats {
    /// Number of shards deployed.
    pub shards: u16,
    /// Commands submitted.
    pub commands: usize,
    /// Commands the router classified as cross-shard.
    pub cross_shard: usize,
    /// Simulator tick at which every shard had learned everything.
    pub end_ticks: u64,
    /// Wire bytes carried by each shard's messages.
    pub per_shard_bytes: Vec<u64>,
    /// Wire bytes summed across shards.
    pub total_bytes: u64,
    /// Final merged bank balance total (determinism anchor).
    pub bank_total: u64,
}

/// Runs the sharded workload with the per-shard byte meter on and returns
/// deterministic completion/wire statistics (same protocol as
/// [`shard_run`], but measuring simulator ticks and bytes, not
/// wall-clock).
///
/// # Panics
///
/// Panics if the run stalls or the merged replica misses commands.
pub fn shard_wire_run(
    shards: u16,
    transfer_fraction: f64,
    commands: usize,
    seed: u64,
) -> ShardWireStats {
    shard_wire_run_tuned(shards, transfer_fraction, commands, seed, |c| c)
}

/// [`shard_wire_run`] with a `tune` hook over each shard's
/// [`DeployConfig`] — how the E12 batched row dials
/// [`DeployConfig::with_batching`] in while keeping the byte meter on.
///
/// # Panics
///
/// Panics if the run stalls or the merged replica misses commands.
pub fn shard_wire_run_tuned(
    shards: u16,
    transfer_fraction: f64,
    commands: usize,
    seed: u64,
    tune: impl Fn(DeployConfig) -> DeployConfig,
) -> ShardWireStats {
    let mut h = ShardedHarness::with_config(
        shards,
        Policy::MultiCoordinated,
        seed,
        NetConfig::lockstep(),
        tune,
        None::<fn(ProcessId) -> Box<dyn mcpaxos_actor::StableStore>>,
    );
    h.enable_shard_byte_meter();
    let mut w = Workload::new(seed, 0, 0.0)
        .with_cold_keys(SHARD_BENCH_ACCOUNTS)
        .with_transfer_fraction(transfer_fraction);
    let mut t = 100;
    for _ in 0..commands {
        h.submit_at(t, w.next_sharded_bank());
        t += 2;
    }
    let end_ticks = h.drive_until_done(t + 1_000_000);
    assert!(h.done(), "{shards}-shard wire run stalled at t={end_ticks}");
    let rep = h.merged();
    assert_eq!(rep.applied_count(), commands as u64);
    assert_eq!(rep.pending(), 0);
    let per_shard_bytes: Vec<u64> = (0..shards)
        .map(|s| h.wire_totals().get(shard_tag(s)).map_or(0, |w| w.bytes))
        .collect();
    ShardWireStats {
        shards,
        commands,
        cross_shard: h.cross_submitted(),
        end_ticks,
        total_bytes: per_shard_bytes.iter().sum(),
        per_shard_bytes,
        bank_total: rep.machine().total(),
    }
}

/// One batched-vs-unbatched sharded measurement: the same workload with
/// the batching knobs wired through [`ShardedHarness::with_config`].
#[derive(Clone, Debug)]
pub struct ShardBatchedStats {
    /// Number of shards deployed.
    pub shards: u16,
    /// Batch size (0 = batching off).
    pub batch: usize,
    /// Pipeline depth.
    pub depth: usize,
    /// Commands submitted.
    pub commands: usize,
    /// Commands the merged replica applied.
    pub learned: usize,
    /// Simulator tick at which every shard had learned everything.
    pub end_ticks: u64,
    /// Final merged bank balance total (determinism anchor).
    pub bank_total: u64,
}

/// Runs the sharded workload with every shard's coordinator/proposer
/// batching dialed to `batch`/`depth` (`batch = 0` leaves the knobs off)
/// and returns deterministic completion statistics — the batched row of
/// the `bench_shards`/`bench_throughput` reports.
///
/// # Panics
///
/// Panics if the run stalls or the merged replica misses commands.
pub fn shard_batched_run(
    shards: u16,
    batch: usize,
    depth: usize,
    commands: usize,
    seed: u64,
) -> ShardBatchedStats {
    let tune = move |c: DeployConfig| {
        if batch == 0 {
            c
        } else {
            c.with_batching(BatchConfig {
                batch_size: batch,
                batch_ticks: SimDuration(2),
                pipeline_depth: depth,
                queue_cap: 0,
                overflow: Overflow::Shed,
            })
        }
    };
    let mut h = ShardedHarness::with_config(
        shards,
        Policy::MultiCoordinated,
        seed,
        NetConfig::lockstep(),
        tune,
        None::<fn(ProcessId) -> Box<dyn mcpaxos_actor::StableStore>>,
    );
    let mut w = Workload::new(seed, 0, 0.0)
        .with_cold_keys(SHARD_BENCH_ACCOUNTS)
        .with_transfer_fraction(0.01);
    // Open-loop at 4 commands/tick (vs the paced 1-per-2-ticks of the
    // scaling runs): enough offered load that a lockstep pipeline
    // backlogs and batching has something to amortize.
    let mut t = 100;
    for i in 0..commands {
        t = 100 + (i as u64) / 4;
        h.submit_at(t, w.next_sharded_bank());
    }
    let end_ticks = h.drive_until_done(t + 1_000_000);
    assert!(
        h.done(),
        "{shards}-shard batched (b={batch}/d={depth}) run stalled at t={end_ticks}"
    );
    let rep = h.merged();
    assert_eq!(rep.applied_count(), commands as u64);
    assert_eq!(rep.pending(), 0);
    ShardBatchedStats {
        shards,
        batch,
        depth,
        commands,
        learned: rep.applied_count() as usize,
        end_ticks,
        bank_total: rep.machine().total(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_shards_learn_the_same_state() {
        let plain = shard_batched_run(2, 0, 0, 60, 7);
        let batched = shard_batched_run(2, 8, 4, 60, 7);
        assert_eq!(plain.learned, 60);
        assert_eq!(batched.learned, 60);
        assert_eq!(plain.bank_total, batched.bank_total);
    }

    #[test]
    fn sharded_harness_learns_and_merges() {
        let mut h = ShardedHarness::new(2, Policy::MultiCoordinated, 7, NetConfig::lockstep());
        let mut w = Workload::new(3, 0, 0.0)
            .with_cold_keys(64)
            .with_transfer_fraction(0.1);
        let mut t = 100;
        for _ in 0..40 {
            let cmd = w.next_sharded_bank();
            h.submit_at(t, cmd);
            t += 2;
        }
        let end = h.drive_until_done(60_000);
        assert!(
            h.done(),
            "stalled at t={end}: {:?}",
            h.sequencer.in_flight()
        );
        let rep = h.merged();
        assert_eq!(rep.applied_count(), 40);
        assert_eq!(rep.pending(), 0);
    }
}
