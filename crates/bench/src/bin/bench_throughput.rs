//! CI-facing throughput benchmark: the batched + pipelined hot path
//! under open- and closed-loop load (experiment E14).
//!
//! Sweeps the {batch × depth} grid open-loop (fixed arrival rate, so a
//! saturated system shows its backlog as latency instead of throttling
//! the offered load), runs a closed-loop companion at the gate point,
//! adds a sharded batched-vs-unbatched pair, emits
//! `BENCH_throughput.json` (a flat array of per-run records) and prints
//! the sweep table. With `--check`, exits non-zero unless
//!
//! * every run learns all issued commands (no silent loss under load),
//! * batch=16/depth=8 sustains ≥ 5× the batch=1/depth=1 open-loop
//!   throughput (the amortization floor),
//! * p999 is reported for every run (percentile plumbing intact).
//!
//! Usage: `cargo run --release -p mcpaxos-bench --bin bench_throughput [--check] [--out PATH]`

use mcpaxos_bench::shard_bench::shard_batched_run;
use mcpaxos_bench::throughput_bench::{
    closed_loop_run, open_loop_run, ThroughputStats, THROUGHPUT_COMMANDS, THROUGHPUT_GATE_SPEEDUP,
    THROUGHPUT_GRID, THROUGHPUT_WINDOW,
};
use std::fmt::Write as _;

const SEED: u64 = 42;

fn json_record(s: &ThroughputStats) -> String {
    format!(
        "{{\"mode\":\"{}\",\"batch\":{},\"depth\":{},\"commands\":{},\"learned\":{},\
         \"makespan_ticks\":{},\"cps\":{:.0},\"p50\":{},\"p99\":{},\"p999\":{},\"max\":{},\
         \"batches\":{},\"batched_cmds\":{},\"sheds\":{},\"stalls\":{}}}",
        s.mode,
        s.batch,
        s.depth,
        s.commands,
        s.learned,
        s.makespan_ticks,
        s.cps,
        s.lat.p50,
        s.lat.p99,
        s.lat.p999,
        s.lat.max,
        s.batches,
        s.batched_cmds,
        s.sheds,
        s.stalls,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let check = args.iter().any(|a| a == "--check");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_throughput.json".to_string());

    let mut runs: Vec<ThroughputStats> = Vec::new();
    for &(b, d) in &THROUGHPUT_GRID {
        let s = open_loop_run(b, d, THROUGHPUT_COMMANDS, SEED);
        eprintln!(
            "open   b={b:>2}/d={d:>2}: {} cmds in {} ticks = {:>6.0} cps, p50/p99/p999 = {}/{}/{}",
            s.commands, s.makespan_ticks, s.cps, s.lat.p50, s.lat.p99, s.lat.p999
        );
        runs.push(s);
    }
    let closed = closed_loop_run(16, 8, THROUGHPUT_COMMANDS, THROUGHPUT_WINDOW, SEED);
    eprintln!(
        "closed b=16/d= 8: {} cmds in {} ticks = {:>6.0} cps (window {})",
        closed.commands, closed.makespan_ticks, closed.cps, THROUGHPUT_WINDOW
    );
    runs.push(closed);

    // Sharded trio: the same batching knobs through `ShardedHarness` at
    // 2 shards — knobs off, the lockstep 1/1 baseline, and 16/8.
    let shard_plain = shard_batched_run(2, 0, 0, 400, SEED);
    let shard_lockstep = shard_batched_run(2, 1, 1, 400, SEED);
    let shard_batched = shard_batched_run(2, 16, 8, 400, SEED);
    eprintln!(
        "shards=2: unbatched {} ticks, lockstep 1/1 {} ticks, batched 16/8 {} ticks ({:.1}x vs 1/1)",
        shard_plain.end_ticks,
        shard_lockstep.end_ticks,
        shard_batched.end_ticks,
        shard_lockstep.end_ticks as f64 / shard_batched.end_ticks.max(1) as f64
    );

    let mut json = String::from("[\n");
    for s in &runs {
        let _ = writeln!(json, "  {},", json_record(s));
    }
    let shard_rows = [&shard_plain, &shard_lockstep, &shard_batched];
    for (i, s) in shard_rows.into_iter().enumerate() {
        let sep = if i + 1 < shard_rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "  {{\"mode\":\"sharded\",\"batch\":{},\"depth\":{},\"shards\":{},\"commands\":{},\
             \"learned\":{},\"end_ticks\":{},\"bank_total\":{}}}{sep}",
            s.batch, s.depth, s.shards, s.commands, s.learned, s.end_ticks, s.bank_total
        );
    }
    json.push_str("]\n");
    std::fs::write(&out, &json).expect("write BENCH_throughput.json");
    eprintln!("wrote {out} ({} bytes)", json.len());

    println!(
        "open-loop throughput sweep ({} commands, 1 tick = 1 ms):",
        THROUGHPUT_COMMANDS
    );
    println!("  batch/depth |   cps |  p50 |  p99 | p999 | waves");
    for s in &runs {
        let label = if s.mode == "closed" {
            format!("{}/{} closed", s.batch, s.depth)
        } else if s.batch == 0 {
            "off".to_string()
        } else {
            format!("{}/{}", s.batch, s.depth)
        };
        println!(
            "  {:>11} | {:>5.0} | {:>4} | {:>4} | {:>4} | {:>5}",
            label, s.cps, s.lat.p50, s.lat.p99, s.lat.p999, s.batches
        );
    }

    let cps_at = |batch: usize, depth: usize| {
        runs.iter()
            .find(|r| r.mode == "open" && r.batch == batch && r.depth == depth)
            .map(|r| r.cps)
            .unwrap_or(f64::NAN)
    };
    let speedup = cps_at(16, 8) / cps_at(1, 1);
    println!("gate speedup (16/8 vs 1/1 open-loop): {speedup:.1}x");

    if check {
        let mut failed = Vec::new();
        for s in &runs {
            if s.learned != s.commands {
                failed.push(format!(
                    "{} b={}/d={} learned {} of {} commands",
                    s.mode, s.batch, s.depth, s.learned, s.commands
                ));
            }
            if s.lat.p999 < s.lat.p50 {
                failed.push(format!(
                    "{} b={}/d={}: p999 {} below p50 {} — percentile plumbing broken",
                    s.mode, s.batch, s.depth, s.lat.p999, s.lat.p50
                ));
            }
        }
        for s in [&shard_plain, &shard_lockstep, &shard_batched] {
            if s.learned != s.commands {
                failed.push(format!(
                    "sharded b={}/d={} learned {} of {} commands",
                    s.batch, s.depth, s.learned, s.commands
                ));
            }
            if s.bank_total != shard_plain.bank_total {
                failed.push(format!(
                    "sharded b={}/d={} diverged: bank {} vs {}",
                    s.batch, s.depth, s.bank_total, shard_plain.bank_total
                ));
            }
        }
        if speedup < THROUGHPUT_GATE_SPEEDUP {
            failed.push(format!(
                "batched speedup {speedup:.2}x < {THROUGHPUT_GATE_SPEEDUP}x floor (16/8 vs 1/1)"
            ));
        }
        if failed.is_empty() {
            println!(
                "CHECK PASSED (>= {THROUGHPUT_GATE_SPEEDUP}x at batch=16/depth=8, all learned, p999 reported)"
            );
        } else {
            for f in &failed {
                eprintln!("CHECK FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}
