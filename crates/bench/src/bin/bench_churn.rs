//! CI-facing churn benchmark: coordinator failover under WAN chaos
//! (experiment E13).
//!
//! Replays the 2-policy × 3-scenario churn matrix (leader crash, rolling
//! restart, partition+heal on a 3-DC latency-matrix WAN) at one chaos
//! seed and emits `BENCH_churn.json` — one record per run, including the
//! per-command delivery-latency time series — so every CI run leaves a
//! comparable artifact. With `--check`, exits non-zero unless
//!
//! * every run learns all commands by the horizon,
//! * the leader-crash worst-case stall is ≥ 3× lower multicoordinated
//!   than single-coordinated (same seed, same schedule),
//! * the failure detector actually drove the single-coordinated
//!   recovery (≥1 suspicion and ≥1 failover in its leader-crash run).
//!
//! Usage: `cargo run --release -p mcpaxos-bench --bin bench_churn [--check] [--out PATH]`

use mcpaxos_bench::churn_bench::{
    churn_matrix, stall_ratio, ChurnRunStats, ChurnScenario, CHURN_COMMANDS, CHURN_SEED,
};
use std::fmt::Write as _;

fn json_record(s: &ChurnRunStats) -> String {
    let series: Vec<String> = s
        .series
        .iter()
        .map(|l| l.map(|x| x.to_string()).unwrap_or_else(|| "null".into()))
        .collect();
    format!(
        "{{\"scenario\":\"{}\",\"policy\":\"{}\",\"commands\":{},\"learned\":{},\
         \"mean_latency\":{:.2},\"max_stall\":{},\"suspicions\":{},\
         \"false_suspicions\":{},\"failovers\":{},\"rounds\":{},\
         \"latency_series\":[{}]}}",
        s.scenario,
        s.policy,
        s.commands,
        s.learned,
        s.mean_latency,
        s.max_stall,
        s.suspicions,
        s.false_suspicions,
        s.failovers,
        s.rounds,
        series.join(","),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let check = args.iter().any(|a| a == "--check");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_churn.json".to_string());

    let matrix = churn_matrix(CHURN_SEED);

    let mut json = String::from("[\n");
    for (i, r) in matrix.iter().enumerate() {
        let sep = if i + 1 < matrix.len() { "," } else { "" };
        let _ = writeln!(json, "  {}{}", json_record(r), sep);
    }
    json.push_str("]\n");
    std::fs::write(&out, &json).expect("write BENCH_churn.json");
    eprintln!("wrote {out} ({} bytes)", json.len());

    for r in &matrix {
        println!(
            "{:<16} {:<13} learned {}/{}  mean {:.1}  worst stall {:>5}  \
             suspicions {} ({} false)  failovers {}",
            r.scenario,
            r.policy,
            r.learned,
            r.commands,
            r.mean_latency,
            r.max_stall,
            r.suspicions,
            r.false_suspicions,
            r.failovers,
        );
    }
    let ratio = stall_ratio(&matrix, ChurnScenario::LeaderCrash);
    println!("leader-crash worst-stall ratio (single/multi): {ratio:.1}x");

    if check {
        let mut failed = Vec::new();
        for r in &matrix {
            if r.learned != u64::from(CHURN_COMMANDS) {
                failed.push(format!(
                    "{} / {}: learned {} < {CHURN_COMMANDS}",
                    r.scenario, r.policy, r.learned
                ));
            }
        }
        if ratio < 3.0 || ratio.is_nan() {
            failed.push(format!(
                "leader-crash worst-stall ratio {ratio:.1}x < 3x floor"
            ));
        }
        if let Some(s) = matrix
            .iter()
            .find(|r| r.scenario == ChurnScenario::LeaderCrash.name() && r.policy == "single-coord")
        {
            if s.suspicions < 1 || s.failovers < 1 {
                failed.push(format!(
                    "single-coord leader crash recovered without the failure \
                     detector (suspicions {}, failovers {})",
                    s.suspicions, s.failovers
                ));
            }
        }
        if failed.is_empty() {
            println!("CHECK PASSED (>=3x stall reduction under leader crash)");
        } else {
            for f in &failed {
                eprintln!("CHECK FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}
