//! CI-facing wire/memory benchmark: delta-shipped c-structs and
//! stable-prefix compaction vs. whole-value messages (experiment E10).
//!
//! Runs the 1 000-command, ~10%-conflict KV workload on the byte-metered
//! simulator in both modes, emits `BENCH_wire.json` (a flat array of
//! per-mode records) so every CI run leaves a comparable artifact, and
//! prints the E10 table. With `--check`, exits non-zero unless
//!
//! * both runs learn all commands,
//! * cumulative `2a`+`2b` bytes drop ≥ 10× in bounded mode,
//! * the bounded acceptor live window is non-monotonic (truncation
//!   actually reclaims memory) and ends well below the full history.
//!
//! Usage: `cargo run --release -p mcpaxos-bench --bin bench_wire [--check] [--out PATH]`

use mcpaxos_bench::wire_bench::{data_plane_bytes, wire_run, WireRunStats, WIRE_COMMANDS};
use std::fmt::Write as _;

fn json_record(s: &WireRunStats) -> String {
    format!(
        "{{\"mode\":\"{}\",\"commands\":{},\"bytes_2a\":{},\"count_2a\":{},\
         \"bytes_2b\":{},\"count_2b\":{},\"bytes_1b\":{},\"bytes_control\":{},\
         \"bytes_total\":{},\"learned_total\":{},\"acc_live_max\":{},\
         \"acc_live_final\":{},\"acc_live_decreased\":{},\"watermark\":{},\
         \"delta_sends\":{},\"full_resyncs\":{},\"truncations\":{}}}",
        s.label,
        s.commands,
        s.bytes_2a,
        s.count_2a,
        s.bytes_2b,
        s.count_2b,
        s.bytes_1b,
        s.bytes_control,
        s.bytes_total,
        s.learned_total,
        s.acc_live_max,
        s.acc_live_final,
        s.acc_live_decreased,
        s.watermark,
        s.delta_sends,
        s.full_resyncs,
        s.truncations,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let check = args.iter().any(|a| a == "--check");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_wire.json".to_string());

    let full = wire_run(false, WIRE_COMMANDS);
    let bounded = wire_run(true, WIRE_COMMANDS);

    let mut json = String::from("[\n");
    let _ = writeln!(json, "  {},", json_record(&full));
    let _ = writeln!(json, "  {}", json_record(&bounded));
    json.push_str("]\n");
    std::fs::write(&out, &json).expect("write BENCH_wire.json");
    eprintln!("wrote {out} ({} bytes)", json.len());

    let ratio = data_plane_bytes(&full) as f64 / data_plane_bytes(&bounded).max(1) as f64;
    println!(
        "cumulative 2a+2b bytes: full = {}, bounded = {} ({ratio:.1}x reduction)",
        data_plane_bytes(&full),
        data_plane_bytes(&bounded)
    );
    println!(
        "acceptor live window: full max/final = {}/{}, bounded max/final = {}/{} \
         (non-monotonic: {})",
        full.acc_live_max,
        full.acc_live_final,
        bounded.acc_live_max,
        bounded.acc_live_final,
        bounded.acc_live_decreased
    );
    println!(
        "bounded overhead: control bytes = {}, deltas = {}, resyncs = {}, truncations = {}",
        bounded.bytes_control, bounded.delta_sends, bounded.full_resyncs, bounded.truncations
    );

    if check {
        let mut failed = Vec::new();
        if full.learned_total != u64::from(WIRE_COMMANDS) {
            failed.push(format!(
                "full run learned {} < {WIRE_COMMANDS}",
                full.learned_total
            ));
        }
        if bounded.learned_total != u64::from(WIRE_COMMANDS) {
            failed.push(format!(
                "bounded run learned {} < {WIRE_COMMANDS}",
                bounded.learned_total
            ));
        }
        if ratio < 10.0 {
            failed.push(format!("2a+2b byte reduction {ratio:.1}x < 10x floor"));
        }
        if !bounded.acc_live_decreased {
            failed.push("bounded acceptor window never shrank (monotonic)".into());
        }
        if bounded.acc_live_final * 4 > WIRE_COMMANDS as usize {
            failed.push(format!(
                "bounded acceptor window ended at {} (> {}/4)",
                bounded.acc_live_final, WIRE_COMMANDS
            ));
        }
        if bounded.watermark == 0 {
            failed.push("bounded watermark never advanced".into());
        }
        if failed.is_empty() {
            println!("CHECK PASSED (>=10x wire reduction, bounded windows)");
        } else {
            for f in &failed {
                eprintln!("CHECK FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}
