//! CI-facing WAL benchmark: group-commit fsync amortization vs per-vote
//! flushing (experiment E11).
//!
//! Runs the 1 000-command paced workload on WAL-backed acceptors once per
//! flush policy, emits `BENCH_wal.json` (a flat array of per-policy
//! records) so every CI run leaves a comparable artifact, and prints the
//! comparison. With `--check`, exits non-zero unless
//!
//! * both runs learn all commands,
//! * group commit cuts total acceptor syncs ≥ 5× vs the per-vote
//!   baseline,
//! * no acceptor store surfaces corrupt records in a crash-free run.
//!
//! Usage: `cargo run --release -p mcpaxos-bench --bin bench_wal [--check] [--out PATH]`

use mcpaxos_bench::wal_bench::{
    sync_reduction, wal_run, WalRunStats, WAL_COMMANDS, WAL_GROUP_COMMIT,
};
use std::fmt::Write as _;

fn json_record(s: &WalRunStats) -> String {
    format!(
        "{{\"policy\":\"{}\",\"group_commit\":{},\"commands\":{},\"learned\":{},\
         \"acc_syncs\":{},\"syncs_per_cmd\":{:.4},\"corrupt_records\":{},\
         \"mean_latency\":{:.2},\"max_latency\":{}}}",
        s.label,
        s.group_commit,
        s.commands,
        s.learned,
        s.acc_syncs,
        s.syncs_per_cmd,
        s.corrupt_records,
        s.mean_latency,
        s.max_latency,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let check = args.iter().any(|a| a == "--check");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_wal.json".to_string());

    let baseline = wal_run(0, WAL_COMMANDS);
    let batched = wal_run(WAL_GROUP_COMMIT, WAL_COMMANDS);

    let mut json = String::from("[\n");
    let _ = writeln!(json, "  {},", json_record(&baseline));
    let _ = writeln!(json, "  {}", json_record(&batched));
    json.push_str("]\n");
    std::fs::write(&out, &json).expect("write BENCH_wal.json");
    eprintln!("wrote {out} ({} bytes)", json.len());

    let ratio = sync_reduction(&baseline, &batched);
    println!(
        "acceptor syncs: per-vote = {}, group commit ({} ticks) = {} ({ratio:.1}x reduction)",
        baseline.acc_syncs, WAL_GROUP_COMMIT, batched.acc_syncs
    );
    println!(
        "latency: per-vote mean/max = {:.2}/{}, group commit mean/max = {:.2}/{}",
        baseline.mean_latency, baseline.max_latency, batched.mean_latency, batched.max_latency
    );

    if check {
        let mut failed = Vec::new();
        for s in [&baseline, &batched] {
            if s.learned != WAL_COMMANDS as usize {
                failed.push(format!(
                    "{} run learned {} < {WAL_COMMANDS}",
                    s.label, s.learned
                ));
            }
            if s.corrupt_records != 0 {
                failed.push(format!(
                    "{} run surfaced {} corrupt records without a crash",
                    s.label, s.corrupt_records
                ));
            }
        }
        if ratio < 5.0 {
            failed.push(format!("disk-write reduction {ratio:.1}x < 5x floor"));
        }
        if failed.is_empty() {
            println!("CHECK PASSED (>=5x disk-write amortization, all learned)");
        } else {
            for f in &failed {
                eprintln!("CHECK FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}
