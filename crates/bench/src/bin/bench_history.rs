//! CI-facing micro-benchmark: command-history lattice operators (indexed
//! vs. the retained reference transcription) and learner 2b processing
//! (incremental per-round glbs vs. enumerate-from-scratch).
//!
//! Emits `BENCH_history.json` — a flat array of `{op, impl, n, median_ns}`
//! records — so every CI run leaves a comparable perf artifact, and prints
//! a human-readable table with speedups. With `--check`, exits non-zero
//! unless the indexed implementation beats the reference by ≥ 10× on
//! `eq`, `glb` (the paper's `Prefix`) and `lub` for 1k-command histories
//! at a ~10% conflict rate (the PR-4 acceptance criterion).
//!
//! Usage: `cargo run --release -p mcpaxos-bench --bin bench_history [--check] [--out PATH]`

use mcpaxos_actor::{
    Actor, Context, MemStore, Metric, ProcessId, SimDuration, SimTime, StableStore, TimerToken,
};
use mcpaxos_bench::history_workloads::{diverging_cmds, ConflictProfile};
use mcpaxos_core::{DeployConfig, Learner, Msg, Policy, Round, RTYPE_MULTI};
use mcpaxos_cstruct::{glb_all, CStruct, CommandHistory, RefCommandHistory};
use mcpaxos_smr::KvCmd;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// One measurement record.
struct Record {
    op: &'static str,
    imp: &'static str,
    n: usize,
    median_ns: u128,
}

/// Median wall-clock nanoseconds of `f` over `samples` runs (after one
/// warm-up), never fewer than one.
fn median_ns<O>(samples: usize, mut f: impl FnMut() -> O) -> u128 {
    std::hint::black_box(f());
    let mut times: Vec<u128> = (0..samples.max(1))
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn history_records(records: &mut Vec<Record>) {
    for &n in &[256usize, 1024] {
        let (a_cmds, b_cmds) = diverging_cmds(n, ConflictProfile::default());
        let ia: CommandHistory<KvCmd> = a_cmds.iter().cloned().collect();
        let ib: CommandHistory<KvCmd> = b_cmds.iter().cloned().collect();
        let ra: RefCommandHistory<KvCmd> = a_cmds.iter().cloned().collect();
        let rb: RefCommandHistory<KvCmd> = b_cmds.iter().cloned().collect();
        // The reference ops are up to cubic at n=1024: keep its sample
        // count low, the indexed one high.
        let (si, sr) = (50, 5);
        records.push(Record {
            op: "eq",
            imp: "indexed",
            n,
            median_ns: median_ns(si, || ia == ib),
        });
        records.push(Record {
            op: "eq",
            imp: "ref",
            n,
            median_ns: median_ns(sr, || ra == rb),
        });
        records.push(Record {
            op: "le",
            imp: "indexed",
            n,
            median_ns: median_ns(si, || ia.le(&ib)),
        });
        records.push(Record {
            op: "le",
            imp: "ref",
            n,
            median_ns: median_ns(sr, || ra.le(&rb)),
        });
        records.push(Record {
            op: "glb",
            imp: "indexed",
            n,
            median_ns: median_ns(si, || ia.glb(&ib)),
        });
        records.push(Record {
            op: "glb",
            imp: "ref",
            n,
            median_ns: median_ns(sr, || ra.glb(&rb)),
        });
        records.push(Record {
            op: "compatible",
            imp: "indexed",
            n,
            median_ns: median_ns(si, || ia.compatible(&ib)),
        });
        records.push(Record {
            op: "compatible",
            imp: "ref",
            n,
            median_ns: median_ns(sr, || ra.compatible(&rb)),
        });
        records.push(Record {
            op: "lub",
            imp: "indexed",
            n,
            median_ns: median_ns(si, || ia.lub(&ib)),
        });
        records.push(Record {
            op: "lub",
            imp: "ref",
            n,
            median_ns: median_ns(sr, || ra.lub(&rb)),
        });
    }
    // Satellite regression: 10k-command construction (seed was quadratic).
    // The reference impl is only affordable at 2k, so the comparable pair
    // is measured at n=2000 for BOTH impls; the 10k indexed row stands
    // alone as the scaling guard (no ref counterpart at that size).
    let (cmds, _) = diverging_cmds(10_000, ConflictProfile::default());
    records.push(Record {
        op: "construct",
        imp: "indexed",
        n: 10_000,
        median_ns: median_ns(5, || {
            cmds.iter().cloned().collect::<CommandHistory<KvCmd>>()
        }),
    });
    let small: Vec<KvCmd> = cmds.iter().take(2_000).cloned().collect();
    records.push(Record {
        op: "construct",
        imp: "indexed",
        n: 2_000,
        median_ns: median_ns(5, || {
            small.iter().cloned().collect::<CommandHistory<KvCmd>>()
        }),
    });
    records.push(Record {
        op: "construct",
        imp: "ref",
        n: 2_000,
        median_ns: median_ns(3, || {
            small.iter().cloned().collect::<RefCommandHistory<KvCmd>>()
        }),
    });
}

/// All size-`k` subsets of `0..n` (tiny inputs here).
fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    fn rec(start: usize, n: usize, k: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        for i in start..n {
            cur.push(i);
            rec(i + 1, n, k, cur, out);
            cur.pop();
        }
    }
    let mut out = Vec::new();
    if k <= n {
        rec(0, n, k, &mut Vec::new(), &mut out);
    }
    out
}

/// Sink context for driving a learner outside the simulator.
struct Sink {
    store: MemStore,
}

impl Context<Msg<CommandHistory<KvCmd>>> for Sink {
    fn me(&self) -> ProcessId {
        ProcessId(9)
    }
    fn now(&self) -> SimTime {
        SimTime::ZERO
    }
    fn send(&mut self, _to: ProcessId, _m: Msg<CommandHistory<KvCmd>>) {}
    fn set_timer(&mut self, _a: SimDuration, _t: TimerToken) {}
    fn cancel_timer(&mut self, _t: TimerToken) {}
    fn storage(&mut self) -> &mut dyn StableStore {
        &mut self.store
    }
    fn metric(&mut self, _m: Metric) {}
    fn random(&mut self) -> u64 {
        0
    }
}

/// The stream of "2b" messages the learner benchmarks replay: 5 acceptors
/// reporting growing prefixes of a shared master sequence, round-robin.
fn learner_stream(total: usize, step: usize) -> Vec<(ProcessId, CommandHistory<KvCmd>)> {
    let (master, _) = diverging_cmds(total, ConflictProfile::default());
    let mut out = Vec::new();
    let mut progress = [0usize; 5];
    let mut i = 0;
    while progress.iter().any(|&p| p < total) {
        let a = i % 5;
        progress[a] = (progress[a] + step).min(total);
        out.push((
            ProcessId(4 + a as u32),
            master.iter().take(progress[a]).cloned().collect(),
        ));
        i += 1;
    }
    out
}

fn learner_records(records: &mut Vec<Record>) {
    let n = 256;
    let stream = learner_stream(n, 8);
    let cfg = Arc::new(DeployConfig::simple(1, 3, 5, 1, Policy::MultiCoordinated));
    let qsize = cfg.quorums.classic_size();
    let round = Round::new(0, 1, 0, RTYPE_MULTI);

    // Incremental: the production learner.
    records.push(Record {
        op: "learner_2b_stream",
        imp: "incremental",
        n,
        median_ns: median_ns(5, || {
            let mut l: Learner<CommandHistory<KvCmd>> = Learner::new(cfg.clone());
            let mut ctx = Sink {
                store: MemStore::new(),
            };
            for (from, val) in &stream {
                l.on_message(
                    *from,
                    Msg::P2b {
                        round,
                        val: Arc::new(val.clone()).into(),
                    },
                    &mut ctx,
                );
            }
            assert_eq!(l.learned().count(), n);
        }),
    });

    // From-scratch baseline: the seed's rule, re-enumerating every
    // quorum subset over full clones on every message.
    records.push(Record {
        op: "learner_2b_stream",
        imp: "scratch",
        n,
        median_ns: median_ns(3, || {
            let mut learned = CommandHistory::<KvCmd>::bottom();
            let mut reports: BTreeMap<ProcessId, CommandHistory<KvCmd>> = BTreeMap::new();
            for (from, val) in &stream {
                reports.insert(*from, val.clone());
                if reports.len() < qsize {
                    continue;
                }
                let vals: Vec<&CommandHistory<KvCmd>> = reports.values().collect();
                for idx in combinations(vals.len(), qsize) {
                    let g = glb_all(idx.iter().map(|&i| vals[i].clone()));
                    learned = learned.lub(&g).expect("compatible");
                }
            }
            assert_eq!(learned.count(), n);
        }),
    });
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let check = args.iter().any(|a| a == "--check");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_history.json".to_owned());

    let mut records = Vec::new();
    history_records(&mut records);
    learner_records(&mut records);

    // JSON artifact (hand-rolled: flat records, no escaping needed).
    let mut json = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"op\": \"{}\", \"impl\": \"{}\", \"n\": {}, \"median_ns\": {}}}{}\n",
            r.op,
            r.imp,
            r.n,
            r.median_ns,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");
    std::fs::write(&out_path, &json).expect("write artifact");

    // Human-readable table with speedups where both impls measured the
    // same (op, n).
    println!(
        "{:<18} {:>7} {:>14} {:>14} {:>9}",
        "op", "n", "indexed_ns", "ref_ns", "speedup"
    );
    let mut failures = Vec::new();
    for r in records
        .iter()
        .filter(|r| r.imp == "indexed" || r.imp == "incremental")
    {
        let baseline = records
            .iter()
            .find(|b| b.op == r.op && b.n == r.n && (b.imp == "ref" || b.imp == "scratch"));
        let (ref_ns, speedup) = match baseline {
            Some(b) => (
                b.median_ns.to_string(),
                format!("{:.1}x", b.median_ns as f64 / r.median_ns.max(1) as f64),
            ),
            None => ("-".into(), "-".into()),
        };
        println!(
            "{:<18} {:>7} {:>14} {:>14} {:>9}",
            r.op, r.n, r.median_ns, ref_ns, speedup
        );
        if check && r.n == 1024 && matches!(r.op, "eq" | "glb" | "lub") {
            let b = baseline.expect("baseline measured");
            let ratio = b.median_ns as f64 / r.median_ns.max(1) as f64;
            if ratio < 10.0 {
                failures.push(format!("{} at n={}: {:.1}x < 10x", r.op, r.n, ratio));
            }
        }
    }
    println!("wrote {out_path}");
    if !failures.is_empty() {
        eprintln!("speedup floor violated: {failures:?}");
        std::process::exit(1);
    }
}
