//! CI-facing sharding benchmark: throughput scaling across parallel
//! consensus instances (experiment E12).
//!
//! Pushes the same command count through 1, 2 and 4 shards at cross-shard
//! transfer fractions of 0%, 1% and 10%, emits `BENCH_shards.json` (a flat
//! array of per-run records) so every CI run leaves a comparable artifact,
//! and prints the scaling table. With `--check`, exits non-zero unless
//!
//! * every run learns and applies all commands (merge completeness),
//! * every run's merged bank state matches the 1-shard run of the same
//!   workload (sharding must not change semantics),
//! * 4 shards at 1% cross-shard traffic sustain ≥ 3× the 1-shard
//!   throughput (the near-linear-scaling floor).
//!
//! Usage: `cargo run --release -p mcpaxos-bench --bin bench_shards [--check] [--out PATH]`

use mcpaxos_bench::shard_bench::{
    shard_batched_run, shard_run, ShardRunStats, SHARD_BENCH_COMMANDS,
};
use std::fmt::Write as _;

const SHARD_COUNTS: [u16; 3] = [1, 2, 4];
const TRANSFER_FRACTIONS: [f64; 3] = [0.0, 0.01, 0.10];
const SEED: u64 = 42;

/// The scaling floor `--check` enforces at 4 shards, 1% cross-shard.
const SPEEDUP_FLOOR: f64 = 3.0;

fn json_record(s: &ShardRunStats, speedup: f64) -> String {
    format!(
        "{{\"shards\":{},\"transfer_pct\":{},\"commands\":{},\"cross_shard\":{},\
         \"applied\":{},\"elapsed_ms\":{:.1},\"cps\":{:.0},\"speedup_vs_1shard\":{:.2},\
         \"bank_total\":{}}}",
        s.shards,
        s.transfer_pct,
        s.commands,
        s.cross_shard,
        s.applied,
        s.elapsed_ms,
        s.cps,
        speedup,
        s.bank_total,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let check = args.iter().any(|a| a == "--check");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_shards.json".to_string());

    let mut runs: Vec<ShardRunStats> = Vec::new();
    for &frac in &TRANSFER_FRACTIONS {
        for &shards in &SHARD_COUNTS {
            let s = shard_run(shards, frac, SHARD_BENCH_COMMANDS, SEED);
            eprintln!(
                "shards={} transfers={:>4.1}%: {} cmds ({} cross) in {:.0} ms = {:.0} cps",
                s.shards, s.transfer_pct, s.commands, s.cross_shard, s.elapsed_ms, s.cps
            );
            runs.push(s);
        }
    }

    let base_cps = |pct: f64| {
        runs.iter()
            .find(|r| r.shards == 1 && (r.transfer_pct - pct).abs() < 1e-9)
            .map(|r| r.cps)
            .unwrap_or(f64::NAN)
    };

    // Batched-vs-unbatched scaling rows (informational, not gated): the
    // same 4-shard/1% workload with E14's batch=16/depth=8 knobs dialed
    // into every shard, measured in deterministic simulator ticks. The
    // 1/1 lockstep row is the disciplined single-wave baseline; knobs
    // off is free-running (every proposal ships immediately).
    let plain = shard_batched_run(4, 0, 0, SHARD_BENCH_COMMANDS, SEED);
    let lockstep = shard_batched_run(4, 1, 1, SHARD_BENCH_COMMANDS, SEED);
    let batched = shard_batched_run(4, 16, 8, SHARD_BENCH_COMMANDS, SEED);
    eprintln!(
        "shards=4: unbatched {} ticks, lockstep 1/1 {} ticks, batched 16/8 {} ticks ({:.1}x vs 1/1)",
        plain.end_ticks,
        lockstep.end_ticks,
        batched.end_ticks,
        lockstep.end_ticks as f64 / batched.end_ticks.max(1) as f64
    );

    let mut json = String::from("[\n");
    for s in &runs {
        let _ = writeln!(
            json,
            "  {},",
            json_record(s, s.cps / base_cps(s.transfer_pct))
        );
    }
    let batched_rows = [&plain, &lockstep, &batched];
    for (i, s) in batched_rows.into_iter().enumerate() {
        let sep = if i + 1 < batched_rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "  {{\"shards\":{},\"batch\":{},\"depth\":{},\"commands\":{},\"learned\":{},\
             \"end_ticks\":{},\"bank_total\":{}}}{sep}",
            s.shards, s.batch, s.depth, s.commands, s.learned, s.end_ticks, s.bank_total
        );
    }
    json.push_str("]\n");
    std::fs::write(&out, &json).expect("write BENCH_shards.json");
    eprintln!("wrote {out} ({} bytes)", json.len());

    println!(
        "throughput scaling ({} commands, wall-clock):",
        SHARD_BENCH_COMMANDS
    );
    println!("  transfers |  1 shard |  2 shards |  4 shards | 4-shard speedup");
    for &frac in &TRANSFER_FRACTIONS {
        let row: Vec<&ShardRunStats> = runs
            .iter()
            .filter(|r| (r.transfer_pct - frac * 100.0).abs() < 1e-9)
            .collect();
        println!(
            "  {:>8.1}% | {:>8.0} | {:>9.0} | {:>9.0} | {:>14.2}x",
            frac * 100.0,
            row[0].cps,
            row[1].cps,
            row[2].cps,
            row[2].cps / row[0].cps
        );
    }

    if check {
        let mut failed = Vec::new();
        for s in &runs {
            if s.applied != s.commands as u64 {
                failed.push(format!(
                    "{}-shard {}% run applied {} of {} commands",
                    s.shards, s.transfer_pct, s.applied, s.commands
                ));
            }
        }
        for &frac in &TRANSFER_FRACTIONS {
            let pct = frac * 100.0;
            let totals: Vec<u64> = runs
                .iter()
                .filter(|r| (r.transfer_pct - pct).abs() < 1e-9)
                .map(|r| r.bank_total)
                .collect();
            if totals.windows(2).any(|w| w[0] != w[1]) {
                failed.push(format!(
                    "{pct}% runs disagree on final bank total: {totals:?}"
                ));
            }
        }
        let speedup = runs
            .iter()
            .find(|r| r.shards == 4 && (r.transfer_pct - 1.0).abs() < 1e-9)
            .map(|r| r.cps / base_cps(1.0))
            .unwrap_or(0.0);
        if speedup < SPEEDUP_FLOOR {
            failed.push(format!(
                "4-shard speedup {speedup:.2}x < {SPEEDUP_FLOOR}x floor at 1% cross-shard"
            ));
        }
        if failed.is_empty() {
            println!(
                "CHECK PASSED (>= {SPEEDUP_FLOOR}x at 4 shards / 1% cross-shard, all applied, states agree)"
            );
        } else {
            for f in &failed {
                eprintln!("CHECK FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}
