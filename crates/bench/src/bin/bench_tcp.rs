//! TCP transport smoke + wire-byte accounting parity (CI-facing).
//!
//! Runs a full 1P/2C/3A/2L deployment with **every process on its own
//! [`TcpNode`]** over loopback, so each protocol message is framed onto
//! a real socket, with the live byte meter installed on every node. The
//! meter records `wire_bytes`/`wire_msgs` at hand-off to the transport
//! (the same accounting the simulator's E10 wire tables use); the
//! transport independently records `tcp_frames`/`tcp_frame_bytes` at
//! socket-write time. For every agent the two ledgers must agree
//! exactly:
//!
//! * `tcp_frames == wire_msgs` — every metered send became exactly one
//!   frame (no drops, no duplication, nothing unaccounted), and
//! * `tcp_frame_bytes == wire_bytes + (DATA_HEADER_BYTES +
//!   FRAME_OVERHEAD) * wire_msgs` — the framed size of a message is its
//!   wire encoding plus a fixed 13-byte envelope (packet tag + sender id
//!   + length prefix + CRC), as computed by [`framed_size_of`].
//!
//! Emits `BENCH_tcp.json` (one record per agent plus a summary). With
//! `--check`, exits non-zero unless the parity holds for every agent and
//! both learners learned every command.
//!
//! Usage: `cargo run --release -p mcpaxos-bench --bin bench_tcp [--check] [--out PATH]`

use mcpaxos_actor::frame::FRAME_OVERHEAD;
use mcpaxos_actor::wire::{self, Wire, WireError};
use mcpaxos_actor::ProcessId;
use mcpaxos_core::{
    Acceptor, Coordinator, DeployConfig, Learner, Msg, Policy, Proposer, WireConfig,
};
use mcpaxos_cstruct::{CStruct, CommandHistory, Conflict, ConflictKeys};
use mcpaxos_runtime::{framed_size_of, PeerTable, TcpConfig, TcpNode, DATA_HEADER_BYTES};
use std::collections::HashSet;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Keyed command: ~10% of pairs conflict (same key of 10).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct K(u16, u32);

impl Conflict for K {
    fn conflicts(&self, other: &Self) -> bool {
        self.0 == other.0
    }
    fn conflict_keys(&self) -> ConflictKeys {
        ConflictKeys::one(u64::from(self.0))
    }
}

impl Wire for K {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(i: &mut &[u8]) -> Result<Self, WireError> {
        Ok(K(u16::decode(i)?, u32::decode(i)?))
    }
}

type H = CommandHistory<K>;
type M = Msg<H>;

const N_CMDS: u32 = 60;
/// Fixed per-message envelope: packet tag + sender id + length prefix + CRC.
const ENVELOPE: u64 = DATA_HEADER_BYTES + FRAME_OVERHEAD;

fn cmd(i: u32) -> K {
    K((i % 10) as u16, i)
}

struct AgentRow {
    pid: u32,
    role: &'static str,
    wire_msgs: i64,
    wire_bytes: i64,
    tcp_frames: i64,
    tcp_frame_bytes: i64,
}

impl AgentRow {
    fn parity_holds(&self) -> bool {
        self.tcp_frames == self.wire_msgs
            && self.tcp_frame_bytes == self.wire_bytes + ENVELOPE as i64 * self.wire_msgs
    }
}

fn total(nodes: &[TcpNode<M>], name: &str) -> i64 {
    nodes.iter().map(|n| n.metrics().total(name)).sum()
}

fn of(nodes: &[TcpNode<M>], p: ProcessId, name: &str) -> i64 {
    nodes.iter().map(|n| n.metrics().of(p, name)).sum()
}

fn settle(nodes: &[TcpNode<M>], cfg: &DeployConfig, want: i64) {
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut last_snap = (-1i64, -1i64);
    let mut stable_since = Instant::now();
    loop {
        assert!(
            Instant::now() < deadline,
            "cluster failed to settle at {want} learned commands"
        );
        let reached = cfg
            .roles
            .learners()
            .iter()
            .all(|&l| of(nodes, l, "learned") >= want);
        let snap = (total(nodes, "learned"), total(nodes, "resends"));
        if snap != last_snap {
            last_snap = snap;
            stable_since = Instant::now();
        }
        if reached && stable_since.elapsed() >= Duration::from_millis(800) {
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let check = args.iter().any(|a| a == "--check");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_tcp.json".to_string());

    // `framed_size_of` must be the meter accounting plus the fixed
    // envelope — spot-check it against a real message before the run.
    let sample: M = Msg::Propose {
        cmd: cmd(7),
        acc_quorum: None,
    };
    assert_eq!(
        framed_size_of(ProcessId(1), &sample),
        wire::to_bytes(&sample).len() as u64 + ENVELOPE,
        "framed_size_of drifted from wire encoding + envelope"
    );

    let cfg = Arc::new(
        DeployConfig::simple(1, 2, 3, 2, Policy::MultiCoordinated).with_wire(WireConfig {
            delta_ship: true,
            ..WireConfig::default()
        }),
    );
    cfg.validate().expect("config");

    let peers = PeerTable::shared();
    let meter: mcpaxos_runtime::LiveByteMeter<M> =
        Arc::new(|m| (m.tag(), wire::to_bytes(m).len() as u64));

    // One node per process: every agent send is remote, so the byte
    // meter and the frame ledger see exactly the same traffic.
    let mut nodes: Vec<TcpNode<M>> = Vec::new();
    for _ in cfg.roles.all() {
        let mut n = TcpNode::bind(peers.clone(), TcpConfig::default()).expect("bind node");
        n.set_byte_meter(meter.clone());
        nodes.push(n);
    }
    let proposer = cfg.roles.proposers()[0];
    {
        let mut it = nodes.iter_mut();
        it.next()
            .unwrap()
            .spawn(proposer, Box::new(Proposer::<H>::new(cfg.clone())));
        for &c in cfg.roles.coordinators() {
            it.next()
                .unwrap()
                .spawn(c, Box::new(Coordinator::<H>::new(cfg.clone(), c)));
        }
        for &a in cfg.roles.acceptors() {
            it.next()
                .unwrap()
                .spawn(a, Box::new(Acceptor::<H>::new(cfg.clone())));
        }
        for &l in cfg.roles.learners() {
            it.next()
                .unwrap()
                .spawn(l, Box::new(Learner::<H>::new(cfg.clone())));
        }
    }

    let client = ProcessId(9_999);
    for i in 0..N_CMDS {
        nodes[0].send(
            proposer,
            client,
            Msg::Propose {
                cmd: cmd(i),
                acc_quorum: None,
            },
        );
    }
    settle(&nodes, &cfg, i64::from(N_CMDS));

    // Snapshot the two ledgers while the cluster is quiescent (settle's
    // stability window guarantees the outbound queues have drained).
    let role_of = |p: ProcessId| -> &'static str {
        if cfg.roles.is_proposer(p) {
            "proposer"
        } else if cfg.roles.is_coordinator(p) {
            "coordinator"
        } else if cfg.roles.is_acceptor(p) {
            "acceptor"
        } else {
            "learner"
        }
    };
    let rows: Vec<AgentRow> = cfg
        .roles
        .all()
        .into_iter()
        .map(|p| AgentRow {
            pid: p.raw(),
            role: role_of(p),
            wire_msgs: of(&nodes, p, "wire_msgs"),
            wire_bytes: of(&nodes, p, "wire_bytes"),
            tcp_frames: of(&nodes, p, "tcp_frames"),
            tcp_frame_bytes: of(&nodes, p, "tcp_frame_bytes"),
        })
        .collect();
    let queue_drops = total(&nodes, "tcp_queue_drops");
    let send_failures = total(&nodes, "send_failures");
    let frame_errors = total(&nodes, "tcp_frame_errors");

    // Authoritative learner check.
    let expected: HashSet<K> = (0..N_CMDS).map(cmd).collect();
    let mut learned_ok = true;
    for node in nodes {
        for (pid, actor) in node.stop() {
            if let Some(learner) = actor.as_any().downcast_ref::<Learner<H>>() {
                let got: HashSet<K> = learner.learned().commands().into_iter().collect();
                if learner.learned().total_len() != u64::from(N_CMDS) || got != expected {
                    eprintln!(
                        "learner {pid} diverged: {} learned (want {N_CMDS})",
                        learner.learned().total_len()
                    );
                    learned_ok = false;
                }
            }
        }
    }

    let mut json = String::from("{\n  \"agents\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"pid\":{},\"role\":\"{}\",\"wire_msgs\":{},\"wire_bytes\":{},\
             \"tcp_frames\":{},\"tcp_frame_bytes\":{},\"parity\":{}}}{}",
            r.pid,
            r.role,
            r.wire_msgs,
            r.wire_bytes,
            r.tcp_frames,
            r.tcp_frame_bytes,
            r.parity_holds(),
            sep,
        );
    }
    let _ = writeln!(
        json,
        "  ],\n  \"commands\": {N_CMDS},\n  \"envelope_bytes_per_msg\": {ENVELOPE},\n  \
         \"queue_drops\": {queue_drops},\n  \"send_failures\": {send_failures},\n  \
         \"frame_errors\": {frame_errors},\n  \"learned_ok\": {learned_ok}\n}}"
    );
    std::fs::write(&out, &json).expect("write BENCH_tcp.json");
    eprintln!("wrote {out} ({} bytes)", json.len());

    println!(
        "{:<6} {:<12} {:>10} {:>12} {:>10} {:>14}  parity",
        "pid", "role", "wire_msgs", "wire_bytes", "frames", "frame_bytes"
    );
    for r in &rows {
        println!(
            "{:<6} {:<12} {:>10} {:>12} {:>10} {:>14}  {}",
            r.pid,
            r.role,
            r.wire_msgs,
            r.wire_bytes,
            r.tcp_frames,
            r.tcp_frame_bytes,
            if r.parity_holds() { "ok" } else { "MISMATCH" },
        );
    }

    if check {
        let mut failed = Vec::new();
        for r in &rows {
            if !r.parity_holds() {
                failed.push(format!(
                    "pid {} ({}): frames {} vs msgs {}, frame_bytes {} vs wire_bytes {} + {}*msgs",
                    r.pid,
                    r.role,
                    r.tcp_frames,
                    r.wire_msgs,
                    r.tcp_frame_bytes,
                    r.wire_bytes,
                    ENVELOPE,
                ));
            }
        }
        if queue_drops != 0 || send_failures != 0 || frame_errors != 0 {
            failed.push(format!(
                "faultless run was lossy: queue_drops {queue_drops}, \
                 send_failures {send_failures}, frame_errors {frame_errors}"
            ));
        }
        if !learned_ok {
            failed.push("a learner missed commands".to_string());
        }
        if failed.is_empty() {
            println!(
                "CHECK PASSED (wire/frame ledgers agree for all {} agents)",
                rows.len()
            );
        } else {
            for f in &failed {
                eprintln!("CHECK FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}
