//! E10 — wire bytes and live memory under delta shipping and
//! stable-prefix compaction.
//!
//! The same 1 000-command, ~10 %-conflict KV workload runs twice on the
//! deterministic simulator with per-message byte accounting: once with
//! the paper's whole-c-struct messages (every `2a`/`2b` re-serializes the
//! full command history — O(n²) cumulative bytes) and once in bounded
//! mode ([`WireConfig::bounded`]: suffix deltas + learner-quorum stable
//! watermark + truncation). The bounded run must cut cumulative
//! `2a`/`2b` bytes ≥ 10× and keep every acceptor's live history window
//! bounded (non-monotonic over time) — `bench_wire --check` fails CI
//! otherwise.

use crate::harness::ClusterHarness;
use mcpaxos_actor::wire::to_bytes;
use mcpaxos_actor::SimTime;
use mcpaxos_core::{Acceptor, DeployConfig, Learner, Msg, Policy, WireConfig};
use mcpaxos_cstruct::{CStruct, CommandHistory};
use mcpaxos_simnet::NetConfig;
use mcpaxos_smr::{KvCmd, Workload};

type KvH = CommandHistory<KvCmd>;

/// Number of commands in the standard E10 run.
pub const WIRE_COMMANDS: u32 = 1_000;
/// Stable-segment / checkpoint cadence of the bounded mode.
pub const WIRE_SEGMENT: u64 = 64;
/// Conflict fraction of the workload.
pub const WIRE_RHO: f64 = 0.1;

/// Measurements of one wire run.
#[derive(Clone, Debug)]
pub struct WireRunStats {
    /// Run label ("full" or "bounded").
    pub label: &'static str,
    /// Commands injected (and required to be learned).
    pub commands: u32,
    /// Cumulative serialized bytes / message counts per protocol tag.
    pub bytes_2a: u64,
    /// Messages carrying "2a".
    pub count_2a: u64,
    /// Cumulative "2b" bytes.
    pub bytes_2b: u64,
    /// Messages carrying "2b".
    pub count_2b: u64,
    /// Cumulative "1b" bytes.
    pub bytes_1b: u64,
    /// Compaction-control bytes (`stable`/`stable_prop`/`stable_ack`/
    /// `needfull`/`needstable`): the overhead the savings pay for.
    pub bytes_control: u64,
    /// Cumulative bytes across every message tag.
    pub bytes_total: u64,
    /// Logical learned length at the end (must equal `commands`).
    pub learned_total: u64,
    /// Largest live history window observed at any acceptor.
    pub acc_live_max: usize,
    /// Final live window of the first acceptor.
    pub acc_live_final: usize,
    /// Whether any sampled acceptor live window *shrank* between samples
    /// (non-monotonic ⇔ truncation really reclaims memory).
    pub acc_live_decreased: bool,
    /// Final stable watermark at the learner.
    pub watermark: u64,
    /// Sum of `delta_sends` across agents.
    pub delta_sends: i64,
    /// Sum of `full_resyncs` across agents.
    pub full_resyncs: i64,
    /// Sum of `truncations` across agents.
    pub truncations: i64,
}

/// Runs the E10 workload with (`bounded = true`) or without the
/// delta/compaction machinery, byte-metered.
pub fn wire_run(bounded: bool, n: u32) -> WireRunStats {
    let wire = if bounded {
        WireConfig::bounded(WIRE_SEGMENT)
    } else {
        WireConfig::default()
    };
    let cfg = DeployConfig::simple(1, 3, 5, 1, Policy::MultiCoordinated).with_wire(wire);
    let mut h: ClusterHarness<KvH> = ClusterHarness::new(cfg, 42, NetConfig::lockstep());
    h.sim
        .enable_byte_meter(Box::new(|m: &Msg<KvH>| (m.tag(), to_bytes(m).len() as u64)));

    let mut w = Workload::new(9, 0, WIRE_RHO);
    let inject_end = 100 + 15 * u64::from(n);
    for i in 0..n {
        h.propose_at(SimTime(100 + 15 * u64::from(i)), 0, w.next_kv_put());
    }

    // Drive in slices, sampling every acceptor's live window.
    let learner_pid = h.cfg.roles.learners()[0];
    let acceptors = h.cfg.roles.acceptors().to_vec();
    let mut acc_live_max = 0usize;
    let mut acc_live_decreased = false;
    let mut prev_live: Vec<usize> = vec![0; acceptors.len()];
    let mut t = 0u64;
    let deadline = inject_end + 60_000;
    loop {
        t += 250;
        h.run_until(t);
        for (k, &a) in acceptors.iter().enumerate() {
            let live = h
                .sim
                .actor::<Acceptor<KvH>>(a)
                .expect("acceptor")
                .vval()
                .live_len();
            acc_live_max = acc_live_max.max(live);
            if live < prev_live[k] {
                acc_live_decreased = true;
            }
            prev_live[k] = live;
        }
        let learned_total = h
            .sim
            .actor::<Learner<KvH>>(learner_pid)
            .expect("learner")
            .learned()
            .total_len();
        if (learned_total >= u64::from(n) && t >= inject_end) || t >= deadline {
            break;
        }
    }

    let learner = h.sim.actor::<Learner<KvH>>(learner_pid).expect("learner");
    let learned_total = learner.learned().total_len();
    let watermark = learner.watermark();
    let acc_live_final = h
        .sim
        .actor::<Acceptor<KvH>>(acceptors[0])
        .expect("acceptor")
        .vval()
        .live_len();

    let wt = |tag: &str| h.sim.wire_total(tag);
    let control = wt("stable").bytes
        + wt("stable_prop").bytes
        + wt("stable_ack").bytes
        + wt("needfull").bytes
        + wt("needstable").bytes;
    let bytes_total = h.sim.wire_totals().values().map(|t| t.bytes).sum();

    WireRunStats {
        label: if bounded { "bounded" } else { "full" },
        commands: n,
        bytes_2a: wt("2a").bytes,
        count_2a: wt("2a").count,
        bytes_2b: wt("2b").bytes,
        count_2b: wt("2b").count,
        bytes_1b: wt("1b").bytes,
        bytes_control: control,
        bytes_total,
        learned_total,
        acc_live_max,
        acc_live_final,
        acc_live_decreased,
        watermark,
        delta_sends: h.metric_total("delta_sends"),
        full_resyncs: h.metric_total("full_resyncs"),
        truncations: h.metric_total("truncations"),
    }
}

/// Cumulative `2a`+`2b` bytes — the quantity the ≥10× floor is on.
pub fn data_plane_bytes(s: &WireRunStats) -> u64 {
    s.bytes_2a + s.bytes_2b
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small smoke run (the full 1k-command comparison lives in
    /// `bench_wire --check`, which CI runs in release).
    #[test]
    fn wire_run_smoke() {
        // Past one stable segment (64) so compaction actually runs.
        let full = wire_run(false, 100);
        let bounded = wire_run(true, 100);
        assert_eq!(full.learned_total, 100);
        assert_eq!(bounded.learned_total, 100);
        assert!(bounded.watermark > 0);
        assert!(bounded.acc_live_decreased, "no truncation observed");
        assert!(data_plane_bytes(&bounded) < data_plane_bytes(&full));
    }
}
