//! Minimal aligned-table rendering for experiment output.

use std::fmt;

/// One experiment's result table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id and title (e.g. "E1 — Latency in message steps").
    pub title: String,
    /// The paper claim being reproduced.
    pub claim: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Interpretation note appended under the table.
    pub note: String,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, claim: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            claim: claim.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            note: String::new(),
        }
    }

    /// Appends a data row.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Appends a data row from displayable values.
    pub fn push<D: fmt::Display>(&mut self, cells: &[D]) {
        self.row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    }

    /// Sets the interpretation note.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.note = note.into();
        self
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.chars().count());
            }
        }
        w
    }

    /// Renders as an aligned plain-text table.
    pub fn render_text(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&format!("claim: {}\n", self.claim));
        let line = |cells: &[String], w: &[usize]| -> String {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!("{:<width$}  ", c, width = w[i]));
            }
            s.trim_end().to_string()
        };
        out.push_str(&line(&self.headers, &w));
        out.push('\n');
        out.push_str(&"-".repeat(w.iter().sum::<usize>() + 2 * w.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &w));
            out.push('\n');
        }
        if !self.note.is_empty() {
            out.push_str(&format!("note: {}\n", self.note));
        }
        out
    }

    /// Renders as a Markdown section.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("**Paper claim:** {}\n\n", self.claim));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}|\n",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        if !self.note.is_empty() {
            out.push_str(&format!("\n*{}*\n", self.note));
        }
        out.push('\n');
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_text_and_markdown() {
        let mut t = Table::new("E0 — demo", "things hold", &["name", "value"]);
        t.push(&["alpha", "1"]);
        t.push(&["b", "22222"]);
        let text = t.render_text();
        assert!(text.contains("E0 — demo"));
        assert!(text.contains("alpha"));
        let md = t.render_markdown();
        assert!(md.contains("| name | value |"));
        assert!(md.contains("| b | 22222 |"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("x", "y", &["a", "b"]);
        t.push(&["only-one"]);
    }
}
