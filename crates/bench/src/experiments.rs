//! The experiment suite: one function per quantitative paper claim.
//!
//! All experiments run on the deterministic simulator with unit link
//! delays unless stated otherwise, so "latency" is measured in
//! communication steps — the unit used throughout the paper.

use crate::harness::{f2, ClusterHarness};
use crate::table::Table;
use mcpaxos_actor::SimTime;
use mcpaxos_core::{CollisionPolicy, CoordQuorum, DeployConfig, Durability, Policy, QuorumSpec};
use mcpaxos_cstruct::{CStruct, CmdSet, CommandHistory, SingleDecree};
use mcpaxos_simnet::{DelayDist, NetConfig};
use mcpaxos_smr::{KvCmd, Workload};

type Set = CmdSet<u32>;
type SD = SingleDecree<u32>;
type KvH = CommandHistory<KvCmd>;

fn policy_name(p: Policy) -> &'static str {
    match p {
        Policy::SingleCoordinated => "classic (single-coord)",
        Policy::MultiCoordinated => "multicoordinated",
        Policy::FastThenClassic => "fast",
        Policy::FastForever => "fast (uncoordinated)",
    }
}

/// E1 — learning latency in communication steps per round type.
pub fn e1_latency() -> Table {
    let mut t = Table::new(
        "E1 — Latency in communication steps",
        "classic = 3 steps, multicoordinated = 3 steps, fast = 2 steps (§1, §2.2, §3.1)",
        &[
            "round type",
            "n acceptors",
            "steps (1 cmd)",
            "steps (mean of 5)",
        ],
    );
    for policy in [
        Policy::SingleCoordinated,
        Policy::MultiCoordinated,
        Policy::FastThenClassic,
    ] {
        for n in [3usize, 5, 7] {
            let n_coord = 3;
            let cfg = DeployConfig::simple(1, n_coord, n, 1, policy);
            let mut h: ClusterHarness<Set> = ClusterHarness::new(cfg, 7, NetConfig::lockstep());
            h.propose_at(SimTime(100), 0, 0);
            for i in 1..5u32 {
                h.propose_at(SimTime(100 + 30 * u64::from(i)), 0, i);
            }
            h.run_until(2_000);
            let ls = h.latencies(0);
            let first = ls[0].map(|x| x.to_string()).unwrap_or_else(|| "-".into());
            t.row(&[
                policy_name(policy).to_string(),
                n.to_string(),
                first,
                f2(h.mean_latency(0)),
            ]);
        }
    }
    t.with_note(
        "Unit link delays: ticks = message steps. Multicoordinated matches classic \
         latency while using quorums of coordinators.",
    )
}

/// E2 — quorum size arithmetic.
pub fn e2_quorums() -> Table {
    let mut t = Table::new(
        "E2 — Quorum sizes",
        "classic quorums are majorities; fast quorums need ⌈3n/4⌉-ish sizes \
         (2E+F<n); ⌈(2n+1)/3⌉ serves both (§2.2)",
        &[
            "n",
            "classic quorum (F)",
            "fast quorum (E)",
            "uniform quorum",
            "coord quorum of 3",
            "coord quorum of 5",
        ],
    );
    for n in 3..=13usize {
        let maj = QuorumSpec::majority(n).expect("majority");
        let uni = QuorumSpec::uniform(n).expect("uniform");
        t.row(&[
            n.to_string(),
            format!("{} (F={})", maj.classic_size(), maj.f()),
            format!("{} (E={})", maj.fast_size(), maj.e()),
            uni.classic_size().to_string(),
            CoordQuorum::majority_of(3).quorum_size().to_string(),
            CoordQuorum::majority_of(5).quorum_size().to_string(),
        ]);
    }
    t.with_note(
        "Fast quorums are strictly larger than classic ones for every n — the \
         availability cost of fast rounds the paper's multicoordinated rounds avoid.",
    )
}

/// Shared scaffolding for E3/A1: a command stream with a crash.
fn availability_run(policy: Policy, n_coord: usize, crash_idx: Option<usize>) -> (f64, u64, i64) {
    let cfg = DeployConfig::simple(1, n_coord, 5, 1, policy);
    let mut h: ClusterHarness<Set> = ClusterHarness::new(cfg, 11, NetConfig::lockstep());
    for i in 0..40u32 {
        h.propose_at(SimTime(100 + 25 * u64::from(i)), 0, i);
    }
    if let Some(ci) = crash_idx {
        let victim = h.cfg.roles.coordinators()[ci];
        h.sim.crash_at(SimTime(500), victim);
    }
    h.run_until(8_000);
    let rounds = h.metric_total("rounds_started");
    (h.mean_latency(0), h.max_latency(0), rounds)
}

/// E3 — availability under coordinator failure.
pub fn e3_availability() -> Table {
    let mut t = Table::new(
        "E3 — Availability under coordinator failure",
        "a single-coordinated round stalls on leader crash (detect + elect + phase 1) \
         while a multicoordinated round keeps serving through surviving quorums (§4.1)",
        &[
            "scenario",
            "mean latency (steps)",
            "max latency (stall)",
            "rounds started",
        ],
    );
    let cases: Vec<(&str, Policy, Option<usize>)> = vec![
        ("classic, no failure", Policy::SingleCoordinated, None),
        ("classic, leader crash", Policy::SingleCoordinated, Some(0)),
        ("multi, no failure", Policy::MultiCoordinated, None),
        ("multi, leader crash", Policy::MultiCoordinated, Some(0)),
        (
            "multi, other coord crash",
            Policy::MultiCoordinated,
            Some(2),
        ),
    ];
    for (name, policy, crash) in cases {
        let (mean, max, rounds) = availability_run(policy, 3, crash);
        t.row(&[
            name.to_string(),
            f2(mean),
            max.to_string(),
            rounds.to_string(),
        ]);
    }
    t.with_note(
        "Max latency is the visible stall. The multicoordinated round absorbs any \
         single coordinator crash with no round change and no stall; the classic \
         round pays leader-election + phase 1 once its only coordinator dies.",
    )
}

/// E4 — load balance across coordinators and acceptors (§4.1).
pub fn e4_load_balance() -> Table {
    let mut t = Table::new(
        "E4 — Load balance",
        "fast rounds force each acceptor to handle >3/4 of commands; multicoordinated \
         rounds with majority quorums spread to ≈(1/2+1/nc) per coordinator and \
         ≈(1/2+1/n) per acceptor (§4.1)",
        &[
            "configuration",
            "acceptor share min..max",
            "coordinator share min..max",
        ],
    );
    let run = |policy: Policy, lb: bool| -> (Vec<f64>, Vec<f64>) {
        let cfg = DeployConfig::simple(1, 3, 5, 1, policy).with_load_balance(lb);
        let mut h: ClusterHarness<Set> = ClusterHarness::new(cfg, 3, NetConfig::lockstep());
        let n_cmds = 400u32;
        for i in 0..n_cmds {
            h.propose_at(SimTime(100 + 4 * u64::from(i)), 0, i);
        }
        h.run_until(6_000);
        // Share of commands each process participated in, via the accepts
        // (acceptors) and phase-2a forwards (coordinators) it performed.
        let acc = h.metric_per("accepts", h.cfg.roles.acceptors());
        let coord = h.metric_per("phase2a", h.cfg.roles.coordinators());
        let norm = |v: Vec<i64>| -> Vec<f64> {
            v.into_iter()
                .map(|x| (x as f64 / f64::from(n_cmds)).min(1.0))
                .collect()
        };
        (norm(acc), norm(coord))
    };
    let fmt_range = |v: &[f64]| -> String {
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(0.0_f64, f64::max);
        format!("{:.2}..{:.2}", lo, hi)
    };
    for (name, policy, lb) in [
        ("multi, broadcast", Policy::MultiCoordinated, false),
        ("multi, load-balanced", Policy::MultiCoordinated, true),
        ("fast, broadcast", Policy::FastThenClassic, false),
        ("fast, load-balanced", Policy::FastThenClassic, true),
    ] {
        let (acc, coord) = run(policy, lb);
        t.row(&[name.to_string(), fmt_range(&acc), fmt_range(&coord)]);
    }
    t.with_note(
        "Shares are fractions of proposed commands each process handled. \
         Load-balanced multicoordinated rounds drop acceptor shares toward 3/5 \
         (=classic quorum/n) while fast rounds cannot go below 4/5 (=fast quorum/n).",
    )
}

/// E5 — collision recovery cost (§2.2, §4.2).
pub fn e5_collision_cost() -> Table {
    let mut t = Table::new(
        "E5 — Collision recovery cost",
        "restart (new round) > coordinated (2a/2b reuse) > uncoordinated (local pick); \
         fast collisions waste acceptor disk writes, multicoordinated collisions none (§4.2)",
        &[
            "scenario",
            "mean decision steps",
            "collisions",
            "acceptor persists by decision time",
            "doomed persists (overwritten votes)",
        ],
    );
    // Drive two conflicting values at the same instant with slight jitter
    // until a collision occurs; average over colliding seeds.
    let run =
        |policy: Policy, collision: CollisionPolicy, n_coord: usize| -> (f64, i64, f64, i64) {
            let mut steps = Vec::new();
            let mut collisions = 0i64;
            let mut writes_per_cmd = Vec::new();
            let mut doomed = 0i64;
            for seed in 0..20u64 {
                let cfg = DeployConfig::simple(2, n_coord, 5, 1, policy).with_collision(collision);
                let mut h: ClusterHarness<SD> = ClusterHarness::new(
                    cfg,
                    seed,
                    NetConfig::lockstep().with_delay(DelayDist::Uniform(1, 2)),
                );
                h.propose_at(SimTime(100), 0, 111);
                h.propose_at(SimTime(100), 1, 222);
                // Sample acceptor persists at decision time, so post-decision
                // background traffic does not blur the collision cost.
                h.run_until_learned(0, 1, 6_000);
                let coll = h.metric_total("collision_fast") + h.metric_total("collision_mc");
                if coll == 0 {
                    continue; // only collided runs inform the recovery cost
                }
                collisions += coll;
                if let Some(Some(l)) = h.latencies(0).first() {
                    steps.push(*l as f64);
                }
                let w_at_decision: u64 = h.acceptor_writes().iter().sum();
                writes_per_cmd.push(w_at_decision as f64);
                doomed += h.metric_total("overwritten_votes");
            }
            let mean = |v: &[f64]| {
                if v.is_empty() {
                    f64::NAN
                } else {
                    v.iter().sum::<f64>() / v.len() as f64
                }
            };
            (mean(&steps), collisions, mean(&writes_per_cmd), doomed)
        };
    let cases: Vec<(&str, Policy, CollisionPolicy, usize)> = vec![
        (
            "fast + restart (4 extra steps)",
            Policy::FastThenClassic,
            CollisionPolicy::NewRound,
            3,
        ),
        (
            "fast + coordinated (2 extra)",
            Policy::FastThenClassic,
            CollisionPolicy::Coordinated,
            3,
        ),
        (
            "fast + uncoordinated",
            Policy::FastForever,
            CollisionPolicy::Uncoordinated,
            1,
        ),
        (
            "multi + coordinated",
            Policy::MultiCoordinated,
            CollisionPolicy::Coordinated,
            3,
        ),
    ];
    for (name, policy, collision, nc) in cases {
        let (steps, coll, writes, doomed) = run(policy, collision, nc);
        t.row(&[
            name.to_string(),
            f2(steps),
            coll.to_string(),
            f2(writes),
            doomed.to_string(),
        ]);
    }
    t.with_note(
        "SingleDecree consensus, two racing values; collided runs only. Persists \
         counted at decision time across all 5 acceptors (includes 5 startup writes \
         and the round-priming accepts): fast collisions persist doomed values \
         before recovering, multicoordinated collisions are detected *before* \
         acceptance and skip those wasted writes.",
    )
}

/// E6 — collision rate vs conflict fraction (Generalized Consensus payoff).
pub fn e6_conflict_rate() -> Table {
    let mut t = Table::new(
        "E6 — Collisions vs conflict fraction ρ",
        "commuting commands never collide; collision probability grows with the \
         fraction of interfering commands (§2.3, §3.2)",
        &[
            "ρ (hot-key fraction)",
            "multi: collisions/100 cmds",
            "multi: mean steps",
            "fast: collisions/100 cmds",
            "fast: mean steps",
        ],
    );
    for rho in [0.0, 0.25, 0.5, 1.0] {
        let mut cells = vec![format!("{rho:.2}")];
        for policy in [Policy::MultiCoordinated, Policy::FastThenClassic] {
            let mut collisions = 0i64;
            let mut lat = Vec::new();
            let mut cmds = 0u32;
            for seed in 0..4u64 {
                let cfg = DeployConfig::simple(2, 3, 5, 1, policy);
                let mut h: ClusterHarness<KvH> = ClusterHarness::new(
                    cfg,
                    seed,
                    NetConfig::lockstep().with_delay(DelayDist::Uniform(1, 3)),
                );
                let mut w0 = Workload::new(seed, 0, rho);
                let mut w1 = Workload::new(seed, 1, rho);
                for i in 0..25u64 {
                    h.propose_at(SimTime(100 + 12 * i), 0, w0.next_kv_put());
                    h.propose_at(SimTime(100 + 12 * i), 1, w1.next_kv_put());
                    cmds += 2;
                }
                h.run_until(20_000);
                collisions += h.metric_total("collision_mc") + h.metric_total("collision_fast");
                let m = h.mean_latency(0);
                if !m.is_nan() {
                    lat.push(m);
                }
            }
            let per100 = 100.0 * collisions as f64 / f64::from(cmds);
            let mean = lat.iter().sum::<f64>() / lat.len().max(1) as f64;
            cells.push(f2(per100));
            cells.push(f2(mean));
        }
        t.row(&cells);
    }
    t.with_note(
        "Key-value writes; ρ is the probability a command touches the single hot key. \
         At ρ=0 everything commutes and no collisions occur in either mode.",
    )
}

/// E7 — disk writes per command and per recovery (§4.4).
pub fn e7_disk_writes() -> Table {
    let mut t = Table::new(
        "E7 — Stable-storage writes",
        "acceptors: 1 write per accept, plus 1 at startup and 1 per recovery under the \
         MCount scheme (vs 1 per Phase1b naively); coordinators: no writes per command (§4.4)",
        &[
            "durability",
            "recoveries",
            "acceptor writes/cmd",
            "acceptor non-accept writes",
            "coordinator writes total",
        ],
    );
    for (durability, recoveries) in [
        (Durability::Reduced, 0usize),
        (Durability::Reduced, 2),
        (Durability::Naive, 0),
        (Durability::Naive, 2),
    ] {
        let cfg =
            DeployConfig::simple(1, 3, 5, 1, Policy::MultiCoordinated).with_durability(durability);
        let mut h: ClusterHarness<Set> = ClusterHarness::new(cfg, 9, NetConfig::lockstep());
        let n_cmds = 200u32;
        for i in 0..n_cmds {
            h.propose_at(SimTime(100 + 20 * u64::from(i)), 0, i);
        }
        let victim = h.cfg.roles.acceptors()[0];
        for r in 0..recoveries {
            let at = 1_000 + 800 * r as u64;
            h.sim.crash_at(SimTime(at), victim);
            h.sim.recover_at(SimTime(at + 120), victim);
        }
        h.run_until(12_000);
        let learned = h.learned(0).count() as f64;
        let acc_writes: u64 = h.acceptor_writes().iter().sum();
        let accepts = h.metric_total("accepts") as u64;
        let coord_writes: u64 = h.coordinator_writes().iter().sum();
        t.row(&[
            format!("{durability:?}"),
            recoveries.to_string(),
            f2(acc_writes as f64 / learned.max(1.0) / 5.0),
            (acc_writes.saturating_sub(accepts)).to_string(),
            coord_writes.to_string(),
        ]);
    }
    t.with_note(
        "200 commands, 5 acceptors, 3 coordinators. 'Non-accept writes' isolates the \
         round-promise writes: constant (startup + recovery bumps) under Reduced, \
         growing with every Phase1b under Naive. Coordinators write once per round \
         engaged (the crnd floor), never per command.",
    )
}

/// E8 — scenario crossover (§4.5): spontaneous order vs conflict-prone.
pub fn e8_crossover() -> Table {
    let mut t = Table::new(
        "E8 — Scenario crossover",
        "clustered systems (low jitter: spontaneous order) favour fast rounds; \
         conflict-prone networks favour multicoordinated/classic rounds (§4.5)",
        &[
            "jitter (max delay)",
            "ρ",
            "fast: steps",
            "fast: collisions",
            "multi: steps",
            "multi: collisions",
            "classic: steps",
            "winner",
        ],
    );
    for (jitter, rho) in [(1u64, 0.0), (1, 0.8), (6, 0.0), (6, 0.8), (15, 0.8)] {
        let mut results = Vec::new();
        for policy in [
            Policy::FastThenClassic,
            Policy::MultiCoordinated,
            Policy::SingleCoordinated,
        ] {
            let mut lat = Vec::new();
            let mut coll = 0i64;
            for seed in 0..4u64 {
                let cfg = DeployConfig::simple(2, 3, 5, 1, policy);
                let mut h: ClusterHarness<KvH> = ClusterHarness::new(
                    cfg,
                    seed,
                    NetConfig::lockstep().with_delay(DelayDist::Uniform(1, jitter.max(1))),
                );
                let mut w0 = Workload::new(seed, 0, rho);
                let mut w1 = Workload::new(seed, 1, rho);
                for i in 0..20u64 {
                    h.propose_at(SimTime(100 + 15 * i), 0, w0.next_kv_put());
                    h.propose_at(SimTime(100 + 15 * i), 1, w1.next_kv_put());
                }
                h.run_until(25_000);
                let m = h.mean_latency(0);
                if !m.is_nan() {
                    lat.push(m);
                }
                coll += h.metric_total("collision_mc") + h.metric_total("collision_fast");
            }
            let mean = lat.iter().sum::<f64>() / lat.len().max(1) as f64;
            results.push((mean, coll));
        }
        let names = ["fast", "multi", "classic"];
        let winner = names[results
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
            .map(|(i, _)| i)
            .unwrap_or(0)];
        t.row(&[
            jitter.to_string(),
            format!("{rho:.1}"),
            f2(results[0].0),
            results[0].1.to_string(),
            f2(results[1].0),
            results[1].1.to_string(),
            f2(results[2].0),
            winner.to_string(),
        ]);
    }
    t.with_note(
        "Mean learning latency in ticks (delays scale with jitter). Fast rounds win \
         when commands commute or arrive in spontaneous order; as conflicts and \
         reorderings grow, collisions erode their lead.",
    )
}

/// E9 — end-to-end generic broadcast comparison.
pub fn e9_generic_broadcast() -> Table {
    let mut t = Table::new(
        "E9 — Generic broadcast end to end",
        "multicoordinated rounds learn in 3 steps with majority (n−F) quorums; \
         fast rounds in 2 steps but with n−E quorums; classic needs the leader (§1, §3.3)",
        &[
            "protocol",
            "acceptor quorum",
            "ρ=0 steps",
            "ρ=0.5 steps",
            "ρ=0.5 collisions",
            "survives 1 coord crash w/o round change",
        ],
    );
    for policy in [
        Policy::SingleCoordinated,
        Policy::MultiCoordinated,
        Policy::FastThenClassic,
    ] {
        let mut per_rho = Vec::new();
        for rho in [0.0, 0.5] {
            let mut lat = Vec::new();
            let mut coll = 0i64;
            for seed in 0..3u64 {
                let cfg = DeployConfig::simple(2, 3, 5, 2, policy);
                let mut h: ClusterHarness<KvH> = ClusterHarness::new(
                    cfg,
                    seed,
                    NetConfig::lockstep().with_delay(DelayDist::Uniform(1, 4)),
                );
                let mut w0 = Workload::new(seed, 0, rho);
                let mut w1 = Workload::new(seed, 1, rho);
                for i in 0..20u64 {
                    h.propose_at(SimTime(100 + 10 * i), 0, w0.next_kv_put());
                    h.propose_at(SimTime(100 + 10 * i), 1, w1.next_kv_put());
                }
                h.run_until(20_000);
                let m = h.mean_latency(0);
                if !m.is_nan() {
                    lat.push(m);
                }
                coll += h.metric_total("collision_mc") + h.metric_total("collision_fast");
            }
            let mean = lat.iter().sum::<f64>() / lat.len().max(1) as f64;
            per_rho.push((mean, coll));
        }
        let quorum = match policy {
            Policy::FastThenClassic | Policy::FastForever => {
                format!(
                    "{} of 5 (fast)",
                    QuorumSpec::majority(5).unwrap().fast_size()
                )
            }
            _ => format!(
                "{} of 5 (majority)",
                QuorumSpec::majority(5).unwrap().classic_size()
            ),
        };
        let survives = matches!(policy, Policy::MultiCoordinated);
        t.row(&[
            policy_name(policy).to_string(),
            quorum,
            f2(per_rho[0].0),
            f2(per_rho[1].0),
            per_rho[1].1.to_string(),
            if survives {
                "yes (2-of-3 quorums)"
            } else {
                "no"
            }
            .to_string(),
        ]);
    }
    t.with_note(
        "Key-value commands through the generic broadcast stack. The multicoordinated \
         column is the paper's contribution: classic latency and quorums, no single \
         leader on the critical path.",
    )
}

/// A1 — ablation: coordinator-set size for multicoordinated rounds.
pub fn a1_coordquorum_size() -> Table {
    let mut t = Table::new(
        "A1 — Ablation: coordinator-set size",
        "more coordinators per round buy availability, not latency: quorums of \
         ⌊nc/2⌋+1 tolerate ⌈nc/2⌉−1 crashes (§4.1, §4.5)",
        &[
            "coordinators",
            "coord quorum",
            "crashes tolerated",
            "steps (no failure)",
            "stall after 1 coord crash",
            "rounds started",
        ],
    );
    for nc in [1usize, 3, 5] {
        let cq = CoordQuorum::majority_of(nc);
        // nc = 1 means single-coordinated rounds; backup coordinators are
        // still deployed so leader election can replace a crashed leader.
        let (policy, deployed, victim) = if nc == 1 {
            (Policy::SingleCoordinated, 3, 0)
        } else {
            (Policy::MultiCoordinated, nc, nc - 1)
        };
        let (mean, _max, _r) = availability_run(policy, deployed, None);
        let (_m2, max2, rounds2) = availability_run(policy, deployed, Some(victim));
        t.row(&[
            nc.to_string(),
            cq.quorum_size().to_string(),
            cq.failures_tolerated().to_string(),
            f2(mean),
            max2.to_string(),
            rounds2.to_string(),
        ]);
    }
    t.with_note(
        "With one coordinator the crash is a leader crash (visible stall, extra \
         round); with 3 or 5 the surviving majority quorum keeps the round going.",
    )
}

/// E10 — wire bytes and live memory: delta-shipped c-structs and
/// stable-prefix compaction vs. the paper's whole-value messages.
pub fn e10_wire() -> Table {
    use crate::wire_bench::{data_plane_bytes, wire_run, WIRE_COMMANDS, WIRE_SEGMENT};
    let mut t = Table::new(
        "E10 — Wire bytes and memory under delta shipping + compaction",
        "whole-c-struct 2a/2b messages cost O(n²) cumulative bytes and unbounded \
         acceptor state; suffix deltas + a learner-quorum stable watermark bound \
         both (MultiPaxos Made Complete's snapshot/trim discipline, applied to \
         generalized c-structs)",
        &[
            "mode",
            "cum 2a bytes",
            "cum 2b bytes",
            "control bytes",
            "acc window max/final",
            "watermark",
            "deltas/resyncs/truncs",
        ],
    );
    let full = wire_run(false, WIRE_COMMANDS);
    let bounded = wire_run(true, WIRE_COMMANDS);
    for s in [&full, &bounded] {
        assert_eq!(
            s.learned_total,
            u64::from(s.commands),
            "{}: run must learn everything",
            s.label
        );
        t.row(&[
            s.label.to_string(),
            s.bytes_2a.to_string(),
            s.bytes_2b.to_string(),
            s.bytes_control.to_string(),
            format!("{}/{}", s.acc_live_max, s.acc_live_final),
            s.watermark.to_string(),
            format!("{}/{}/{}", s.delta_sends, s.full_resyncs, s.truncations),
        ]);
    }
    let ratio = data_plane_bytes(&full) as f64 / data_plane_bytes(&bounded).max(1) as f64;
    t.with_note(format!(
        "{} commands, ~10% conflicts, segment = {}. Cumulative 2a+2b bytes drop \
         {:.1}× (CI floor: ≥10×, `bench_wire --check`); the bounded acceptor \
         window stays non-monotonic (truncation reclaims memory) instead of \
         growing to the full history.",
        WIRE_COMMANDS, WIRE_SEGMENT, ratio
    ))
}

/// E11 — WAL group commit: fsync amortization vs per-vote flushing.
pub fn e11_wal() -> Table {
    use crate::wal_bench::{sync_reduction, wal_run, WAL_COMMANDS, WAL_GROUP_COMMIT};
    let mut t = Table::new(
        "E11 — WAL group commit: fsync amortization",
        "§4.4 charges one stable write per accept per acceptor; an append-only WAL \
         with group commit keeps that logical write but batches the *syncs*, \
         deferring each \"2b\" to the flush tick so no acceptor announces a vote a \
         crash could erase (soundness exhausted by the model_check suite)",
        &[
            "flush policy",
            "acceptor syncs",
            "syncs/cmd/acceptor",
            "reduction",
            "mean steps",
            "max stall",
            "corrupt records",
        ],
    );
    let baseline = wal_run(0, WAL_COMMANDS);
    for s in [
        &baseline,
        &wal_run(2, WAL_COMMANDS),
        &wal_run(WAL_GROUP_COMMIT, WAL_COMMANDS),
    ] {
        assert_eq!(
            s.learned, WAL_COMMANDS as usize,
            "{}: run must learn everything",
            s.label
        );
        t.row(&[
            s.label.clone(),
            s.acc_syncs.to_string(),
            format!("{:.3}", s.syncs_per_cmd),
            format!("{:.1}x", sync_reduction(&baseline, s)),
            f2(s.mean_latency),
            s.max_latency.to_string(),
            s.corrupt_records.to_string(),
        ]);
    }
    t.with_note(format!(
        "{} commands paced one per tick, 5 WAL-backed acceptors, Reduced durability. \
         The per-vote row syncs every accept (the E7 accounting); group commit \
         amortizes the same logical writes into one flush per interval at the cost \
         of up to one interval of extra learning latency (CI floor: ≥5x at \
         gc={}, `bench_wal --check`).",
        WAL_COMMANDS, WAL_GROUP_COMMIT
    ))
}

/// E12 — sharding the command space into parallel consensus instances.
pub fn e12_shards() -> Table {
    use crate::shard_bench::shard_wire_run;
    const E12_COMMANDS: usize = 240;
    const E12_TRANSFERS: f64 = 0.01;
    let mut t = Table::new(
        "E12 — Sharded parallel instances (WPaxos-style key partitioning)",
        "one consensus instance serializes every message through one history, so \
         per-message work and wire bytes grow with the whole command stream; \
         hashing conflict keys over S independent Multicoordinated Paxos \
         instances divides that work ~S× while cross-shard commands (multi-key \
         transfers, universal-key audits) stay correct via sequenced submission \
         to every involved shard and conflict-ordered merge",
        &[
            "shards",
            "cross-shard cmds",
            "ticks to learn all",
            "total wire bytes",
            "max shard bytes",
            "bytes vs 1 shard",
        ],
    );
    let runs: Vec<_> = [1u16, 2, 4]
        .iter()
        .map(|&s| shard_wire_run(s, E12_TRANSFERS, E12_COMMANDS, 42))
        .collect();
    let batched = {
        use crate::shard_bench::shard_wire_run_tuned;
        use mcpaxos_core::BatchConfig;
        shard_wire_run_tuned(4, E12_TRANSFERS, E12_COMMANDS, 42, |c| {
            c.with_batching(BatchConfig::pipelined(16, 8))
        })
    };
    let base_bytes = runs[0].total_bytes;
    for (r, label) in runs
        .iter()
        .map(|r| (r, r.shards.to_string()))
        .chain([(&batched, "4 + batch 16/8".to_string())])
    {
        assert_eq!(
            r.bank_total, runs[0].bank_total,
            "{label}-shard run diverged from the unsharded state"
        );
        t.row(&[
            label,
            r.cross_shard.to_string(),
            r.end_ticks.to_string(),
            r.total_bytes.to_string(),
            r.per_shard_bytes
                .iter()
                .max()
                .copied()
                .unwrap_or(0)
                .to_string(),
            format!("{:.2}x", r.total_bytes as f64 / base_bytes as f64),
        ]);
    }
    t.with_note(format!(
        "{} bank commands over 4k accounts, {:.0}% two-account transfers, default \
         full-payload wire mode: each shard's per-message cost is proportional to \
         its own history, so total bytes (and the wall-clock work they proxy) \
         shrink near-linearly in the shard count while every run merges to the \
         same bank state. The batched row dials E14's batch=16/depth=8 knobs into \
         every shard: sharding and batching compose — same final state, and \
         fewer, larger 2a waves trim the wire-byte total further. Wall-clock scaling is gated separately: `cargo run \
         --release -p mcpaxos-bench --bin bench_shards -- --check` demands ≥3× \
         throughput at 4 shards / 1% cross-shard and writes `BENCH_shards.json`.",
        E12_COMMANDS,
        E12_TRANSFERS * 100.0
    ))
}

/// E13 — coordinator churn on a 3-DC WAN: worst-case delivery stall per
/// scenario and policy.
pub fn e13_churn() -> Table {
    use crate::churn_bench::{
        churn_matrix, stall_ratio, ChurnScenario, CHURN_COMMANDS, CHURN_SEED,
    };
    let mut t = Table::new(
        "E13 — Coordinator churn on a 3-DC WAN",
        "a single-coordinated round stalls for the whole detect-elect-rephase \
         window on every leader fault; a multicoordinated round keeps serving \
         through its surviving coordinator quorum, so its worst-case stall stays \
         near the WAN base latency (§4.1, under churn)",
        &[
            "scenario",
            "policy",
            "learned",
            "mean latency",
            "worst stall",
            "suspicions (false)",
            "failovers",
        ],
    );
    let matrix = churn_matrix(CHURN_SEED);
    for r in &matrix {
        assert_eq!(
            r.learned,
            u64::from(CHURN_COMMANDS),
            "{} / {}: churn run must learn everything",
            r.scenario,
            r.policy
        );
        t.row(&[
            r.scenario.to_string(),
            r.policy.to_string(),
            format!("{}/{}", r.learned, r.commands),
            f2(r.mean_latency),
            r.max_stall.to_string(),
            format!("{} ({})", r.suspicions, r.false_suspicions),
            r.failovers.to_string(),
        ]);
    }
    t.with_note(format!(
        "{} commands on a 3-datacenter latency matrix (1-tick LANs, 20–40-tick \
         WAN links), failure detector at 200 ticks, proposer backoff to 900. \
         Same chaos seed per scenario, so runs compare stall-for-stall; the \
         leader-crash worst-stall ratio here is {:.1}x (CI floor: ≥3x, \
         `bench_churn --check`, which also writes the per-command delivery \
         time series to BENCH_churn.json).",
        CHURN_COMMANDS,
        stall_ratio(&matrix, ChurnScenario::LeaderCrash),
    ))
}

/// E14 — batched + pipelined hot path: open- vs closed-loop throughput.
pub fn e14_throughput() -> Table {
    use crate::throughput_bench::{closed_loop_run, open_loop_run, THROUGHPUT_RATE};
    const E14_COMMANDS: usize = 256;
    const E14_WINDOW: usize = 64;
    const E14_SEED: u64 = 42;
    let mut t = Table::new(
        "E14 — Batched + pipelined hot path: open- vs closed-loop throughput",
        "one 2a/2b/WAL cycle per command caps the lockstep pipeline at one \
         command per round trip; batching k proposals into one wave and keeping \
         d waves in flight amortizes that cycle k·d-fold, which an open-loop \
         arrival stream (fixed rate, backlog shows up as latency) measures \
         honestly where a closed loop would throttle itself",
        &[
            "mode",
            "batch/depth",
            "learned",
            "cmds/s",
            "p50",
            "p99",
            "p999",
            "waves (cmds/wave)",
        ],
    );
    let grid = [(0usize, 0usize), (1, 1), (16, 8)];
    let mut open_runs = Vec::new();
    for &(b, d) in &grid {
        open_runs.push(open_loop_run(b, d, E14_COMMANDS, E14_SEED));
    }
    let closed = closed_loop_run(16, 8, E14_COMMANDS, E14_WINDOW, E14_SEED);
    for s in open_runs.iter().chain([&closed]) {
        assert_eq!(
            s.learned, E14_COMMANDS,
            "{} b={}/d={}: run must learn everything",
            s.mode, s.batch, s.depth
        );
        let occupancy = if s.batches > 0 {
            format!(
                "{} ({:.1})",
                s.batches,
                s.batched_cmds as f64 / s.batches as f64
            )
        } else {
            "-".to_string()
        };
        t.row(&[
            s.mode.to_string(),
            if s.batch == 0 {
                "off".to_string()
            } else {
                format!("{}/{}", s.batch, s.depth)
            },
            format!("{}/{}", s.learned, s.commands),
            format!("{:.0}", s.cps),
            s.lat.p50.to_string(),
            s.lat.p99.to_string(),
            s.lat.p999.to_string(),
            occupancy,
        ]);
    }
    let speedup = open_runs[2].cps / open_runs[1].cps;
    t.with_note(format!(
        "{} kv-put commands, open-loop at {} cmds/tick (1 tick = 1 ms), \
         closed-loop window {}. Percentiles are nearest-rank over per-command \
         delivery latencies. Batch=16/depth=8 vs the in-scheduler lockstep \
         baseline (batch=1/depth=1) is {:.1}x here (CI floor: ≥5x, \
         `bench_throughput --check`, which also writes the full sweep to \
         BENCH_throughput.json).",
        E14_COMMANDS, THROUGHPUT_RATE, E14_WINDOW, speedup
    ))
}

/// Smoke check used by the test-suite: every experiment renders non-empty.
pub fn smoke() -> Vec<(String, usize)> {
    crate::all_experiments()
        .into_iter()
        .map(|t| (t.title.clone(), t.rows.len()))
        .collect()
}
