//! Shared workload generation for the command-history micro-benchmarks
//! (`benches/history_ops.rs` and the CI-facing `bench_history` binary).

use mcpaxos_smr::{KvCmd, Workload};

/// Parameters of a benchmark conflict workload.
#[derive(Clone, Copy, Debug)]
pub struct ConflictProfile {
    /// Conflict fraction `rho` (probability a command hits the hot key).
    pub rho: f64,
    /// Workload seed.
    pub seed: u64,
}

impl Default for ConflictProfile {
    /// The acceptance-criterion workload: ~10% conflict rate.
    fn default() -> Self {
        ConflictProfile { rho: 0.1, seed: 42 }
    }
}

/// Two command sequences of `n` commands each, sharing an `n/2`-command
/// prefix and then diverging — the shape two acceptors' values take when
/// a round accepts concurrently. Conflicts are controlled by
/// `profile.rho` (hot-key fraction), mirroring the E6/E8 experiments.
pub fn diverging_cmds(n: usize, profile: ConflictProfile) -> (Vec<KvCmd>, Vec<KvCmd>) {
    let mut w1 = Workload::new(profile.seed, 0, profile.rho);
    let mut w2 = Workload::new(profile.seed + 1, 1, profile.rho);
    let base: Vec<KvCmd> = (0..n / 2).map(|_| w1.next_kv_put()).collect();
    let mut a = base.clone();
    let mut b = base;
    for _ in 0..n.div_ceil(2) {
        a.push(w1.next_kv_put());
        b.push(w2.next_kv_put());
    }
    (a, b)
}
