//! Reusable cluster harness for experiments: deploy, drive, measure.

use mcpaxos_actor::{ProcessId, SimTime};
use mcpaxos_core::{Acceptor, Coordinator, DeployConfig, Learner, Msg, Proposer};
use mcpaxos_cstruct::CStruct;
use mcpaxos_simnet::{NetConfig, Sim};
use std::sync::Arc;

/// The pseudo-client id used for injected proposals.
pub const CLIENT: ProcessId = ProcessId(9_999);

/// A deployed cluster plus measurement bookkeeping.
pub struct ClusterHarness<C: CStruct> {
    /// The deployment configuration.
    pub cfg: Arc<DeployConfig>,
    /// The simulator hosting the cluster.
    pub sim: Sim<Msg<C>>,
    injected: Vec<SimTime>,
}

impl<C: CStruct> ClusterHarness<C> {
    /// Deploys every role of `cfg` into a fresh simulator over the default
    /// per-write-sync [`mcpaxos_actor::MemStore`] storage.
    pub fn new(cfg: DeployConfig, seed: u64, net: NetConfig) -> Self {
        Self::build(cfg, Sim::new(seed, net))
    }

    /// Like [`ClusterHarness::new`], but backs every process with storage
    /// from `factory` (e.g. a [`mcpaxos_actor::WalStore`] for the E11
    /// group-commit measurements).
    pub fn with_storage<F>(cfg: DeployConfig, seed: u64, net: NetConfig, factory: F) -> Self
    where
        F: FnMut(ProcessId) -> Box<dyn mcpaxos_actor::StableStore> + 'static,
    {
        let mut sim: Sim<Msg<C>> = Sim::new(seed, net);
        sim.set_storage_factory(factory);
        Self::build(cfg, sim)
    }

    fn build(cfg: DeployConfig, mut sim: Sim<Msg<C>>) -> Self {
        cfg.validate().expect("invalid deployment config");
        let cfg = Arc::new(cfg);
        for &p in cfg.roles.proposers() {
            let cfg = cfg.clone();
            sim.add_process(p, move || Box::new(Proposer::<C>::new(cfg.clone())));
        }
        for &p in cfg.roles.coordinators() {
            let cfg = cfg.clone();
            sim.add_process(p, move || Box::new(Coordinator::<C>::new(cfg.clone(), p)));
        }
        for &p in cfg.roles.acceptors() {
            let cfg = cfg.clone();
            sim.add_process(p, move || Box::new(Acceptor::<C>::new(cfg.clone())));
        }
        for &p in cfg.roles.learners() {
            let cfg = cfg.clone();
            sim.add_process(p, move || Box::new(Learner::<C>::new(cfg.clone())));
        }
        ClusterHarness {
            cfg,
            sim,
            injected: Vec::new(),
        }
    }

    /// Injects `cmd` at the `idx`-th proposer at time `t`, recording the
    /// injection for latency accounting.
    pub fn propose_at(&mut self, t: SimTime, idx: usize, cmd: C::Cmd) {
        let p = self.cfg.roles.proposers()[idx % self.cfg.roles.proposers().len()];
        self.injected.push(t);
        self.sim.inject_at(
            t,
            p,
            CLIENT,
            Msg::Propose {
                cmd,
                acc_quorum: None,
            },
        );
    }

    /// Runs the simulation to time `t`.
    pub fn run_until(&mut self, t: u64) {
        self.sim.run_until(SimTime(t));
    }

    /// Runs in 25-tick increments until learner `idx` holds at least
    /// `count` commands or `max_t` is reached; returns the stop time.
    pub fn run_until_learned(&mut self, idx: usize, count: usize, max_t: u64) -> u64 {
        let mut t = self.sim.now().ticks();
        while t < max_t {
            if self.learned(idx).count() >= count {
                break;
            }
            t = (t + 25).min(max_t);
            self.sim.run_until(SimTime(t));
        }
        t
    }

    /// The learned c-struct of learner `idx`.
    pub fn learned(&self, idx: usize) -> C {
        let l = self.cfg.roles.learners()[idx];
        self.sim
            .actor::<Learner<C>>(l)
            .expect("learner exists")
            .learned()
            .clone()
    }

    /// Per-command latencies in ticks at learner `idx`: the k-th latency
    /// is the time the learner first held ≥ k+1 commands minus the k-th
    /// injection time (injections sorted by time). `None` for commands
    /// never learned.
    pub fn latencies(&self, idx: usize) -> Vec<Option<u64>> {
        let l = self.cfg.roles.learners()[idx];
        let history = self
            .sim
            .actor::<Learner<C>>(l)
            .expect("learner exists")
            .history()
            .to_vec();
        let mut inj = self.injected.clone();
        inj.sort_unstable();
        inj.iter()
            .enumerate()
            .map(|(k, &t_inj)| {
                history
                    .iter()
                    .find(|(_, n)| *n > k)
                    .map(|(t, _)| t.since(t_inj).ticks())
            })
            .collect()
    }

    /// Mean of the learned latencies at learner `idx` (ignoring losses).
    pub fn mean_latency(&self, idx: usize) -> f64 {
        let ls: Vec<u64> = self.latencies(idx).into_iter().flatten().collect();
        if ls.is_empty() {
            return f64::NAN;
        }
        ls.iter().sum::<u64>() as f64 / ls.len() as f64
    }

    /// Maximum learned latency at learner `idx` (the stall indicator).
    pub fn max_latency(&self, idx: usize) -> u64 {
        self.latencies(idx).into_iter().flatten().max().unwrap_or(0)
    }

    /// Total of a metric across processes.
    pub fn metric_total(&self, name: &str) -> i64 {
        self.sim.metrics().total(name)
    }

    /// Metric value per process, for the given role subset.
    pub fn metric_per(&self, name: &str, procs: &[ProcessId]) -> Vec<i64> {
        procs
            .iter()
            .map(|&p| self.sim.metrics().of(p, name))
            .collect()
    }

    /// Stable-storage write counts of every acceptor.
    pub fn acceptor_writes(&self) -> Vec<u64> {
        self.cfg
            .roles
            .acceptors()
            .iter()
            .map(|&a| self.sim.storage(a).map(|s| s.write_count()).unwrap_or(0))
            .collect()
    }

    /// Stable-storage write counts of every coordinator.
    pub fn coordinator_writes(&self) -> Vec<u64> {
        self.cfg
            .roles
            .coordinators()
            .iter()
            .map(|&c| self.sim.storage(c).map(|s| s.write_count()).unwrap_or(0))
            .collect()
    }

    /// Number of commands injected so far.
    pub fn injected_count(&self) -> usize {
        self.injected.len()
    }
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    if x.is_nan() {
        "-".to_string()
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpaxos_core::Policy;
    use mcpaxos_cstruct::CmdSet;

    #[test]
    fn harness_measures_latency() {
        let cfg = DeployConfig::simple(1, 3, 5, 1, Policy::MultiCoordinated);
        let mut h: ClusterHarness<CmdSet<u32>> = ClusterHarness::new(cfg, 1, NetConfig::lockstep());
        h.propose_at(SimTime(100), 0, 7);
        h.run_until(500);
        assert_eq!(h.latencies(0), vec![Some(3)]);
        assert_eq!(h.mean_latency(0), 3.0);
        assert_eq!(h.max_latency(0), 3);
        assert_eq!(h.learned(0).count(), 1);
        assert!(h.metric_total("accepts") > 0);
        assert_eq!(h.acceptor_writes().len(), 5);
        assert_eq!(h.injected_count(), 1);
    }
}
