//! End-to-end sharding tests: full consensus (proposers, coordinators,
//! acceptors, learners) on every shard, driven through the
//! [`ShardedHarness`].
//!
//! The differential test pins sharded semantics against an unsharded run:
//! seed deposits land first (driven to completion), then a mixed wave of
//! deposits, cross-shard transfers and one universal-key audit. Because
//! every account is seeded far above the total transfer volume, no guarded
//! operation can fail in any legal order, so the final bank state is
//! order-independent — 1-, 2- and 3-shard runs must agree exactly.

use mcpaxos_actor::{SimDuration, WalStore};
use mcpaxos_bench::ShardedHarness;
use mcpaxos_core::{Policy, WireConfig};
use mcpaxos_cstruct::CStruct;
use mcpaxos_simnet::NetConfig;
use mcpaxos_smr::{Bank, BankCmd, BankOp, CmdId, Workload};

const ACCOUNTS: u16 = 16;
const SEED_AMOUNT: u32 = 1_000_000;
const WAVE: usize = 60;

/// Runs the two-wave workload on `shards` consensus instances and returns
/// the merged bank state.
fn run_sharded(shards: u16) -> Bank {
    let mut h = ShardedHarness::new(shards, Policy::MultiCoordinated, 11, NetConfig::lockstep());

    // Wave 1: seed every account, and let the cluster finish learning the
    // seeds before any guarded command is proposed.
    let mut t = 100;
    for a in 0..ACCOUNTS {
        h.submit_at(
            t,
            BankCmd {
                id: CmdId {
                    client: 8,
                    seq: u32::from(a),
                },
                op: BankOp::Deposit {
                    account: a,
                    amount: SEED_AMOUNT,
                },
            },
        );
        t += 2;
    }
    t = h.drive_until_done(100_000);
    assert!(h.done(), "{shards}-shard seed wave stalled at t={t}");

    // Wave 2: deposits + transfers (cross-shard when the accounts hash to
    // different shards), closed by a universal-key audit that involves
    // every shard.
    let mut w = Workload::new(11, 0, 0.0)
        .with_cold_keys(ACCOUNTS)
        .with_transfer_fraction(0.25);
    for _ in 0..WAVE {
        t += 2;
        let cmd = w.next_sharded_bank();
        h.submit_at(t, cmd);
    }
    t += 2;
    h.submit_at(
        t,
        BankCmd {
            id: CmdId { client: 9, seq: 0 },
            op: BankOp::Audit,
        },
    );
    let end = h.drive_until_done(t + 400_000);
    assert!(h.done(), "{shards}-shard main wave stalled at t={end}");

    let rep = h.merged();
    let total = usize::from(ACCOUNTS) + WAVE + 1;
    assert_eq!(
        rep.applied_count(),
        total as u64,
        "{shards}-shard run must apply every command exactly once"
    );
    assert_eq!(
        rep.pending(),
        0,
        "{shards}-shard merge left commands stranded"
    );
    rep.machine().clone()
}

#[test]
fn sharded_runs_match_unsharded_differential() {
    let unsharded = run_sharded(1);
    assert_eq!(
        unsharded.rejected(),
        0,
        "seeding must make every transfer succeed"
    );
    assert_eq!(unsharded.audits(), 1);
    for shards in [2u16, 3] {
        let sharded = run_sharded(shards);
        assert_eq!(
            sharded, unsharded,
            "{shards}-shard final state diverged from the unsharded run"
        );
    }
}

/// Each shard runs its own durability and compaction machinery: WAL-backed
/// acceptors accumulate writes per shard, and the stable-prefix watermark
/// advances only on shards with enough learned traffic.
#[test]
fn per_shard_wal_and_watermarks_are_independent() {
    let mut h = ShardedHarness::with_config(
        2,
        Policy::MultiCoordinated,
        17,
        NetConfig::lockstep(),
        |c| {
            c.with_wire(WireConfig::bounded(8))
                .with_group_commit(SimDuration(4))
        },
        Some(|_| Box::new(WalStore::new()) as Box<dyn mcpaxos_actor::StableStore>),
    );

    // Unbalanced single-account load: plenty of commands for shard 0,
    // fewer than one compaction segment for shard 1.
    let router = h.router();
    let shard0_account = (0..ACCOUNTS)
        .find(|&a| router.shard_of_key(u64::from(a)) == 0)
        .expect("some account hashes to shard 0");
    let shard1_account = (0..ACCOUNTS)
        .find(|&a| router.shard_of_key(u64::from(a)) == 1)
        .expect("some account hashes to shard 1");
    let mut t = 100;
    let mut seq = 0u32;
    let mut deposit = |h: &mut ShardedHarness, t: u64, account: u16| {
        h.submit_at(
            t,
            BankCmd {
                id: CmdId {
                    client: 1,
                    seq: {
                        seq += 1;
                        seq
                    },
                },
                op: BankOp::Deposit {
                    account,
                    amount: 10,
                },
            },
        );
    };
    for _ in 0..40 {
        deposit(&mut h, t, shard0_account);
        t += 2;
    }
    for _ in 0..3 {
        deposit(&mut h, t, shard1_account);
        t += 2;
    }
    let end = h.drive_until_done(200_000);
    assert!(h.done(), "unbalanced run stalled at t={end}");
    // (No end-time merge here: shard 0's learned prefix has been
    // compacted away, so completeness is checked via logical lengths —
    // a late-joining replica would restore from a checkpoint instead.)
    assert_eq!(h.learned(0).total_len(), 40);
    assert_eq!(h.learned(1).total_len(), 3);

    // Compaction advanced on the busy shard only: per-shard watermarks
    // are independent, not a cluster-wide property.
    assert!(
        h.learned(0).watermark() >= 8,
        "busy shard never compacted: watermark {}",
        h.learned(0).watermark()
    );
    assert_eq!(
        h.learned(1).watermark(),
        0,
        "idle shard compacted despite being under one segment"
    );

    // Both shards' acceptors persisted votes to their own WALs, and the
    // busy shard wrote more: durability is per shard, not shared.
    let w0 = h.acceptor_writes(0);
    let w1 = h.acceptor_writes(1);
    assert!(
        w0.iter().all(|&w| w > 0),
        "shard-0 acceptor never synced: {w0:?}"
    );
    assert!(
        w1.iter().all(|&w| w > 0),
        "shard-1 acceptor never synced: {w1:?}"
    );
    assert!(
        w0.iter().sum::<u64>() > w1.iter().sum::<u64>(),
        "busy shard should sync more than the idle one ({w0:?} vs {w1:?})"
    );
}
