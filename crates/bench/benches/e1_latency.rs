//! Regenerates the e1_latency experiment table (see EXPERIMENTS.md).
fn main() {
    println!("{}", mcpaxos_bench::experiments::e1_latency().render_text());
}
