//! Regenerates the e5_collision_cost experiment table (see EXPERIMENTS.md).
fn main() {
    println!(
        "{}",
        mcpaxos_bench::experiments::e5_collision_cost().render_text()
    );
}
