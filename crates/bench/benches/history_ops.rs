//! Micro-benchmarks for the command-history lattice operators: the
//! indexed [`CommandHistory`] against the retained literal transcription
//! [`RefCommandHistory`], on the same KV workloads the experiments use.
//!
//! Run with `cargo bench -p mcpaxos-bench --bench history_ops`. The CI
//! smoke job runs the same measurements through the `bench_history`
//! binary, which emits a `BENCH_history.json` artifact and asserts the
//! indexed/reference speedup floor.

use criterion::{criterion_group, criterion_main, Criterion};
use mcpaxos_bench::history_workloads::{diverging_cmds, ConflictProfile};
use mcpaxos_cstruct::{CStruct, CommandHistory, RefCommandHistory};
use mcpaxos_smr::KvCmd;

fn bench_ops(c: &mut Criterion) {
    for &n in &[256usize, 1024] {
        let (a_cmds, b_cmds) = diverging_cmds(n, ConflictProfile::default());
        let ia: CommandHistory<KvCmd> = a_cmds.iter().cloned().collect();
        let ib: CommandHistory<KvCmd> = b_cmds.iter().cloned().collect();
        let ra: RefCommandHistory<KvCmd> = a_cmds.iter().cloned().collect();
        let rb: RefCommandHistory<KvCmd> = b_cmds.iter().cloned().collect();

        let mut g = c.benchmark_group(format!("history_indexed_{n}"));
        g.bench_function("eq", |b| b.iter(|| std::hint::black_box(ia == ib)));
        g.bench_function("le", |b| b.iter(|| std::hint::black_box(ia.le(&ib))));
        g.bench_function("glb", |b| b.iter(|| std::hint::black_box(ia.glb(&ib))));
        g.bench_function("compatible", |b| {
            b.iter(|| std::hint::black_box(ia.compatible(&ib)))
        });
        g.bench_function("lub", |b| b.iter(|| std::hint::black_box(ia.lub(&ib))));
        g.finish();

        let mut g = c.benchmark_group(format!("history_ref_{n}"));
        g.sample_size(10);
        g.bench_function("eq", |b| b.iter(|| std::hint::black_box(ra == rb)));
        g.bench_function("le", |b| b.iter(|| std::hint::black_box(ra.le(&rb))));
        g.bench_function("glb", |b| b.iter(|| std::hint::black_box(ra.glb(&rb))));
        g.bench_function("compatible", |b| {
            b.iter(|| std::hint::black_box(ra.compatible(&rb)))
        });
        g.bench_function("lub", |b| b.iter(|| std::hint::black_box(ra.lub(&rb))));
        g.finish();
    }
}

/// Satellite regression bench: 10k-command construction must stay
/// near-linear (the seed's duplicate check made it quadratic).
fn bench_construction(c: &mut Criterion) {
    let (cmds, _) = diverging_cmds(10_000, ConflictProfile::default());
    let mut g = c.benchmark_group("history_construct");
    g.sample_size(10);
    g.bench_function("indexed_10k", |b| {
        b.iter(|| std::hint::black_box(cmds.iter().cloned().collect::<CommandHistory<KvCmd>>()))
    });
    // The reference oracle is quadratic here; keep its input small enough
    // for the suite to stay fast while still showing the asymptotic gap.
    let small: Vec<KvCmd> = cmds.iter().take(2_000).cloned().collect();
    g.bench_function("ref_2k", |b| {
        b.iter(|| std::hint::black_box(small.iter().cloned().collect::<RefCommandHistory<KvCmd>>()))
    });
    g.finish();
}

criterion_group!(benches, bench_ops, bench_construction);
criterion_main!(benches);
