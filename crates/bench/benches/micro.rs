//! Criterion micro-benchmarks: c-struct lattice operators, `ProvedSafe`,
//! simulator event throughput and end-to-end decision rate.
//!
//! Run with `cargo bench -p mcpaxos-bench --bench micro`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mcpaxos_actor::ProcessId;
use mcpaxos_actor::SimTime;
use mcpaxos_bench::ClusterHarness;
use mcpaxos_core::{
    proved_safe, DeployConfig, OneB, Policy, QuorumSpec, Round, RoundKind, RTYPE_SINGLE,
};
use mcpaxos_cstruct::{CStruct, CmdSet, CommandHistory};
use mcpaxos_simnet::NetConfig;
use mcpaxos_smr::{KvCmd, Workload};

fn histories(n: usize, rho: f64, seed: u64) -> (CommandHistory<KvCmd>, CommandHistory<KvCmd>) {
    let mut w1 = Workload::new(seed, 0, rho);
    let mut w2 = Workload::new(seed + 1, 1, rho);
    let base: Vec<KvCmd> = (0..n / 2).map(|_| w1.next_kv_put()).collect();
    let mut a: CommandHistory<KvCmd> = base.iter().cloned().collect();
    let mut b: CommandHistory<KvCmd> = base.into_iter().collect();
    for _ in 0..n / 2 {
        a.append(w1.next_kv_put());
        b.append(w2.next_kv_put());
    }
    (a, b)
}

fn bench_cstruct_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("cstruct");
    for &n in &[16usize, 64, 256] {
        let (a, b) = histories(n, 0.2, 42);
        g.bench_function(format!("history_glb_{n}"), |bench| {
            bench.iter(|| std::hint::black_box(a.glb(&b)))
        });
        g.bench_function(format!("history_compatible_{n}"), |bench| {
            bench.iter(|| std::hint::black_box(a.compatible(&b)))
        });
        g.bench_function(format!("history_lub_{n}"), |bench| {
            bench.iter(|| std::hint::black_box(a.lub(&b)))
        });
        let set_a: CmdSet<u32> = (0..n as u32).collect();
        let set_b: CmdSet<u32> = (n as u32 / 2..2 * n as u32).collect();
        g.bench_function(format!("cmdset_lub_{n}"), |bench| {
            bench.iter(|| std::hint::black_box(set_a.lub(&set_b)))
        });
    }
    g.finish();
}

fn bench_proved_safe(c: &mut Criterion) {
    let mut g = c.benchmark_group("proved_safe");
    for &n in &[5usize, 7, 9] {
        let spec = QuorumSpec::majority(n).unwrap();
        let k = Round::new(0, 3, 0, RTYPE_SINGLE);
        let (h, _) = histories(32, 0.2, 7);
        let msgs: Vec<OneB<CommandHistory<KvCmd>>> = (0..spec.classic_size())
            .map(|i| OneB {
                from: ProcessId(i as u32),
                vrnd: k,
                vval: h.clone().into(),
            })
            .collect();
        g.bench_function(format!("n{n}_classic_quorum"), |bench| {
            bench.iter(|| std::hint::black_box(proved_safe(&msgs, &spec, |_| RoundKind::Classic)))
        });
    }
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.bench_function("multi_100cmds_sim", |bench| {
        bench.iter_batched(
            || {
                let cfg = DeployConfig::simple(1, 3, 5, 1, Policy::MultiCoordinated);
                let mut h: ClusterHarness<CmdSet<u32>> =
                    ClusterHarness::new(cfg, 1, NetConfig::lockstep());
                for i in 0..100u32 {
                    h.propose_at(SimTime(100 + 10 * u64::from(i)), 0, i);
                }
                h
            },
            |mut h| {
                h.run_until(3_000);
                assert_eq!(h.learned(0).count(), 100);
                h
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_cstruct_ops,
    bench_proved_safe,
    bench_end_to_end
);
criterion_main!(benches);
