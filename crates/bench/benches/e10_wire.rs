//! Regenerates the e10_wire experiment table (see EXPERIMENTS.md).
fn main() {
    println!("{}", mcpaxos_bench::experiments::e10_wire().render_text());
}
