//! Regenerates the e3_availability experiment table (see EXPERIMENTS.md).
fn main() {
    println!(
        "{}",
        mcpaxos_bench::experiments::e3_availability().render_text()
    );
}
