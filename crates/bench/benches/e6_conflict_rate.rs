//! Regenerates the e6_conflict_rate experiment table (see EXPERIMENTS.md).
fn main() {
    println!(
        "{}",
        mcpaxos_bench::experiments::e6_conflict_rate().render_text()
    );
}
