//! Regenerates the a1_coordquorum_size experiment table (see EXPERIMENTS.md).
fn main() {
    println!(
        "{}",
        mcpaxos_bench::experiments::a1_coordquorum_size().render_text()
    );
}
