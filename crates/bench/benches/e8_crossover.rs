//! Regenerates the e8_crossover experiment table (see EXPERIMENTS.md).
fn main() {
    println!(
        "{}",
        mcpaxos_bench::experiments::e8_crossover().render_text()
    );
}
