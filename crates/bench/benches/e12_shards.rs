//! Regenerates the e12_shards experiment table (see EXPERIMENTS.md).
fn main() {
    println!("{}", mcpaxos_bench::experiments::e12_shards().render_text());
}
