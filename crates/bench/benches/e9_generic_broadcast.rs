//! Regenerates the e9_generic_broadcast experiment table (see EXPERIMENTS.md).
fn main() {
    println!(
        "{}",
        mcpaxos_bench::experiments::e9_generic_broadcast().render_text()
    );
}
