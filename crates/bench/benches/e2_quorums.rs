//! Regenerates the e2_quorums experiment table (see EXPERIMENTS.md).
fn main() {
    println!("{}", mcpaxos_bench::experiments::e2_quorums().render_text());
}
