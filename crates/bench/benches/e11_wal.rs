//! Regenerates the e11_wal experiment table (see EXPERIMENTS.md).
fn main() {
    println!("{}", mcpaxos_bench::experiments::e11_wal().render_text());
}
