//! Regenerates the e4_load_balance experiment table (see EXPERIMENTS.md).
fn main() {
    println!(
        "{}",
        mcpaxos_bench::experiments::e4_load_balance().render_text()
    );
}
