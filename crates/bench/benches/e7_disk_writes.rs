//! Regenerates the e7_disk_writes experiment table (see EXPERIMENTS.md).
fn main() {
    println!(
        "{}",
        mcpaxos_bench::experiments::e7_disk_writes().render_text()
    );
}
