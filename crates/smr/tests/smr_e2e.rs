//! Replicated state machines end-to-end: KV convergence, bank
//! conservation, replica agreement under faults and interference.

use mcpaxos_actor::{ProcessId, SimTime};
use mcpaxos_core::{Acceptor, Coordinator, DeployConfig, Msg, Policy, Proposer};
use mcpaxos_cstruct::CommandHistory;
use mcpaxos_gbcast::checks;
use mcpaxos_simnet::{DelayDist, NetConfig, Sim};
use mcpaxos_smr::{Bank, BankCmd, BankOp, CmdId, KvCmd, KvStore, Replica, StateMachine, Workload};
use std::sync::Arc;

const CLIENT: ProcessId = ProcessId(9_999);

fn deploy<SM: StateMachine>(sim: &mut Sim<Msg<CommandHistory<SM::Cmd>>>, cfg: &Arc<DeployConfig>) {
    type H<SM> = CommandHistory<<SM as StateMachine>::Cmd>;
    for &p in cfg.roles.proposers() {
        let cfg = cfg.clone();
        sim.add_process(p, move || Box::new(Proposer::<H<SM>>::new(cfg.clone())));
    }
    for &p in cfg.roles.coordinators() {
        let cfg = cfg.clone();
        sim.add_process(p, move || {
            Box::new(Coordinator::<H<SM>>::new(cfg.clone(), p))
        });
    }
    for &p in cfg.roles.acceptors() {
        let cfg = cfg.clone();
        sim.add_process(p, move || Box::new(Acceptor::<H<SM>>::new(cfg.clone())));
    }
    for &p in cfg.roles.learners() {
        let cfg = cfg.clone();
        sim.add_process(p, move || Box::new(Replica::<SM>::new(cfg.clone())));
    }
}

fn replica<'s, SM: StateMachine>(
    sim: &'s Sim<Msg<CommandHistory<SM::Cmd>>>,
    cfg: &Arc<DeployConfig>,
    idx: usize,
) -> &'s Replica<SM> {
    sim.actor::<Replica<SM>>(cfg.roles.learners()[idx])
        .expect("replica exists")
}

#[test]
fn kv_replicas_converge_per_key() {
    for seed in 0..6u64 {
        let cfg = Arc::new(DeployConfig::simple(2, 3, 5, 3, Policy::MultiCoordinated));
        let mut sim: Sim<Msg<CommandHistory<KvCmd>>> = Sim::new(
            seed,
            NetConfig::lockstep().with_delay(DelayDist::Uniform(1, 4)),
        );
        deploy::<KvStore>(&mut sim, &cfg);
        let mut w0 = Workload::new(seed, 0, 0.4);
        let mut w1 = Workload::new(seed, 1, 0.4);
        let mut all = Vec::new();
        for i in 0..10u64 {
            for (pi, w) in [(0usize, &mut w0), (1usize, &mut w1)] {
                let cmd = w.next_kv(0.8);
                all.push(cmd.clone());
                sim.inject_at(
                    SimTime(100 + 11 * i),
                    cfg.roles.proposers()[pi],
                    CLIENT,
                    Msg::Propose {
                        cmd,
                        acc_quorum: None,
                    },
                );
            }
        }
        sim.run_until(SimTime(20_000));
        let r0 = replica::<KvStore>(&sim, &cfg, 0);
        let r1 = replica::<KvStore>(&sim, &cfg, 1);
        let r2 = replica::<KvStore>(&sim, &cfg, 2);
        assert_eq!(r0.applied().len(), all.len(), "seed {seed}: liveness");
        // Same-key writes agreed ⇒ identical final stores.
        assert_eq!(
            r0.machine().snapshot(),
            r1.machine().snapshot(),
            "seed {seed}: replicas diverged"
        );
        assert_eq!(r0.machine().snapshot(), r2.machine().snapshot());
        // Histories compatible and deliveries order-consistent.
        let hs: Vec<CommandHistory<KvCmd>> = (0..3)
            .map(|i| {
                replica::<KvStore>(&sim, &cfg, i)
                    .learner()
                    .learned()
                    .clone()
            })
            .collect();
        checks::check_consistency(&hs);
        checks::check_liveness(&hs, &all);
        checks::check_conflicting_order_agreement(r0.applied(), r1.applied());
    }
}

#[test]
fn bank_conserves_money_and_agrees_on_rejections() {
    for seed in 0..5u64 {
        let cfg = Arc::new(DeployConfig::simple(2, 3, 5, 2, Policy::MultiCoordinated));
        let mut sim: Sim<Msg<CommandHistory<BankCmd>>> = Sim::new(
            seed,
            NetConfig::lockstep().with_delay(DelayDist::Uniform(1, 3)),
        );
        deploy::<Bank>(&mut sim, &cfg);
        // Seed money, then a storm of transfers/withdrawals/deposits.
        let mut deposited: u64 = 0;
        for acct in 0..4u16 {
            let cmd = BankCmd {
                id: CmdId {
                    client: 9,
                    seq: u32::from(acct),
                },
                op: BankOp::Deposit {
                    account: acct,
                    amount: 1_000,
                },
            };
            deposited += 1_000;
            sim.inject_at(
                SimTime(100 + u64::from(acct)),
                cfg.roles.proposers()[0],
                CLIENT,
                Msg::Propose {
                    cmd,
                    acc_quorum: None,
                },
            );
        }
        let mut w = Workload::new(seed, 1, 0.6);
        let mut extra: u64 = 0;
        for i in 0..14u64 {
            let cmd = w.next_bank();
            if let BankOp::Deposit { amount, .. } = cmd.op {
                extra += u64::from(amount);
            }
            sim.inject_at(
                SimTime(200 + 9 * i),
                cfg.roles.proposers()[1],
                CLIENT,
                Msg::Propose {
                    cmd,
                    acc_quorum: None,
                },
            );
        }
        sim.run_until(SimTime(25_000));
        let r0 = replica::<Bank>(&sim, &cfg, 0);
        let r1 = replica::<Bank>(&sim, &cfg, 1);
        assert_eq!(
            r0.applied().len(),
            18,
            "seed {seed}: all commands applied at r0"
        );
        // Conservation: withdrawals may burn money, so total + withdrawn
        // == deposited. Easier: replicas agree exactly on final state.
        assert_eq!(r0.machine(), r1.machine(), "seed {seed}: replica states");
        assert!(
            r0.machine().total() <= deposited + extra,
            "seed {seed}: money created from nothing"
        );
        assert_eq!(
            r0.machine().rejected(),
            r1.machine().rejected(),
            "seed {seed}: guarded outcomes must agree"
        );
    }
}

#[test]
fn kv_survives_coordinator_crash_mid_stream() {
    let cfg = Arc::new(DeployConfig::simple(1, 3, 5, 2, Policy::MultiCoordinated));
    let mut sim: Sim<Msg<CommandHistory<KvCmd>>> = Sim::new(3, NetConfig::lan());
    deploy::<KvStore>(&mut sim, &cfg);
    let mut w = Workload::new(1, 0, 0.2);
    let mut all = Vec::new();
    for i in 0..12u64 {
        let cmd = w.next_kv_put();
        all.push(cmd.clone());
        sim.inject_at(
            SimTime(100 + 40 * i),
            cfg.roles.proposers()[0],
            CLIENT,
            Msg::Propose {
                cmd,
                acc_quorum: None,
            },
        );
    }
    // Crash a coordinator in the middle of the stream.
    sim.crash_at(SimTime(280), cfg.roles.coordinators()[1]);
    sim.run_until(SimTime(20_000));
    let r0 = replica::<KvStore>(&sim, &cfg, 0);
    let r1 = replica::<KvStore>(&sim, &cfg, 1);
    assert_eq!(r0.applied().len(), 12);
    assert_eq!(r0.machine().snapshot(), r1.machine().snapshot());
}
