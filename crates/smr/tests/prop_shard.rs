//! Proptest suite for the sharding layer: routing must be a pure,
//! conflict-sound function of the command, and merging per-shard learned
//! histories through [`ShardedReplica`] must reach exactly the state an
//! unsharded replica reaches on the same command sequence (the
//! differential oracle, same pattern as `prop_history_diff`).

use mcpaxos_cstruct::{CStruct, CommandHistory, Conflict};
use mcpaxos_smr::{Bank, BankCmd, BankOp, CmdId, ShardRouter, ShardedReplica, StateMachine};
use proptest::prelude::*;

/// Small account space so random pairs actually collide.
const ACCOUNTS: u16 = 6;

fn bank_op() -> impl Strategy<Value = BankOp> {
    prop_oneof![
        (0u16..ACCOUNTS, 1u32..100)
            .prop_map(|(account, amount)| BankOp::Deposit { account, amount }),
        (0u16..ACCOUNTS, 1u32..100)
            .prop_map(|(account, amount)| BankOp::Withdraw { account, amount }),
        // `to` is `from` shifted by a nonzero delta: genuinely two-key,
        // so transfers can cross shard boundaries.
        (0u16..ACCOUNTS, 1u16..ACCOUNTS, 1u32..50).prop_map(|(from, delta, amount)| {
            BankOp::Transfer {
                from,
                to: (from + delta) % ACCOUNTS,
                amount,
            }
        }),
    ]
}

/// Like [`bank_op`] with occasional audits — `ConflictKeys::all()`
/// commands that involve every shard and force a total order.
fn bank_op_with_audits() -> impl Strategy<Value = BankOp> {
    prop_oneof![bank_op(), bank_op(), bank_op(), Just(BankOp::Audit),]
}

/// Stamps each op with a unique command id (proposal order = seq order).
fn cmds_from_ops(ops: Vec<BankOp>) -> Vec<BankCmd> {
    ops.into_iter()
        .enumerate()
        .map(|(i, op)| BankCmd {
            id: CmdId {
                client: 1,
                seq: i as u32,
            },
            op,
        })
        .collect()
}

/// Routes `cmds` in proposal order into one `CommandHistory` per shard
/// (every involved shard sees every command that touches it, all shards
/// seeing conflicting commands in the same relative order — what any
/// correct per-shard consensus run guarantees).
fn shard_histories(router: &ShardRouter, cmds: &[BankCmd]) -> Vec<CommandHistory<BankCmd>> {
    let mut hists: Vec<CommandHistory<BankCmd>> = (0..router.n_shards())
        .map(|_| CommandHistory::bottom())
        .collect();
    for cmd in cmds {
        for &s in &router.route(cmd) {
            hists[usize::from(s)].append(cmd.clone());
        }
    }
    hists
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Routing is a pure function of the command (stable across router
    /// instances), targets are in range, sorted and deduplicated, and
    /// universal-key commands involve every shard.
    #[test]
    fn routing_is_stable_bounded_and_deduped(
        ops in prop::collection::vec(bank_op_with_audits(), 0..30),
        n in 1u16..=8,
    ) {
        let cmds = cmds_from_ops(ops);
        let r1 = ShardRouter::new(n);
        let r2 = ShardRouter::new(n);
        for cmd in &cmds {
            let shards = r1.route(cmd);
            prop_assert_eq!(&shards, &r2.route(cmd), "routing not stable");
            prop_assert!(!shards.is_empty(), "command routed nowhere");
            prop_assert!(shards.iter().all(|&s| s < n), "shard out of range");
            prop_assert!(
                shards.windows(2).all(|w| w[0] < w[1]),
                "involved set not sorted/deduped: {:?}",
                shards
            );
            if matches!(cmd.op, BankOp::Audit) {
                prop_assert_eq!(shards.len(), usize::from(n), "audit must involve all shards");
            }
            prop_assert_eq!(
                r1.is_cross_shard(cmd),
                r1.route(cmd).len() > 1,
                "is_cross_shard disagrees with route"
            );
        }
    }

    /// Conflict soundness: commands that interfere always share at least
    /// one shard, so some shard's consensus instance orders them.
    #[test]
    fn routing_is_conflict_sound(
        ops in prop::collection::vec(bank_op_with_audits(), 0..16),
        n in 1u16..=8,
    ) {
        let cmds = cmds_from_ops(ops);
        let router = ShardRouter::new(n);
        for (i, a) in cmds.iter().enumerate() {
            for b in &cmds[i + 1..] {
                if a.conflicts(b) {
                    let sa = router.route(a);
                    let sb = router.route(b);
                    prop_assert!(
                        sa.iter().any(|s| sb.contains(s)),
                        "conflicting {:?} / {:?} routed to disjoint shards {:?} / {:?}",
                        a, b, sa, sb
                    );
                }
            }
        }
    }

    /// Differential oracle: merging per-shard learned histories yields
    /// exactly the unsharded replica's final state — same bank state,
    /// every command applied exactly once, and conflicting commands
    /// applied in proposal order. Delivery happens in two rounds (a
    /// prefix, then the full histories) to exercise the incremental
    /// cursors, then the full histories are re-absorbed to check
    /// exactly-once under duplicated delivery.
    #[test]
    fn sharded_merge_matches_unsharded_oracle(
        ops in prop::collection::vec(bank_op_with_audits(), 0..40),
        n in 1u16..=4,
        split_frac in 0.0f64..1.0,
    ) {
        let cmds = cmds_from_ops(ops);
        let router = ShardRouter::new(n);
        let full = shard_histories(&router, &cmds);
        let split = (cmds.len() as f64 * split_frac) as usize;
        let prefix = shard_histories(&router, &cmds[..split]);

        let mut replica: ShardedReplica<Bank> = ShardedReplica::new(n).keep_log();
        for (s, h) in prefix.iter().enumerate() {
            replica.absorb_shard(s as u16, h);
        }
        for (s, h) in full.iter().enumerate() {
            replica.absorb_shard(s as u16, h);
        }

        prop_assert_eq!(replica.pending(), 0, "merge left commands stranded");
        prop_assert_eq!(replica.applied_count(), cmds.len() as u64);

        // Duplicated delivery (a learner resend) must not re-apply.
        for (s, h) in full.iter().enumerate() {
            replica.absorb_shard(s as u16, h);
        }
        prop_assert_eq!(replica.applied_count(), cmds.len() as u64, "re-absorb re-applied");

        // Exactly once: the applied log is a permutation of the input.
        let mut seqs: Vec<u32> = replica.applied_log().iter().map(|c| c.id.seq).collect();
        seqs.sort_unstable();
        prop_assert_eq!(seqs, (0..cmds.len() as u32).collect::<Vec<_>>());

        // Conflicting commands retain proposal order in the merged log.
        let pos = |cmd: &BankCmd| {
            replica.applied_log().iter().position(|c| c == cmd).unwrap()
        };
        for (i, a) in cmds.iter().enumerate() {
            for b in &cmds[i + 1..] {
                if a.conflicts(b) {
                    prop_assert!(
                        pos(a) < pos(b),
                        "conflicting pair reordered: {:?} after {:?}",
                        a, b
                    );
                }
            }
        }

        // The merged machine equals the unsharded oracle: commuting
        // commands may be applied in a different order, but the final
        // state must be identical.
        let mut oracle = Bank::default();
        oracle.apply_all(&cmds);
        prop_assert_eq!(replica.machine(), &oracle, "merged state diverged from unsharded run");
    }

    /// One shard degenerates to the unsharded replica: the applied log
    /// is exactly the proposal order.
    #[test]
    fn single_shard_preserves_proposal_order(
        ops in prop::collection::vec(bank_op_with_audits(), 0..30),
    ) {
        let cmds = cmds_from_ops(ops);
        let router = ShardRouter::new(1);
        let hists = shard_histories(&router, &cmds);
        let mut replica: ShardedReplica<Bank> = ShardedReplica::new(1).keep_log();
        replica.absorb_shard(0, &hists[0]);
        prop_assert_eq!(replica.applied_log(), &cmds[..]);
    }
}
