//! Replica checkpoints under delta shipping and stable-prefix compaction:
//! a crashed replica must resume from its persisted checkpoint and catch
//! up, even though the history below the watermark no longer exists
//! anywhere in the deployment.

use mcpaxos_actor::{ProcessId, SimTime};
use mcpaxos_core::{Acceptor, Coordinator, DeployConfig, Msg, Policy, Proposer, WireConfig};
use mcpaxos_cstruct::CommandHistory;
use mcpaxos_simnet::{NetConfig, Sim};
use mcpaxos_smr::{CmdId, KvCmd, KvOp, KvStore, Replica};
use std::sync::Arc;

const CLIENT: ProcessId = ProcessId(9_999);

type H = CommandHistory<KvCmd>;

fn deploy(sim: &mut Sim<Msg<H>>, cfg: &Arc<DeployConfig>) {
    for &p in cfg.roles.proposers() {
        let cfg = cfg.clone();
        sim.add_process(p, move || Box::new(Proposer::<H>::new(cfg.clone())));
    }
    for &p in cfg.roles.coordinators() {
        let cfg = cfg.clone();
        sim.add_process(p, move || Box::new(Coordinator::<H>::new(cfg.clone(), p)));
    }
    for &p in cfg.roles.acceptors() {
        let cfg = cfg.clone();
        sim.add_process(p, move || Box::new(Acceptor::<H>::new(cfg.clone())));
    }
    for &p in cfg.roles.learners() {
        let cfg = cfg.clone();
        sim.add_process(p, move || Box::new(Replica::<KvStore>::new(cfg.clone())));
    }
}

fn put(i: u32) -> KvCmd {
    KvCmd {
        id: CmdId { client: 1, seq: i },
        op: KvOp::Put((i % 16) as u16, u64::from(i) * 10),
    }
}

#[test]
fn restarted_replica_resumes_from_checkpoint_under_compaction() {
    let n: u32 = 150;
    // Bounded mode: deltas, compaction every 16, checkpoints every 16.
    let cfg = Arc::new(
        DeployConfig::simple(1, 3, 5, 1, Policy::MultiCoordinated)
            .with_wire(WireConfig::bounded(16)),
    );
    cfg.validate().expect("valid config");
    let mut sim: Sim<Msg<H>> = Sim::new(41, NetConfig::lockstep());
    deploy(&mut sim, &cfg);
    let replica_pid = cfg.roles.learners()[0];
    for i in 0..n {
        sim.inject_at(
            SimTime(100 + 20 * u64::from(i)),
            cfg.roles.proposers()[0],
            CLIENT,
            Msg::Propose {
                cmd: put(i),
                acc_quorum: None,
            },
        );
    }
    // Crash the replica mid-stream, recover it shortly after. By then the
    // deployment has truncated below the watermark, so a full replay is
    // impossible — only the persisted checkpoint can bridge the gap.
    sim.crash_at(SimTime(1_600), replica_pid);
    sim.recover_at(SimTime(1_900), replica_pid);
    sim.run_until(SimTime(20_000));

    let ckpt_bytes = sim
        .storage(replica_pid)
        .and_then(|s| s.read("ckpt"))
        .expect("replica persisted a checkpoint before the crash");
    assert!(!ckpt_bytes.is_empty());

    let r = sim
        .actor::<Replica<KvStore>>(replica_pid)
        .expect("replica exists");
    assert_eq!(
        r.applied_count(),
        u64::from(n),
        "restored replica must reach all {n} commands"
    );
    // The machine state reflects every write: each key holds the value of
    // the *last* write to it in the agreed order; with one client the
    // per-key order is the proposal order, so key k holds the largest
    // i*10 with i % 16 == k.
    let m = r.machine();
    for k in 0..16u16 {
        let last = (0..n).rev().find(|i| i % 16 == u32::from(k)).unwrap();
        assert_eq!(
            m.get(k),
            Some(u64::from(last) * 10),
            "key {k} diverged after checkpoint restore"
        );
    }
    // Compaction really was active (the replay path really was gone).
    assert!(sim.metrics().total("truncations") > 0);
    let learner = r.learner();
    assert!(learner.watermark() > 0, "replica learner never truncated");
    assert!(
        learner.learned().live_len() < (n as usize),
        "live window should be smaller than the full history"
    );
}
