//! A replicated key-value store.

use crate::machine::StateMachine;
use crate::CmdId;
use mcpaxos_actor::wire::{Wire, WireError};
use mcpaxos_cstruct::{Conflict, ConflictKeys};
use std::collections::BTreeMap;

/// Key-value operations.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum KvOp {
    /// Writes `value` under `key`.
    Put(u16, u64),
    /// Removes `key`.
    Del(u16),
    /// Reads `key` (no state change; delivered for read-your-writes
    /// ordering relative to same-key writes).
    Get(u16),
}

impl KvOp {
    /// The key the operation touches.
    pub fn key(&self) -> u16 {
        match *self {
            KvOp::Put(k, _) | KvOp::Del(k) | KvOp::Get(k) => k,
        }
    }

    /// Whether the operation mutates state.
    pub fn is_write(&self) -> bool {
        !matches!(self, KvOp::Get(_))
    }
}

/// A uniquely identified key-value command.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct KvCmd {
    /// Unique id (also the deduplication key).
    pub id: CmdId,
    /// The operation.
    pub op: KvOp,
}

impl Conflict for KvCmd {
    /// Two operations interfere iff they touch the same key and at least
    /// one writes: reads commute with reads, everything commutes across
    /// keys.
    fn conflicts(&self, other: &Self) -> bool {
        self.op.key() == other.op.key() && (self.op.is_write() || other.op.is_write())
    }

    /// Conflicts require equal keys, so the touched key is an exact
    /// locality hint.
    fn conflict_keys(&self) -> ConflictKeys {
        ConflictKeys::one(u64::from(self.op.key()))
    }
}

impl Wire for KvCmd {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        match &self.op {
            KvOp::Put(k, v) => {
                0u8.encode(out);
                k.encode(out);
                v.encode(out);
            }
            KvOp::Del(k) => {
                1u8.encode(out);
                k.encode(out);
            }
            KvOp::Get(k) => {
                2u8.encode(out);
                k.encode(out);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let id = CmdId::decode(input)?;
        let op = match u8::decode(input)? {
            0 => KvOp::Put(u16::decode(input)?, u64::decode(input)?),
            1 => KvOp::Del(u16::decode(input)?),
            2 => KvOp::Get(u16::decode(input)?),
            _ => {
                return Err(WireError {
                    what: "bad KvOp tag",
                })
            }
        };
        Ok(KvCmd { id, op })
    }
}

/// The key-value state machine.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KvStore {
    data: BTreeMap<u16, u64>,
    applied: u64,
}

impl KvStore {
    /// Reads a key.
    pub fn get(&self, key: u16) -> Option<u64> {
        self.data.get(&key).copied()
    }

    /// Number of commands applied (including reads).
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Snapshot of the full store.
    pub fn snapshot(&self) -> &BTreeMap<u16, u64> {
        &self.data
    }
}

impl Wire for KvStore {
    fn encode(&self, out: &mut Vec<u8>) {
        let pairs: Vec<(u16, u64)> = self.data.iter().map(|(&k, &v)| (k, v)).collect();
        pairs.encode(out);
        self.applied.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let pairs: Vec<(u16, u64)> = Wire::decode(input)?;
        Ok(KvStore {
            data: pairs.into_iter().collect(),
            applied: u64::decode(input)?,
        })
    }
}

impl StateMachine for KvStore {
    type Cmd = KvCmd;

    fn apply(&mut self, cmd: &KvCmd) {
        self.applied += 1;
        match cmd.op {
            KvOp::Put(k, v) => {
                self.data.insert(k, v);
            }
            KvOp::Del(k) => {
                self.data.remove(&k);
            }
            KvOp::Get(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpaxos_actor::wire::{from_bytes, to_bytes};

    fn cmd(seq: u32, op: KvOp) -> KvCmd {
        KvCmd {
            id: CmdId { client: 0, seq },
            op,
        }
    }

    #[test]
    fn conflict_relation() {
        let put1 = cmd(0, KvOp::Put(1, 10));
        let put1b = cmd(1, KvOp::Put(1, 20));
        let put2 = cmd(2, KvOp::Put(2, 30));
        let get1 = cmd(3, KvOp::Get(1));
        let get1b = cmd(4, KvOp::Get(1));
        let del1 = cmd(5, KvOp::Del(1));
        assert!(put1.conflicts(&put1b), "same-key writes interfere");
        assert!(!put1.conflicts(&put2), "different keys commute");
        assert!(put1.conflicts(&get1), "read vs write same key interferes");
        assert!(!get1.conflicts(&get1b), "reads commute");
        assert!(del1.conflicts(&put1), "delete is a write");
    }

    #[test]
    fn apply_semantics() {
        let mut s = KvStore::default();
        s.apply(&cmd(0, KvOp::Put(1, 10)));
        s.apply(&cmd(1, KvOp::Get(1)));
        assert_eq!(s.get(1), Some(10));
        s.apply(&cmd(2, KvOp::Del(1)));
        assert_eq!(s.get(1), None);
        assert_eq!(s.applied(), 3);
    }

    #[test]
    fn commuting_orders_reach_same_state() {
        let a = cmd(0, KvOp::Put(1, 10));
        let b = cmd(1, KvOp::Put(2, 20));
        let mut s1 = KvStore::default();
        s1.apply(&a);
        s1.apply(&b);
        let mut s2 = KvStore::default();
        s2.apply(&b);
        s2.apply(&a);
        assert_eq!(s1.snapshot(), s2.snapshot());
    }

    #[test]
    fn wire_roundtrip() {
        for op in [KvOp::Put(7, 99), KvOp::Del(7), KvOp::Get(7)] {
            let c = cmd(5, op);
            let back: KvCmd = from_bytes(&to_bytes(&c)).unwrap();
            assert_eq!(back, c);
        }
    }
}
