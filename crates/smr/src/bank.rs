//! A replicated bank: the classic generic-broadcast motivating example.
//!
//! Deposits commute with everything except operations that *read* the
//! balance they change (withdrawals are guarded, audits read all), so the
//! conflict relation is richer than a key-equality test — exercising the
//! protocol with an asymmetric-interference workload.

use crate::machine::StateMachine;
use crate::CmdId;
use mcpaxos_actor::wire::{Wire, WireError};
use mcpaxos_cstruct::{Conflict, ConflictKeys};
use std::collections::BTreeMap;

/// Bank operations over account numbers.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum BankOp {
    /// Adds `amount` to `account`. Deposits commute with each other.
    Deposit {
        /// Credited account.
        account: u16,
        /// Amount in cents.
        amount: u32,
    },
    /// Subtracts `amount` if the balance suffices (guarded: order
    /// matters against anything touching the account).
    Withdraw {
        /// Debited account.
        account: u16,
        /// Amount in cents.
        amount: u32,
    },
    /// Moves `amount` from `from` to `to` if funds suffice.
    Transfer {
        /// Debited account.
        from: u16,
        /// Credited account.
        to: u16,
        /// Amount in cents.
        amount: u32,
    },
    /// Reads every balance (interferes with everything).
    Audit,
}

impl BankOp {
    fn accounts(&self) -> Vec<u16> {
        match *self {
            BankOp::Deposit { account, .. } | BankOp::Withdraw { account, .. } => vec![account],
            BankOp::Transfer { from, to, .. } => vec![from, to],
            BankOp::Audit => vec![],
        }
    }

    fn reads_balance(&self) -> bool {
        matches!(
            self,
            BankOp::Withdraw { .. } | BankOp::Transfer { .. } | BankOp::Audit
        )
    }
}

/// A uniquely identified bank command.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BankCmd {
    /// Unique id.
    pub id: CmdId,
    /// The operation.
    pub op: BankOp,
}

impl Conflict for BankCmd {
    /// Interference rule: audits interfere with every state change and
    /// other audits; two operations on disjoint accounts commute; on a
    /// shared account they commute only if both are blind deposits.
    fn conflicts(&self, other: &Self) -> bool {
        let audit_a = matches!(self.op, BankOp::Audit);
        let audit_b = matches!(other.op, BankOp::Audit);
        if audit_a || audit_b {
            return true;
        }
        let shared = self
            .op
            .accounts()
            .iter()
            .any(|a| other.op.accounts().contains(a));
        shared && (self.op.reads_balance() || other.op.reads_balance())
    }

    /// Non-audit conflicts require a shared account, so the touched
    /// accounts (at most two, for transfers) are the locality hint;
    /// audits interfere with everything and declare the universal key.
    fn conflict_keys(&self) -> ConflictKeys {
        match self.op {
            BankOp::Deposit { account, .. } | BankOp::Withdraw { account, .. } => {
                ConflictKeys::one(u64::from(account))
            }
            BankOp::Transfer { from, to, .. } => ConflictKeys::two(u64::from(from), u64::from(to)),
            BankOp::Audit => ConflictKeys::all(),
        }
    }
}

impl Wire for BankCmd {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        match &self.op {
            BankOp::Deposit { account, amount } => {
                0u8.encode(out);
                account.encode(out);
                amount.encode(out);
            }
            BankOp::Withdraw { account, amount } => {
                1u8.encode(out);
                account.encode(out);
                amount.encode(out);
            }
            BankOp::Transfer { from, to, amount } => {
                2u8.encode(out);
                from.encode(out);
                to.encode(out);
                amount.encode(out);
            }
            BankOp::Audit => 3u8.encode(out),
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let id = CmdId::decode(input)?;
        let op = match u8::decode(input)? {
            0 => BankOp::Deposit {
                account: u16::decode(input)?,
                amount: u32::decode(input)?,
            },
            1 => BankOp::Withdraw {
                account: u16::decode(input)?,
                amount: u32::decode(input)?,
            },
            2 => BankOp::Transfer {
                from: u16::decode(input)?,
                to: u16::decode(input)?,
                amount: u32::decode(input)?,
            },
            3 => BankOp::Audit,
            _ => {
                return Err(WireError {
                    what: "bad BankOp tag",
                })
            }
        };
        Ok(BankCmd { id, op })
    }
}

/// The bank state machine. Balances never go negative: guarded
/// operations are no-ops when funds are insufficient.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bank {
    balances: BTreeMap<u16, u64>,
    rejected: u64,
    audits: u64,
}

impl Bank {
    /// Balance of `account` (0 if never used).
    pub fn balance(&self, account: u16) -> u64 {
        self.balances.get(&account).copied().unwrap_or(0)
    }

    /// Sum of all balances — conserved by transfers.
    pub fn total(&self) -> u64 {
        self.balances.values().sum()
    }

    /// Guarded operations rejected for insufficient funds.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Number of audits executed.
    pub fn audits(&self) -> u64 {
        self.audits
    }
}

impl Wire for Bank {
    fn encode(&self, out: &mut Vec<u8>) {
        let pairs: Vec<(u16, u64)> = self.balances.iter().map(|(&k, &v)| (k, v)).collect();
        pairs.encode(out);
        self.rejected.encode(out);
        self.audits.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let pairs: Vec<(u16, u64)> = Wire::decode(input)?;
        Ok(Bank {
            balances: pairs.into_iter().collect(),
            rejected: u64::decode(input)?,
            audits: u64::decode(input)?,
        })
    }
}

impl StateMachine for Bank {
    type Cmd = BankCmd;

    fn apply(&mut self, cmd: &BankCmd) {
        match cmd.op {
            BankOp::Deposit { account, amount } => {
                *self.balances.entry(account).or_insert(0) += u64::from(amount);
            }
            BankOp::Withdraw { account, amount } => {
                let bal = self.balances.entry(account).or_insert(0);
                if *bal >= u64::from(amount) {
                    *bal -= u64::from(amount);
                } else {
                    self.rejected += 1;
                }
            }
            BankOp::Transfer { from, to, amount } => {
                let from_bal = self.balance(from);
                if from_bal >= u64::from(amount) {
                    *self.balances.entry(from).or_insert(0) -= u64::from(amount);
                    *self.balances.entry(to).or_insert(0) += u64::from(amount);
                } else {
                    self.rejected += 1;
                }
            }
            BankOp::Audit => self.audits += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpaxos_actor::wire::{from_bytes, to_bytes};

    fn cmd(seq: u32, op: BankOp) -> BankCmd {
        BankCmd {
            id: CmdId { client: 0, seq },
            op,
        }
    }

    #[test]
    fn conflict_relation() {
        let dep_a = cmd(
            0,
            BankOp::Deposit {
                account: 1,
                amount: 5,
            },
        );
        let dep_a2 = cmd(
            1,
            BankOp::Deposit {
                account: 1,
                amount: 7,
            },
        );
        let wd_a = cmd(
            2,
            BankOp::Withdraw {
                account: 1,
                amount: 5,
            },
        );
        let dep_b = cmd(
            3,
            BankOp::Deposit {
                account: 2,
                amount: 5,
            },
        );
        let tr = cmd(
            4,
            BankOp::Transfer {
                from: 1,
                to: 3,
                amount: 2,
            },
        );
        let audit = cmd(5, BankOp::Audit);
        assert!(!dep_a.conflicts(&dep_a2), "same-account deposits commute");
        assert!(dep_a.conflicts(&wd_a), "deposit vs guarded withdraw");
        assert!(!dep_a.conflicts(&dep_b), "different accounts commute");
        assert!(tr.conflicts(&wd_a), "transfer shares account 1");
        assert!(!tr.conflicts(&dep_b), "transfer 1→3 commutes with acct 2");
        assert!(audit.conflicts(&dep_a), "audit interferes with everything");
        assert!(audit.conflicts(&audit.clone()));
    }

    #[test]
    fn transfers_conserve_total() {
        let mut bank = Bank::default();
        bank.apply(&cmd(
            0,
            BankOp::Deposit {
                account: 1,
                amount: 100,
            },
        ));
        bank.apply(&cmd(
            1,
            BankOp::Deposit {
                account: 2,
                amount: 50,
            },
        ));
        let before = bank.total();
        bank.apply(&cmd(
            2,
            BankOp::Transfer {
                from: 1,
                to: 2,
                amount: 30,
            },
        ));
        bank.apply(&cmd(
            3,
            BankOp::Transfer {
                from: 2,
                to: 1,
                amount: 80,
            },
        ));
        assert_eq!(bank.total(), before);
        assert_eq!(bank.balance(1), 150);
        assert_eq!(bank.balance(2), 0);
    }

    #[test]
    fn guarded_withdraw_rejects_overdraft() {
        let mut bank = Bank::default();
        bank.apply(&cmd(
            0,
            BankOp::Deposit {
                account: 1,
                amount: 10,
            },
        ));
        bank.apply(&cmd(
            1,
            BankOp::Withdraw {
                account: 1,
                amount: 20,
            },
        ));
        assert_eq!(bank.balance(1), 10);
        assert_eq!(bank.rejected(), 1);
    }

    #[test]
    fn deposits_commute_semantically() {
        let a = cmd(
            0,
            BankOp::Deposit {
                account: 1,
                amount: 5,
            },
        );
        let b = cmd(
            1,
            BankOp::Deposit {
                account: 1,
                amount: 7,
            },
        );
        let mut b1 = Bank::default();
        b1.apply(&a);
        b1.apply(&b);
        let mut b2 = Bank::default();
        b2.apply(&b);
        b2.apply(&a);
        assert_eq!(b1, b2, "the conflict relation is semantically sound");
    }

    #[test]
    fn wire_roundtrip() {
        for op in [
            BankOp::Deposit {
                account: 1,
                amount: 2,
            },
            BankOp::Withdraw {
                account: 3,
                amount: 4,
            },
            BankOp::Transfer {
                from: 5,
                to: 6,
                amount: 7,
            },
            BankOp::Audit,
        ] {
            let c = cmd(9, op);
            let back: BankCmd = from_bytes(&to_bytes(&c)).unwrap();
            assert_eq!(back, c);
        }
    }
}
