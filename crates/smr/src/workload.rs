//! Deterministic workload generation for tests, examples and benches.

use crate::{BankCmd, BankOp, CmdId, KvCmd, KvOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic command generator with a tunable conflict profile.
///
/// The *conflict fraction* `rho` controls how likely two generated
/// key-value commands are to interfere: keys are drawn from a hot set of
/// size 1 with probability `rho` and from a large cold set otherwise, so
/// `rho ≈ 0` yields an almost fully commuting workload and `rho = 1` a
/// fully interfering one. This is the knob the E6/E8 experiments sweep.
#[derive(Debug)]
pub struct Workload {
    rng: StdRng,
    client: u32,
    seq: u32,
    rho: f64,
    cold_keys: u16,
    transfer_fraction: f64,
}

impl Workload {
    /// Creates a generator for `client` with conflict fraction `rho`.
    pub fn new(seed: u64, client: u32, rho: f64) -> Self {
        Workload {
            rng: StdRng::seed_from_u64(seed ^ u64::from(client).rotate_left(17)),
            client,
            seq: 0,
            rho: rho.clamp(0.0, 1.0),
            cold_keys: 10_000,
            transfer_fraction: 0.0,
        }
    }

    /// Sets the size of the cold key/account space commands draw from.
    pub fn with_cold_keys(mut self, cold_keys: u16) -> Self {
        self.cold_keys = cold_keys.max(1);
        self
    }

    /// Sets the fraction of [`Workload::next_sharded_bank`] commands that
    /// are two-account transfers — the multi-key commands that may cross
    /// shard boundaries. The sharding experiments sweep this at 0%/1%/10%.
    pub fn with_transfer_fraction(mut self, frac: f64) -> Self {
        self.transfer_fraction = frac.clamp(0.0, 1.0);
        self
    }

    /// The size of the cold key/account space.
    pub fn cold_keys(&self) -> u16 {
        self.cold_keys
    }

    /// The fraction of sharded-bank commands that are transfers.
    pub fn transfer_fraction(&self) -> f64 {
        self.transfer_fraction
    }

    fn next_id(&mut self) -> CmdId {
        let id = CmdId {
            client: self.client,
            seq: self.seq,
        };
        self.seq += 1;
        id
    }

    fn pick_key(&mut self) -> u16 {
        if self.rng.gen_bool(self.rho) {
            0 // the hot key: everything here interferes
        } else {
            1 + self.rng.gen_range(0..self.cold_keys)
        }
    }

    /// Next key-value write command.
    pub fn next_kv_put(&mut self) -> KvCmd {
        let key = self.pick_key();
        let value = self.rng.gen_range(1..1_000_000);
        KvCmd {
            id: self.next_id(),
            op: KvOp::Put(key, value),
        }
    }

    /// Next key-value command with a read/write mix (`write_frac` writes).
    pub fn next_kv(&mut self, write_frac: f64) -> KvCmd {
        if self.rng.gen_bool(write_frac.clamp(0.0, 1.0)) {
            self.next_kv_put()
        } else {
            KvCmd {
                id: self.next_id(),
                op: KvOp::Get(self.pick_key()),
            }
        }
    }

    /// Next bank command: mostly deposits (commuting), with transfers and
    /// the occasional audit mixed in proportionally to `rho`.
    pub fn next_bank(&mut self) -> BankCmd {
        let id = self.next_id();
        let roll: f64 = self.rng.gen();
        let op = if roll < self.rho / 2.0 {
            BankOp::Transfer {
                from: self.rng.gen_range(0..4),
                to: self.rng.gen_range(0..4),
                amount: self.rng.gen_range(1..50),
            }
        } else if roll < self.rho {
            BankOp::Withdraw {
                account: self.rng.gen_range(0..4),
                amount: self.rng.gen_range(1..50),
            }
        } else {
            BankOp::Deposit {
                account: self.rng.gen_range(0..16),
                amount: self.rng.gen_range(1..100),
            }
        };
        BankCmd { id, op }
    }

    /// Next bank command for a sharded deployment: single-account deposits
    /// spread over the cold account space, with a
    /// [`Workload::with_transfer_fraction`] share of two-account transfers
    /// between *distinct* accounts (the multi-key commands a router may
    /// classify as cross-shard).
    pub fn next_sharded_bank(&mut self) -> BankCmd {
        let id = self.next_id();
        let op = if self.transfer_fraction > 0.0 && self.rng.gen_bool(self.transfer_fraction) {
            let from = self.rng.gen_range(0..self.cold_keys);
            let mut to = self.rng.gen_range(0..self.cold_keys);
            if self.cold_keys > 1 {
                while to == from {
                    to = self.rng.gen_range(0..self.cold_keys);
                }
            }
            BankOp::Transfer {
                from,
                to,
                amount: 1,
            }
        } else {
            BankOp::Deposit {
                account: self.rng.gen_range(0..self.cold_keys),
                amount: self.rng.gen_range(1..100),
            }
        };
        BankCmd { id, op }
    }
}

/// Arrival times (in ticks) for `n` commands issued *open-loop* at
/// `rate` commands per tick: the k-th command arrives at `⌊k/rate⌋`
/// regardless of how fast the system completes earlier ones. Under
/// overload the commands queue and the backlog shows up as delivery
/// latency — the honest way to measure a saturated system (a closed
/// loop would throttle the offered load instead and hide the queueing).
///
/// Deterministic and allocation-only: drive it through any harness.
pub fn open_loop_arrivals(rate: f64, n: usize) -> Vec<u64> {
    assert!(rate > 0.0, "open-loop rate must be positive");
    (0..n).map(|k| (k as f64 / rate).floor() as u64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpaxos_cstruct::Conflict;

    #[test]
    fn open_loop_arrivals_pace_by_rate_not_completions() {
        // 2 commands per tick: pairs share a tick.
        assert_eq!(open_loop_arrivals(2.0, 6), vec![0, 0, 1, 1, 2, 2]);
        // Half a command per tick: one every 2 ticks.
        assert_eq!(open_loop_arrivals(0.5, 4), vec![0, 2, 4, 6]);
        assert!(open_loop_arrivals(1.0, 0).is_empty());
    }

    #[test]
    fn ids_are_unique_and_ordered() {
        let mut w = Workload::new(1, 7, 0.5);
        let a = w.next_kv_put();
        let b = w.next_kv_put();
        assert_eq!(a.id.client, 7);
        assert_eq!((a.id.seq, b.id.seq), (0, 1));
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn rho_zero_rarely_conflicts_rho_one_always() {
        let mut w0 = Workload::new(2, 0, 0.0);
        let cmds0: Vec<KvCmd> = (0..50).map(|_| w0.next_kv_put()).collect();
        let conflicts0 = count_conflicts(&cmds0);
        let mut w1 = Workload::new(2, 0, 1.0);
        let cmds1: Vec<KvCmd> = (0..50).map(|_| w1.next_kv_put()).collect();
        let conflicts1 = count_conflicts(&cmds1);
        assert!(conflicts0 < conflicts1);
        assert_eq!(conflicts1, 50 * 49 / 2, "rho=1: every pair conflicts");
    }

    fn count_conflicts(cmds: &[KvCmd]) -> usize {
        let mut n = 0;
        for (i, a) in cmds.iter().enumerate() {
            for b in &cmds[i + 1..] {
                if a.conflicts(b) {
                    n += 1;
                }
            }
        }
        n
    }

    #[test]
    fn determinism_per_seed() {
        let a: Vec<KvCmd> = {
            let mut w = Workload::new(9, 1, 0.3);
            (0..10).map(|_| w.next_kv(0.8)).collect()
        };
        let b: Vec<KvCmd> = {
            let mut w = Workload::new(9, 1, 0.3);
            (0..10).map(|_| w.next_kv(0.8)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn sharded_bank_honors_transfer_fraction() {
        let mut w = Workload::new(11, 0, 0.0).with_cold_keys(64);
        assert_eq!(w.cold_keys(), 64);
        assert!((0..200).all(|_| matches!(w.next_sharded_bank().op, BankOp::Deposit { .. })));

        let mut w = Workload::new(11, 0, 0.0)
            .with_cold_keys(64)
            .with_transfer_fraction(0.5);
        let cmds: Vec<BankCmd> = (0..200).map(|_| w.next_sharded_bank()).collect();
        let transfers = cmds
            .iter()
            .filter(|c| matches!(c.op, BankOp::Transfer { .. }))
            .count();
        assert!((50..150).contains(&transfers), "≈50%: got {transfers}");
        for c in &cmds {
            if let BankOp::Transfer { from, to, .. } = c.op {
                assert_ne!(from, to, "transfers are genuinely multi-key");
                assert!(from < 64 && to < 64);
            }
        }
    }

    #[test]
    fn bank_mix_varies_with_rho() {
        let mut w = Workload::new(5, 0, 0.0);
        assert!((0..30).all(|_| matches!(w.next_bank().op, BankOp::Deposit { .. })));
        let mut w = Workload::new(5, 0, 1.0);
        let any_guarded = (0..30).any(|_| {
            matches!(
                w.next_bank().op,
                BankOp::Withdraw { .. } | BankOp::Transfer { .. }
            )
        });
        assert!(any_guarded);
    }
}
