//! The replica actor: learner + delivery cursor + state machine.

use crate::machine::StateMachine;
use mcpaxos_actor::{Actor, Context, ProcessId, TimerToken};
use mcpaxos_core::{DeployConfig, Learner, Msg};
use mcpaxos_cstruct::CommandHistory;
use mcpaxos_gbcast::Delivery;
use std::sync::Arc;

/// Message type flowing through a replica of machine `SM`.
pub type ReplicaMsg<SM> = Msg<CommandHistory<<SM as StateMachine>::Cmd>>;

/// A replica: plays the learner role and applies newly agreed commands to
/// its local state machine.
///
/// Register a `Replica` at each process listed in the deployment's
/// learner role; the embedded [`Learner`] handles the protocol, the
/// [`Delivery`] cursor guarantees exactly-once, order-respecting
/// application.
pub struct Replica<SM: StateMachine> {
    learner: Learner<CommandHistory<SM::Cmd>>,
    delivery: Delivery<SM::Cmd>,
    machine: SM,
}

impl<SM: StateMachine> Replica<SM> {
    /// Creates a replica for the given deployment.
    pub fn new(cfg: Arc<DeployConfig>) -> Self {
        Replica {
            learner: Learner::new(cfg),
            delivery: Delivery::new(),
            machine: SM::default(),
        }
    }

    /// The replicated state machine.
    pub fn machine(&self) -> &SM {
        &self.machine
    }

    /// Commands applied so far, in application order.
    pub fn applied(&self) -> &[SM::Cmd] {
        self.delivery.delivered()
    }

    /// The underlying learner (for history inspection).
    pub fn learner(&self) -> &Learner<CommandHistory<SM::Cmd>> {
        &self.learner
    }

    fn drain(&mut self) {
        let learned = self.learner.learned().clone();
        for cmd in self.delivery.absorb(&learned) {
            self.machine.apply(&cmd);
        }
    }
}

impl<SM: StateMachine> Actor for Replica<SM> {
    type Msg = ReplicaMsg<SM>;

    fn on_start(&mut self, ctx: &mut dyn Context<Self::Msg>) {
        self.learner.on_start(ctx);
    }

    fn on_message(&mut self, from: ProcessId, msg: Self::Msg, ctx: &mut dyn Context<Self::Msg>) {
        self.learner.on_message(from, msg, ctx);
        self.drain();
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut dyn Context<Self::Msg>) {
        self.learner.on_timer(token, ctx);
        self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CmdId, KvCmd, KvOp, KvStore};
    use mcpaxos_actor::{MemStore, Metric, SimDuration, SimTime, StableStore};
    use mcpaxos_core::{Policy, Round, RTYPE_MULTI};

    struct Ctx {
        store: MemStore,
    }
    impl Context<ReplicaMsg<KvStore>> for Ctx {
        fn me(&self) -> ProcessId {
            ProcessId(9)
        }
        fn now(&self) -> SimTime {
            SimTime::ZERO
        }
        fn send(&mut self, _to: ProcessId, _m: ReplicaMsg<KvStore>) {}
        fn set_timer(&mut self, _a: SimDuration, _t: TimerToken) {}
        fn cancel_timer(&mut self, _t: TimerToken) {}
        fn storage(&mut self) -> &mut dyn StableStore {
            &mut self.store
        }
        fn metric(&mut self, _m: Metric) {}
        fn random(&mut self) -> u64 {
            0
        }
    }

    #[test]
    fn replica_applies_learned_commands() {
        // 3 acceptors (a4..a6 in 1/3/3/1 layout), majority 2.
        let cfg = Arc::new(DeployConfig::simple(1, 3, 3, 1, Policy::MultiCoordinated));
        let mut r: Replica<KvStore> = Replica::new(cfg);
        let mut ctx = Ctx {
            store: MemStore::new(),
        };
        let round = Round::new(0, 1, 0, RTYPE_MULTI);
        let cmd = KvCmd {
            id: CmdId { client: 1, seq: 0 },
            op: KvOp::Put(7, 70),
        };
        let hist: CommandHistory<KvCmd> = [cmd].into_iter().collect();
        for a in [4u32, 5] {
            r.on_message(
                ProcessId(a),
                Msg::P2b {
                    round,
                    val: hist.clone().into(),
                },
                &mut ctx,
            );
        }
        assert_eq!(r.machine().get(7), Some(70));
        assert_eq!(r.applied().len(), 1);
    }
}
