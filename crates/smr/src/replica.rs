//! The replica actor: learner + delivery cursor + state machine.

use crate::machine::StateMachine;
use mcpaxos_actor::wire::{from_bytes, to_bytes, Wire, WireError};
use mcpaxos_actor::{Actor, Context, ProcessId, TimerToken};
use mcpaxos_core::{DeployConfig, Learner, Msg};
use mcpaxos_cstruct::{CStruct, CommandHistory};
use mcpaxos_gbcast::Delivery;
use std::sync::Arc;

/// Message type flowing through a replica of machine `SM`.
pub type ReplicaMsg<SM> = Msg<CommandHistory<<SM as StateMachine>::Cmd>>;

/// Storage key for the persisted replica checkpoint.
const KEY_CKPT: &str = "ckpt";

/// A durable snapshot of a replica: the machine state plus the logical
/// delivery watermark it reflects.
///
/// With stable-prefix compaction the command history below the
/// deployment's watermark no longer exists anywhere — a restarted or
/// lagging replica *cannot* replay it. Checkpoints close that gap: the
/// replica resumes the machine at `applied` and the delivery cursor skips
/// everything below it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint<SM: StateMachine> {
    /// Logical position (`total_len`) the machine state reflects.
    pub applied: u64,
    /// The learner's stable watermark at checkpoint time: the restored
    /// learner resumes there (segments below it may no longer be
    /// retained by any peer).
    pub watermark: u64,
    /// The commands applied *above* the watermark, in application order.
    /// Logical positions only identify commands within one learner's
    /// value — the re-learning learner may order commuting commands of
    /// this window differently — so the restored cursor must skip these
    /// by membership, not by position. Bounded by the compaction cadence.
    pub tail: Vec<SM::Cmd>,
    /// The machine state after applying the first `applied` commands.
    pub machine: SM,
}

impl<SM: StateMachine + Wire> Wire for Checkpoint<SM> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.applied.encode(out);
        self.watermark.encode(out);
        self.tail.encode(out);
        self.machine.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Checkpoint {
            applied: u64::decode(input)?,
            watermark: u64::decode(input)?,
            tail: Wire::decode(input)?,
            machine: SM::decode(input)?,
        })
    }
}

/// A replica: plays the learner role and applies newly agreed commands to
/// its local state machine.
///
/// Register a `Replica` at each process listed in the deployment's
/// learner role; the embedded [`Learner`] handles the protocol, the
/// [`Delivery`] cursor guarantees exactly-once, order-respecting
/// application. When `WireConfig::checkpoint_every` is set, the replica
/// persists a [`Checkpoint`] every that-many applied commands (and stops
/// retaining the applied-command log, bounding its memory); `on_recover`
/// resumes from the latest checkpoint instead of replaying history.
pub struct Replica<SM: StateMachine> {
    cfg: Arc<DeployConfig>,
    learner: Learner<CommandHistory<SM::Cmd>>,
    delivery: Delivery<SM::Cmd>,
    machine: SM,
    last_ckpt: u64,
}

impl<SM: StateMachine> Replica<SM> {
    /// Creates a replica for the given deployment.
    pub fn new(cfg: Arc<DeployConfig>) -> Self {
        let learner = Learner::new(cfg.clone());
        let mut delivery = Delivery::new();
        if cfg.wire.checkpoint_every > 0 {
            delivery.disable_log();
        }
        Replica {
            cfg,
            learner,
            delivery,
            machine: SM::default(),
            last_ckpt: 0,
        }
    }

    /// Creates a replica resuming from `ckpt`: the machine state is
    /// adopted, the learner restarts at the checkpoint watermark, and the
    /// delivery cursor skips the checkpoint's applied tail by membership.
    /// Used by hosts that transfer snapshots to fresh or lagging replicas
    /// out of band.
    pub fn restore(cfg: Arc<DeployConfig>, ckpt: Checkpoint<SM>) -> Self {
        let mut learner = Learner::new(cfg.clone());
        if ckpt.watermark > 0 {
            learner.resume_at(ckpt.watermark);
        }
        let last_ckpt = ckpt.applied;
        Replica {
            cfg,
            learner,
            delivery: Delivery::resume_skip(ckpt.watermark, ckpt.tail),
            machine: ckpt.machine,
            last_ckpt,
        }
    }

    /// The replicated state machine.
    pub fn machine(&self) -> &SM {
        &self.machine
    }

    /// Commands applied since this replica (re)started, in application
    /// order. Empty in checkpointing deployments, which do not retain the
    /// log — use [`Replica::applied_count`] there.
    pub fn applied(&self) -> &[SM::Cmd] {
        self.delivery.delivered()
    }

    /// Total number of commands the machine state reflects, including
    /// those below a restored checkpoint and its not-yet-passed tail.
    pub fn applied_count(&self) -> u64 {
        self.delivery.len() as u64
    }

    /// A checkpoint of the current state. The tail — commands applied
    /// above the stable watermark — is the learner's live window up to
    /// the cursor (the applied region after a drain), plus any commands
    /// from a restored checkpoint the cursor has not passed again yet.
    pub fn checkpoint(&self) -> Checkpoint<SM> {
        let watermark = self.learner.watermark();
        let window = self.learner.learned().as_slice();
        let upto = (self.delivery.offset().saturating_sub(watermark) as usize).min(window.len());
        let mut tail = window[..upto].to_vec();
        tail.extend_from_slice(self.delivery.skip_commands());
        Checkpoint {
            applied: watermark + tail.len() as u64,
            watermark,
            tail,
            machine: self.machine.clone(),
        }
    }

    /// The underlying learner (for history inspection).
    pub fn learner(&self) -> &Learner<CommandHistory<SM::Cmd>> {
        &self.learner
    }

    fn drain(&mut self, ctx: &mut dyn Context<ReplicaMsg<SM>>) {
        // Every message lands here, but under batched 2a waves a single
        // drain delivers the whole k-command wave and the next k-1
        // messages find nothing new: skip the cursor's O(window)
        // delivered-prefix verification when the history has not grown
        // past the cursor.
        if self.learner.learned().total_len() <= self.delivery.offset()
            && self.delivery.pending_skip() == 0
        {
            return;
        }
        // Split borrows: the cursor walks the learner's history in place
        // and feeds the machine by reference — no clone of the history,
        // no clone of the commands.
        let learned = self.learner.learned();
        let machine = &mut self.machine;
        self.delivery.absorb_with(learned, |c| machine.apply(c));
        let every = self.cfg.wire.checkpoint_every;
        if every > 0 && self.delivery.len() as u64 >= self.last_ckpt + every {
            self.last_ckpt = self.delivery.len() as u64;
            ctx.storage().write(KEY_CKPT, to_bytes(&self.checkpoint()));
        }
    }
}

impl<SM: StateMachine> Actor for Replica<SM> {
    type Msg = ReplicaMsg<SM>;

    fn on_start(&mut self, ctx: &mut dyn Context<Self::Msg>) {
        self.learner.on_start(ctx);
    }

    fn on_recover(&mut self, ctx: &mut dyn Context<Self::Msg>) {
        if let Some(bytes) = ctx.storage().read(KEY_CKPT) {
            let ckpt: Checkpoint<SM> = from_bytes(bytes).expect("corrupt replica checkpoint");
            self.machine = ckpt.machine;
            self.last_ckpt = ckpt.applied;
            if ckpt.watermark > 0 {
                self.learner.resume_at(ckpt.watermark);
            }
            self.delivery = Delivery::resume_skip(ckpt.watermark, ckpt.tail);
        }
        self.learner.on_start(ctx);
    }

    fn on_message(&mut self, from: ProcessId, msg: Self::Msg, ctx: &mut dyn Context<Self::Msg>) {
        self.learner.on_message(from, msg, ctx);
        self.drain(ctx);
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut dyn Context<Self::Msg>) {
        self.learner.on_timer(token, ctx);
        self.drain(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CmdId, KvCmd, KvOp, KvStore};
    use mcpaxos_actor::{MemStore, Metric, SimDuration, SimTime, StableStore};
    use mcpaxos_core::{Policy, Round, RTYPE_MULTI};
    use mcpaxos_cstruct::CStruct;

    struct Ctx {
        store: MemStore,
    }
    impl Context<ReplicaMsg<KvStore>> for Ctx {
        fn me(&self) -> ProcessId {
            ProcessId(9)
        }
        fn now(&self) -> SimTime {
            SimTime::ZERO
        }
        fn send(&mut self, _to: ProcessId, _m: ReplicaMsg<KvStore>) {}
        fn set_timer(&mut self, _a: SimDuration, _t: TimerToken) {}
        fn cancel_timer(&mut self, _t: TimerToken) {}
        fn storage(&mut self) -> &mut dyn StableStore {
            &mut self.store
        }
        fn metric(&mut self, _m: Metric) {}
        fn random(&mut self) -> u64 {
            0
        }
    }

    fn put(seq: u32, k: u16, v: u64) -> KvCmd {
        KvCmd {
            id: CmdId { client: 1, seq },
            op: KvOp::Put(k, v),
        }
    }

    #[test]
    fn replica_applies_learned_commands() {
        // 3 acceptors (a4..a6 in 1/3/3/1 layout), majority 2.
        let cfg = Arc::new(DeployConfig::simple(1, 3, 3, 1, Policy::MultiCoordinated));
        let mut r: Replica<KvStore> = Replica::new(cfg);
        let mut ctx = Ctx {
            store: MemStore::new(),
        };
        let round = Round::new(0, 1, 0, RTYPE_MULTI);
        let hist: CommandHistory<KvCmd> = [put(0, 7, 70)].into_iter().collect();
        for a in [4u32, 5] {
            r.on_message(
                ProcessId(a),
                Msg::P2b {
                    round,
                    val: hist.clone().into(),
                },
                &mut ctx,
            );
        }
        assert_eq!(r.machine().get(7), Some(70));
        assert_eq!(r.applied().len(), 1);
        assert_eq!(r.applied_count(), 1);
    }

    #[test]
    fn batched_wave_drains_in_one_pass_and_redelivery_is_inert() {
        let cfg = Arc::new(DeployConfig::simple(1, 3, 3, 1, Policy::MultiCoordinated));
        let mut r: Replica<KvStore> = Replica::new(cfg);
        let mut ctx = Ctx {
            store: MemStore::new(),
        };
        let round = Round::new(0, 1, 0, RTYPE_MULTI);
        // One batched wave: the whole k-command value lands in a single
        // 2b pair and must apply on the first drain.
        let hist: CommandHistory<KvCmd> = (0..8)
            .map(|i| put(i, i as u16, u64::from(i) * 10))
            .collect();
        for a in [4u32, 5] {
            r.on_message(
                ProcessId(a),
                Msg::P2b {
                    round,
                    val: hist.clone().into(),
                },
                &mut ctx,
            );
        }
        assert_eq!(r.applied_count(), 8);
        // Redeliveries of the same wave (the other acceptors' 2bs) take
        // the no-growth fast path: nothing re-applies.
        r.on_message(
            ProcessId(6),
            Msg::P2b {
                round,
                val: hist.clone().into(),
            },
            &mut ctx,
        );
        assert_eq!(r.applied_count(), 8);
        assert_eq!(r.applied().len(), 8);
    }

    #[test]
    fn checkpoint_roundtrips_and_restores() {
        let cfg = Arc::new(DeployConfig::simple(1, 3, 3, 1, Policy::MultiCoordinated));
        let mut r: Replica<KvStore> = Replica::new(cfg.clone());
        let mut ctx = Ctx {
            store: MemStore::new(),
        };
        let round = Round::new(0, 1, 0, RTYPE_MULTI);
        let hist: CommandHistory<KvCmd> = [put(0, 1, 10), put(1, 2, 20)].into_iter().collect();
        for a in [4u32, 5] {
            r.on_message(
                ProcessId(a),
                Msg::P2b {
                    round,
                    val: hist.clone().into(),
                },
                &mut ctx,
            );
        }
        let ckpt = r.checkpoint();
        assert_eq!(ckpt.applied, 2);
        let bytes = to_bytes(&ckpt);
        let back: Checkpoint<KvStore> = from_bytes(&bytes).unwrap();
        assert_eq!(back, ckpt);
        // A restored replica adopts the state without replaying, and
        // continues from the watermark.
        let mut r2: Replica<KvStore> = Replica::restore(cfg, back);
        assert_eq!(r2.machine().get(1), Some(10));
        assert_eq!(r2.applied_count(), 2);
        let mut hist2 = hist.clone();
        hist2.append(put(2, 3, 30));
        for a in [4u32, 5] {
            r2.on_message(
                ProcessId(a),
                Msg::P2b {
                    round,
                    val: hist2.clone().into(),
                },
                &mut ctx,
            );
        }
        assert_eq!(r2.machine().get(3), Some(30));
        assert_eq!(r2.applied_count(), 3);
    }
}
