//! Command-space sharding: routing, cross-shard sequencing, and the
//! sharded replica merge (the application half of `mcpaxos_core::shard`).
//!
//! The command space is partitioned by conflict-key hash across N
//! independent consensus instances. A single-key command involves exactly
//! one shard; a multi-key command (a bank transfer between accounts on
//! different shards, or an audit) involves several and is proposed to
//! *all* of them — each involved shard orders it against its own traffic,
//! and the [`ShardedReplica`] merge applies it exactly once, when its
//! position is agreed in every involved shard.
//!
//! # Why the merge is deterministic
//!
//! Two conflicting commands share a conflict key (the [`Conflict`]
//! contract), so they share at least one shard, and every involved shard's
//! learned history orders them. The merge applies a command only when no
//! conflicting command precedes it in any involved shard's undelivered
//! queue, so conflicting pairs are applied in their common shard's order
//! everywhere; non-conflicting commands commute, making any interleaving
//! of the per-shard streams state-equivalent.
//!
//! Two *concurrent* conflicting multi-shard commands could be ordered
//! oppositely by two shards they share pairwise (or through a cycle of
//! shards), deadlocking the merge. The [`CrossShardSequencer`] exists to
//! rule that out: a cross-shard command conflicting with an in-flight
//! cross-shard command is held back until the earlier one is learned by
//! every involved shard — the WPaxos-style object-group sequencing the
//! paper's load-balancing discussion (§4.1) leaves to the deployment.

use crate::machine::StateMachine;
use mcpaxos_cstruct::{CommandHistory, Conflict, ConflictKeys};
use mcpaxos_gbcast::Delivery;
use std::collections::VecDeque;

/// Routes commands to shards by conflict-key hash.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardRouter {
    n: u16,
}

/// FNV-1a over the key's little-endian bytes: cheap, deterministic, and
/// spreads the sequential account/key spaces real workloads use.
fn hash_key(k: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in k.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl ShardRouter {
    /// A router over `n` shards (at least 1).
    pub fn new(n: u16) -> Self {
        ShardRouter { n: n.max(1) }
    }

    /// Number of shards routed over.
    pub fn n_shards(&self) -> u16 {
        self.n
    }

    /// The shard owning conflict key `k`.
    pub fn shard_of_key(&self, k: u64) -> u16 {
        (hash_key(k) % u64::from(self.n)) as u16
    }

    /// The shards involved in a command with hint `keys`, sorted and
    /// deduplicated. [`ConflictKeys::all`] involves every shard; a command
    /// with no conflict keys commutes with everything and is pinned to
    /// shard 0 (any fixed choice is correct).
    pub fn involved(&self, keys: &ConflictKeys) -> Vec<u16> {
        if keys.is_all() {
            return (0..self.n).collect();
        }
        let mut shards: Vec<u16> = keys
            .as_slice()
            .iter()
            .map(|&k| self.shard_of_key(k))
            .collect();
        shards.sort_unstable();
        shards.dedup();
        if shards.is_empty() {
            shards.push(0);
        }
        shards
    }

    /// The shards involved in `cmd` (see [`ShardRouter::involved`]).
    pub fn route<C: Conflict>(&self, cmd: &C) -> Vec<u16> {
        self.involved(&cmd.conflict_keys())
    }

    /// Whether `cmd` involves more than one shard.
    pub fn is_cross_shard<C: Conflict>(&self, cmd: &C) -> bool {
        self.route(cmd).len() > 1
    }
}

/// Serializes conflicting cross-shard commands: at most one of any
/// conflicting set is in flight at a time, so no two shards can order a
/// conflicting pair oppositely (see the module docs).
///
/// Single-shard commands never pass through here — one shard's own
/// history orders them against everything they conflict with.
#[derive(Debug)]
pub struct CrossShardSequencer<C> {
    in_flight: Vec<C>,
    held: VecDeque<C>,
}

impl<C: Conflict + Clone + Eq> CrossShardSequencer<C> {
    /// An empty sequencer.
    pub fn new() -> Self {
        CrossShardSequencer {
            in_flight: Vec::new(),
            held: VecDeque::new(),
        }
    }

    /// Submits a cross-shard command. Returns `true` if it may be proposed
    /// now (it conflicts with nothing in flight or held before it), `false`
    /// if it is held until [`CrossShardSequencer::on_progress`] releases it.
    pub fn submit(&mut self, cmd: C) -> bool {
        let blocked = self
            .in_flight
            .iter()
            .chain(self.held.iter())
            .any(|f| f.conflicts(&cmd));
        if blocked {
            self.held.push_back(cmd);
            false
        } else {
            self.in_flight.push(cmd);
            true
        }
    }

    /// Commands currently in flight (proposed, not yet fully learned).
    pub fn in_flight(&self) -> &[C] {
        &self.in_flight
    }

    /// Number of commands held back behind a conflicting one.
    pub fn held_len(&self) -> usize {
        self.held.len()
    }

    /// Retires every in-flight command `fully_learned` reports true for,
    /// then releases held commands whose conflicts have cleared, in
    /// submission order. The returned commands are now in flight and must
    /// be proposed to their involved shards.
    pub fn on_progress(&mut self, fully_learned: impl Fn(&C) -> bool) -> Vec<C> {
        self.in_flight.retain(|c| !fully_learned(c));
        let mut released = Vec::new();
        let mut still_held: VecDeque<C> = VecDeque::new();
        while let Some(cmd) = self.held.pop_front() {
            let blocked = self
                .in_flight
                .iter()
                .chain(still_held.iter())
                .any(|f| f.conflicts(&cmd));
            if blocked {
                still_held.push_back(cmd);
            } else {
                self.in_flight.push(cmd.clone());
                released.push(cmd);
            }
        }
        self.held = still_held;
        released
    }
}

impl<C: Conflict + Clone + Eq> Default for CrossShardSequencer<C> {
    fn default() -> Self {
        Self::new()
    }
}

/// Applies the per-shard learned histories of a sharded deployment to one
/// state machine, exactly once per command, with the deterministic
/// cross-shard merge described in the module docs.
///
/// Each shard feeds a [`Delivery`] cursor (exactly-once linearization of
/// that shard's history, compaction-safe); newly delivered commands queue
/// per shard, and the merge drains a command once it is present in every
/// involved shard's queue with no conflicting command queued before it in
/// any of them.
#[derive(Debug)]
pub struct ShardedReplica<SM: StateMachine> {
    router: ShardRouter,
    cursors: Vec<Delivery<SM::Cmd>>,
    queues: Vec<VecDeque<SM::Cmd>>,
    machine: SM,
    applied_log: Vec<SM::Cmd>,
    applied: u64,
    keep_log: bool,
}

impl<SM: StateMachine> ShardedReplica<SM> {
    /// A fresh replica merging `n_shards` instances.
    pub fn new(n_shards: u16) -> Self {
        let n = usize::from(n_shards.max(1));
        let mut cursors = Vec::with_capacity(n);
        for _ in 0..n {
            let mut d = Delivery::new();
            d.disable_log();
            cursors.push(d);
        }
        ShardedReplica {
            router: ShardRouter::new(n_shards),
            cursors,
            queues: vec![VecDeque::new(); n],
            machine: SM::default(),
            applied_log: Vec::new(),
            applied: 0,
            keep_log: false,
        }
    }

    /// Retains the applied-command log (for tests and differential
    /// oracles; off by default to bound memory).
    pub fn keep_log(mut self) -> Self {
        self.keep_log = true;
        self
    }

    /// The router this replica shards by.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The merged state machine.
    pub fn machine(&self) -> &SM {
        &self.machine
    }

    /// Commands applied so far, in application order (empty unless
    /// [`ShardedReplica::keep_log`]).
    pub fn applied_log(&self) -> &[SM::Cmd] {
        &self.applied_log
    }

    /// Number of commands applied to the machine.
    pub fn applied_count(&self) -> u64 {
        self.applied
    }

    /// Commands delivered by some shard but not yet applicable (waiting
    /// for their other involved shards, or for a conflicting predecessor).
    pub fn pending(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Absorbs shard `shard`'s current learned history and drains every
    /// command the new deliveries made applicable.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range, or if the shard's history
    /// violates stability (see [`Delivery::absorb_with`]).
    pub fn absorb_shard(&mut self, shard: u16, learned: &CommandHistory<SM::Cmd>) {
        let s = usize::from(shard);
        let fresh = self.cursors[s].absorb(learned);
        self.queues[s].extend(fresh);
        self.drain();
    }

    /// Whether `cmd` (involving `involved`) may be applied now: delivered
    /// by every involved shard, with no conflicting command queued before
    /// it anywhere.
    fn applicable(&self, cmd: &SM::Cmd, involved: &[u16]) -> bool {
        involved.iter().all(|&t| {
            let q = &self.queues[usize::from(t)];
            match q.iter().position(|c| c == cmd) {
                None => false,
                Some(p) => q.iter().take(p).all(|d| !d.conflicts(cmd)),
            }
        })
    }

    /// Deterministic merge scan: repeatedly apply the first applicable
    /// command (shards in index order, queues front to back; a cross-shard
    /// command is considered at its lowest involved shard).
    fn drain(&mut self) {
        loop {
            let mut next: Option<(SM::Cmd, Vec<u16>)> = None;
            'scan: for s in 0..self.queues.len() {
                for cmd in &self.queues[s] {
                    let involved = self.router.route(cmd);
                    if usize::from(involved[0]) != s {
                        continue; // considered at its lowest involved shard
                    }
                    if self.applicable(cmd, &involved) {
                        next = Some((cmd.clone(), involved));
                        break 'scan;
                    }
                }
            }
            let Some((cmd, involved)) = next else { break };
            for &t in &involved {
                let q = &mut self.queues[usize::from(t)];
                if let Some(p) = q.iter().position(|c| *c == cmd) {
                    q.remove(p);
                }
            }
            self.machine.apply(&cmd);
            self.applied += 1;
            if self.keep_log {
                self.applied_log.push(cmd);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bank, BankCmd, BankOp, CmdId};

    fn cmd(seq: u32, op: BankOp) -> BankCmd {
        BankCmd {
            id: CmdId { client: 1, seq },
            op,
        }
    }

    fn deposit(seq: u32, account: u16, amount: u32) -> BankCmd {
        cmd(seq, BankOp::Deposit { account, amount })
    }

    fn transfer(seq: u32, from: u16, to: u16, amount: u32) -> BankCmd {
        cmd(seq, BankOp::Transfer { from, to, amount })
    }

    #[test]
    fn router_is_stable_and_conflict_keys_dedup() {
        let r = ShardRouter::new(4);
        for k in 0..200u64 {
            assert_eq!(r.shard_of_key(k), ShardRouter::new(4).shard_of_key(k));
            assert!(r.shard_of_key(k) < 4);
        }
        // Same account on both sides of a transfer: one shard, not cross.
        let same = transfer(0, 3, 3, 1);
        assert_eq!(r.route(&same).len(), 1);
        assert!(!r.is_cross_shard(&same));
        // An audit involves every shard.
        let audit = cmd(1, BankOp::Audit);
        assert_eq!(r.route(&audit), vec![0, 1, 2, 3]);
        // One shard collapses everything.
        assert_eq!(ShardRouter::new(1).route(&audit), vec![0]);
    }

    #[test]
    fn sequencer_holds_conflicting_and_releases_in_order() {
        let mut seq = CrossShardSequencer::new();
        let t1 = transfer(0, 1, 2, 5);
        let t2 = transfer(1, 2, 3, 5); // conflicts with t1 via account 2
        let t3 = transfer(2, 7, 8, 5); // independent
        assert!(seq.submit(t1.clone()));
        assert!(!seq.submit(t2.clone()));
        assert!(seq.submit(t3.clone()));
        assert_eq!(seq.held_len(), 1);
        // t1 completes: t2 is released; t3 still in flight.
        let released = seq.on_progress(|c| *c == t1);
        assert_eq!(released, vec![t2.clone()]);
        assert_eq!(seq.in_flight().len(), 2);
        // Everything completes: nothing left.
        let released = seq.on_progress(|_| true);
        assert!(released.is_empty());
        assert!(seq.in_flight().is_empty());
        assert_eq!(seq.held_len(), 0);
    }

    #[test]
    fn sequencer_fifo_among_held_conflicts() {
        let mut seq = CrossShardSequencer::new();
        let t1 = transfer(0, 1, 2, 5);
        let t2 = transfer(1, 2, 3, 5);
        let t3 = transfer(2, 3, 4, 5); // conflicts with t2, not t1
        assert!(seq.submit(t1.clone()));
        assert!(!seq.submit(t2.clone()));
        assert!(!seq.submit(t3.clone()), "held behind t2 even though t1 ok");
        let released = seq.on_progress(|c| *c == t1);
        assert_eq!(released, vec![t2.clone()], "t3 stays behind t2");
        let released = seq.on_progress(|c| *c == t2);
        assert_eq!(released, vec![t3]);
    }

    #[test]
    fn merge_waits_for_all_involved_shards() {
        let r = ShardRouter::new(2);
        // Find two accounts on different shards.
        let a: u16 = 0;
        let b: u16 = (1..100)
            .find(|&x| r.shard_of_key(u64::from(x)) != r.shard_of_key(u64::from(a)))
            .unwrap();
        let (sa, sb) = (r.shard_of_key(u64::from(a)), r.shard_of_key(u64::from(b)));
        let d1 = deposit(0, a, 100);
        let d2 = deposit(1, b, 100);
        let t = transfer(2, a, b, 40);

        let mut rep: ShardedReplica<Bank> = ShardedReplica::new(2).keep_log();
        let mut ha = mcpaxos_cstruct::CommandHistory::default();
        use mcpaxos_cstruct::CStruct;
        ha.append(d1.clone());
        ha.append(t.clone());
        rep.absorb_shard(sa, &ha);
        // Transfer delivered by shard A only: held (conflicting predecessor
        // d1 applies, t itself waits for shard B).
        assert_eq!(rep.applied_count(), 1);
        assert_eq!(rep.pending(), 1);

        let mut hb = mcpaxos_cstruct::CommandHistory::default();
        hb.append(d2.clone());
        hb.append(t.clone());
        rep.absorb_shard(sb, &hb);
        assert_eq!(rep.applied_count(), 3);
        assert_eq!(rep.pending(), 0);
        assert_eq!(rep.machine().balance(a), 60);
        assert_eq!(rep.machine().balance(b), 140);
        assert_eq!(rep.machine().rejected(), 0);
        assert_eq!(rep.applied_log(), &[d1, d2, t]);
    }

    #[test]
    fn merge_applies_exactly_once_on_reabsorb() {
        let r = ShardRouter::new(2);
        let a: u16 = 0;
        let sa = r.shard_of_key(u64::from(a));
        let mut rep: ShardedReplica<Bank> = ShardedReplica::new(2);
        use mcpaxos_cstruct::CStruct;
        let mut h = mcpaxos_cstruct::CommandHistory::default();
        h.append(deposit(0, a, 10));
        rep.absorb_shard(sa, &h);
        rep.absorb_shard(sa, &h); // same history again: no double apply
        h.append(deposit(1, a, 5));
        rep.absorb_shard(sa, &h);
        assert_eq!(rep.applied_count(), 2);
        assert_eq!(rep.machine().balance(a), 15);
    }
}
