//! The deterministic state-machine abstraction.

use mcpaxos_actor::wire::Wire;
use mcpaxos_cstruct::{Command, Conflict};

/// A deterministic state machine replicated via generic broadcast.
///
/// Determinism is the replica-consistency contract: applying the same
/// command sequence to two instances must produce equal states. The
/// command type's [`Conflict`] relation must order every pair of commands
/// whose application order affects the final state — that is exactly the
/// soundness condition connecting the application to the protocol.
///
/// Machines are [`Wire`]-serializable so replicas can persist
/// *checkpoints* (state + delivery watermark) and restart from them
/// instead of replaying a full — possibly already compacted — history.
pub trait StateMachine: Default + Clone + std::fmt::Debug + Wire + 'static {
    /// Commands this machine executes.
    type Cmd: Command + Conflict;

    /// Applies one command.
    fn apply(&mut self, cmd: &Self::Cmd);

    /// Applies a sequence of commands in order.
    fn apply_all<'a>(&mut self, cmds: impl IntoIterator<Item = &'a Self::Cmd>)
    where
        Self::Cmd: 'a,
    {
        for c in cmds {
            self.apply(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CmdId;
    use crate::{KvCmd, KvOp, KvStore};

    #[test]
    fn apply_all_folds() {
        let mut sm = KvStore::default();
        let cmds = [
            KvCmd {
                id: CmdId { client: 1, seq: 0 },
                op: KvOp::Put(1, 10),
            },
            KvCmd {
                id: CmdId { client: 1, seq: 1 },
                op: KvOp::Put(2, 20),
            },
        ];
        sm.apply_all(cmds.iter());
        assert_eq!(sm.get(1), Some(10));
        assert_eq!(sm.get(2), Some(20));
    }
}
