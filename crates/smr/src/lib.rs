//! State-machine replication over Multicoordinated Paxos generic
//! broadcast.
//!
//! The paper motivates multicoordinated rounds with state-machine
//! replication (§1): replicas apply an agreed partial order of commands
//! in which only *interfering* commands are ordered. This crate provides
//! that application layer:
//!
//! * [`StateMachine`] — deterministic command application;
//! * [`KvCmd`]/[`KvStore`] — a replicated key-value store whose conflict
//!   relation orders same-key writes but lets reads and different-key
//!   operations commute;
//! * [`BankCmd`]/[`Bank`] — a replicated bank where deposits commute,
//!   withdrawals and transfers interfere per account, and audits
//!   interfere with everything (the classic generic-broadcast example);
//! * [`Replica`] — a learner + delivery cursor + state machine bundled as
//!   one actor;
//! * [`Workload`] — deterministic workload generation for tests, examples
//!   and the experiment harness;
//! * [`ShardRouter`]/[`CrossShardSequencer`]/[`ShardedReplica`] —
//!   WPaxos-style sharding of the command space across parallel consensus
//!   instances, with a deterministic cross-shard merge.
//!
//! Because commands carry unique ids, at-most-once application is
//! guaranteed by c-struct deduplication; replicas applying compatible
//! histories reach the same state for every key (same agreed order for
//! interfering commands, and commuting commands by definition reach the
//! same state in any order).

mod bank;
mod kv;
mod machine;
mod replica;
mod shard;
mod workload;

pub use bank::{Bank, BankCmd, BankOp};
pub use kv::{KvCmd, KvOp, KvStore};
pub use machine::StateMachine;
pub use replica::{Checkpoint, Replica};
pub use shard::{CrossShardSequencer, ShardRouter, ShardedReplica};
pub use workload::{open_loop_arrivals, Workload};

/// Globally unique command identifier: `(client, sequence)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CmdId {
    /// Issuing client id.
    pub client: u32,
    /// Client-local sequence number.
    pub seq: u32,
}

impl mcpaxos_actor::wire::Wire for CmdId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.client.encode(out);
        self.seq.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, mcpaxos_actor::wire::WireError> {
        Ok(CmdId {
            client: u32::decode(input)?,
            seq: u32::decode(input)?,
        })
    }
}
