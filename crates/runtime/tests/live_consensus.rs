//! The full Multicoordinated Paxos stack on real threads: same agents as
//! the simulator, live channels and wall-clock timers.

use mcpaxos_actor::ProcessId;
use mcpaxos_core::{Acceptor, Coordinator, DeployConfig, Learner, Msg, Policy, Proposer};
use mcpaxos_cstruct::{CStruct, CmdSet};
use mcpaxos_runtime::Cluster;
use std::sync::Arc;
use std::time::{Duration, Instant};

type Set = CmdSet<u32>;

#[test]
fn live_multicoordinated_cluster_learns_commands() {
    let cfg = Arc::new(DeployConfig::simple(1, 3, 5, 2, Policy::MultiCoordinated));
    cfg.validate().unwrap();
    let mut cluster: Cluster<Msg<Set>> = Cluster::new();
    for &p in cfg.roles.proposers() {
        cluster.spawn(p, Box::new(Proposer::<Set>::new(cfg.clone())));
    }
    for &p in cfg.roles.coordinators() {
        cluster.spawn(p, Box::new(Coordinator::<Set>::new(cfg.clone(), p)));
    }
    for &p in cfg.roles.acceptors() {
        cluster.spawn(p, Box::new(Acceptor::<Set>::new(cfg.clone())));
    }
    for &p in cfg.roles.learners() {
        cluster.spawn(p, Box::new(Learner::<Set>::new(cfg.clone())));
    }

    let client = ProcessId(9_999);
    let proposer = cfg.roles.proposers()[0];
    for cmd in [10u32, 20, 30] {
        cluster.send(
            proposer,
            client,
            Msg::Propose {
                cmd,
                acc_quorum: None,
            },
        );
    }

    // Wait until both learners report 3 commands (metric "learned" is a
    // gauge of the current count; poll the actor state after stop).
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        let m = cluster.metrics();
        let done = cfg
            .roles
            .learners()
            .iter()
            .all(|&l| m.of(l, "learned") >= 3);
        if done {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    let actors = cluster.stop();
    for &l in cfg.roles.learners() {
        let learner = actors[&l]
            .as_any()
            .downcast_ref::<Learner<Set>>()
            .expect("learner type");
        let learned = learner.learned();
        assert_eq!(
            learned.count(),
            3,
            "live learner {l} must learn all commands, got {learned:?}"
        );
        for cmd in [10u32, 20, 30] {
            assert!(learned.contains(&cmd));
        }
    }
}
