//! Shared scaffolding for the TCP backend integration tests: a keyed
//! command type, a delta-shipping deployment config, and metric/settle
//! helpers over a set of [`TcpNode`]s.

use mcpaxos_actor::wire::{Wire, WireError};
use mcpaxos_core::{DeployConfig, Msg, Policy, WireConfig};
use mcpaxos_cstruct::{CommandHistory, Conflict, ConflictKeys};
use mcpaxos_runtime::TcpNode;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Keyed test command: ~10% of pairs conflict (same key of 10).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct K(pub u16, pub u32);

impl Conflict for K {
    fn conflicts(&self, other: &Self) -> bool {
        self.0 == other.0
    }
    fn conflict_keys(&self) -> ConflictKeys {
        ConflictKeys::one(u64::from(self.0))
    }
}

impl Wire for K {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(i: &mut &[u8]) -> Result<Self, WireError> {
        Ok(K(u16::decode(i)?, u32::decode(i)?))
    }
}

pub type H = CommandHistory<K>;
pub type M = Msg<H>;

pub fn cmd(i: u32) -> K {
    K((i % 10) as u16, i)
}

/// Delta shipping on, compaction off: a stale base can only be cleared
/// by the proactive downgrade the TCP tests exercise.
pub fn delta_cfg(n_prop: usize, n_coord: usize, n_acc: usize, n_learn: usize) -> Arc<DeployConfig> {
    Arc::new(
        DeployConfig::simple(n_prop, n_coord, n_acc, n_learn, Policy::MultiCoordinated).with_wire(
            WireConfig {
                delta_ship: true,
                ..WireConfig::default()
            },
        ),
    )
}

/// Sums `name` across every node's metrics.
pub fn total(nodes: &[&TcpNode<M>], name: &str) -> i64 {
    nodes.iter().map(|n| n.metrics().total(name)).sum()
}

/// Sums process `p`'s metric `name` across every node (only its host
/// node records anything for it, so this is a cross-node lookup).
pub fn of(nodes: &[&TcpNode<M>], p: mcpaxos_actor::ProcessId, name: &str) -> i64 {
    nodes.iter().map(|n| n.metrics().of(p, name)).sum()
}

/// Waits until every learner's cumulative `learned` metric reaches
/// `want` *and* the cluster goes quiet (no learner growth, no proposer
/// resends for a sustained window) — i.e. the proposer's pending set
/// emptied and learning settled, not merely passed a loose threshold.
pub fn settle(nodes: &[&TcpNode<M>], cfg: &DeployConfig, want: i64) {
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut last_snap = (-1i64, -1i64);
    let mut stable_since = Instant::now();
    loop {
        assert!(
            Instant::now() < deadline,
            "cluster failed to settle at {want} learned commands \
             (learned metric: {:?})",
            cfg.roles
                .learners()
                .iter()
                .map(|&l| of(nodes, l, "learned"))
                .collect::<Vec<_>>()
        );
        let reached = cfg
            .roles
            .learners()
            .iter()
            .all(|&l| of(nodes, l, "learned") >= want);
        let snap = (total(nodes, "learned"), total(nodes, "resends"));
        if snap != last_snap {
            last_snap = snap;
            stable_since = Instant::now();
        }
        if reached && stable_since.elapsed() >= Duration::from_millis(800) {
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}
