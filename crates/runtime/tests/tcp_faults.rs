//! Deterministic wire chaos over real sockets: every process on its own
//! [`TcpNode`] so all consensus traffic crosses the wire, with a seeded
//! [`FaultConfig::chaos`] engine on every outbound link injecting
//! drops, duplicates, corruptions, stalls (reordering) and deliberate
//! disconnects. The protocol's resend/`NeedFull` machinery plus the
//! transport's CRC-teardown-and-reconnect supervision must ride through
//! all of it: every command is learned, corrupt frames are caught at
//! the framing layer (never delivered to an agent), and the connections
//! demonstrably died and came back.

mod common;

use common::{cmd, delta_cfg, of, settle, total, H, K, M};
use mcpaxos_actor::ProcessId;
use mcpaxos_core::{Acceptor, Coordinator, Learner, Msg, Proposer};
use mcpaxos_cstruct::CStruct;
use mcpaxos_runtime::{FaultConfig, PeerTable, TcpConfig, TcpNode};
use std::collections::HashSet;

const N_CMDS: u32 = 40;

fn run_chaos(seed: u64) -> (i64, i64) {
    let peers = PeerTable::shared();
    // Harsher than `FaultConfig::chaos`: a short CI run only pushes a
    // few hundred frames per link group, so the rare faults (corrupt,
    // disconnect) need rates that make their expected count ≫ 1.
    let faults = FaultConfig {
        corrupt_per_mille: 30,
        disconnect_per_mille: 10,
        drop_per_mille: 25,
        dup_per_mille: 20,
        stall_per_mille: 20,
        ..FaultConfig::chaos(seed)
    };
    let tcp = TcpConfig::default().with_faults(faults);
    let cfg = delta_cfg(1, 2, 3, 2);
    cfg.validate().unwrap();

    // One node per process: every message between agents is a framed
    // TCP send through the fault engine.
    let mut nodes: Vec<TcpNode<M>> = Vec::new();
    for _ in cfg.roles.all() {
        nodes.push(TcpNode::bind(peers.clone(), tcp.clone()).unwrap());
    }
    let mut it = nodes.iter_mut();
    let proposer = cfg.roles.proposers()[0];
    it.next()
        .unwrap()
        .spawn(proposer, Box::new(Proposer::<H>::new(cfg.clone())));
    for &c in cfg.roles.coordinators() {
        it.next()
            .unwrap()
            .spawn(c, Box::new(Coordinator::<H>::new(cfg.clone(), c)));
    }
    for &a in cfg.roles.acceptors() {
        it.next()
            .unwrap()
            .spawn(a, Box::new(Acceptor::<H>::new(cfg.clone())));
    }
    for &l in cfg.roles.learners() {
        it.next()
            .unwrap()
            .spawn(l, Box::new(Learner::<H>::new(cfg.clone())));
    }

    let client = ProcessId(9_999);
    for i in 0..N_CMDS {
        nodes[0].send(
            proposer,
            client,
            Msg::Propose {
                cmd: cmd(i),
                acc_quorum: None,
            },
        );
    }

    let refs: Vec<&TcpNode<M>> = nodes.iter().collect();
    settle(&refs, &cfg, i64::from(N_CMDS));

    let frame_errors = total(&refs, "tcp_frame_errors");
    let reconnects = total(&refs, "tcp_reconnects");
    eprintln!(
        "chaos run: frames={} frame_errors={frame_errors} reconnects={reconnects} drops={}",
        total(&refs, "tcp_frames"),
        total(&refs, "tcp_queue_drops"),
    );
    // Per-learner cumulative check already ran inside settle; now the
    // authoritative one: stop everything and inspect the learners.
    for &l in cfg.roles.learners() {
        assert!(of(&refs, l, "learned") >= i64::from(N_CMDS));
    }
    drop(refs);

    let expected: HashSet<K> = (0..N_CMDS).map(cmd).collect();
    for node in nodes {
        for (pid, actor) in node.stop() {
            if let Some(learner) = actor.as_any().downcast_ref::<Learner<H>>() {
                let got: HashSet<K> = learner.learned().commands().into_iter().collect();
                assert_eq!(
                    learner.learned().total_len(),
                    u64::from(N_CMDS),
                    "learner {pid} must learn every command under chaos"
                );
                assert_eq!(got, expected, "learner {pid} learned the wrong set");
            }
        }
    }
    (frame_errors, reconnects)
}

#[test]
fn chaos_cluster_converges_and_corrupt_frames_never_reach_agents() {
    let (frame_errors, reconnects) = run_chaos(0xC4A0_5EED);
    // The chaos mix corrupts ~0.5% of frames; each corruption must have
    // been caught by the CRC check and torn the connection down. If
    // this is zero the corruption path was never exercised and the test
    // proves nothing — fail loudly rather than pass silently.
    assert!(
        frame_errors > 0,
        "no corrupt frame was detected at the framing layer; \
         the chaos run did not exercise the corruption path"
    );
    // Teardowns (corruption or deliberate disconnect) must have been
    // followed by supervised reconnects for the run to have converged.
    assert!(reconnects > 0, "no supervised reconnect happened");
}
