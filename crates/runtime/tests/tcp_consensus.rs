//! The acceptance scenario for the TCP backend: a full Multicoordinated
//! Paxos deployment (1 proposer / 2 coordinators / 3 acceptors / 2
//! learners) spread over four [`TcpNode`]s on loopback, with delta
//! shipping on, learns every command while one acceptor is killed and
//! restarted mid-run — and the restart costs **zero** `NeedFull`
//! round-trips, because the transport's link-reset upcall and the
//! protocol's recovery `Hello` both downgrade the restarted peer to full
//! payloads proactively, over the real wire.
//!
//! `full_resyncs` is incremented only in the `NeedFull` handlers of the
//! acceptor and the coordinator, so `total("full_resyncs") == 0` is a
//! precise "no NeedFull round-trip happened" probe.

mod common;

use common::{cmd, delta_cfg, settle, total, H, K, M};
use mcpaxos_actor::{FileWal, ProcessId};
use mcpaxos_core::{Acceptor, Coordinator, Learner, Msg, Proposer};
use mcpaxos_cstruct::CStruct;
use mcpaxos_runtime::{PeerTable, TcpConfig, TcpNode};
use std::collections::HashSet;
use std::time::{Duration, Instant};

#[test]
fn acceptor_kill_and_restart_over_tcp_learns_all_with_zero_needfull() {
    let peers = PeerTable::shared();
    let tcp = TcpConfig::default();
    let cfg = delta_cfg(1, 2, 3, 2);
    cfg.validate().unwrap();

    let mut front: TcpNode<M> = TcpNode::bind(peers.clone(), tcp.clone()).unwrap();
    let mut accs: TcpNode<M> = TcpNode::bind(peers.clone(), tcp.clone()).unwrap();
    let mut victim: TcpNode<M> = TcpNode::bind(peers.clone(), tcp.clone()).unwrap();
    let mut learn: TcpNode<M> = TcpNode::bind(peers.clone(), tcp.clone()).unwrap();

    let proposer = cfg.roles.proposers()[0];
    front.spawn(proposer, Box::new(Proposer::<H>::new(cfg.clone())));
    for &c in cfg.roles.coordinators() {
        front.spawn(c, Box::new(Coordinator::<H>::new(cfg.clone(), c)));
    }
    for &a in &cfg.roles.acceptors()[..2] {
        accs.spawn(a, Box::new(Acceptor::<H>::new(cfg.clone())));
    }
    // The kill target runs on its own node over a file-backed WAL, so
    // its durable acceptor state survives the node exactly as it would
    // survive an OS-process kill.
    let a_kill = cfg.roles.acceptors()[2];
    let wal =
        std::env::temp_dir().join(format!("mcpaxos_tcp_consensus_{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&wal);
    victim.spawn_with_storage(
        a_kill,
        Box::new(Acceptor::<H>::new(cfg.clone())),
        Box::new(FileWal::open_synchronous(&wal).unwrap()),
    );
    for &l in cfg.roles.learners() {
        learn.spawn(l, Box::new(Learner::<H>::new(cfg.clone())));
    }

    let client = ProcessId(9_999);
    let propose = |range: std::ops::Range<u32>| {
        for i in range {
            front.send(
                proposer,
                client,
                Msg::Propose {
                    cmd: cmd(i),
                    acc_quorum: None,
                },
            );
        }
    };

    // Phase 1: a healthy cluster, deltas flowing to all three acceptors.
    propose(0..10);
    settle(&[&front, &accs, &victim, &learn], &cfg, 10);

    // Phase 2: kill the acceptor's node mid-run. The remaining majority
    // keeps learning; the coordinators' per-peer delta bases for the
    // dead acceptor silently advance with every queued send.
    victim.kill();
    propose(10..20);
    settle(&[&front, &accs, &learn], &cfg, 20);

    // Phase 3: restart it on a *fresh* node (new port) over the same
    // WAL. Its supervisors and its peers' supervisors re-resolve and
    // reconnect; the transport fires `on_link_reset` and the recovered
    // acceptor multicasts the protocol-level `Hello`.
    let mut revived: TcpNode<M> = TcpNode::bind(peers.clone(), tcp.clone()).unwrap();
    revived.spawn_recovered(
        a_kill,
        Box::new(Acceptor::<H>::new(cfg.clone())),
        Box::new(FileWal::open_synchronous(&wal).unwrap()),
    );

    // Wait until the downgrade demonstrably happened over the wire: a
    // coordinator processed the link reset / Hello and dropped its base
    // (base_resets), and the transport really reconnected.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let nodes: [&TcpNode<M>; 4] = [&front, &accs, &revived, &learn];
        if total(&nodes, "base_resets") > 0 && total(&nodes, "tcp_reconnects") > 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "reconnect + proactive base downgrade never happened"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // Phase 4: more commands — the restarted acceptor participates
    // again, fed full payloads first, deltas after.
    propose(20..30);
    settle(&[&front, &accs, &revived, &learn], &cfg, 30);

    let nodes: [&TcpNode<M>; 4] = [&front, &accs, &revived, &learn];
    assert_eq!(
        total(&nodes, "full_resyncs"),
        0,
        "a NeedFull round-trip fired: some sender shipped a delta \
         against a base the restarted acceptor did not hold"
    );
    assert!(
        total(&nodes, "base_resets") > 0,
        "the proactive downgrade must fire over the real wire"
    );
    assert!(
        total(&nodes, "delta_sends") > 0,
        "delta shipping must actually have been exercised"
    );
    assert!(
        total(&nodes, "tcp_link_resets") > 0,
        "the transport must deliver on_link_reset upcalls"
    );

    let learners = learn.stop();
    let expected: HashSet<K> = (0..30).map(cmd).collect();
    for &l in cfg.roles.learners() {
        let learner = learners[&l]
            .as_any()
            .downcast_ref::<Learner<H>>()
            .expect("learner type");
        let got: HashSet<K> = learner.learned().commands().into_iter().collect();
        assert_eq!(
            learner.learned().total_len(),
            30,
            "learner {l} must learn every command across the kill+restart"
        );
        assert_eq!(got, expected, "learner {l} learned the wrong set");
    }
    front.stop();
    accs.stop();
    revived.stop();
    let _ = std::fs::remove_file(&wal);
}
