//! The backend-independent face of a live deployment.
//!
//! Harness code (benches, examples, chaos tests) drives a cluster through
//! this trait so the same driver runs over in-process channels
//! ([`crate::Cluster`]) or loopback TCP ([`crate::TcpNode`]). Agents never
//! see it — they talk to [`mcpaxos_actor::Context`]; `Transport` is only
//! the *outside* view: inject a message, read the metrics, read the clock.

use crate::Cluster;
use mcpaxos_actor::{Metrics, ProcessId, SimTime};

/// A running message-passing backend hosting actor processes.
pub trait Transport<M> {
    /// Injects `msg` into `to`'s mailbox as if sent by `from` (typically
    /// an external client id). Sends to dead or unreachable processes
    /// are dropped and counted, never panicking — the fair-lossy link
    /// the protocol already assumes.
    fn send(&self, to: ProcessId, from: ProcessId, msg: M);

    /// Snapshot of the metrics recorded so far.
    fn metrics(&self) -> Metrics;

    /// Elapsed logical time (ticks = milliseconds since backend start).
    fn now(&self) -> SimTime;
}

impl<M: Send + 'static> Transport<M> for crate::Cluster<M> {
    fn send(&self, to: ProcessId, from: ProcessId, msg: M) {
        Cluster::send(self, to, from, msg)
    }
    fn metrics(&self) -> Metrics {
        Cluster::metrics(self)
    }
    fn now(&self) -> SimTime {
        Cluster::now(self)
    }
}
