//! The loopback/LAN TCP backend: the same actors, a real wire.
//!
//! A [`TcpNode`] hosts any number of local actor processes behind one
//! `std::net::TcpListener`. Messages between co-located processes are
//! delivered directly; messages to remote processes travel as
//! [`mcpaxos_actor::wire`]-encoded payloads inside length-prefixed,
//! CRC-trailed frames ([`mcpaxos_actor::frame`]). The pieces:
//!
//! * **Peer table** ([`PeerTable`]) — maps process ids to socket
//!   addresses. Nodes bind port 0 and *publish* their address, so a
//!   restarted node never fights `TIME_WAIT` for its old port; senders
//!   re-resolve on every reconnect attempt and simply find the new
//!   address. The shared-map flavour serves in-process tests, the
//!   directory flavour coordinates separate OS processes through
//!   atomically renamed address files.
//! * **Supervised outbound links** — one connection per remote process,
//!   owned by a supervisor thread: resolve → connect → handshake →
//!   drain the per-peer send queue. Any error tears the connection down
//!   and the supervisor reconnects under the shared
//!   [`mcpaxos_actor::Backoff`] policy (jittered exponential, ticks are
//!   milliseconds). The send queue is bounded: when full the *oldest*
//!   message is dropped (the protocol resends; the freshest traffic is
//!   the most useful) and counted.
//! * **Link-reset wiring** — after a reconnect, every local process
//!   receives `on_link_reset(peer)`; an inbound connection that
//!   *replaces* an earlier one from the same sender triggers the same
//!   upcall on the destination. This is what lets PR 6's proactive
//!   delta-base downgrade (demote the peer to full payloads) fire over
//!   the real wire, avoiding `NeedFull` round-trips after a peer
//!   restart.
//! * **Teardown on garbage** — a torn or CRC-failing frame, or an
//!   undecodable payload, closes the connection instead of delivering
//!   anything; corrupt bytes never reach an agent.
//! * **Fault injection** — an optional [`FaultConfig`] interposes a
//!   seeded [`crate::FaultyTransport`] engine on every outbound link.

use crate::fault::{FaultAction, FaultConfig, FaultyTransport};
use crate::process::{
    rand_like::SplitMix64, run_process, Event, LiveByteMeter, ProcessSpec, Router, SendActor,
    METRIC_SEND_FAILURES,
};
use crate::transport::Transport;
use crossbeam::channel::{unbounded, Sender};
use mcpaxos_actor::frame::{encode_frame, FrameDecoder, FRAME_OVERHEAD};
use mcpaxos_actor::wire::{Wire, WireError};
use mcpaxos_actor::{
    Backoff, MemStore, Metric, MetricSink, Metrics, ProcessId, SimDuration, SimTime, StableStore,
};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serialized bytes of the per-frame `Data` envelope around a message:
/// a 1-byte packet tag plus the 4-byte sender id. A TCP frame carrying
/// message `m` is exactly `wire_size(m) + DATA_HEADER_BYTES +
/// FRAME_OVERHEAD` bytes — the parity the bench suite checks against
/// the simulator's `wire_bytes` accounting.
pub const DATA_HEADER_BYTES: u64 = 5;

/// Metric name for cumulative framed bytes written to TCP sockets
/// (recorded per sending process at socket write time).
pub const METRIC_TCP_FRAME_BYTES: &str = "tcp_frame_bytes";
/// Metric name for frames written to TCP sockets.
pub const METRIC_TCP_FRAMES: &str = "tcp_frames";
/// Metric name for inbound framing/decoding failures, each of which
/// tears down the offending connection.
pub const METRIC_TCP_FRAME_ERRORS: &str = "tcp_frame_errors";
/// Metric name for messages evicted from a full per-peer send queue
/// (drop-oldest policy).
pub const METRIC_TCP_QUEUE_DROPS: &str = "tcp_queue_drops";
/// Metric name sampling the send-queue depth at every enqueue; with
/// [`Metrics::count_of`] this yields the average backlog per sender.
pub const METRIC_TCP_QUEUE_DEPTH: &str = "tcp_queue_depth";
/// Metric name counting re-established outbound connections (the first
/// connect is not a reconnect).
pub const METRIC_TCP_RECONNECTS: &str = "tcp_reconnects";
/// Metric name counting `on_link_reset` deliveries triggered by the
/// transport (both directions).
pub const METRIC_TCP_LINK_RESETS: &str = "tcp_link_resets";

/// Exact framed size, in bytes, of message `msg` on the TCP wire.
/// Computed by really encoding the envelope, so it cannot drift from
/// the send path.
pub fn framed_size_of<M: Wire>(from: ProcessId, msg: &M) -> u64 {
    let payload = to_bytes(&Packet::Data { from, msg });
    payload.len() as u64 + FRAME_OVERHEAD
}

// ----- Peer table -----------------------------------------------------------

/// Name resolution for processes: where does `pid` listen *right now*?
///
/// Addresses are re-resolved on every reconnect attempt, which is the
/// whole crash-tolerance story: a restarted node binds a fresh port
/// (never fighting `TIME_WAIT`), publishes it, and its peers' supervisors
/// find it on their next attempt.
#[derive(Clone)]
pub enum PeerTable {
    /// An in-process shared map — for tests and single-process demos
    /// hosting several [`TcpNode`]s over loopback.
    Shared(Arc<RwLock<HashMap<ProcessId, SocketAddr>>>),
    /// A directory of `<pid>.addr` files, each written via temp file +
    /// atomic rename — for clusters of separate OS processes.
    Dir(PathBuf),
}

impl PeerTable {
    /// An empty in-process table.
    pub fn shared() -> Self {
        PeerTable::Shared(Arc::new(RwLock::new(HashMap::new())))
    }

    /// A directory-backed table rooted at `dir` (created if missing).
    pub fn dir(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(PeerTable::Dir(dir))
    }

    /// Announces that `pid` listens at `addr`, replacing any previous
    /// address.
    pub fn publish(&self, pid: ProcessId, addr: SocketAddr) -> std::io::Result<()> {
        match self {
            PeerTable::Shared(map) => {
                map.write().insert(pid, addr);
                Ok(())
            }
            PeerTable::Dir(dir) => {
                let tmp = dir.join(format!("{}.addr.tmp", pid.raw()));
                std::fs::write(&tmp, addr.to_string())?;
                std::fs::rename(&tmp, dir.join(format!("{}.addr", pid.raw())))
            }
        }
    }

    /// Looks up the current address of `pid`, if published.
    pub fn resolve(&self, pid: ProcessId) -> Option<SocketAddr> {
        match self {
            PeerTable::Shared(map) => map.read().get(&pid).copied(),
            PeerTable::Dir(dir) => {
                let s = std::fs::read_to_string(dir.join(format!("{}.addr", pid.raw()))).ok()?;
                s.trim().parse().ok()
            }
        }
    }
}

// ----- Wire envelope --------------------------------------------------------

/// What one frame's payload decodes to.
pub(crate) enum Packet<'a, M> {
    /// Connection handshake, first frame on every outbound connection:
    /// which processes live on the initiating node, and which single
    /// remote process this connection will carry traffic to.
    Hello {
        senders: Vec<ProcessId>,
        dest: ProcessId,
    },
    /// One actor message. Borrowed on encode (the send path should not
    /// clone the message just to serialize it) — decode always produces
    /// owned data, so the lifetime is `'static` on the receive side.
    Data { from: ProcessId, msg: &'a M },
}

/// Owned decode-side counterpart of [`Packet`].
enum OwnedPacket<M> {
    Hello {
        senders: Vec<ProcessId>,
        dest: ProcessId,
    },
    Data {
        from: ProcessId,
        msg: M,
    },
}

impl<M: Wire> Packet<'_, M> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Packet::Hello { senders, dest } => {
                out.push(0);
                senders.encode(out);
                dest.encode(out);
            }
            Packet::Data { from, msg } => {
                out.push(1);
                from.encode(out);
                msg.encode(out);
            }
        }
    }
}

impl<M: Wire> OwnedPacket<M> {
    fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut input = bytes;
        let tag = u8::decode(&mut input)?;
        let pkt = match tag {
            0 => OwnedPacket::Hello {
                senders: Wire::decode(&mut input)?,
                dest: Wire::decode(&mut input)?,
            },
            1 => OwnedPacket::Data {
                from: Wire::decode(&mut input)?,
                msg: Wire::decode(&mut input)?,
            },
            _ => {
                return Err(WireError {
                    what: "unknown packet tag",
                })
            }
        };
        if !input.is_empty() {
            return Err(WireError {
                what: "trailing bytes",
            });
        }
        Ok(pkt)
    }
}

/// Encodes one packet into a fresh payload buffer; `framed_size_of` and
/// the send path share this, so sizing cannot drift from reality.
fn to_bytes<M: Wire>(p: &Packet<'_, M>) -> Vec<u8> {
    let mut out = Vec::new();
    p.encode(&mut out);
    out
}

// ----- Node configuration ---------------------------------------------------

/// Knobs for a [`TcpNode`].
#[derive(Clone)]
pub struct TcpConfig {
    /// Reconnect policy for outbound links (ticks are milliseconds).
    pub reconnect: Backoff,
    /// Per-peer send queue bound; the oldest message is evicted (and
    /// counted) when an enqueue would exceed it. 0 means unbounded.
    pub queue_cap: usize,
    /// Optional deterministic wire-fault injection on outbound links.
    pub faults: Option<FaultConfig>,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            reconnect: Backoff::new(SimDuration(10), SimDuration(500), SimDuration(20)),
            queue_cap: 1024,
            faults: None,
        }
    }
}

impl TcpConfig {
    /// This configuration with fault injection enabled.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }
}

// ----- The node -------------------------------------------------------------

/// One network node: a listener, the actor processes it hosts, and a
/// supervised outbound connection per remote peer it talks to.
pub struct TcpNode<M: Wire + Send + 'static> {
    shared: Arc<NodeShared<M>>,
    addr: SocketAddr,
    start: Instant,
    meter: Option<LiveByteMeter<M>>,
    handles: Vec<(ProcessId, JoinHandle<SendActor<M>>)>,
    accept_handle: Option<JoinHandle<()>>,
}

struct NodeShared<M> {
    /// Local mailboxes by process id.
    local: RwLock<HashMap<ProcessId, Sender<Event<M>>>>,
    /// Outbound links by remote process id.
    links: Mutex<HashMap<ProcessId, Arc<PeerLink<M>>>>,
    /// Transport threads (supervisors + connection readers), joined on
    /// stop.
    threads: Mutex<Vec<JoinHandle<()>>>,
    /// Inbound `(sender, dest)` pairs already seen; a repeat means the
    /// new connection *replaces* a dead one and must fire a link reset.
    seen_inbound: Mutex<HashSet<(ProcessId, ProcessId)>>,
    peers: PeerTable,
    cfg: TcpConfig,
    metrics: Arc<Mutex<Metrics>>,
    shutdown: AtomicBool,
}

/// The bounded send queue feeding one outbound connection. Plain
/// `std::sync` here: the supervisor blocks on the condvar between
/// messages, which the `parking_lot` facade does not expose.
struct PeerLink<M> {
    q: std::sync::Mutex<VecDeque<(ProcessId, M)>>,
    cv: std::sync::Condvar,
}

impl<M> Default for PeerLink<M> {
    fn default() -> Self {
        PeerLink {
            q: std::sync::Mutex::new(VecDeque::new()),
            cv: std::sync::Condvar::new(),
        }
    }
}

impl<M> PeerLink<M> {
    /// Enqueues under the drop-oldest policy; returns `(depth, dropped)`.
    fn push(&self, from: ProcessId, msg: M, cap: usize) -> (usize, bool) {
        let mut q = self.q.lock().unwrap_or_else(|e| e.into_inner());
        let mut dropped = false;
        if cap > 0 && q.len() >= cap {
            q.pop_front();
            dropped = true;
        }
        q.push_back((from, msg));
        let depth = q.len();
        drop(q);
        self.cv.notify_one();
        (depth, dropped)
    }

    /// Dequeues the next message, waiting at most `timeout`.
    fn pop(&self, timeout: Duration) -> Option<(ProcessId, M)> {
        let mut q = self.q.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(item) = q.pop_front() {
            return Some(item);
        }
        let (mut q, _) = self
            .cv
            .wait_timeout(q, timeout)
            .unwrap_or_else(|e| e.into_inner());
        q.pop_front()
    }
}

impl<M: Wire + Send + 'static> TcpNode<M> {
    /// Binds a fresh loopback listener (port 0 — the OS picks; see
    /// [`PeerTable`] for why) and starts accepting connections. Processes
    /// spawned on this node publish this address.
    pub fn bind(peers: PeerTable, cfg: TcpConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(NodeShared {
            local: RwLock::new(HashMap::new()),
            links: Mutex::new(HashMap::new()),
            threads: Mutex::new(Vec::new()),
            seen_inbound: Mutex::new(HashSet::new()),
            peers,
            cfg,
            metrics: Arc::new(Mutex::new(Metrics::new())),
            shutdown: AtomicBool::new(false),
        });
        let accept_shared = shared.clone();
        let accept_handle = std::thread::Builder::new()
            .name(format!("mcpaxos-tcp-accept-{}", addr.port()))
            .spawn(move || accept_loop(accept_shared, listener))
            .expect("spawn accept thread");
        Ok(TcpNode {
            shared,
            addr,
            start: Instant::now(),
            meter: None,
            handles: Vec::new(),
            accept_handle: Some(accept_handle),
        })
    }

    /// The address this node's listener is bound to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Installs a byte meter (see [`crate::Cluster::set_byte_meter`]);
    /// install before spawning.
    pub fn set_byte_meter(&mut self, meter: LiveByteMeter<M>) {
        self.meter = Some(meter);
    }

    /// Spawns `actor` as process `pid` on this node and publishes
    /// `pid → self.addr()` in the peer table.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is already hosted here, or if publishing the
    /// address fails.
    pub fn spawn(&mut self, pid: ProcessId, actor: SendActor<M>) {
        self.spawn_inner(pid, actor, Box::new(MemStore::new()), false);
    }

    /// Spawns a process over injected `storage` (e.g. a fresh
    /// [`mcpaxos_actor::FileWal`] so its state survives a kill); the
    /// actor enters via [`mcpaxos_actor::Actor::on_start`].
    pub fn spawn_with_storage(
        &mut self,
        pid: ProcessId,
        actor: SendActor<M>,
        storage: Box<dyn StableStore + Send>,
    ) {
        self.spawn_inner(pid, actor, storage, false);
    }

    /// Spawns a recovering process over pre-existing `storage` (e.g. a
    /// re-opened [`mcpaxos_actor::FileWal`]); the actor enters via
    /// [`mcpaxos_actor::Actor::on_recover`].
    pub fn spawn_recovered(
        &mut self,
        pid: ProcessId,
        actor: SendActor<M>,
        storage: Box<dyn StableStore + Send>,
    ) {
        self.spawn_inner(pid, actor, storage, true);
    }

    fn spawn_inner(
        &mut self,
        pid: ProcessId,
        actor: SendActor<M>,
        storage: Box<dyn StableStore + Send>,
        recovered: bool,
    ) {
        let (tx, rx) = unbounded();
        {
            let mut local = self.shared.local.write();
            assert!(
                local.insert(pid, tx).is_none(),
                "process {pid} spawned twice on this node"
            );
        }
        self.shared
            .peers
            .publish(pid, self.addr)
            .expect("publish peer address");
        let route_shared = self.shared.clone();
        let router: Router<M> = Arc::new(move |from, to, msg| route_shared.route(from, to, msg));
        let spec = ProcessSpec {
            pid,
            actor,
            rx,
            router,
            metrics: self.shared.metrics.clone(),
            start: self.start,
            meter: self.meter.clone(),
            storage,
            recovered,
        };
        let handle = std::thread::Builder::new()
            .name(format!("mcpaxos-{pid}"))
            .spawn(move || run_process(spec))
            .expect("spawn thread");
        self.handles.push((pid, handle));
    }

    /// Injects `msg` into `to`'s mailbox (local or remote) as if sent by
    /// `from`.
    pub fn send(&self, to: ProcessId, from: ProcessId, msg: M) {
        self.shared.route(from, to, msg);
    }

    /// Snapshot of the metrics recorded so far.
    pub fn metrics(&self) -> Metrics {
        self.shared.metrics.lock().clone()
    }

    /// Elapsed logical time (ticks = milliseconds since node start).
    pub fn now(&self) -> SimTime {
        SimTime(self.start.elapsed().as_millis() as u64)
    }

    /// Stops the node: actors return for inspection, all transport
    /// threads are joined, sockets close. The published addresses are
    /// *not* withdrawn — peers keep trying them and find either nothing
    /// (down) or a successor that re-published (restarted).
    pub fn stop(mut self) -> HashMap<ProcessId, SendActor<M>> {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let local = self.shared.local.read();
            for tx in local.values() {
                let _ = tx.send(Event::Stop);
            }
        }
        let mut out = HashMap::new();
        for (pid, handle) in self.handles.drain(..) {
            out.insert(pid, handle.join().expect("actor thread panicked"));
        }
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        // Readers may still be registering handles while we drain; loop
        // until the set is stable (the accept loop is already gone, so
        // no *new* readers appear).
        loop {
            let hs: Vec<JoinHandle<()>> = std::mem::take(&mut *self.shared.threads.lock());
            if hs.is_empty() {
                break;
            }
            for h in hs {
                let _ = h.join();
            }
        }
        out
    }

    /// Abrupt shutdown, discarding the actors: the in-process analogue
    /// of killing the OS process. Connections die mid-stream; anything
    /// an actor had not flushed to its stable storage is gone (a
    /// file-backed WAL only ever persists flushed bytes, so recovery
    /// semantics match a real kill).
    pub fn kill(self) {
        let _ = self.stop();
    }
}

impl<M: Wire + Send + 'static> Transport<M> for TcpNode<M> {
    fn send(&self, to: ProcessId, from: ProcessId, msg: M) {
        TcpNode::send(self, to, from, msg)
    }
    fn metrics(&self) -> Metrics {
        TcpNode::metrics(self)
    }
    fn now(&self) -> SimTime {
        TcpNode::now(self)
    }
}

impl<M: Wire + Send + 'static> NodeShared<M> {
    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Routes one message: locally by direct mailbox push, remotely via
    /// the peer's supervised link queue.
    fn route(self: &Arc<Self>, from: ProcessId, to: ProcessId, msg: M) {
        if let Some(tx) = self.local.read().get(&to) {
            if tx.send(Event::Msg { from, msg }).is_err() {
                self.metrics
                    .lock()
                    .record(from, Metric::incr(METRIC_SEND_FAILURES));
            }
            return;
        }
        let link = self.ensure_link(to);
        let (depth, dropped) = link.push(from, msg, self.cfg.queue_cap);
        let mut m = self.metrics.lock();
        m.record(from, Metric::add(METRIC_TCP_QUEUE_DEPTH, depth as i64));
        if dropped {
            m.record(from, Metric::incr(METRIC_TCP_QUEUE_DROPS));
        }
    }

    /// Returns the outbound link to `to`, starting its supervisor on
    /// first use.
    fn ensure_link(self: &Arc<Self>, to: ProcessId) -> Arc<PeerLink<M>> {
        let mut links = self.links.lock();
        if let Some(l) = links.get(&to) {
            return l.clone();
        }
        let link: Arc<PeerLink<M>> = Arc::new(PeerLink::default());
        links.insert(to, link.clone());
        let shared = self.clone();
        let sup_link = link.clone();
        let h = std::thread::Builder::new()
            .name(format!("mcpaxos-tcp-out-{to}"))
            .spawn(move || supervise_link(shared, to, sup_link))
            .expect("spawn link supervisor");
        self.threads.lock().push(h);
        link
    }

    /// Delivers `on_link_reset(peer)` to local process(es) and counts it.
    fn fire_link_reset(&self, peer: ProcessId, only: Option<ProcessId>) {
        let local = self.local.read();
        let mut fired = 0i64;
        match only {
            Some(pid) => {
                if let Some(tx) = local.get(&pid) {
                    if tx.send(Event::LinkReset(peer)).is_ok() {
                        fired += 1;
                    }
                }
            }
            None => {
                for tx in local.values() {
                    if tx.send(Event::LinkReset(peer)).is_ok() {
                        fired += 1;
                    }
                }
            }
        }
        if fired > 0 {
            self.metrics
                .lock()
                .record(peer, Metric::add(METRIC_TCP_LINK_RESETS, fired));
        }
    }
}

/// Sleeps for `d`, polling the shutdown flag; returns false if shutdown
/// was requested during the sleep.
fn sleep_unless_shutdown(flag: &AtomicBool, d: Duration) -> bool {
    let deadline = Instant::now() + d;
    while Instant::now() < deadline {
        if flag.load(Ordering::SeqCst) {
            return false;
        }
        std::thread::sleep(Duration::from_millis(5).min(deadline - Instant::now()));
    }
    !flag.load(Ordering::SeqCst)
}

/// The outbound supervisor for one remote process: connect, handshake,
/// drain the queue; on any error, back off and start over.
fn supervise_link<M: Wire + Send + 'static>(
    shared: Arc<NodeShared<M>>,
    to: ProcessId,
    link: Arc<PeerLink<M>>,
) {
    let mut rng = SplitMix64::new(0xC0FF_EE00 ^ u64::from(to.raw()));
    let mut attempt: u32 = 0;
    let mut ever_connected = false;
    'reconnect: loop {
        if shared.is_shutdown() {
            return;
        }
        // Resolve-then-connect, re-resolving every attempt: a restarted
        // peer listens on a fresh port under the same id.
        let stream = shared
            .peers
            .resolve(to)
            .and_then(|addr| TcpStream::connect(addr).ok());
        let mut stream = match stream {
            Some(s) => s,
            None => {
                let d = shared.cfg.reconnect.delay(attempt, || rng.next());
                attempt = attempt.saturating_add(1);
                if !sleep_unless_shutdown(&shared.shutdown, Duration::from_millis(d.ticks())) {
                    return;
                }
                continue;
            }
        };
        let _ = stream.set_nodelay(true);

        // Handshake: declare who we host and whom this connection feeds.
        let senders: Vec<ProcessId> = {
            let mut v: Vec<ProcessId> = shared.local.read().keys().copied().collect();
            v.sort_unstable();
            v
        };
        let hello = to_bytes::<M>(&Packet::Hello { senders, dest: to });
        let mut first = Vec::with_capacity(hello.len() + FRAME_OVERHEAD as usize);
        encode_frame(&hello, &mut first).expect("hello frame fits");
        if stream.write_all(&first).is_err() {
            let d = shared.cfg.reconnect.delay(attempt, || rng.next());
            attempt = attempt.saturating_add(1);
            if !sleep_unless_shutdown(&shared.shutdown, Duration::from_millis(d.ticks())) {
                return;
            }
            continue;
        }

        attempt = 0;
        if ever_connected {
            // Messages queued during the outage may be delta-encoded
            // against a base the restarted peer no longer holds; the
            // link is fair-lossy, so drop them (counted) rather than
            // provoke a NeedFull storm — the protocol resends against
            // the fresh post-reset base.
            let flushed = {
                let mut q = link.q.lock().unwrap_or_else(|e| e.into_inner());
                let n = q.len();
                q.clear();
                n
            };
            {
                let mut m = shared.metrics.lock();
                m.record(to, Metric::incr(METRIC_TCP_RECONNECTS));
                if flushed > 0 {
                    m.record(to, Metric::add(METRIC_TCP_QUEUE_DROPS, flushed as i64));
                }
            }
            // The link died and came back: everything sent in between
            // may be lost, so every local process resets its per-peer
            // incremental state toward `to`.
            shared.fire_link_reset(to, None);
        }
        ever_connected = true;

        let mut faults = shared.cfg.faults.map(|cfg| FaultyTransport::link(cfg, to));

        // Drain the queue until the connection breaks.
        loop {
            if shared.is_shutdown() {
                return;
            }
            let Some((from, msg)) = link.pop(Duration::from_millis(25)) else {
                continue;
            };
            let payload = to_bytes(&Packet::Data { from, msg: &msg });
            let mut frame = Vec::with_capacity(payload.len() + FRAME_OVERHEAD as usize);
            if encode_frame(&payload, &mut frame).is_err() {
                // Message too large to frame: dropping is the only safe
                // move (the decoder would reject it anyway).
                shared
                    .metrics
                    .lock()
                    .record(from, Metric::incr(METRIC_SEND_FAILURES));
                continue;
            }
            {
                let mut m = shared.metrics.lock();
                m.record(
                    from,
                    Metric::add(METRIC_TCP_FRAME_BYTES, frame.len() as i64),
                );
                m.record(from, Metric::incr(METRIC_TCP_FRAMES));
            }
            let action = match faults.as_mut() {
                Some(f) => f.apply(frame),
                None => FaultAction::Write(vec![frame]),
            };
            match action {
                FaultAction::Write(blobs) => {
                    for blob in blobs {
                        if stream.write_all(&blob).is_err() {
                            // Connection broke; whatever was in flight is
                            // lost (fair-lossy) and the protocol resends.
                            continue 'reconnect;
                        }
                    }
                }
                FaultAction::Disconnect => continue 'reconnect,
            }
        }
    }
}

/// Accepts inbound connections until shutdown, one reader thread each.
fn accept_loop<M: Wire + Send + 'static>(shared: Arc<NodeShared<M>>, listener: TcpListener) {
    let _ = listener.set_nonblocking(true);
    loop {
        if shared.is_shutdown() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
                let reader_shared = shared.clone();
                let h = std::thread::Builder::new()
                    .name("mcpaxos-tcp-read".into())
                    .spawn(move || read_connection(reader_shared, stream))
                    .expect("spawn reader");
                shared.threads.lock().push(h);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => return,
        }
    }
}

/// Reads one inbound connection: deframe, decode, deliver — and tear the
/// whole connection down on the first malformed byte.
fn read_connection<M: Wire + Send + 'static>(shared: Arc<NodeShared<M>>, mut stream: TcpStream) {
    let mut dec = FrameDecoder::new();
    let mut dest: Option<ProcessId> = None;
    let mut buf = [0u8; 16 * 1024];
    loop {
        if shared.is_shutdown() {
            return;
        }
        let n = match stream.read(&mut buf) {
            Ok(0) => return, // peer closed cleanly
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue; // read timeout: poll shutdown and retry
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return,
        };
        dec.push(&buf[..n]);
        loop {
            let payload = match dec.next_frame() {
                Ok(Some(p)) => p,
                Ok(None) => break, // torn tail: wait for more bytes
                Err(_) => {
                    // CRC mismatch or hostile length prefix: the stream
                    // is garbage from here on. Count and tear down — the
                    // sender's supervisor will reconnect.
                    let pid = dest.unwrap_or(ProcessId(u32::MAX));
                    shared
                        .metrics
                        .lock()
                        .record(pid, Metric::incr(METRIC_TCP_FRAME_ERRORS));
                    return;
                }
            };
            match OwnedPacket::<M>::decode(&payload) {
                Ok(OwnedPacket::Hello { senders, dest: d }) => {
                    dest = Some(d);
                    let mut seen = shared.seen_inbound.lock();
                    for s in senders {
                        if !seen.insert((s, d)) {
                            // This connection replaces one we already
                            // had from `s` to `d`: the gap may have
                            // eaten messages, reset the delta base.
                            shared.fire_link_reset(s, Some(d));
                        }
                    }
                }
                Ok(OwnedPacket::Data { from, msg }) => {
                    let Some(d) = dest else {
                        // Data before Hello: protocol violation.
                        shared
                            .metrics
                            .lock()
                            .record(from, Metric::incr(METRIC_TCP_FRAME_ERRORS));
                        return;
                    };
                    let delivered = match shared.local.read().get(&d) {
                        Some(tx) => tx.send(Event::Msg { from, msg }).is_ok(),
                        None => false,
                    };
                    if !delivered {
                        shared
                            .metrics
                            .lock()
                            .record(from, Metric::incr(METRIC_SEND_FAILURES));
                    }
                }
                Err(_) => {
                    // Framing held but the payload is not a packet we
                    // understand: same remedy, never deliver garbage.
                    let pid = dest.unwrap_or(ProcessId(u32::MAX));
                    shared
                        .metrics
                        .lock()
                        .record(pid, Metric::incr(METRIC_TCP_FRAME_ERRORS));
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_roundtrip() {
        let senders = vec![ProcessId(1), ProcessId(2)];
        let hello = to_bytes::<u32>(&Packet::Hello {
            senders: senders.clone(),
            dest: ProcessId(9),
        });
        match OwnedPacket::<u32>::decode(&hello).unwrap() {
            OwnedPacket::Hello { senders: s, dest } => {
                assert_eq!(s, senders);
                assert_eq!(dest, ProcessId(9));
            }
            _ => panic!("wrong variant"),
        }

        let msg = 0xDEAD_BEEFu32;
        let data = to_bytes(&Packet::Data {
            from: ProcessId(3),
            msg: &msg,
        });
        match OwnedPacket::<u32>::decode(&data).unwrap() {
            OwnedPacket::Data { from, msg } => {
                assert_eq!(from, ProcessId(3));
                assert_eq!(msg, 0xDEAD_BEEF);
            }
            _ => panic!("wrong variant"),
        }
        assert!(OwnedPacket::<u32>::decode(&[7, 0, 0]).is_err());
    }

    #[test]
    fn data_header_constant_matches_encoding() {
        let msg = 7u64;
        let data = to_bytes(&Packet::Data {
            from: ProcessId(1),
            msg: &msg,
        });
        let msg_alone = mcpaxos_actor::wire::to_bytes(&msg);
        assert_eq!(
            data.len() as u64,
            msg_alone.len() as u64 + DATA_HEADER_BYTES
        );
        assert_eq!(
            framed_size_of(ProcessId(1), &msg),
            msg_alone.len() as u64 + DATA_HEADER_BYTES + FRAME_OVERHEAD
        );
    }

    #[test]
    fn peer_table_dir_publishes_atomically_and_reresolves() {
        let dir = std::env::temp_dir().join(format!("mcpaxos_peers_{}", std::process::id()));
        let table = PeerTable::dir(&dir).unwrap();
        let pid = ProcessId(5);
        assert_eq!(table.resolve(pid), None);
        let a1: SocketAddr = "127.0.0.1:4001".parse().unwrap();
        let a2: SocketAddr = "127.0.0.1:4002".parse().unwrap();
        table.publish(pid, a1).unwrap();
        assert_eq!(table.resolve(pid), Some(a1));
        // Republishing (the restarted node's new port) replaces.
        table.publish(pid, a2).unwrap();
        assert_eq!(table.resolve(pid), Some(a2));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
