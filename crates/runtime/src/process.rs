//! The per-process event loop shared by every live backend.
//!
//! A live process is one OS thread running one actor: it owns a mailbox,
//! local timers, local stable storage and a PRNG, and it interacts with
//! the rest of the cluster only through a [`Router`] — the function that
//! carries an outgoing message toward its destination. The in-process
//! channel backend ([`crate::Cluster`]) and the TCP backend
//! ([`crate::TcpNode`]) both drive this same loop with different
//! routers, which is what keeps agent behaviour identical across
//! transports.

use crossbeam::channel::{Receiver, RecvTimeoutError};
use mcpaxos_actor::{
    Actor, Context, Metric, MetricSink, Metrics, ProcessId, SimDuration, SimTime, StableStore,
    TimerToken,
};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A boxed actor that can move to its hosting thread.
pub type SendActor<M> = Box<dyn SendableActor<M>>;

/// Object-safe alias trait for `Actor<Msg = M> + Send`.
pub trait SendableActor<M>: Send {
    /// See [`Actor::on_start`].
    fn on_start(&mut self, ctx: &mut dyn Context<M>);
    /// See [`Actor::on_recover`].
    fn on_recover(&mut self, ctx: &mut dyn Context<M>);
    /// See [`Actor::on_message`].
    fn on_message(&mut self, from: ProcessId, msg: M, ctx: &mut dyn Context<M>);
    /// See [`Actor::on_timer`].
    fn on_timer(&mut self, token: TimerToken, ctx: &mut dyn Context<M>);
    /// See [`Actor::on_link_reset`].
    fn on_link_reset(&mut self, peer: ProcessId, ctx: &mut dyn Context<M>);
    /// Upcast for post-run inspection.
    fn as_any(&self) -> &dyn std::any::Any;
}

impl<M, A: Actor<Msg = M> + Send + 'static> SendableActor<M> for A {
    fn on_start(&mut self, ctx: &mut dyn Context<M>) {
        Actor::on_start(self, ctx);
    }
    fn on_recover(&mut self, ctx: &mut dyn Context<M>) {
        Actor::on_recover(self, ctx);
    }
    fn on_message(&mut self, from: ProcessId, msg: M, ctx: &mut dyn Context<M>) {
        Actor::on_message(self, from, msg, ctx);
    }
    fn on_timer(&mut self, token: TimerToken, ctx: &mut dyn Context<M>) {
        Actor::on_timer(self, token, ctx);
    }
    fn on_link_reset(&mut self, peer: ProcessId, ctx: &mut dyn Context<M>) {
        Actor::on_link_reset(self, peer, ctx);
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Mailbox events delivered to a process thread.
pub(crate) enum Event<M> {
    /// A message from `from` (another actor, or an external client).
    Msg { from: ProcessId, msg: M },
    /// The link to `peer` was severed and re-established; per-peer
    /// incremental state toward it must be reset.
    LinkReset(ProcessId),
    /// Graceful shutdown: the thread returns its actor for inspection.
    Stop,
}

/// Carries an outgoing message `(from, to, msg)` toward its destination.
/// Backends decide what that means: an in-process channel push, or an
/// enqueue onto a supervised TCP link.
pub(crate) type Router<M> = Arc<dyn Fn(ProcessId, ProcessId, M) + Send + Sync>;

/// Sizes a message for live wire accounting: returns a static tag and the
/// serialized byte size. Shared by every process thread.
pub type LiveByteMeter<M> = Arc<dyn Fn(&M) -> (&'static str, u64) + Send + Sync>;

/// Metric name for cumulative serialized bytes handed to the transport
/// (recorded per sending process when a byte meter is installed).
pub const METRIC_WIRE_BYTES: &str = "wire_bytes";
/// Metric name for messages handed to the transport under byte
/// accounting.
pub const METRIC_WIRE_MSGS: &str = "wire_msgs";
/// Metric name counting sends that could not be handed to a live
/// destination: the mailbox of a stopped/crashed process, or a message
/// too large to frame. Recorded per *sender* — it is the sender's view
/// of the fair-lossy link.
pub const METRIC_SEND_FAILURES: &str = "send_failures";
/// Metric name counting sends shed because the destination's bounded
/// mailbox was full (see [`crate::Cluster::with_mailbox_cap`]). Distinct
/// from [`METRIC_SEND_FAILURES`]: the peer is alive but overloaded, so
/// the drop is backpressure, not a dead link. Recorded per *sender*.
pub const METRIC_BACKPRESSURE_DROPS: &str = "backpressure_drops";

/// Everything a process thread needs to run, bundled so backends build
/// it declaratively.
pub(crate) struct ProcessSpec<M> {
    pub pid: ProcessId,
    pub actor: SendActor<M>,
    pub rx: Receiver<Event<M>>,
    pub router: Router<M>,
    pub metrics: Arc<Mutex<Metrics>>,
    pub start: Instant,
    pub meter: Option<LiveByteMeter<M>>,
    /// The process's stable storage. In-memory by default; the TCP
    /// multi-process example injects a file-backed WAL so state survives
    /// an OS-process kill.
    pub storage: Box<dyn StableStore + Send>,
    /// When true the actor is entering via [`Actor::on_recover`] (a
    /// restart over pre-existing storage) instead of [`Actor::on_start`].
    pub recovered: bool,
}

pub(crate) fn run_process<M: Send + 'static>(spec: ProcessSpec<M>) -> SendActor<M> {
    let ProcessSpec {
        pid,
        mut actor,
        rx,
        router,
        metrics,
        start,
        meter,
        mut storage,
        recovered,
    } = spec;
    let mut timers: BTreeMap<TimerToken, Instant> = BTreeMap::new();
    let mut rng = rand_like::SplitMix64::new(0x5EED ^ u64::from(pid.raw()));
    let mut fx = ThreadFx::default();

    macro_rules! upcall {
        ($body:expr) => {{
            let mut ctx = ThreadCtx {
                me: pid,
                start,
                storage: &mut *storage,
                rng: &mut rng,
                fx: &mut fx,
            };
            #[allow(clippy::redundant_closure_call)]
            ($body)(&mut ctx);
            apply_effects(pid, &mut fx, &router, &metrics, &mut timers, &meter);
        }};
    }

    if recovered {
        upcall!(|ctx: &mut ThreadCtx<'_, M>| actor.on_recover(ctx));
    } else {
        upcall!(|ctx: &mut ThreadCtx<'_, M>| actor.on_start(ctx));
    }

    loop {
        // Fire due timers first.
        let now = Instant::now();
        let due: Vec<TimerToken> = timers
            .iter()
            .filter(|(_, &at)| at <= now)
            .map(|(&t, _)| t)
            .collect();
        for token in due {
            timers.remove(&token);
            upcall!(|ctx: &mut ThreadCtx<'_, M>| actor.on_timer(token, ctx));
        }
        // Wait for the next message or timer deadline.
        let next_deadline = timers.values().min().copied();
        let wait = match next_deadline {
            Some(at) => at.saturating_duration_since(Instant::now()),
            None => Duration::from_millis(50),
        };
        match rx.recv_timeout(wait) {
            Ok(Event::Msg { from, msg }) => {
                upcall!(|ctx: &mut ThreadCtx<'_, M>| actor.on_message(from, msg, ctx));
            }
            Ok(Event::LinkReset(peer)) => {
                upcall!(|ctx: &mut ThreadCtx<'_, M>| actor.on_link_reset(peer, ctx));
            }
            Ok(Event::Stop) => return actor,
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return actor,
        }
    }
}

struct ThreadFx<M> {
    sends: Vec<(ProcessId, M)>,
    timer_sets: Vec<(SimDuration, TimerToken)>,
    timer_cancels: Vec<TimerToken>,
    metrics: Vec<Metric>,
}

impl<M> Default for ThreadFx<M> {
    fn default() -> Self {
        ThreadFx {
            sends: Vec::new(),
            timer_sets: Vec::new(),
            timer_cancels: Vec::new(),
            metrics: Vec::new(),
        }
    }
}

fn apply_effects<M: Send + 'static>(
    pid: ProcessId,
    fx: &mut ThreadFx<M>,
    router: &Router<M>,
    metrics: &Arc<Mutex<Metrics>>,
    timers: &mut BTreeMap<TimerToken, Instant>,
    meter: &Option<LiveByteMeter<M>>,
) {
    if !fx.metrics.is_empty() {
        let mut m = metrics.lock();
        for metric in fx.metrics.drain(..) {
            m.record(pid, metric);
        }
    }
    for token in fx.timer_cancels.drain(..) {
        timers.remove(&token);
    }
    let now = Instant::now();
    for (after, token) in fx.timer_sets.drain(..) {
        timers.insert(token, now + Duration::from_millis(after.ticks()));
    }
    if !fx.sends.is_empty() {
        // Wire accounting at hand-off to the transport, mirroring the
        // simulator's per-send byte metering.
        if let Some(meter) = meter {
            let mut total = 0u64;
            for (_, msg) in fx.sends.iter() {
                total += meter(msg).1;
            }
            let mut m = metrics.lock();
            m.record(pid, Metric::add(METRIC_WIRE_BYTES, total as i64));
            m.record(pid, Metric::add(METRIC_WIRE_MSGS, fx.sends.len() as i64));
        }
        for (to, msg) in fx.sends.drain(..) {
            router(pid, to, msg);
        }
    }
}

struct ThreadCtx<'a, M> {
    me: ProcessId,
    start: Instant,
    storage: &'a mut dyn StableStore,
    rng: &'a mut rand_like::SplitMix64,
    fx: &'a mut ThreadFx<M>,
}

impl<M> Context<M> for ThreadCtx<'_, M> {
    fn me(&self) -> ProcessId {
        self.me
    }
    fn now(&self) -> SimTime {
        SimTime(self.start.elapsed().as_millis() as u64)
    }
    fn send(&mut self, to: ProcessId, msg: M) {
        self.fx.sends.push((to, msg));
    }
    fn set_timer(&mut self, after: SimDuration, token: TimerToken) {
        self.fx.timer_sets.push((after, token));
    }
    fn cancel_timer(&mut self, token: TimerToken) {
        self.fx.timer_cancels.push(token);
    }
    fn storage(&mut self) -> &mut dyn StableStore {
        self.storage
    }
    fn metric(&mut self, metric: Metric) {
        self.fx.metrics.push(metric);
    }
    fn random(&mut self) -> u64 {
        self.rng.next()
    }
}

/// Tiny allocation-free PRNG (SplitMix64) so the runtime does not need a
/// full RNG dependency; actors use randomness only for tie-breaking, and
/// the fault injector uses it for its seeded per-link decision stream.
pub(crate) mod rand_like {
    /// SplitMix64 state.
    pub struct SplitMix64(u64);

    impl SplitMix64 {
        /// Seeds the generator.
        pub fn new(seed: u64) -> Self {
            SplitMix64(seed)
        }

        /// Next pseudo-random value.
        pub fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rand_like::SplitMix64;

    #[test]
    fn splitmix_is_deterministic_and_nonconstant() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(1);
        let xs: Vec<u64> = (0..5).map(|_| a.next()).collect();
        let ys: Vec<u64> = (0..5).map(|_| b.next()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }
}
