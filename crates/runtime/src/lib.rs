//! Threaded live runtime for `mcpaxos` actors.
//!
//! Runs the same agents as the simulator on real OS threads connected by
//! crossbeam channels: each process is a thread with a mailbox, local
//! timers and local storage. One logical tick equals one millisecond of
//! wall-clock time, so the default protocol timings (heartbeats every 50
//! ticks, etc.) translate to sensible live values.
//!
//! This runtime exists to demonstrate that the protocol layer is not
//! simulator-bound; it favours simplicity over throughput. Delivery is
//! reliable and FIFO per link (crossbeam channels), which is *stronger*
//! than the protocol's fair-lossy assumption — the protocol of course
//! still works.
//!
//! # Example
//!
//! ```
//! use mcpaxos_actor::{Actor, Context, ProcessId, TimerToken};
//! use mcpaxos_runtime::Cluster;
//!
//! struct Echo;
//! impl Actor for Echo {
//!     type Msg = u32;
//!     fn on_message(&mut self, from: ProcessId, m: u32, ctx: &mut dyn Context<u32>) {
//!         if m < 3 {
//!             ctx.send(from, m + 1);
//!         }
//!     }
//!     fn on_timer(&mut self, _t: TimerToken, _c: &mut dyn Context<u32>) {}
//! }
//!
//! let mut cluster: Cluster<u32> = Cluster::new();
//! cluster.spawn(ProcessId(0), Box::new(Echo));
//! cluster.spawn(ProcessId(1), Box::new(Echo));
//! cluster.send(ProcessId(0), ProcessId(1), 0);
//! std::thread::sleep(std::time::Duration::from_millis(50));
//! cluster.stop();
//! ```

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use mcpaxos_actor::{
    Actor, Context, MemStore, Metric, MetricSink, Metrics, ProcessId, SimDuration, SimTime,
    StableStore, TimerToken,
};
use parking_lot::{Mutex, RwLock};
use rand_like::SplitMix64;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A boxed actor that can move to its hosting thread.
pub type SendActor<M> = Box<dyn SendableActor<M>>;

/// Object-safe alias trait for `Actor<Msg = M> + Send`.
pub trait SendableActor<M>: Send {
    /// See [`Actor::on_start`].
    fn on_start(&mut self, ctx: &mut dyn Context<M>);
    /// See [`Actor::on_message`].
    fn on_message(&mut self, from: ProcessId, msg: M, ctx: &mut dyn Context<M>);
    /// See [`Actor::on_timer`].
    fn on_timer(&mut self, token: TimerToken, ctx: &mut dyn Context<M>);
    /// Upcast for post-run inspection.
    fn as_any(&self) -> &dyn std::any::Any;
}

impl<M, A: Actor<Msg = M> + Send + 'static> SendableActor<M> for A {
    fn on_start(&mut self, ctx: &mut dyn Context<M>) {
        Actor::on_start(self, ctx);
    }
    fn on_message(&mut self, from: ProcessId, msg: M, ctx: &mut dyn Context<M>) {
        Actor::on_message(self, from, msg, ctx);
    }
    fn on_timer(&mut self, token: TimerToken, ctx: &mut dyn Context<M>) {
        Actor::on_timer(self, token, ctx);
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

enum Event<M> {
    Msg { from: ProcessId, msg: M },
    Stop,
}

type Registry<M> = Arc<RwLock<HashMap<ProcessId, Sender<Event<M>>>>>;

/// Sizes a message for live wire accounting: returns a static tag and the
/// serialized byte size. Shared by every process thread.
pub type LiveByteMeter<M> = Arc<dyn Fn(&M) -> (&'static str, u64) + Send + Sync>;

/// Metric name for cumulative serialized bytes handed to the transport
/// (recorded per sending process when a byte meter is installed).
pub const METRIC_WIRE_BYTES: &str = "wire_bytes";
/// Metric name for messages handed to the transport under byte
/// accounting.
pub const METRIC_WIRE_MSGS: &str = "wire_msgs";

/// A live cluster of actor threads.
pub struct Cluster<M> {
    registry: Registry<M>,
    metrics: Arc<Mutex<Metrics>>,
    start: Instant,
    handles: Vec<(ProcessId, JoinHandle<SendActor<M>>)>,
    byte_meter: Option<LiveByteMeter<M>>,
}

impl<M: Send + 'static> Cluster<M> {
    /// Creates an empty cluster.
    pub fn new() -> Self {
        Cluster {
            registry: Arc::new(RwLock::new(HashMap::new())),
            metrics: Arc::new(Mutex::new(Metrics::new())),
            start: Instant::now(),
            handles: Vec::new(),
            byte_meter: None,
        }
    }

    /// Installs a byte meter: every message a process sends from now on
    /// is sized and recorded as the [`METRIC_WIRE_BYTES`] /
    /// [`METRIC_WIRE_MSGS`] metrics of the sender. Install *before*
    /// spawning the processes whose traffic should be measured.
    pub fn set_byte_meter(&mut self, meter: LiveByteMeter<M>) {
        self.byte_meter = Some(meter);
    }

    /// Spawns `actor` as process `pid` on its own thread.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is already spawned.
    pub fn spawn(&mut self, pid: ProcessId, actor: SendActor<M>) {
        let (tx, rx) = unbounded();
        {
            let mut reg = self.registry.write();
            assert!(reg.insert(pid, tx).is_none(), "process {pid} spawned twice");
        }
        let registry = self.registry.clone();
        let metrics = self.metrics.clone();
        let start = self.start;
        let meter = self.byte_meter.clone();
        let handle = std::thread::Builder::new()
            .name(format!("mcpaxos-{pid}"))
            .spawn(move || run_process(pid, actor, rx, registry, metrics, start, meter))
            .expect("spawn thread");
        self.handles.push((pid, handle));
    }

    /// Sends `msg` to `to`, appearing to come from `from` (external
    /// client injection).
    pub fn send(&self, to: ProcessId, from: ProcessId, msg: M) {
        if let Some(tx) = self.registry.read().get(&to) {
            let _ = tx.send(Event::Msg { from, msg });
        }
    }

    /// Snapshot of the metrics recorded so far.
    pub fn metrics(&self) -> Metrics {
        self.metrics.lock().clone()
    }

    /// Elapsed logical time (ticks = milliseconds since cluster start).
    pub fn now(&self) -> SimTime {
        SimTime(self.start.elapsed().as_millis() as u64)
    }

    /// Stops every process and returns the final actors, keyed by id,
    /// for inspection (downcast via [`SendableActor::as_any`]).
    pub fn stop(self) -> HashMap<ProcessId, SendActor<M>> {
        {
            let reg = self.registry.read();
            for tx in reg.values() {
                let _ = tx.send(Event::Stop);
            }
        }
        let mut out = HashMap::new();
        for (pid, handle) in self.handles {
            let actor = handle.join().expect("actor thread panicked");
            out.insert(pid, actor);
        }
        out
    }
}

impl<M: Send + 'static> Default for Cluster<M> {
    fn default() -> Self {
        Self::new()
    }
}

#[allow(clippy::too_many_arguments)]
fn run_process<M: Send + 'static>(
    pid: ProcessId,
    mut actor: SendActor<M>,
    rx: Receiver<Event<M>>,
    registry: Registry<M>,
    metrics: Arc<Mutex<Metrics>>,
    start: Instant,
    meter: Option<LiveByteMeter<M>>,
) -> SendActor<M> {
    let mut storage = MemStore::new();
    let mut timers: BTreeMap<TimerToken, Instant> = BTreeMap::new();
    let mut rng = SplitMix64::new(0x5EED ^ u64::from(pid.raw()));
    let mut fx = ThreadFx::default();

    macro_rules! upcall {
        ($body:expr) => {{
            let mut ctx = ThreadCtx {
                me: pid,
                start,
                storage: &mut storage,
                rng: &mut rng,
                fx: &mut fx,
            };
            #[allow(clippy::redundant_closure_call)]
            ($body)(&mut ctx);
            apply_effects(pid, &mut fx, &registry, &metrics, &mut timers, &meter);
        }};
    }

    upcall!(|ctx: &mut ThreadCtx<'_, M>| actor.on_start(ctx));

    loop {
        // Fire due timers first.
        let now = Instant::now();
        let due: Vec<TimerToken> = timers
            .iter()
            .filter(|(_, &at)| at <= now)
            .map(|(&t, _)| t)
            .collect();
        for token in due {
            timers.remove(&token);
            upcall!(|ctx: &mut ThreadCtx<'_, M>| actor.on_timer(token, ctx));
        }
        // Wait for the next message or timer deadline.
        let next_deadline = timers.values().min().copied();
        let wait = match next_deadline {
            Some(at) => at.saturating_duration_since(Instant::now()),
            None => Duration::from_millis(50),
        };
        match rx.recv_timeout(wait) {
            Ok(Event::Msg { from, msg }) => {
                upcall!(|ctx: &mut ThreadCtx<'_, M>| actor.on_message(from, msg, ctx));
            }
            Ok(Event::Stop) => return actor,
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return actor,
        }
    }
}

struct ThreadFx<M> {
    sends: Vec<(ProcessId, M)>,
    timer_sets: Vec<(SimDuration, TimerToken)>,
    timer_cancels: Vec<TimerToken>,
    metrics: Vec<Metric>,
}

impl<M> Default for ThreadFx<M> {
    fn default() -> Self {
        ThreadFx {
            sends: Vec::new(),
            timer_sets: Vec::new(),
            timer_cancels: Vec::new(),
            metrics: Vec::new(),
        }
    }
}

fn apply_effects<M: Send + 'static>(
    pid: ProcessId,
    fx: &mut ThreadFx<M>,
    registry: &Registry<M>,
    metrics: &Arc<Mutex<Metrics>>,
    timers: &mut BTreeMap<TimerToken, Instant>,
    meter: &Option<LiveByteMeter<M>>,
) {
    if !fx.metrics.is_empty() {
        let mut m = metrics.lock();
        for metric in fx.metrics.drain(..) {
            m.record(pid, metric);
        }
    }
    for token in fx.timer_cancels.drain(..) {
        timers.remove(&token);
    }
    let now = Instant::now();
    for (after, token) in fx.timer_sets.drain(..) {
        timers.insert(token, now + Duration::from_millis(after.ticks()));
    }
    if !fx.sends.is_empty() {
        // Wire accounting at hand-off to the transport, mirroring the
        // simulator's per-send byte metering.
        if let Some(meter) = meter {
            let mut total = 0u64;
            for (_, msg) in fx.sends.iter() {
                total += meter(msg).1;
            }
            let mut m = metrics.lock();
            m.record(pid, Metric::add(METRIC_WIRE_BYTES, total as i64));
            m.record(pid, Metric::add(METRIC_WIRE_MSGS, fx.sends.len() as i64));
        }
        let reg = registry.read();
        for (to, msg) in fx.sends.drain(..) {
            if let Some(tx) = reg.get(&to) {
                let _ = tx.send(Event::Msg { from: pid, msg });
            }
        }
    }
}

struct ThreadCtx<'a, M> {
    me: ProcessId,
    start: Instant,
    storage: &'a mut MemStore,
    rng: &'a mut SplitMix64,
    fx: &'a mut ThreadFx<M>,
}

impl<M> Context<M> for ThreadCtx<'_, M> {
    fn me(&self) -> ProcessId {
        self.me
    }
    fn now(&self) -> SimTime {
        SimTime(self.start.elapsed().as_millis() as u64)
    }
    fn send(&mut self, to: ProcessId, msg: M) {
        self.fx.sends.push((to, msg));
    }
    fn set_timer(&mut self, after: SimDuration, token: TimerToken) {
        self.fx.timer_sets.push((after, token));
    }
    fn cancel_timer(&mut self, token: TimerToken) {
        self.fx.timer_cancels.push(token);
    }
    fn storage(&mut self) -> &mut dyn StableStore {
        self.storage
    }
    fn metric(&mut self, metric: Metric) {
        self.fx.metrics.push(metric);
    }
    fn random(&mut self) -> u64 {
        self.rng.next()
    }
}

/// Tiny allocation-free PRNG (SplitMix64) so the runtime does not need a
/// full RNG dependency; actors use randomness only for tie-breaking.
mod rand_like {
    /// SplitMix64 state.
    pub struct SplitMix64(u64);

    impl SplitMix64 {
        /// Seeds the generator.
        pub fn new(seed: u64) -> Self {
            SplitMix64(seed)
        }

        /// Next pseudo-random value.
        pub fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

// Keep `bounded` imported usage minimal: used for potential backpressure
// configurations in the future; referenced here so the import is honest.
#[allow(dead_code)]
fn _bounded_mailbox<M>(cap: usize) -> (Sender<M>, Receiver<M>) {
    bounded(cap)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        seen: u32,
    }
    impl Actor for Counter {
        type Msg = u32;
        fn on_message(&mut self, from: ProcessId, msg: u32, ctx: &mut dyn Context<u32>) {
            self.seen += 1;
            ctx.metric(Metric::incr("seen"));
            if msg > 0 {
                ctx.send(from, msg - 1);
            }
        }
        fn on_timer(&mut self, _t: TimerToken, _c: &mut dyn Context<u32>) {}
    }

    #[test]
    fn ping_pong_live() {
        let mut cluster: Cluster<u32> = Cluster::new();
        cluster.spawn(ProcessId(0), Box::new(Counter { seen: 0 }));
        cluster.spawn(ProcessId(1), Box::new(Counter { seen: 0 }));
        cluster.send(ProcessId(0), ProcessId(1), 9);
        let deadline = Instant::now() + Duration::from_secs(2);
        while cluster.metrics().total("seen") < 10 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(cluster.metrics().total("seen"), 10);
        let actors = cluster.stop();
        let a0 = actors[&ProcessId(0)]
            .as_any()
            .downcast_ref::<Counter>()
            .unwrap();
        let a1 = actors[&ProcessId(1)]
            .as_any()
            .downcast_ref::<Counter>()
            .unwrap();
        assert_eq!(a0.seen + a1.seen, 10);
    }

    struct TimerBeat {
        beats: u32,
    }
    impl Actor for TimerBeat {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut dyn Context<u32>) {
            ctx.set_timer(SimDuration(10), TimerToken(1));
        }
        fn on_message(&mut self, _f: ProcessId, _m: u32, _c: &mut dyn Context<u32>) {}
        fn on_timer(&mut self, token: TimerToken, ctx: &mut dyn Context<u32>) {
            self.beats += 1;
            ctx.metric(Metric::incr("beat"));
            if self.beats < 5 {
                ctx.set_timer(SimDuration(10), token);
            }
        }
    }

    #[test]
    fn timers_fire_live() {
        let mut cluster: Cluster<u32> = Cluster::new();
        cluster.spawn(ProcessId(0), Box::new(TimerBeat { beats: 0 }));
        let deadline = Instant::now() + Duration::from_secs(2);
        while cluster.metrics().total("beat") < 5 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(cluster.metrics().total("beat"), 5);
        cluster.stop();
    }

    #[test]
    fn splitmix_is_deterministic_and_nonconstant() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(1);
        let xs: Vec<u64> = (0..5).map(|_| a.next()).collect();
        let ys: Vec<u64> = (0..5).map(|_| b.next()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }
}
