//! Threaded live runtime for `mcpaxos` actors.
//!
//! Runs the same agents as the simulator on real OS threads: each process
//! is a thread with a mailbox, local timers and local storage, driven by
//! the shared event loop in [`process`]. One logical tick equals one
//! millisecond of wall-clock time, so the default protocol timings
//! (heartbeats every 50 ticks, etc.) translate to sensible live values.
//!
//! Two message transports back that loop, selected per deployment (the
//! in-process backend stays the default everywhere):
//!
//! * [`Cluster`] — crossbeam channels. Reliable and FIFO per link, which
//!   is *stronger* than the protocol's fair-lossy assumption; the
//!   noise-free backend the experiments run on.
//! * [`TcpNode`] — loopback/LAN TCP over `std::net`: length-prefixed
//!   CRC-framed messages, one supervised connection per peer with a
//!   bounded drop-oldest send queue, reconnect under a jittered
//!   exponential [`mcpaxos_actor::Backoff`], and `on_link_reset`
//!   delivery on reconnects so delta-shipping survives peer restarts
//!   without `NeedFull` round-trips. Optionally wraps every outbound
//!   link in a seeded deterministic fault injector ([`FaultyTransport`])
//!   for CI chaos tests that never flake.
//!
//! Harnesses that want to run over either backend program against the
//! [`Transport`] trait.
//!
//! # Example
//!
//! ```
//! use mcpaxos_actor::{Actor, Context, ProcessId, TimerToken};
//! use mcpaxos_runtime::Cluster;
//!
//! struct Echo;
//! impl Actor for Echo {
//!     type Msg = u32;
//!     fn on_message(&mut self, from: ProcessId, m: u32, ctx: &mut dyn Context<u32>) {
//!         if m < 3 {
//!             ctx.send(from, m + 1);
//!         }
//!     }
//!     fn on_timer(&mut self, _t: TimerToken, _c: &mut dyn Context<u32>) {}
//! }
//!
//! let mut cluster: Cluster<u32> = Cluster::new();
//! cluster.spawn(ProcessId(0), Box::new(Echo));
//! cluster.spawn(ProcessId(1), Box::new(Echo));
//! cluster.send(ProcessId(0), ProcessId(1), 0);
//! std::thread::sleep(std::time::Duration::from_millis(50));
//! cluster.stop();
//! ```

mod cluster;
mod fault;
mod process;
mod tcp;
mod transport;

pub use cluster::Cluster;
pub use fault::{FaultAction, FaultConfig, FaultyTransport};
pub use process::{
    LiveByteMeter, SendActor, SendableActor, METRIC_BACKPRESSURE_DROPS, METRIC_SEND_FAILURES,
    METRIC_WIRE_BYTES, METRIC_WIRE_MSGS,
};
pub use tcp::{
    framed_size_of, PeerTable, TcpConfig, TcpNode, DATA_HEADER_BYTES, METRIC_TCP_FRAMES,
    METRIC_TCP_FRAME_BYTES, METRIC_TCP_FRAME_ERRORS, METRIC_TCP_LINK_RESETS,
    METRIC_TCP_QUEUE_DEPTH, METRIC_TCP_QUEUE_DROPS, METRIC_TCP_RECONNECTS,
};
pub use transport::Transport;
