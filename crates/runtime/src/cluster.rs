//! The in-process channel backend: every process is a thread, every link
//! is a crossbeam channel. Reliable and FIFO — *stronger* than the
//! protocol's fair-lossy assumption — which makes it the default backend
//! for experiments (no transport noise in the measurements) and the
//! baseline the TCP backend's byte accounting is checked against.

use crate::process::{
    run_process, Event, LiveByteMeter, ProcessSpec, Router, SendActor, METRIC_BACKPRESSURE_DROPS,
    METRIC_SEND_FAILURES,
};
use crossbeam::channel::{bounded, unbounded, Sender, TrySendError};
use mcpaxos_actor::{MemStore, Metric, MetricSink, Metrics, ProcessId, SimTime, StableStore};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

type Registry<M> = Arc<RwLock<HashMap<ProcessId, Sender<Event<M>>>>>;

/// A live cluster of actor threads.
pub struct Cluster<M> {
    registry: Registry<M>,
    metrics: Arc<Mutex<Metrics>>,
    start: Instant,
    handles: Vec<(ProcessId, JoinHandle<SendActor<M>>)>,
    byte_meter: Option<LiveByteMeter<M>>,
    router: Router<M>,
    mailbox_cap: usize,
}

impl<M: Send + 'static> Cluster<M> {
    /// Creates an empty cluster.
    pub fn new() -> Self {
        let registry: Registry<M> = Arc::new(RwLock::new(HashMap::new()));
        let metrics = Arc::new(Mutex::new(Metrics::new()));
        let router = {
            let registry = registry.clone();
            let metrics = metrics.clone();
            Arc::new(move |from: ProcessId, to: ProcessId, msg: M| {
                // A missing mailbox (never spawned, or stopped) and a
                // disconnected channel (crashed thread) are the same
                // thing to the sender: the message is lost on a dead
                // link, counted, never panicking — exactly what the TCP
                // backend does when a peer is down. A *full* bounded
                // mailbox (see `with_mailbox_cap`) is different: the peer
                // is alive but overloaded, so the shed message counts as
                // backpressure, not a link failure.
                let dropped_as = match registry.read().get(&to) {
                    Some(tx) => match tx.try_send(Event::Msg { from, msg }) {
                        Ok(()) => None,
                        Err(TrySendError::Full(_)) => Some(METRIC_BACKPRESSURE_DROPS),
                        Err(TrySendError::Disconnected(_)) => Some(METRIC_SEND_FAILURES),
                    },
                    None => Some(METRIC_SEND_FAILURES),
                };
                if let Some(name) = dropped_as {
                    metrics.lock().record(from, Metric::incr(name));
                }
            }) as Router<M>
        };
        Cluster {
            registry,
            metrics,
            start: Instant::now(),
            handles: Vec::new(),
            byte_meter: None,
            router,
            mailbox_cap: 0,
        }
    }

    /// Bounds every mailbox spawned from now on to `cap` queued events
    /// (`0` = unbounded, the default). With a bound in place, sends to a
    /// full mailbox are shed and counted per sender under
    /// [`crate::METRIC_BACKPRESSURE_DROPS`] — dead-peer drops keep their
    /// own [`crate::METRIC_SEND_FAILURES`] ledger. Set *before* spawning
    /// the processes the bound should apply to.
    pub fn with_mailbox_cap(mut self, cap: usize) -> Self {
        self.mailbox_cap = cap;
        self
    }

    /// Installs a byte meter: every message a process sends from now on
    /// is sized and recorded as the [`crate::METRIC_WIRE_BYTES`] /
    /// [`crate::METRIC_WIRE_MSGS`] metrics of the sender. Install
    /// *before* spawning the processes whose traffic should be measured.
    pub fn set_byte_meter(&mut self, meter: LiveByteMeter<M>) {
        self.byte_meter = Some(meter);
    }

    /// Spawns `actor` as process `pid` on its own thread.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is already spawned.
    pub fn spawn(&mut self, pid: ProcessId, actor: SendActor<M>) {
        self.spawn_inner(pid, actor, Box::new(MemStore::new()), false);
    }

    /// Respawns a previously stopped process over `storage` — the
    /// crash-recovery path: the fresh actor enters via
    /// [`mcpaxos_actor::Actor::on_recover`] and sees exactly what the
    /// storage preserved.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is currently live.
    pub fn spawn_recovered(
        &mut self,
        pid: ProcessId,
        actor: SendActor<M>,
        storage: Box<dyn StableStore + Send>,
    ) {
        self.spawn_inner(pid, actor, storage, true);
    }

    fn spawn_inner(
        &mut self,
        pid: ProcessId,
        actor: SendActor<M>,
        storage: Box<dyn StableStore + Send>,
        recovered: bool,
    ) {
        let (tx, rx) = if self.mailbox_cap > 0 {
            bounded(self.mailbox_cap)
        } else {
            unbounded()
        };
        {
            let mut reg = self.registry.write();
            assert!(reg.insert(pid, tx).is_none(), "process {pid} spawned twice");
        }
        let spec = ProcessSpec {
            pid,
            actor,
            rx,
            router: self.router.clone(),
            metrics: self.metrics.clone(),
            start: self.start,
            meter: self.byte_meter.clone(),
            storage,
            recovered,
        };
        let handle = std::thread::Builder::new()
            .name(format!("mcpaxos-{pid}"))
            .spawn(move || run_process(spec))
            .expect("spawn thread");
        self.handles.push((pid, handle));
    }

    /// Sends `msg` to `to`, appearing to come from `from` (external
    /// client injection). Sends to a dead or never-spawned process are
    /// dropped and counted under [`crate::METRIC_SEND_FAILURES`].
    pub fn send(&self, to: ProcessId, from: ProcessId, msg: M) {
        (self.router)(from, to, msg);
    }

    /// Snapshot of the metrics recorded so far.
    pub fn metrics(&self) -> Metrics {
        self.metrics.lock().clone()
    }

    /// Elapsed logical time (ticks = milliseconds since cluster start).
    pub fn now(&self) -> SimTime {
        SimTime(self.start.elapsed().as_millis() as u64)
    }

    /// Stops just process `pid` and returns its final actor (`None` if it
    /// was never spawned). Its mailbox disappears immediately: subsequent
    /// sends to `pid` count as [`crate::METRIC_SEND_FAILURES`] until a
    /// [`Cluster::spawn_recovered`] brings it back.
    pub fn stop_one(&mut self, pid: ProcessId) -> Option<SendActor<M>> {
        let tx = self.registry.write().remove(&pid)?;
        let _ = tx.send(Event::Stop);
        let at = self.handles.iter().position(|(p, _)| *p == pid)?;
        let (_, handle) = self.handles.remove(at);
        Some(handle.join().expect("actor thread panicked"))
    }

    /// Stops every process and returns the final actors, keyed by id,
    /// for inspection (downcast via [`SendableActor::as_any`]).
    ///
    /// [`SendableActor::as_any`]: crate::SendableActor::as_any
    pub fn stop(self) -> HashMap<ProcessId, SendActor<M>> {
        {
            let reg = self.registry.read();
            for tx in reg.values() {
                let _ = tx.send(Event::Stop);
            }
        }
        let mut out = HashMap::new();
        for (pid, handle) in self.handles {
            let actor = handle.join().expect("actor thread panicked");
            out.insert(pid, actor);
        }
        out
    }
}

impl<M: Send + 'static> Default for Cluster<M> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::METRIC_SEND_FAILURES;
    use mcpaxos_actor::{Actor, Context, SimDuration, TimerToken};
    use std::time::Duration;

    struct Counter {
        seen: u32,
    }
    impl Actor for Counter {
        type Msg = u32;
        fn on_message(&mut self, from: ProcessId, msg: u32, ctx: &mut dyn Context<u32>) {
            self.seen += 1;
            ctx.metric(Metric::incr("seen"));
            if msg > 0 {
                ctx.send(from, msg - 1);
            }
        }
        fn on_timer(&mut self, _t: TimerToken, _c: &mut dyn Context<u32>) {}
    }

    #[test]
    fn ping_pong_live() {
        let mut cluster: Cluster<u32> = Cluster::new();
        cluster.spawn(ProcessId(0), Box::new(Counter { seen: 0 }));
        cluster.spawn(ProcessId(1), Box::new(Counter { seen: 0 }));
        cluster.send(ProcessId(0), ProcessId(1), 9);
        let deadline = Instant::now() + Duration::from_secs(2);
        while cluster.metrics().total("seen") < 10 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(cluster.metrics().total("seen"), 10);
        let actors = cluster.stop();
        let a0 = actors[&ProcessId(0)]
            .as_any()
            .downcast_ref::<Counter>()
            .unwrap();
        let a1 = actors[&ProcessId(1)]
            .as_any()
            .downcast_ref::<Counter>()
            .unwrap();
        assert_eq!(a0.seen + a1.seen, 10);
    }

    struct TimerBeat {
        beats: u32,
    }
    impl Actor for TimerBeat {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut dyn Context<u32>) {
            ctx.set_timer(SimDuration(10), TimerToken(1));
        }
        fn on_message(&mut self, _f: ProcessId, _m: u32, _c: &mut dyn Context<u32>) {}
        fn on_timer(&mut self, token: TimerToken, ctx: &mut dyn Context<u32>) {
            self.beats += 1;
            ctx.metric(Metric::incr("beat"));
            if self.beats < 5 {
                ctx.set_timer(SimDuration(10), token);
            }
        }
    }

    #[test]
    fn timers_fire_live() {
        let mut cluster: Cluster<u32> = Cluster::new();
        cluster.spawn(ProcessId(0), Box::new(TimerBeat { beats: 0 }));
        let deadline = Instant::now() + Duration::from_secs(2);
        while cluster.metrics().total("beat") < 5 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(cluster.metrics().total("beat"), 5);
        cluster.stop();
    }

    #[test]
    fn sends_to_dead_processes_are_counted_not_panicking() {
        let mut cluster: Cluster<u32> = Cluster::new();
        cluster.spawn(ProcessId(0), Box::new(Counter { seen: 0 }));

        // Never-spawned destination.
        cluster.send(ProcessId(7), ProcessId(99), 1);
        assert_eq!(cluster.metrics().of(ProcessId(99), METRIC_SEND_FAILURES), 1);

        // Stopped destination: its mailbox is gone.
        let stopped = cluster.stop_one(ProcessId(0));
        assert!(stopped.is_some());
        cluster.send(ProcessId(0), ProcessId(99), 1);
        assert_eq!(cluster.metrics().of(ProcessId(99), METRIC_SEND_FAILURES), 2);
        cluster.stop();
    }

    struct SlowDrain;
    impl Actor for SlowDrain {
        type Msg = u32;
        fn on_message(&mut self, _f: ProcessId, _m: u32, ctx: &mut dyn Context<u32>) {
            std::thread::sleep(Duration::from_millis(300));
            ctx.metric(Metric::incr("drained"));
        }
        fn on_timer(&mut self, _t: TimerToken, _c: &mut dyn Context<u32>) {}
    }

    #[test]
    fn full_mailboxes_shed_as_backpressure_not_send_failures() {
        use crate::process::METRIC_BACKPRESSURE_DROPS;
        let mut cluster: Cluster<u32> = Cluster::new().with_mailbox_cap(1);
        cluster.spawn(ProcessId(0), Box::new(SlowDrain));
        // First message: delivered, the actor starts its slow drain.
        cluster.send(ProcessId(0), ProcessId(99), 1);
        std::thread::sleep(Duration::from_millis(50));
        // Second fills the (capacity 1) mailbox; the rest are shed.
        for _ in 0..5 {
            cluster.send(ProcessId(0), ProcessId(99), 2);
        }
        let m = cluster.metrics();
        assert!(
            m.of(ProcessId(99), METRIC_BACKPRESSURE_DROPS) >= 1,
            "overload must surface as backpressure drops"
        );
        assert_eq!(
            m.of(ProcessId(99), METRIC_SEND_FAILURES),
            0,
            "a live-but-slow peer is not a dead link"
        );
        // Dead-peer drops stay on their own ledger.
        cluster.send(ProcessId(7), ProcessId(99), 1);
        assert_eq!(cluster.metrics().of(ProcessId(99), METRIC_SEND_FAILURES), 1);
        cluster.stop();
    }

    struct Recovers;
    impl Actor for Recovers {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut dyn Context<u32>) {
            ctx.metric(Metric::incr("started"));
            ctx.storage().write("mark", vec![42]);
        }
        fn on_recover(&mut self, ctx: &mut dyn Context<u32>) {
            let seen = ctx.storage().read("mark").map(<[u8]>::to_vec);
            if seen == Some(vec![42]) {
                ctx.metric(Metric::incr("recovered_with_state"));
            }
        }
        fn on_message(&mut self, _f: ProcessId, _m: u32, _c: &mut dyn Context<u32>) {}
        fn on_timer(&mut self, _t: TimerToken, _c: &mut dyn Context<u32>) {}
    }

    #[test]
    fn spawn_recovered_enters_via_on_recover_with_carried_storage() {
        let mut cluster: Cluster<u32> = Cluster::new();
        // Seed storage the way a pre-crash incarnation would have.
        let mut store = MemStore::new();
        store.write("mark", vec![42]);

        cluster.spawn_recovered(ProcessId(3), Box::new(Recovers), Box::new(store));
        let deadline = Instant::now() + Duration::from_secs(2);
        while cluster.metrics().total("recovered_with_state") < 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let m = cluster.metrics();
        assert_eq!(m.total("recovered_with_state"), 1);
        assert_eq!(m.total("started"), 0, "on_start must not run on recovery");
        cluster.stop();
    }
}
