//! Deterministic wire-fault injection for the TCP backend.
//!
//! Sockets in CI are flaky in uninteresting ways and reliable in the
//! interesting ones: a loopback connection essentially never corrupts,
//! reorders or drops frames on its own. To test the transport's fault
//! handling — CRC teardown, reconnect supervision, the protocol's
//! resend/`NeedFull` recovery — a [`FaultyTransport`] sits between the
//! frame encoder and the socket on each outbound link and misbehaves *on
//! purpose*, driven by a seeded per-link PRNG so every CI run replays the
//! identical fault sequence.
//!
//! Faults operate on whole encoded frames (the unit the wire actually
//! carries):
//!
//! * **drop** — the frame is never written (fair-lossy link);
//! * **duplicate** — the frame is written twice (at-least-once link);
//! * **corrupt** — one byte of the payload/CRC region is flipped, so the
//!   receiver's CRC check fails and it tears the connection down: this
//!   is how "corrupt frames never reach an agent" is exercised;
//! * **stall** — the frame is held back and released after
//!   [`FaultConfig::stall_frames`] later frames (reordering, which
//!   delta-shipping must survive via `NeedFull` resync);
//! * **disconnect** — the sender closes the connection mid-stream and
//!   lets the reconnect supervisor pick up the pieces.

use crate::process::rand_like::SplitMix64;
use mcpaxos_actor::ProcessId;
use std::collections::VecDeque;

/// Per-mille rates for each fault, plus the seed that makes the whole
/// fault sequence reproducible. Rates are checked in the declaration
/// order below against a single roll in `[0, 1000)`, so their sum must
/// stay ≤ 1000 (the remainder is the faultless path).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultConfig {
    /// Seed for the per-link decision stream (mixed with the link id).
    pub seed: u64,
    /// Frames silently dropped, ‰.
    pub drop_per_mille: u16,
    /// Frames written twice, ‰.
    pub dup_per_mille: u16,
    /// Frames with one payload byte flipped (guaranteed CRC failure), ‰.
    pub corrupt_per_mille: u16,
    /// Frames held back and released later (reordering), ‰.
    pub stall_per_mille: u16,
    /// Deliberate connection closes, ‰.
    pub disconnect_per_mille: u16,
    /// How many subsequent frames pass before a stalled frame is
    /// released.
    pub stall_frames: u32,
}

impl FaultConfig {
    /// A lively mix of every fault kind, suitable for a chaos test that
    /// must still converge: ~6% of frames misbehave.
    pub fn chaos(seed: u64) -> Self {
        FaultConfig {
            seed,
            drop_per_mille: 20,
            dup_per_mille: 15,
            corrupt_per_mille: 5,
            stall_per_mille: 15,
            disconnect_per_mille: 3,
            stall_frames: 3,
        }
    }
}

/// What the transport should do with one encoded frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Write these byte blobs to the socket, in order. May be empty
    /// (dropped), contain duplicates, or contain previously stalled
    /// frames released behind the current one.
    Write(Vec<Vec<u8>>),
    /// Close the connection; the supervisor will reconnect with backoff.
    /// Any stalled frames die with the connection.
    Disconnect,
}

/// The seeded per-link fault engine. One instance wraps one outbound
/// connection; feeding it the same frames in the same order always
/// yields the same actions.
pub struct FaultyTransport {
    cfg: FaultConfig,
    rng: SplitMix64,
    /// Stalled frames, each with a countdown of how many more
    /// [`FaultyTransport::apply`] calls must pass before release.
    stalled: VecDeque<(u32, Vec<u8>)>,
}

impl FaultyTransport {
    /// An engine for the link toward `to`, seeded from
    /// [`FaultConfig::seed`] mixed with the link id so each link gets an
    /// independent but reproducible decision stream.
    pub fn link(cfg: FaultConfig, to: ProcessId) -> Self {
        let mix = u64::from(to.raw()).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        FaultyTransport {
            cfg,
            rng: SplitMix64::new(cfg.seed ^ mix),
            stalled: VecDeque::new(),
        }
    }

    /// Decides the fate of one encoded frame (as produced by
    /// [`mcpaxos_actor::frame::encode_frame`], so at least 8 bytes).
    pub fn apply(&mut self, mut frame: Vec<u8>) -> FaultAction {
        debug_assert!(frame.len() >= 8, "apply takes whole encoded frames");
        let roll = (self.rng.next() % 1000) as u16;
        let c = self.cfg;
        let mut out: Vec<Vec<u8>> = Vec::new();
        let mut edge = c.drop_per_mille;
        if roll < edge {
            // dropped: nothing written
        } else if roll < {
            edge += c.dup_per_mille;
            edge
        } {
            out.push(frame.clone());
            out.push(frame);
        } else if roll < {
            edge += c.corrupt_per_mille;
            edge
        } {
            // Flip one byte past the length prefix — in the payload or
            // CRC trailer — so the receiver sees a well-delimited frame
            // whose CRC check must fail. (Never the length prefix: that
            // could desynchronize into a torn-looking stream instead of
            // a detected corruption.)
            let span = frame.len() - 4;
            let at = 4 + (self.rng.next() as usize % span);
            frame[at] ^= 0x01;
            out.push(frame);
        } else if roll < {
            edge += c.stall_per_mille;
            edge
        } {
            // +1 compensates for the aging pass below, which also ages
            // the frame just pushed: the net effect is release after
            // exactly `stall_frames` further `apply` calls.
            self.stalled.push_back((c.stall_frames + 1, frame));
        } else if roll < edge + c.disconnect_per_mille {
            return FaultAction::Disconnect;
        } else {
            out.push(frame);
        }
        // Age stalled frames; release the ones whose countdown expired
        // *behind* whatever this call wrote (that is the reordering).
        for s in &mut self.stalled {
            s.0 = s.0.saturating_sub(1);
        }
        while let Some((cnt, _)) = self.stalled.front() {
            if *cnt > 0 {
                break;
            }
            out.push(self.stalled.pop_front().expect("front exists").1);
        }
        FaultAction::Write(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcpaxos_actor::frame::encode_frame;

    fn frames(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| {
                // Varying lengths so a released stalled frame is never
                // mistaken for a corrupted copy of the current one.
                let payload = vec![i as u8; 16 + (i % 7)];
                let mut f = Vec::new();
                encode_frame(&payload, &mut f).unwrap();
                f
            })
            .collect()
    }

    #[test]
    fn same_seed_replays_identical_fault_sequence() {
        let cfg = FaultConfig::chaos(0xFA11);
        let mut a = FaultyTransport::link(cfg, ProcessId(7));
        let mut b = FaultyTransport::link(cfg, ProcessId(7));
        for f in frames(500) {
            assert_eq!(a.apply(f.clone()), b.apply(f));
        }
    }

    #[test]
    fn different_links_get_different_streams() {
        let cfg = FaultConfig::chaos(0xFA11);
        let mut a = FaultyTransport::link(cfg, ProcessId(7));
        let mut b = FaultyTransport::link(cfg, ProcessId(8));
        let mut diverged = false;
        for f in frames(500) {
            if a.apply(f.clone()) != b.apply(f) {
                diverged = true;
                break;
            }
        }
        assert!(
            diverged,
            "independent links should not misbehave in lockstep"
        );
    }

    #[test]
    fn chaos_exercises_every_fault_kind() {
        let cfg = FaultConfig::chaos(0x5EED);
        let mut eng = FaultyTransport::link(cfg, ProcessId(1));
        let (mut drops, mut dups, mut corrupts, mut reorders, mut disconnects) = (0, 0, 0, 0, 0);
        let mut pending_stall = 0usize;
        for f in frames(5000) {
            let before = pending_stall;
            match eng.apply(f.clone()) {
                FaultAction::Disconnect => {
                    disconnects += 1;
                    continue;
                }
                FaultAction::Write(out) => {
                    let wrote = out.len();
                    let corrupted = out.iter().any(|w| w.len() == f.len() && *w != f);
                    if corrupted {
                        corrupts += 1;
                    } else if wrote == 0 {
                        // dropped or stalled; disambiguate via engine state
                        if eng.stalled.len() <= before {
                            drops += 1;
                        }
                    } else if wrote >= 2 && out[0] == out[1] {
                        dups += 1;
                    }
                    if wrote > 1 && out[0] != out[1] {
                        reorders += 1;
                    }
                    pending_stall = eng.stalled.len();
                }
            }
        }
        assert!(drops > 0, "no drops seen");
        assert!(dups > 0, "no duplicates seen");
        assert!(corrupts > 0, "no corruptions seen");
        assert!(reorders > 0, "no reorderings seen");
        assert!(disconnects > 0, "no disconnects seen");
    }

    #[test]
    fn corrupt_frames_always_fail_crc() {
        use mcpaxos_actor::frame::FrameDecoder;
        let cfg = FaultConfig {
            seed: 9,
            drop_per_mille: 0,
            dup_per_mille: 0,
            corrupt_per_mille: 1000,
            stall_per_mille: 0,
            disconnect_per_mille: 0,
            stall_frames: 0,
        };
        let mut eng = FaultyTransport::link(cfg, ProcessId(2));
        for f in frames(200) {
            let FaultAction::Write(out) = eng.apply(f) else {
                panic!("corrupt-only config never disconnects");
            };
            for w in out {
                let mut dec = FrameDecoder::new();
                dec.push(&w);
                // Either an immediate framing error, or — if the flip
                // landed in unused high bits — still never a clean frame.
                assert!(
                    dec.next_frame().is_err(),
                    "a corrupted frame must never decode cleanly"
                );
            }
        }
    }

    #[test]
    fn stalled_frames_are_released_in_order_behind_later_traffic() {
        let cfg = FaultConfig {
            seed: 1,
            drop_per_mille: 0,
            dup_per_mille: 0,
            corrupt_per_mille: 0,
            stall_per_mille: 1000, // stall everything
            disconnect_per_mille: 0,
            stall_frames: 2,
        };
        let mut eng = FaultyTransport::link(cfg, ProcessId(3));
        let fs = frames(4);
        // Every frame stalls, so writes only ever contain *released*
        // earlier frames: frame 0 is released while frame 2 stalls.
        let a0 = eng.apply(fs[0].clone());
        let a1 = eng.apply(fs[1].clone());
        let a2 = eng.apply(fs[2].clone());
        assert_eq!(a0, FaultAction::Write(vec![]));
        assert_eq!(a1, FaultAction::Write(vec![]));
        assert_eq!(a2, FaultAction::Write(vec![fs[0].clone()]));
    }
}
