//! Property-based coverage for the delta-shipping payload codec
//! (`mcpaxos_core::Payload`), the sibling of `prop_wire.rs`:
//!
//! 1. **Codec laws**: `decode(encode(p)) == p` for full and delta
//!    payloads, and every strict prefix of an encoding fails to decode
//!    (truncated-buffer detection).
//! 2. **Delta semantics across the wire**: a decoded suffix applied to
//!    the base it was cut from reconstructs the full value —
//!    `full ≡ base • suffix` survives serialization.

use mcpaxos_actor::wire::{from_bytes, to_bytes, Wire, WireError};
use mcpaxos_core::{Msg, Payload, Round};
use mcpaxos_cstruct::{CStruct, CommandHistory, Conflict, ConflictKeys};
use proptest::prelude::*;
use std::sync::Arc;

/// Keyed command: same-key interference with an exact locality hint.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct K(u8, u16);

impl Conflict for K {
    fn conflicts(&self, other: &Self) -> bool {
        self.0 == other.0
    }
    fn conflict_keys(&self) -> ConflictKeys {
        ConflictKeys::one(u64::from(self.0))
    }
}

impl Wire for K {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(i: &mut &[u8]) -> Result<Self, WireError> {
        Ok(K(u8::decode(i)?, u16::decode(i)?))
    }
}

type H = CommandHistory<K>;
type P = Payload<H>;

fn k() -> impl Strategy<Value = K> {
    (0u8..5, 0u16..32).prop_map(|(key, uid)| K(key, uid))
}

fn history() -> impl Strategy<Value = H> {
    prop::collection::vec(k(), 0..12).prop_map(|v| v.into_iter().collect())
}

fn payload() -> impl Strategy<Value = P> {
    prop_oneof![
        history().prop_map(Payload::full),
        (any::<u32>(), any::<u64>(), prop::collection::vec(k(), 0..8)).prop_map(
            |(base, digest, suffix)| Payload::Delta {
                base_len: u64::from(base),
                digest,
                suffix,
            },
        ),
    ]
}

fn strict_prefixes_fail<T: Wire + std::fmt::Debug>(v: &T) -> Result<(), TestCaseError> {
    let bytes = to_bytes(v);
    for cut in 0..bytes.len() {
        let r: Result<T, _> = from_bytes(&bytes[..cut]);
        prop_assert!(r.is_err(), "prefix of len {cut} of {v:?} decoded");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Codec law: round-trip plus truncated-buffer rejection, for both
    /// payload shapes.
    #[test]
    fn payload_roundtrips_and_rejects_truncation(p in payload()) {
        let bytes = to_bytes(&p);
        let back: P = from_bytes(&bytes).unwrap();
        prop_assert_eq!(&back, &p);
        strict_prefixes_fail(&p)?;
    }

    /// Corrupt payload tags are rejected.
    #[test]
    fn bad_payload_tag_fails(tag in 2u8..255) {
        let r: Result<P, _> = from_bytes(&[tag]);
        prop_assert!(r.is_err());
    }

    /// `full ≡ base • suffix` through the wire: cut a random split point,
    /// ship the suffix as a delta, decode it, apply to the base.
    #[test]
    fn decoded_delta_reconstructs_full(cmds in prop::collection::vec(k(), 0..16), cut in 0usize..17) {
        let full: H = cmds.iter().cloned().collect();
        let p = cut.min(full.as_slice().len()) as u64;
        let suffix = full.suffix_from(p).expect("in range");
        let delta: P = Payload::Delta { base_len: p, digest: mcpaxos_core::value_digest(&full), suffix };

        let decoded: P = from_bytes(&to_bytes(&delta)).unwrap();
        let (base_len, digest, suffix) = match decoded {
            Payload::Delta { base_len, digest, suffix } => (base_len, digest, suffix),
            Payload::Full(_) => return Err(TestCaseError::fail("shape changed")),
        };
        prop_assert_eq!(base_len, p);
        let mut base: H = full.as_slice()[..p as usize].iter().cloned().collect();
        base.apply_suffix(base_len, &suffix).expect("base covers split");
        prop_assert_eq!(base.as_slice(), full.as_slice());
        // The digest survives the wire and matches the reconstruction.
        prop_assert_eq!(digest, mcpaxos_core::value_digest(&base));

        // And the full-payload route agrees, Arc sharing preserved
        // transparently by the codec.
        let full_p: P = Payload::Full(Arc::new(full.clone()));
        let back: P = from_bytes(&to_bytes(&full_p)).unwrap();
        match back {
            Payload::Full(v) => prop_assert_eq!(v.as_slice(), full.as_slice()),
            Payload::Delta { .. } => return Err(TestCaseError::fail("shape changed")),
        }
    }

    /// Protocol messages carrying delta payloads round-trip end to end.
    #[test]
    fn messages_with_delta_payloads_roundtrip(
        cmds in prop::collection::vec(k(), 0..10),
        base in any::<u16>(),
        tag in 0u8..3,
    ) {
        let round = Round::new(1, 2, 0, 1);
        let payload: P = Payload::Delta { base_len: u64::from(base), digest: 7, suffix: cmds };
        let msg: Msg<H> = match tag {
            0 => Msg::P1b { round, vrnd: Round::ZERO, vval: payload },
            1 => Msg::P2a { round, val: payload },
            _ => Msg::P2b { round, val: payload },
        };
        let back: Msg<H> = from_bytes(&to_bytes(&msg)).unwrap();
        prop_assert_eq!(back, msg);
        strict_prefixes_fail(&Msg::<H>::NeedFull { round })?;
    }
}
