//! WAL replay unit suite: group-commit batching, torn tails, corrupt
//! tails, duplicate flushes, empty logs, crash semantics, compaction.

use mcpaxos_actor::{StableStore, WalStore};

#[test]
fn empty_log_replays_to_empty_store() {
    let mut s = WalStore::new();
    assert_eq!(s.replay(), 0);
    assert!(s.is_empty());
    assert_eq!(s.write_count(), 0);
    assert_eq!(s.corrupt_records(), 0);

    let s = WalStore::from_log(Vec::new());
    assert!(s.is_empty());
    assert_eq!(s.corrupt_records(), 0);
}

#[test]
fn group_commit_batches_many_writes_into_one_disk_write() {
    let mut s = WalStore::new();
    for i in 0..10u8 {
        s.write("vote", vec![i]);
    }
    assert_eq!(s.write_count(), 0, "writes only buffer");
    assert!(s.unflushed_len() > 0);
    s.flush();
    assert_eq!(s.write_count(), 1, "whole batch is one sync");
    assert_eq!(s.unflushed_len(), 0);
    assert_eq!(s.read("vote"), Some(&[9u8][..]));
    assert_eq!(s.records_written(), 10);
}

#[test]
fn duplicate_flush_is_free() {
    let mut s = WalStore::new();
    s.write("k", vec![1]);
    s.flush();
    s.flush();
    s.flush();
    assert_eq!(s.write_count(), 1, "empty flushes must not be charged");
}

#[test]
fn synchronous_mode_counts_every_write() {
    let mut s = WalStore::synchronous();
    s.write("a", vec![1]);
    s.write("b", vec![2]);
    s.write("a", vec![3]);
    assert_eq!(s.write_count(), 3, "per-vote baseline: one sync per write");
    assert_eq!(s.read("a"), Some(&[3u8][..]));
}

#[test]
fn crash_loses_unflushed_but_keeps_flushed() {
    let mut s = WalStore::new();
    s.write("vote", vec![1]);
    s.flush();
    s.write("vote", vec![2]); // buffered only
    assert_eq!(s.read("vote"), Some(&[2u8][..]), "reads see the buffer");
    s.lose_unflushed();
    assert_eq!(
        s.read("vote"),
        Some(&[1u8][..]),
        "crash rolls back to the flushed record"
    );
    assert_eq!(s.corrupt_records(), 0, "a clean tail is not corruption");
}

#[test]
fn torn_tail_truncates_to_last_good_record() {
    let mut s = WalStore::new();
    s.write("vote", vec![1, 1, 1]);
    s.flush();
    s.write("vote", vec![2, 2, 2]);
    s.flush();
    let full = s.log_len();
    s.tear_tail(3); // cut the last record mid-write
    assert!(s.log_len() < full);
    let recovered = s.replay();
    assert_eq!(recovered, 1, "only the intact record survives");
    assert_eq!(s.read("vote"), Some(&[1u8, 1, 1][..]));
    assert_eq!(s.corrupt_records(), 1);
    // The log was truncated at the tear: replaying again is clean.
    let before = s.corrupt_records();
    s.replay();
    assert_eq!(s.corrupt_records(), before);
}

#[test]
fn corrupt_tail_fails_crc_and_truncates() {
    let mut s = WalStore::new();
    s.write("rnd", vec![7]);
    s.write("vote", vec![8]);
    s.flush();
    s.write("vote", vec![9]);
    s.flush();
    s.corrupt_tail(2); // flip bits inside the final record's CRC/payload
    s.replay();
    assert_eq!(s.read("vote"), Some(&[8u8][..]), "falls back to last good");
    assert_eq!(s.read("rnd"), Some(&[7u8][..]));
    assert_eq!(s.corrupt_records(), 1);
}

#[test]
fn corruption_mid_log_truncates_everything_after() {
    let mut s = WalStore::new();
    s.write("a", vec![1]);
    s.flush();
    let cut = s.log_len();
    s.write("b", vec![2]);
    s.write("c", vec![3]);
    s.flush();
    // Corrupt the *second* record: 'a' survives, 'b' and 'c' are lost
    // even though 'c''s bytes are intact (no way to trust a log past a
    // bad record).
    let tail = s.log_len() - cut;
    s.corrupt_tail(tail);
    s.replay();
    assert_eq!(s.read("a"), Some(&[1u8][..]));
    assert!(s.read("b").is_none());
    assert!(s.read("c").is_none());
    assert!(s.corrupt_records() >= 1);
}

#[test]
fn from_log_roundtrip() {
    let mut s = WalStore::new();
    s.write("vote", vec![4, 5]);
    s.write("mcount", vec![6]);
    s.flush();
    // Simulate re-opening the file: feed the raw bytes to a fresh store.
    let reopened = WalStore::from_log(s.log_bytes().to_vec());
    assert_eq!(reopened.read("vote"), Some(&[4u8, 5][..]));
    assert_eq!(reopened.read("mcount"), Some(&[6u8][..]));
    assert_eq!(reopened.corrupt_records(), 0);
}

/// Mirrors the WAL record layout for test verification:
/// `[payload_len u32 LE][key_len u16 LE][key][value][crc32 u32 LE]`.
fn encode_record(key: &str, value: &[u8]) -> Vec<u8> {
    let kb = key.as_bytes();
    let payload_len = 2 + kb.len() + value.len();
    let mut out = Vec::new();
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    let start = out.len();
    out.extend_from_slice(&(kb.len() as u16).to_le_bytes());
    out.extend_from_slice(kb);
    out.extend_from_slice(value);
    let crc = mcpaxos_actor::crc32(&out[start..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

#[test]
fn record_layout_is_stable() {
    // Pin the on-disk format: a change here breaks recovery of existing
    // logs and must be deliberate.
    let mut s = WalStore::from_log(encode_record("vote", &[1, 2, 3]));
    assert_eq!(s.read("vote"), Some(&[1u8, 2, 3][..]));
    assert_eq!(s.corrupt_records(), 0);
    // Two records back to back.
    let mut log = encode_record("a", &[1]);
    log.extend(encode_record("a", &[2]));
    s = WalStore::from_log(log);
    assert_eq!(s.read("a"), Some(&[2u8][..]), "later record wins");
}

#[test]
fn compaction_shrinks_log_and_preserves_reads() {
    let mut s = WalStore::new();
    for i in 0..50u8 {
        s.write("vote", vec![i; 8]);
        s.flush();
    }
    s.write("mcount", vec![3]);
    s.flush();
    let before = s.log_len();
    let syncs_before = s.write_count();
    s.compact();
    assert!(s.log_len() < before, "50 superseded records must vanish");
    assert_eq!(s.read("vote"), Some(&[49u8; 8][..]));
    assert_eq!(s.read("mcount"), Some(&[3u8][..]));
    assert!(
        s.write_count() > syncs_before,
        "the rewrite is a disk write"
    );
    // Replay of the compacted log reproduces the same state.
    s.replay();
    assert_eq!(s.read("vote"), Some(&[49u8; 8][..]));
    assert_eq!(s.corrupt_records(), 0);
}

#[test]
fn compaction_flushes_buffered_writes_first() {
    let mut s = WalStore::new();
    s.write("k", vec![1]);
    s.compact(); // must not silently drop the buffered record
    s.lose_unflushed();
    assert_eq!(s.read("k"), Some(&[1u8][..]), "compaction implies flush");
}

#[test]
fn auto_compaction_kicks_in_above_threshold() {
    let mut s = WalStore::new().with_compact_above(256);
    for i in 0..100u8 {
        s.write("vote", vec![i; 16]);
        s.flush();
    }
    assert!(
        s.log_len() <= 256 + 64,
        "auto-compaction must bound the log (got {} bytes)",
        s.log_len()
    );
    assert_eq!(s.read("vote"), Some(&[99u8; 16][..]));
}
