//! Property-based coverage for the frame codec ([`mcpaxos_actor::frame`]).
//!
//! Three families of properties:
//!
//! 1. **Round-trip laws**: any sequence of payloads framed back-to-back
//!    decodes to exactly that sequence under *any* chunking of the byte
//!    stream, with nothing left pending.
//! 2. **Torn tails**: every strict prefix of a valid stream yields the
//!    completed frames and then `Ok(None)` — truncation is incomplete,
//!    never an error and never a wrong frame.
//! 3. **Adversarial bytes**: flipped bits and random byte soup never
//!    panic and never yield a frame that fails CRC. The check is a
//!    shadow verification against the raw stream: for every payload the
//!    decoder yields, the bytes it consumed must really be
//!    `[len][payload][crc32(payload)]` at the decoder's running offset.
//!    (A flipped *length* byte legitimately re-frames the stream, so
//!    payload-equality with the original sequence is only asserted when
//!    the flip lands outside a length prefix.)

use mcpaxos_actor::crc32;
use mcpaxos_actor::frame::{encode_frame, FrameDecoder, FrameError, MAX_FRAME_PAYLOAD};
use proptest::prelude::*;

/// Encodes `payloads` as one contiguous stream.
fn stream_of(payloads: &[Vec<u8>]) -> Vec<u8> {
    let mut wire = Vec::new();
    for p in payloads {
        encode_frame(p, &mut wire).unwrap();
    }
    wire
}

/// Feeds `stream` to a decoder in the given chunk sizes (cycled),
/// draining after every push. Stops at the first error. Returns the
/// yielded payloads and the error, if any.
fn drain_chunked(stream: &[u8], chunks: &[usize]) -> (Vec<Vec<u8>>, Option<FrameError>) {
    let mut dec = FrameDecoder::new();
    let mut got = Vec::new();
    let mut fed = 0;
    let mut ci = 0;
    while fed < stream.len() {
        let n = chunks[ci % chunks.len()].min(stream.len() - fed);
        ci += 1;
        dec.push(&stream[fed..fed + n]);
        fed += n;
        loop {
            match dec.next_frame() {
                Ok(Some(p)) => got.push(p),
                Ok(None) => break,
                Err(e) => return (got, Some(e)),
            }
        }
    }
    (got, None)
}

/// Verifies one yielded payload against the raw stream at `offset`:
/// the consumed bytes must be `[len][payload][crc32(payload)]`. Returns
/// the offset after the frame.
fn verify_yield(stream: &[u8], offset: usize, payload: &[u8]) -> Result<usize, TestCaseError> {
    let hdr_end = offset + 4;
    prop_assert!(hdr_end <= stream.len(), "yield past end of stream");
    let len = u32::from_le_bytes(stream[offset..hdr_end].try_into().unwrap()) as usize;
    prop_assert_eq!(len, payload.len(), "yielded length disagrees with stream");
    let total = offset + 8 + len;
    prop_assert!(total <= stream.len(), "yielded frame overruns stream");
    prop_assert_eq!(
        &stream[hdr_end..hdr_end + len],
        payload,
        "yielded payload disagrees with stream bytes"
    );
    let stored = u32::from_le_bytes(stream[hdr_end + len..total].try_into().unwrap());
    prop_assert_eq!(stored, crc32(payload), "yielded frame fails CRC");
    Ok(total)
}

fn payloads() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(any::<u8>(), 0..48), 1..6)
}

fn chunk_sizes() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..33, 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Law 1: round-trip under arbitrary chunking.
    #[test]
    fn roundtrip_under_any_chunking(ps in payloads(), chunks in chunk_sizes()) {
        let wire = stream_of(&ps);
        let (got, err) = drain_chunked(&wire, &chunks);
        prop_assert!(err.is_none(), "clean stream errored: {err:?}");
        prop_assert_eq!(got, ps);
    }

    /// Law 2: a strict prefix yields completed frames then `Ok(None)` —
    /// never an error, never a partial or wrong frame.
    #[test]
    fn torn_tail_is_silent(ps in payloads(), chunks in chunk_sizes(), cut_seed in any::<u64>()) {
        let wire = stream_of(&ps);
        let cut = (cut_seed as usize) % wire.len();
        let (got, err) = drain_chunked(&wire[..cut], &chunks);
        prop_assert!(err.is_none(), "torn tail errored: {err:?}");
        // The frames that did complete are exactly the leading payloads.
        prop_assert_eq!(got.as_slice(), &ps[..got.len()]);
        // And a frame only completes when all of its bytes arrived.
        let consumed: usize = got.iter().map(|p| p.len() + 8).sum();
        prop_assert!(consumed <= cut);
    }

    /// Law 3a: one flipped bit anywhere in the stream — no panic, every
    /// yield shadow-verifies against the corrupted stream, and when the
    /// flip is outside a length prefix the decode is an exact prefix of
    /// the original sequence followed by a hard error.
    #[test]
    fn flipped_bit_never_delivers_garbage(
        ps in payloads(),
        chunks in chunk_sizes(),
        pos_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let wire = stream_of(&ps);
        let pos = (pos_seed as usize) % wire.len();
        let mut bad = wire.clone();
        bad[pos] ^= 1 << bit;

        let (got, err) = drain_chunked(&bad, &chunks);
        let mut offset = 0;
        for p in &got {
            offset = verify_yield(&bad, offset, p)?;
        }

        // Locate the flipped frame and whether the flip hit its length
        // prefix (which re-frames the stream) or its payload/CRC bytes
        // (which must surface as a hard error, frames before it intact).
        let mut start = 0;
        for (k, orig) in ps.iter().enumerate() {
            let total = orig.len() + 8;
            if pos < start + total {
                if pos >= start + 4 {
                    // Payload or CRC flip: exact-prefix decode, then error.
                    prop_assert_eq!(got.as_slice(), &ps[..k]);
                    prop_assert!(err.is_some(), "payload/CRC flip must error");
                }
                break;
            }
            start += total;
        }
    }

    /// Law 3b: a length prefix above the configured maximum is rejected
    /// before any allocation, regardless of what follows it.
    #[test]
    fn oversized_length_prefix_rejected(
        excess in 1u32..=1024,
        tail in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        let mut dec = FrameDecoder::new();
        let mut bytes = (MAX_FRAME_PAYLOAD + excess).to_le_bytes().to_vec();
        bytes.extend_from_slice(&tail);
        dec.push(&bytes);
        let err = dec.next_frame().unwrap_err();
        prop_assert_eq!(err.what, "length prefix exceeds max frame size");
    }

    /// Law 3c: pure byte soup — never panics, and anything it happens to
    /// yield shadow-verifies (i.e. was a genuinely CRC-valid frame).
    #[test]
    fn random_soup_never_panics(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
        chunks in chunk_sizes(),
    ) {
        let (got, _err) = drain_chunked(&bytes, &chunks);
        let mut offset = 0;
        for p in &got {
            offset = verify_yield(&bytes, offset, p)?;
        }
    }
}
