//! Property-based round-trip coverage for the wire codec.
//!
//! Two families of properties:
//!
//! 1. **Codec laws** for every primitive and container `Wire` impl:
//!    `decode(encode(v)) == v`, and every *strict prefix* of an encoding
//!    fails to decode (the format is length-prefixed, so truncation is
//!    always detectable — the property §4.4's durable acceptor state
//!    relies on after a crash mid-write).
//! 2. **Protocol messages**: the same laws for every variant of
//!    `mcpaxos_core::Msg`, the enum acceptors and coordinators persist
//!    and exchange, plus rejection of corrupted variant tags.

use mcpaxos_actor::wire::{from_bytes, to_bytes, Wire};
use mcpaxos_actor::ProcessId;
use mcpaxos_core::{Msg, Round};
use mcpaxos_cstruct::CmdSeq;
use proptest::prelude::*;

type TestMsg = Msg<CmdSeq<u32>>;

fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) -> Result<(), TestCaseError> {
    let bytes = to_bytes(v);
    let back: T = from_bytes(&bytes)
        .map_err(|e| TestCaseError::fail(format!("decode failed: {e} for {v:?}")))?;
    prop_assert_eq!(&back, v);
    Ok(())
}

/// Every strict prefix of an encoding must fail to decode: a reader can
/// never mistake a torn write for a shorter valid value.
fn strict_prefixes_fail<T: Wire + std::fmt::Debug>(v: &T) -> Result<(), TestCaseError> {
    let bytes = to_bytes(v);
    for cut in 0..bytes.len() {
        let r: Result<T, _> = from_bytes(&bytes[..cut]);
        prop_assert!(
            r.is_err(),
            "prefix of len {} of {:?} decoded as {:?}",
            cut,
            v,
            r.unwrap()
        );
    }
    Ok(())
}

fn text() -> impl Strategy<Value = String> {
    prop::collection::vec(0u32..0xFFFF, 0..8).prop_map(|points| {
        points
            .into_iter()
            .map(|p| char::from_u32(p).unwrap_or('\u{FFFD}'))
            .collect()
    })
}

fn round() -> impl Strategy<Value = Round> {
    (any::<u32>(), any::<u32>(), any::<u16>(), 0u8..4)
        .prop_map(|(major, minor, owner, rtype)| Round::new(major, minor, owner, rtype))
}

fn cmdseq() -> impl Strategy<Value = CmdSeq<u32>> {
    prop::collection::vec(any::<u32>(), 0..6).prop_map(|v| v.into_iter().collect())
}

fn msg() -> impl Strategy<Value = TestMsg> {
    let quorum = prop::option::of(prop::collection::vec(
        any::<u32>().prop_map(ProcessId),
        0..5,
    ));
    prop_oneof![
        (any::<u32>(), quorum).prop_map(|(cmd, acc_quorum)| Msg::Propose { cmd, acc_quorum }),
        round().prop_map(|round| Msg::P1a { round }),
        (round(), round(), cmdseq()).prop_map(|(round, vrnd, vval)| Msg::P1b {
            round,
            vrnd,
            vval: vval.into(),
        }),
        (round(), cmdseq()).prop_map(|(round, val)| Msg::P2a {
            round,
            val: val.into(),
        }),
        (round(), cmdseq()).prop_map(|(round, val)| Msg::P2b {
            round,
            val: val.into(),
        }),
        round().prop_map(|heard| Msg::RoundTooLow { heard }),
        Just(Msg::Heartbeat),
        prop::collection::vec(any::<u32>(), 0..6).prop_map(|cmds| Msg::Learned { cmds }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn primitives_roundtrip(
        a in any::<u8>(),
        b in any::<u16>(),
        c in any::<u32>(),
        d in any::<u64>(),
        e in any::<i32>(),
        f in any::<i64>(),
        g in any::<bool>(),
        h in any::<usize>(),
    ) {
        roundtrip(&a)?;
        roundtrip(&b)?;
        roundtrip(&c)?;
        roundtrip(&d)?;
        roundtrip(&e)?;
        roundtrip(&f)?;
        roundtrip(&g)?;
        roundtrip(&h)?;
    }

    #[test]
    fn strings_roundtrip(s in text()) {
        roundtrip(&s)?;
        strict_prefixes_fail(&s)?;
    }

    #[test]
    fn containers_roundtrip(
        v in prop::collection::vec(any::<u32>(), 0..10),
        o in prop::option::of(any::<u64>()),
        nested in prop::collection::vec(prop::option::of((any::<u8>(), any::<u32>())), 0..6),
        ids in prop::collection::vec(any::<u32>().prop_map(ProcessId), 0..6),
    ) {
        roundtrip(&v)?;
        roundtrip(&o)?;
        roundtrip(&nested)?;
        roundtrip(&ids)?;
        strict_prefixes_fail(&v)?;
        strict_prefixes_fail(&nested)?;
    }

    #[test]
    fn tuples_roundtrip(
        t2 in (any::<u32>(), any::<bool>()),
        t3 in (any::<u8>(), any::<u64>(), text()),
        t5 in (any::<u8>(), any::<u16>(), any::<u32>(), any::<u64>(), any::<bool>()),
    ) {
        roundtrip(&t2)?;
        roundtrip(&t3)?;
        roundtrip(&t5)?;
        strict_prefixes_fail(&t5)?;
    }

    /// Every `Msg` variant round-trips and detects truncation anywhere
    /// in the byte stream.
    #[test]
    fn msgs_roundtrip_and_reject_truncation(m in msg()) {
        roundtrip(&m)?;
        strict_prefixes_fail(&m)?;
    }

    /// Corrupting the variant tag never yields a silent wrong decode of
    /// a `Heartbeat`-tagged (payload-free) message, and out-of-range
    /// tags are rejected outright.
    #[test]
    fn msgs_reject_bad_tags(m in msg(), bump in 8u8..=255) {
        let mut bytes = to_bytes(&m);
        bytes[0] = bump; // tags 0..=7 are the valid range
        let r: Result<TestMsg, _> = from_bytes(&bytes);
        prop_assert!(r.is_err(), "tag {} accepted: {:?}", bump, r.unwrap());
    }
}

/// Deterministic spot-check that one encoding of each variant kind stays
/// byte-stable (guards against accidental format changes breaking
/// recovery from existing stable storage).
#[test]
fn format_golden_bytes() {
    let m: TestMsg = Msg::P1a {
        round: Round::new(1, 2, 3, 1),
    };
    assert_eq!(
        to_bytes(&m),
        vec![1, 1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 1],
        "P1a wire layout changed: tag, major:u32le, minor:u32le, owner:u16le, rtype:u8"
    );
    let m: TestMsg = Msg::Heartbeat;
    assert_eq!(to_bytes(&m), vec![6]);
}
