//! Transport-agnostic actor abstraction for the `mcpaxos` workspace.
//!
//! The Multicoordinated Paxos agents (proposers, coordinators, acceptors,
//! learners) are written once against the [`Actor`] and [`Context`] traits
//! defined here, and then driven either by the deterministic discrete-event
//! simulator (`mcpaxos-simnet`) or by the threaded live runtime
//! (`mcpaxos-runtime`). The paper assumes an asynchronous crash-recovery
//! message-passing model; this crate pins down exactly the facilities that
//! model grants a process:
//!
//! * sending messages (which may be lost, delayed or duplicated),
//! * setting local timers (timeouts are the only notion of time),
//! * writing to local stable storage (the disk writes that §4.4 of the paper
//!   counts so carefully), and
//! * crashing and later recovering with only stable storage intact.
//!
//! # Example
//!
//! ```
//! use mcpaxos_actor::{Actor, Context, ProcessId, TimerToken};
//!
//! /// An actor that echoes every message back to its sender.
//! struct Echo;
//!
//! impl Actor for Echo {
//!     type Msg = String;
//!     fn on_message(&mut self, from: ProcessId, msg: String, ctx: &mut dyn Context<String>) {
//!         ctx.send(from, msg);
//!     }
//!     fn on_timer(&mut self, _t: TimerToken, _ctx: &mut dyn Context<String>) {}
//! }
//! ```

mod actor;
pub mod frame;
mod id;
mod metrics;
mod storage;
mod time;
pub mod wire;

pub use actor::{Actor, AnyActor, Context, TimerToken};
pub use id::{ProcessId, RoleMap};
pub use metrics::{Metric, MetricSink, Metrics};
pub use storage::{crc32, FileWal, MemStore, StableStore, WalStore};
pub use time::{Backoff, SimDuration, SimTime};
