//! A small self-contained binary codec for durable state.
//!
//! Acceptors must persist their vote `(vrnd, vval)` and the `MCount`
//! component of their round (§4.4). Rather than pull a serialization
//! framework into the dependency tree, this module provides a minimal
//! length-prefixed little-endian codec with exactly the features the
//! protocol state needs: integers, booleans, strings, options, vectors,
//! tuples and user types via the [`Wire`] trait.
//!
//! The format is not self-describing; readers must know the type they
//! expect, which is always true for process-local storage.
//!
//! # Example
//!
//! ```
//! use mcpaxos_actor::wire::{from_bytes, to_bytes};
//!
//! let v: Vec<(u32, Option<String>)> = vec![(1, None), (2, Some("x".into()))];
//! let bytes = to_bytes(&v);
//! let back: Vec<(u32, Option<String>)> = from_bytes(&bytes).unwrap();
//! assert_eq!(v, back);
//! ```

use crate::{ProcessId, SimTime};
use std::fmt;

/// Error produced when decoding malformed or truncated bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Human-readable description of what failed to decode.
    pub what: &'static str,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire decode error: {}", self.what)
    }
}

impl std::error::Error for WireError {}

fn err(what: &'static str) -> WireError {
    WireError { what }
}

/// Types that can be encoded to and decoded from the wire format.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes a value from the front of `input`, advancing it past the
    /// consumed bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] if `input` is truncated or malformed.
    fn decode(input: &mut &[u8]) -> Result<Self, WireError>;
}

/// Encodes `value` into a fresh byte vector.
pub fn to_bytes<T: Wire>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.encode(&mut out);
    out
}

/// Decodes a `T` from `bytes`, requiring that all bytes are consumed.
///
/// # Errors
///
/// Returns [`WireError`] on truncated, malformed, or over-long input.
pub fn from_bytes<T: Wire>(mut bytes: &[u8]) -> Result<T, WireError> {
    let v = T::decode(&mut bytes)?;
    if !bytes.is_empty() {
        return Err(err("trailing bytes"));
    }
    Ok(v)
}

fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], WireError> {
    if input.len() < n {
        return Err(err("truncated input"));
    }
    let (head, rest) = input.split_at(n);
    *input = rest;
    Ok(head)
}

macro_rules! impl_wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
                let b = take(input, std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(b.try_into().unwrap()))
            }
        }
    )*};
}

impl_wire_int!(u8, u16, u32, u64, i32, i64);

impl Wire for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let v = u64::decode(input)?;
        usize::try_from(v).map_err(|_| err("usize overflow"))
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(input)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(err("invalid bool")),
        }
    }
}

impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_bytes().to_vec().encode(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let bytes: Vec<u8> = Wire::decode(input)?;
        String::from_utf8(bytes).map_err(|_| err("invalid utf-8"))
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let n = u64::decode(input)?;
        // Guard against absurd lengths in corrupt input without allocating.
        if n > (input.len() as u64) {
            return Err(err("length longer than input"));
        }
        let mut v = Vec::with_capacity(n as usize);
        for _ in 0..n {
            v.push(T::decode(input)?);
        }
        Ok(v)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(input)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(input)?)),
            _ => Err(err("invalid option tag")),
        }
    }
}

/// Shared payloads encode transparently as their inner value: the wire
/// format has no notion of sharing, so `Arc<T>` and `T` are
/// interchangeable on the wire. Used by the protocol messages, whose
/// c-struct payloads are `Arc`-shared so multicast fan-out clones a
/// pointer instead of the whole history.
impl<T: Wire> Wire for std::sync::Arc<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (**self).encode(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(std::sync::Arc::new(T::decode(input)?))
    }
}

macro_rules! impl_wire_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Wire),+> Wire for ($($name,)+) {
            fn encode(&self, out: &mut Vec<u8>) {
                $(self.$idx.encode(out);)+
            }
            fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
                Ok(($($name::decode(input)?,)+))
            }
        }
    };
}

impl_wire_tuple!(A: 0);
impl_wire_tuple!(A: 0, B: 1);
impl_wire_tuple!(A: 0, B: 1, C: 2);
impl_wire_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_wire_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

impl Wire for ProcessId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(ProcessId(u32::decode(input)?))
    }
}

impl Wire for SimTime {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(SimTime(u64::decode(input)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = to_bytes(&v);
        let back: T = from_bytes(&bytes).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u8);
        roundtrip(u8::MAX);
        roundtrip(0xBEEFu16);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(u64::MAX);
        roundtrip(-42i64);
        roundtrip(i32::MIN);
        roundtrip(true);
        roundtrip(false);
        roundtrip(12345usize);
        roundtrip(String::from("héllo wörld"));
        roundtrip(String::new());
    }

    #[test]
    fn container_roundtrips() {
        roundtrip(Vec::<u32>::new());
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Option::<u64>::None);
        roundtrip(Some(vec![String::from("a"), String::from("b")]));
        roundtrip((1u8, 2u32, String::from("x")));
        roundtrip(vec![(ProcessId(1), SimTime(9)), (ProcessId(2), SimTime(0))]);
        roundtrip((1u8, 2u8, 3u8, 4u8, 5u8));
    }

    #[test]
    fn truncated_input_fails() {
        let bytes = to_bytes(&0xDEAD_BEEFu32);
        let r: Result<u32, _> = from_bytes(&bytes[..3]);
        assert!(r.is_err());
    }

    #[test]
    fn trailing_bytes_fail() {
        let mut bytes = to_bytes(&1u8);
        bytes.push(0);
        let r: Result<u8, _> = from_bytes(&bytes);
        assert_eq!(r.unwrap_err().what, "trailing bytes");
    }

    #[test]
    fn invalid_tags_fail() {
        let r: Result<bool, _> = from_bytes(&[7]);
        assert!(r.is_err());
        let r: Result<Option<u8>, _> = from_bytes(&[9, 0]);
        assert!(r.is_err());
    }

    #[test]
    fn corrupt_length_fails_without_allocation() {
        // Vec length claims u64::MAX elements but provides none.
        let bytes = to_bytes(&u64::MAX);
        let r: Result<Vec<u8>, _> = from_bytes(&bytes);
        assert_eq!(r.unwrap_err().what, "length longer than input");
    }

    #[test]
    fn invalid_utf8_fails() {
        let mut bytes = Vec::new();
        vec![0xFFu8, 0xFE].encode(&mut bytes);
        let r: Result<String, _> = from_bytes(&bytes);
        assert_eq!(r.unwrap_err().what, "invalid utf-8");
    }
}
