//! Process identifiers and role assignments.

use std::fmt;

/// Identifier of a process in the system.
///
/// The paper's agents — proposers, coordinators, acceptors and learners —
/// are *roles*, and one process may play several of them (for instance, in
/// uncoordinated collision recovery an acceptor also acts as a coordinator
/// quorum of itself, §4.2). `ProcessId` therefore identifies a process, not
/// a role; role membership is tracked by [`RoleMap`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessId(pub u32);

impl ProcessId {
    /// Returns the raw numeric id.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for ProcessId {
    fn from(v: u32) -> Self {
        ProcessId(v)
    }
}

/// Static assignment of protocol roles to processes.
///
/// Role sets may overlap arbitrarily: a process can simultaneously be a
/// proposer, a coordinator, an acceptor and a learner (the paper explicitly
/// allows and sometimes requires this). The map is immutable configuration,
/// shared by every process of a deployment.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoleMap {
    proposers: Vec<ProcessId>,
    coordinators: Vec<ProcessId>,
    acceptors: Vec<ProcessId>,
    learners: Vec<ProcessId>,
}

impl RoleMap {
    /// Creates a new role map from explicit role sets.
    ///
    /// Each set is deduplicated and sorted so that deployments constructed
    /// from the same members compare equal regardless of argument order.
    pub fn new(
        proposers: impl IntoIterator<Item = ProcessId>,
        coordinators: impl IntoIterator<Item = ProcessId>,
        acceptors: impl IntoIterator<Item = ProcessId>,
        learners: impl IntoIterator<Item = ProcessId>,
    ) -> Self {
        fn norm(it: impl IntoIterator<Item = ProcessId>) -> Vec<ProcessId> {
            let mut v: Vec<ProcessId> = it.into_iter().collect();
            v.sort_unstable();
            v.dedup();
            v
        }
        RoleMap {
            proposers: norm(proposers),
            coordinators: norm(coordinators),
            acceptors: norm(acceptors),
            learners: norm(learners),
        }
    }

    /// A compact deployment: `n_prop` proposers, then `n_coord` coordinators,
    /// then `n_acc` acceptors, then `n_learn` learners, with consecutive ids
    /// starting at 0 and no overlap.
    pub fn disjoint(n_prop: usize, n_coord: usize, n_acc: usize, n_learn: usize) -> Self {
        Self::disjoint_from(0, n_prop, n_coord, n_acc, n_learn)
    }

    /// Like [`RoleMap::disjoint`], but with ids starting at `start` instead
    /// of 0. Sharded deployments use this to give each consensus instance
    /// its own disjoint id range inside one shared runtime.
    pub fn disjoint_from(
        start: u32,
        n_prop: usize,
        n_coord: usize,
        n_acc: usize,
        n_learn: usize,
    ) -> Self {
        let mut next = start;
        let mut take = |n: usize| -> Vec<ProcessId> {
            let v: Vec<ProcessId> = (next..next + n as u32).map(ProcessId).collect();
            next += n as u32;
            v
        };
        let proposers = take(n_prop);
        let coordinators = take(n_coord);
        let acceptors = take(n_acc);
        let learners = take(n_learn);
        RoleMap {
            proposers,
            coordinators,
            acceptors,
            learners,
        }
    }

    /// The proposer processes.
    pub fn proposers(&self) -> &[ProcessId] {
        &self.proposers
    }

    /// The coordinator processes.
    pub fn coordinators(&self) -> &[ProcessId] {
        &self.coordinators
    }

    /// The acceptor processes.
    pub fn acceptors(&self) -> &[ProcessId] {
        &self.acceptors
    }

    /// The learner processes.
    pub fn learners(&self) -> &[ProcessId] {
        &self.learners
    }

    /// Whether `p` is a proposer.
    pub fn is_proposer(&self, p: ProcessId) -> bool {
        self.proposers.binary_search(&p).is_ok()
    }

    /// Whether `p` is a coordinator.
    pub fn is_coordinator(&self, p: ProcessId) -> bool {
        self.coordinators.binary_search(&p).is_ok()
    }

    /// Whether `p` is an acceptor.
    pub fn is_acceptor(&self, p: ProcessId) -> bool {
        self.acceptors.binary_search(&p).is_ok()
    }

    /// Whether `p` is a learner.
    pub fn is_learner(&self, p: ProcessId) -> bool {
        self.learners.binary_search(&p).is_ok()
    }

    /// Every process mentioned in any role, deduplicated and sorted.
    pub fn all(&self) -> Vec<ProcessId> {
        let mut v: Vec<ProcessId> = self
            .proposers
            .iter()
            .chain(&self.coordinators)
            .chain(&self.acceptors)
            .chain(&self.learners)
            .copied()
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Number of acceptors (the `n` that quorum arithmetic is based on).
    pub fn n_acceptors(&self) -> usize {
        self.acceptors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_from_offsets_every_role() {
        let rm = RoleMap::disjoint_from(100, 1, 2, 3, 1);
        assert_eq!(rm.proposers(), &[ProcessId(100)]);
        assert_eq!(rm.coordinators(), &[ProcessId(101), ProcessId(102)]);
        assert_eq!(rm.acceptors()[0], ProcessId(103));
        assert_eq!(rm.learners(), &[ProcessId(106)]);
    }

    #[test]
    fn disjoint_assigns_consecutive_ids() {
        let rm = RoleMap::disjoint(1, 3, 5, 2);
        assert_eq!(rm.proposers(), &[ProcessId(0)]);
        assert_eq!(
            rm.coordinators(),
            &[ProcessId(1), ProcessId(2), ProcessId(3)]
        );
        assert_eq!(rm.acceptors().len(), 5);
        assert_eq!(rm.acceptors()[0], ProcessId(4));
        assert_eq!(rm.learners(), &[ProcessId(9), ProcessId(10)]);
        assert_eq!(rm.all().len(), 11);
    }

    #[test]
    fn roles_may_overlap() {
        let p = |i| ProcessId(i);
        let rm = RoleMap::new([p(0)], [p(1), p(2)], [p(1), p(2), p(3)], [p(0)]);
        assert!(rm.is_coordinator(p(1)));
        assert!(rm.is_acceptor(p(1)));
        assert!(rm.is_learner(p(0)));
        assert!(rm.is_proposer(p(0)));
        assert!(!rm.is_acceptor(p(0)));
        assert_eq!(rm.all(), vec![p(0), p(1), p(2), p(3)]);
    }

    #[test]
    fn new_dedups_and_sorts() {
        let p = |i| ProcessId(i);
        let rm = RoleMap::new([p(3), p(1), p(3)], [], [], []);
        assert_eq!(rm.proposers(), &[p(1), p(3)]);
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", ProcessId(7)), "p7");
        assert_eq!(format!("{:?}", ProcessId(7)), "p7");
    }
}
