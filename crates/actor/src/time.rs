//! Logical time used by both the simulator and the live runtime.
//!
//! Time is measured in abstract *ticks*. In the simulator a tick is a unit
//! of virtual time (experiments use unit link delays so that elapsed ticks
//! equal communication steps, the currency of the paper's latency claims);
//! in the live runtime a tick is a microsecond of wall-clock time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in logical time, in ticks since the start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of logical time, in ticks.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of time.
    pub const ZERO: SimTime = SimTime(0);

    /// Returns the raw tick count.
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// The duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Returns the raw tick count.
    pub fn ticks(self) -> u64 {
        self.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 + d.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for SimDuration {
    fn from(v: u64) -> Self {
        SimDuration(v)
    }
}

/// Jittered exponential backoff: one retry policy shared by everything
/// that re-attempts on a timer — proposer retransmission (whose constants
/// previously lived in the proposer) and the TCP transport's reconnect
/// supervisor (which measures ticks as milliseconds).
///
/// The delay for retry `attempt` (0-based) is
/// `min(base << min(attempt, 16), max(cap, base))`, plus a uniform draw
/// from `[0, jitter]` when jitter is configured. A zero `cap` disables
/// the exponential growth (fixed `base` period); a zero `jitter` draws
/// **no randomness at all**, keeping seeded simulator runs byte-identical
/// to deployments that never configured jitter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Backoff {
    /// First-retry delay, and the fixed period when `cap` is zero.
    pub base: SimDuration,
    /// Ceiling for the exponential growth (0 = no growth).
    pub cap: SimDuration,
    /// Upper bound of the uniform jitter added to every delay (0 = none).
    pub jitter: SimDuration,
}

impl Backoff {
    /// A policy backing off exponentially from `base` to `cap`, each
    /// delay jittered by a uniform draw from `[0, jitter]`.
    pub fn new(base: SimDuration, cap: SimDuration, jitter: SimDuration) -> Self {
        Backoff { base, cap, jitter }
    }

    /// A fixed-period policy: every delay is exactly `base`.
    pub fn fixed(base: SimDuration) -> Self {
        Backoff {
            base,
            cap: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
        }
    }

    /// The delay before retry `attempt` (0-based). `rand` supplies the
    /// jitter draw and is invoked only when jitter is configured, so
    /// jitter-free policies consume no randomness from the caller's RNG.
    pub fn delay(&self, attempt: u32, rand: impl FnOnce() -> u64) -> SimDuration {
        let mut d = self.base.ticks();
        let cap = self.cap.ticks();
        if cap > 0 {
            d = d
                .saturating_mul(1u64 << attempt.min(16))
                .min(cap.max(self.base.ticks()));
        }
        let j = self.jitter.ticks();
        if j > 0 {
            d += rand() % (j + 1);
        }
        SimDuration(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime(10) + SimDuration(5);
        assert_eq!(t, SimTime(15));
        assert_eq!(t - SimTime(10), SimDuration(5));
        assert_eq!(SimTime(3).since(SimTime(9)), SimDuration::ZERO);
        let mut u = SimTime::ZERO;
        u += SimDuration(7);
        assert_eq!(u.ticks(), 7);
        assert_eq!((SimDuration(2) + SimDuration(3)).ticks(), 5);
    }

    #[test]
    fn ordering() {
        assert!(SimTime(1) < SimTime(2));
        assert!(SimDuration(1) < SimDuration(2));
    }

    #[test]
    fn backoff_ladder_caps_and_jitters() {
        let b = Backoff::new(SimDuration(100), SimDuration(800), SimDuration::ZERO);
        let no_rand = || -> u64 { panic!("jitter-free policy must not draw randomness") };
        assert_eq!(b.delay(0, no_rand), SimDuration(100));
        assert_eq!(b.delay(1, no_rand), SimDuration(200));
        assert_eq!(b.delay(3, no_rand), SimDuration(800));
        assert_eq!(
            b.delay(30, no_rand),
            SimDuration(800),
            "capped + shift-safe"
        );

        let fixed = Backoff::fixed(SimDuration(70));
        assert_eq!(fixed.delay(5, no_rand), SimDuration(70));

        let j = Backoff::new(SimDuration(100), SimDuration(800), SimDuration(30));
        assert_eq!(j.delay(0, || 61), SimDuration(100 + 61 % 31));
        assert_eq!(j.delay(1, || 0), SimDuration(200));
    }

    #[test]
    fn backoff_cap_below_base_floors_at_base() {
        let b = Backoff::new(SimDuration(100), SimDuration(10), SimDuration::ZERO);
        assert_eq!(b.delay(4, || 0), SimDuration(100));
    }
}
