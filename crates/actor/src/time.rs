//! Logical time used by both the simulator and the live runtime.
//!
//! Time is measured in abstract *ticks*. In the simulator a tick is a unit
//! of virtual time (experiments use unit link delays so that elapsed ticks
//! equal communication steps, the currency of the paper's latency claims);
//! in the live runtime a tick is a microsecond of wall-clock time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in logical time, in ticks since the start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of logical time, in ticks.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of time.
    pub const ZERO: SimTime = SimTime(0);

    /// Returns the raw tick count.
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// The duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Returns the raw tick count.
    pub fn ticks(self) -> u64 {
        self.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 + d.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for SimDuration {
    fn from(v: u64) -> Self {
        SimDuration(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime(10) + SimDuration(5);
        assert_eq!(t, SimTime(15));
        assert_eq!(t - SimTime(10), SimDuration(5));
        assert_eq!(SimTime(3).since(SimTime(9)), SimDuration::ZERO);
        let mut u = SimTime::ZERO;
        u += SimDuration(7);
        assert_eq!(u.ticks(), 7);
        assert_eq!((SimDuration(2) + SimDuration(3)).ticks(), 5);
    }

    #[test]
    fn ordering() {
        assert!(SimTime(1) < SimTime(2));
        assert!(SimDuration(1) < SimDuration(2));
    }
}
