//! Stable storage with write accounting.
//!
//! §4.4 of the paper is entirely about *when* agents must write to disk:
//! acceptors must persist `(vrnd, vval)` on every accept, may keep `rnd`
//! volatile under the `MCount` scheme, and coordinators never need stable
//! storage at all. To measure those claims we route every durable write
//! through [`StableStore`], which counts writes; the simulator additionally
//! charges a configurable latency per write.

use std::collections::BTreeMap;
use std::fmt;

/// Process-local stable storage: a small key-value store of byte strings
/// that survives crashes.
///
/// Keys are short static names ("vote", "mcount", ...); values are produced
/// by the [`crate::wire`] codec. One `write` models one synchronous disk
/// write (the unit of §4.4's accounting).
pub trait StableStore {
    /// Durably writes `value` under `key`, replacing any previous value.
    /// Counts as one disk write even if the value is unchanged.
    fn write(&mut self, key: &str, value: Vec<u8>);

    /// Reads the last value written under `key`, if any.
    fn read(&self, key: &str) -> Option<&[u8]>;

    /// Total number of writes performed over the lifetime of the store
    /// (across crashes — the store itself is the durable medium).
    fn write_count(&self) -> u64;
}

/// In-memory implementation of [`StableStore`].
///
/// "In-memory" refers to the host process running the simulation; from the
/// simulated process's point of view this storage is durable: the simulator
/// keeps it across crash/recover cycles of the owning process.
#[derive(Clone, Default)]
pub struct MemStore {
    data: BTreeMap<String, Vec<u8>>,
    writes: u64,
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct keys currently stored.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Resets the write counter (used between experiment phases).
    pub fn reset_write_count(&mut self) {
        self.writes = 0;
    }
}

impl StableStore for MemStore {
    fn write(&mut self, key: &str, value: Vec<u8>) {
        self.writes += 1;
        self.data.insert(key.to_owned(), value);
    }

    fn read(&self, key: &str) -> Option<&[u8]> {
        self.data.get(key).map(|v| v.as_slice())
    }

    fn write_count(&self) -> u64 {
        self.writes
    }
}

impl fmt::Debug for MemStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemStore")
            .field("keys", &self.data.keys().collect::<Vec<_>>())
            .field("writes", &self.writes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut s = MemStore::new();
        assert!(s.read("vote").is_none());
        assert!(s.is_empty());
        s.write("vote", vec![1, 2, 3]);
        assert_eq!(s.read("vote"), Some(&[1u8, 2, 3][..]));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn every_write_is_counted() {
        let mut s = MemStore::new();
        s.write("k", vec![0]);
        s.write("k", vec![0]); // same value: still a disk write
        s.write("j", vec![1]);
        assert_eq!(s.write_count(), 3);
        s.reset_write_count();
        assert_eq!(s.write_count(), 0);
        // data survives the counter reset
        assert_eq!(s.read("j"), Some(&[1u8][..]));
    }

    #[test]
    fn overwrite_replaces_value() {
        let mut s = MemStore::new();
        s.write("k", vec![0]);
        s.write("k", vec![9, 9]);
        assert_eq!(s.read("k"), Some(&[9u8, 9][..]));
        assert_eq!(s.len(), 1);
    }
}
